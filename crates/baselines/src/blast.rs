//! Unresponsive constant-bit-rate senders and counting sinks.
//!
//! Figure 2 compares switch service models under *unresponsive* load:
//! "many unresponsive flows converge on a 10 Gb/s link that can only
//! support one of them". The sender here just clocks MTU-sized packets at
//! a fixed rate forever; the sink counts untrimmed payload per flow so the
//! experiment can compute each flow's share of fair goodput.

use std::any::Any;

use ndp_net::host::{Endpoint, EndpointCtx};
use ndp_net::packet::{FlowId, HostId, Packet, PacketKind, HEADER_BYTES};
use ndp_net::Host;
use ndp_sim::{ComponentId, Speed, Time, World};

const TICK: u8 = 1;

/// Sends MTU packets at `rate` until stopped (never reacts to anything).
pub struct BlastSender {
    flow: FlowId,
    dst: HostId,
    mtu: u32,
    rate: Speed,
    /// Stop after this many packets (practically unbounded by default).
    limit: u64,
    seq: u64,
    pub sent: u64,
}

impl BlastSender {
    pub fn new(flow: FlowId, dst: HostId, mtu: u32, rate: Speed) -> BlastSender {
        BlastSender {
            flow,
            dst,
            mtu,
            rate,
            limit: u64::MAX,
            seq: 0,
            sent: 0,
        }
    }

    pub fn with_limit(mut self, pkts: u64) -> BlastSender {
        self.limit = pkts;
        self
    }

    fn emit(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        if self.seq >= self.limit {
            return;
        }
        let mut pkt = Packet::data(ctx.host(), self.dst, self.flow, self.seq, self.mtu);
        pkt.sent = ctx.now();
        self.seq += 1;
        self.sent += 1;
        ctx.send(pkt);
        ctx.timer_in(self.rate.tx_time(self.mtu as u64), TICK);
    }
}

impl Endpoint for BlastSender {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        self.emit(ctx);
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut EndpointCtx<'_, '_>) {}
    fn on_timer(&mut self, token: u8, ctx: &mut EndpointCtx<'_, '_>) {
        if token == TICK {
            self.emit(ctx);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Counts delivered (untrimmed) payload and trimmed headers.
#[derive(Default)]
pub struct CountSink {
    pub payload_bytes: u64,
    pub data_pkts: u64,
    pub headers: u64,
}

impl CountSink {
    pub fn new() -> CountSink {
        CountSink::default()
    }
}

impl Endpoint for CountSink {
    fn on_start(&mut self, _ctx: &mut EndpointCtx<'_, '_>) {}
    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind != PacketKind::Data {
            return;
        }
        if pkt.is_trimmed() {
            self.headers += 1;
        } else {
            self.data_pkts += 1;
            self.payload_bytes += pkt.payload as u64;
            ctx.account_delivered(pkt.payload as u64);
        }
    }
    fn on_timer(&mut self, _token: u8, _ctx: &mut EndpointCtx<'_, '_>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Attach an unresponsive blast flow.
pub fn attach_blast(
    world: &mut World<Packet>,
    flow: FlowId,
    src: (ComponentId, HostId),
    dst: (ComponentId, HostId),
    mtu: u32,
    rate: Speed,
    start: Time,
) {
    world
        .get_mut::<Host>(src.0)
        .add_endpoint(flow, Box::new(BlastSender::new(flow, dst.1, mtu, rate)));
    world
        .get_mut::<Host>(dst.0)
        .add_endpoint(flow, Box::new(CountSink::new()));
    world.post_wake(start, src.0, flow << 8);
}

/// blast's [`ndp_transport::Transport`] adapter: an unresponsive CBR
/// sender clocking MTU packets at its host's line rate until it has
/// pushed `spec.size` bytes of payload, counted by a [`CountSink`].
/// There is no completion handshake — `completion_time` is always `None`;
/// the interesting quantity is delivered goodput under overload.
pub struct BlastTransport;

pub static BLAST: BlastTransport = BlastTransport;

impl ndp_transport::Transport for BlastTransport {
    fn label(&self) -> &'static str {
        "blast"
    }

    fn fabric(&self) -> ndp_transport::QueueSpec {
        ndp_transport::QueueSpec::ndp_default()
    }

    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &ndp_transport::FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        _n_paths: u32,
        mtu: u32,
    ) {
        let rate = world.get::<Host>(src.0).link_rate();
        let per = (mtu - HEADER_BYTES) as u64;
        let limit = spec.size.div_ceil(per).max(1);
        let sender = BlastSender::new(spec.flow, dst.1, mtu, rate).with_limit(limit);
        world
            .get_mut::<Host>(src.0)
            .add_endpoint(spec.flow, Box::new(sender));
        world
            .get_mut::<Host>(dst.0)
            .add_endpoint(spec.flow, Box::new(CountSink::new()));
        world.post_wake(spec.start, src.0, spec.flow << 8);
    }

    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64 {
        world
            .get::<Host>(host)
            .endpoint::<CountSink>(flow)
            .payload_bytes
    }

    fn completion_time(
        &self,
        _world: &World<Packet>,
        _host: ComponentId,
        _flow: FlowId,
    ) -> Option<Time> {
        None
    }

    fn detach(
        &self,
        world: &mut World<Packet>,
        src_host: ComponentId,
        dst_host: ComponentId,
        flow: FlowId,
    ) -> ndp_transport::FlowHarvest {
        ndp_transport::detach_endpoints::<CountSink>(world, src_host, dst_host, flow, |_, r| {
            ndp_transport::FlowHarvest {
                delivered_bytes: r.payload_bytes,
                ..Default::default()
            }
        })
    }
}

/// Fair-share goodput fraction for a flow: what it delivered vs an equal
/// split of the bottleneck's payload capacity over `span`.
pub fn fair_share_fraction(
    payload_bytes: u64,
    n_flows: usize,
    link: Speed,
    mtu: u32,
    span: Time,
) -> f64 {
    let payload_rate = link.as_bps() as f64 * (mtu - HEADER_BYTES) as f64 / mtu as f64 / 8.0;
    let fair = payload_rate * span.as_secs() / n_flows as f64;
    payload_bytes as f64 / fair
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_net::queue::Queue;
    use ndp_topology::{QueueSpec, SingleBottleneck};

    fn run_blast(n: usize, fabric: QueueSpec, seed: u64) -> (World<Packet>, SingleBottleneck) {
        let mut w: World<Packet> = World::new(seed);
        let sb =
            SingleBottleneck::build(&mut w, n, Speed::gbps(10), Time::from_us(1), 9000, fabric);
        for s in 0..n {
            attach_blast(
                &mut w,
                s as u64 + 1,
                (sb.senders[s], s as HostId),
                (sb.receiver, n as HostId),
                9000,
                Speed::gbps(10),
                Time::ZERO,
            );
        }
        w.run_until(Time::from_ms(10));
        (w, sb)
    }

    #[test]
    fn single_blast_achieves_line_rate() {
        let (w, sb) = run_blast(1, QueueSpec::ndp_default(), 1);
        let sink = w.get::<Host>(sb.receiver).endpoint::<CountSink>(1);
        let frac = fair_share_fraction(
            sink.payload_bytes,
            1,
            Speed::gbps(10),
            9000,
            Time::from_ms(10),
        );
        assert!(frac > 0.97, "single flow share {frac:.3}");
    }

    #[test]
    fn ndp_switch_sustains_goodput_under_heavy_overload() {
        let n = 50;
        let (w, sb) = run_blast(n, QueueSpec::ndp_default(), 2);
        let host = w.get::<Host>(sb.receiver);
        let total: u64 = (1..=n as u64)
            .map(|f| host.endpoint::<CountSink>(f).payload_bytes)
            .sum();
        let frac = fair_share_fraction(total, 1, Speed::gbps(10), 9000, Time::from_ms(10));
        // WRR 10:1 bounds header bandwidth: goodput stays high.
        assert!(frac > 0.85, "NDP aggregate goodput fraction {frac:.3}");
        let q = w.get::<Queue>(sb.bottleneck);
        assert!(q.stats.trimmed > 0);
    }

    #[test]
    fn cp_switch_collapses_more_than_ndp() {
        let n = 100;
        let agg = |fabric: QueueSpec, seed| {
            let (w, sb) = run_blast(n, fabric, seed);
            let host = w.get::<Host>(sb.receiver);
            let total: u64 = (1..=n as u64)
                .map(|f| host.endpoint::<CountSink>(f).payload_bytes)
                .sum();
            fair_share_fraction(total, 1, Speed::gbps(10), 9000, Time::from_ms(10))
        };
        let ndp = agg(QueueSpec::ndp_default(), 3);
        let cp = agg(QueueSpec::Cp { thresh_pkts: 8 }, 3);
        assert!(
            ndp > cp + 0.02,
            "NDP ({ndp:.3}) must beat CP ({cp:.3}) under 100-flow overload"
        );
    }

    #[test]
    fn blast_respects_limit() {
        let mut w: World<Packet> = World::new(4);
        let sb = SingleBottleneck::build(
            &mut w,
            1,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::ndp_default(),
        );
        let sender = BlastSender::new(1, 1, 9000, Speed::gbps(10)).with_limit(17);
        w.get_mut::<Host>(sb.senders[0])
            .add_endpoint(1, Box::new(sender));
        w.get_mut::<Host>(sb.receiver)
            .add_endpoint(1, Box::new(CountSink::new()));
        w.post_wake(Time::ZERO, sb.senders[0], 1 << 8);
        w.run_until_idle();
        let sink = w.get::<Host>(sb.receiver).endpoint::<CountSink>(1);
        assert_eq!(sink.data_pkts + sink.headers, 17);
    }
}
