//! DCQCN [40]: rate-based congestion control for RoCEv2 over lossless
//! (PFC) Ethernet.
//!
//! Roles: the switch (CP) ECN-marks packets above a threshold; the
//! receiver (NP) sends at most one CNP per 50 µs when marked packets
//! arrive; the sender (RP) reacts to CNPs with a multiplicative decrease
//! driven by the EWMA `alpha`, and recovers through timer-driven
//! fast-recovery / additive-increase / hyper-increase stages. Senders
//! start at line rate (as RoCE NICs do). Reliability comes from the
//! fabric: PFC guarantees no congestion loss, which is exactly the
//! property whose collateral damage Figures 15/16/19 explore.

use std::any::Any;

use ndp_net::host::{Endpoint, EndpointCtx};
use ndp_net::packet::{Flags, FlowId, HostId, Packet, PacketKind, HEADER_BYTES};
use ndp_net::Host;
use ndp_sim::{ComponentId, Speed, Time, World};
use rand::Rng;

const TICK: u8 = 1;
const ALPHA_TIMER: u8 = 2;
const INCREASE_TIMER: u8 = 3;

/// DCQCN parameters (DCQCN paper defaults scaled to 10 Gb/s).
#[derive(Clone, Debug)]
pub struct DcqcnCfg {
    pub size_bytes: u64,
    pub mtu: u32,
    pub line_rate: Speed,
    pub min_rate: Speed,
    /// EWMA gain for alpha.
    pub g: f64,
    /// NP-side minimum CNP spacing.
    pub cnp_interval: Time,
    /// RP-side alpha decay timer.
    pub alpha_timer: Time,
    /// RP-side rate increase timer.
    pub increase_timer: Time,
    /// Fast-recovery stages before additive increase.
    pub stages: u32,
    /// Additive increase step.
    pub rai: Speed,
    /// Hyper increase step (after 5 further stages).
    pub rhai: Speed,
    /// Per-flow ECMP path tag.
    pub path: u32,
    pub notify: Option<(ComponentId, u64)>,
}

impl DcqcnCfg {
    pub fn new(size_bytes: u64) -> DcqcnCfg {
        DcqcnCfg {
            size_bytes,
            mtu: 9000,
            line_rate: Speed::gbps(10),
            min_rate: Speed::mbps(10),
            g: 1.0 / 16.0,
            cnp_interval: Time::from_us(50),
            alpha_timer: Time::from_us(55),
            increase_timer: Time::from_us(300),
            stages: 5,
            rai: Speed::mbps(40),
            rhai: Speed::mbps(400),
            path: 0,
            notify: None,
        }
    }

    pub fn mss(&self) -> u64 {
        (self.mtu - HEADER_BYTES) as u64
    }
}

/// RP statistics.
#[derive(Clone, Debug, Default)]
pub struct DcqcnStats {
    pub start_time: Option<Time>,
    pub cnps_received: u64,
    pub packets_sent: u64,
    pub rate_samples: Vec<(u64, u64)>,
}

/// The DCQCN sender (reaction point).
pub struct DcqcnSender {
    flow: FlowId,
    dst: HostId,
    cfg: DcqcnCfg,
    rc: f64,
    rt: f64,
    alpha: f64,
    cnp_since_alpha_timer: bool,
    stage: u32,
    sent_bytes: u64,
    seq: u64,
    running: bool,
    pub stats: DcqcnStats,
}

impl DcqcnSender {
    pub fn new(flow: FlowId, dst: HostId, cfg: DcqcnCfg) -> DcqcnSender {
        let rc = cfg.line_rate.as_bps() as f64;
        DcqcnSender {
            flow,
            dst,
            cfg,
            rc,
            rt: rc,
            alpha: 1.0,
            cnp_since_alpha_timer: false,
            stage: 0,
            sent_bytes: 0,
            seq: 0,
            running: false,
            stats: DcqcnStats::default(),
        }
    }

    pub fn current_rate(&self) -> Speed {
        Speed::bps(self.rc as u64)
    }

    fn gap(&self) -> Time {
        Speed::bps(self.rc.max(self.cfg.min_rate.as_bps() as f64) as u64)
            .tx_time(self.cfg.mtu as u64)
    }

    fn send_one(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        if self.sent_bytes >= self.cfg.size_bytes {
            self.running = false;
            return;
        }
        let payload = (self.cfg.size_bytes - self.sent_bytes).min(self.cfg.mss());
        let mut pkt = Packet::data(
            ctx.host(),
            self.dst,
            self.flow,
            self.seq,
            payload as u32 + HEADER_BYTES,
        );
        pkt.flags = pkt.flags.with(Flags::ECT);
        pkt.path = self.cfg.path;
        pkt.sent = ctx.now();
        if self.sent_bytes + payload >= self.cfg.size_bytes {
            pkt.flags = pkt.flags.with(Flags::FIN);
        }
        self.seq += 1;
        self.sent_bytes += payload;
        self.stats.packets_sent += 1;
        ctx.send(pkt);
        if self.sent_bytes < self.cfg.size_bytes {
            let g = self.gap();
            ctx.timer_in(g, TICK);
        } else {
            self.running = false;
        }
    }

    fn on_cnp(&mut self) {
        self.stats.cnps_received += 1;
        self.cnp_since_alpha_timer = true;
        self.rt = self.rc;
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.rc *= 1.0 - self.alpha / 2.0;
        let min = self.cfg.min_rate.as_bps() as f64;
        if self.rc < min {
            self.rc = min;
        }
        self.stage = 0;
    }

    fn on_increase_timer(&mut self) {
        self.stage += 1;
        if self.stage <= self.cfg.stages {
            // Fast recovery towards the rate before the cut.
            self.rc = (self.rc + self.rt) / 2.0;
        } else if self.stage <= 2 * self.cfg.stages {
            self.rt += self.cfg.rai.as_bps() as f64;
            self.rc = (self.rc + self.rt) / 2.0;
        } else {
            self.rt += self.cfg.rhai.as_bps() as f64;
            self.rc = (self.rc + self.rt) / 2.0;
        }
        let max = self.cfg.line_rate.as_bps() as f64;
        if self.rc > max {
            self.rc = max;
        }
        if self.rt > max {
            self.rt = max;
        }
    }
}

impl Endpoint for DcqcnSender {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        self.stats.start_time = Some(ctx.now());
        if self.cfg.path == 0 {
            self.cfg.path = ctx.rng().gen();
        }
        self.running = true;
        ctx.timer_in(self.cfg.alpha_timer, ALPHA_TIMER);
        ctx.timer_in(self.cfg.increase_timer, INCREASE_TIMER);
        self.send_one(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, _ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind == PacketKind::Cnp {
            self.on_cnp();
        }
    }

    fn on_timer(&mut self, token: u8, ctx: &mut EndpointCtx<'_, '_>) {
        match token {
            TICK => self.send_one(ctx),
            ALPHA_TIMER => {
                if !self.cnp_since_alpha_timer {
                    self.alpha *= 1.0 - self.cfg.g;
                }
                self.cnp_since_alpha_timer = false;
                if self.sent_bytes < self.cfg.size_bytes {
                    ctx.timer_in(self.cfg.alpha_timer, ALPHA_TIMER);
                }
            }
            INCREASE_TIMER => {
                self.on_increase_timer();
                self.stats
                    .rate_samples
                    .push((ctx.now().as_ps(), self.rc as u64));
                if self.sent_bytes < self.cfg.size_bytes {
                    ctx.timer_in(self.cfg.increase_timer, INCREASE_TIMER);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The DCQCN receiver (notification point).
pub struct DcqcnReceiver {
    peer: HostId,
    total: u64,
    last_cnp: Option<Time>,
    cnp_interval: Time,
    pub payload_bytes: u64,
    pub completion_time: Option<Time>,
    pub first_arrival: Option<Time>,
    pub cnps_sent: u64,
    notify: Option<(ComponentId, u64)>,
}

impl DcqcnReceiver {
    pub fn new(peer: HostId, total: u64) -> DcqcnReceiver {
        DcqcnReceiver {
            peer,
            total,
            last_cnp: None,
            cnp_interval: Time::from_us(50),
            payload_bytes: 0,
            completion_time: None,
            first_arrival: None,
            cnps_sent: 0,
            notify: None,
        }
    }

    pub fn with_notify(mut self, comp: ComponentId, token: u64) -> DcqcnReceiver {
        self.notify = Some((comp, token));
        self
    }

    pub fn is_done(&self) -> bool {
        self.completion_time.is_some()
    }
}

impl Endpoint for DcqcnReceiver {
    fn on_start(&mut self, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind != PacketKind::Data {
            return;
        }
        if self.first_arrival.is_none() {
            self.first_arrival = Some(ctx.now());
        }
        self.payload_bytes += pkt.payload as u64;
        ctx.account_delivered(pkt.payload as u64);
        if pkt.flags.has(Flags::CE) {
            let due = match self.last_cnp {
                None => true,
                Some(t) => ctx.now() - t >= self.cnp_interval,
            };
            if due {
                self.last_cnp = Some(ctx.now());
                self.cnps_sent += 1;
                let mut cnp = Packet::control(ctx.host(), self.peer, pkt.flow, PacketKind::Cnp);
                cnp.path = pkt.path;
                ctx.send(cnp);
            }
        }
        if self.payload_bytes >= self.total && self.completion_time.is_none() {
            self.completion_time = Some(ctx.now());
            let fct = self.first_arrival.map_or(Time::ZERO, |t| ctx.now() - t);
            ctx.complete(self.payload_bytes, fct);
            if let Some((comp, tok)) = self.notify {
                ctx.notify(comp, tok);
            }
        }
    }

    fn on_timer(&mut self, _token: u8, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Attach a DCQCN flow (requires a lossless fabric to be loss-free).
pub fn attach_dcqcn_flow(
    world: &mut World<Packet>,
    flow: FlowId,
    src: (ComponentId, HostId),
    dst: (ComponentId, HostId),
    cfg: DcqcnCfg,
    start: Time,
) {
    let notify = cfg.notify;
    let total = cfg.size_bytes;
    let sender = DcqcnSender::new(flow, dst.1, cfg);
    let mut receiver = DcqcnReceiver::new(src.1, total);
    if let Some((comp, tok)) = notify {
        receiver = receiver.with_notify(comp, tok);
    }
    world
        .get_mut::<Host>(src.0)
        .add_endpoint(flow, Box::new(sender));
    world
        .get_mut::<Host>(dst.0)
        .add_endpoint(flow, Box::new(receiver));
    world.post_wake(start, src.0, flow << 8);
}

/// DCQCN's [`Transport`] adapter: rate-based RoCE congestion control over
/// the lossless (PFC) ECN-marking fabric.
pub struct DcqcnTransport;

pub static DCQCN: DcqcnTransport = DcqcnTransport;

impl ndp_transport::Transport for DcqcnTransport {
    fn label(&self) -> &'static str {
        "DCQCN"
    }

    fn fabric(&self) -> ndp_transport::QueueSpec {
        ndp_transport::QueueSpec::dcqcn_default()
    }

    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &ndp_transport::FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        _n_paths: u32,
        mtu: u32,
    ) {
        let mut cfg = DcqcnCfg::new(spec.size);
        cfg.mtu = mtu;
        cfg.path = ndp_transport::flow_hash_path(spec.flow).max(1);
        cfg.notify = spec.notify;
        attach_dcqcn_flow(world, spec.flow, src, dst, cfg, spec.start);
    }

    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64 {
        world
            .get::<Host>(host)
            .endpoint::<DcqcnReceiver>(flow)
            .payload_bytes
    }

    fn completion_time(
        &self,
        world: &World<Packet>,
        host: ComponentId,
        flow: FlowId,
    ) -> Option<Time> {
        world
            .get::<Host>(host)
            .endpoint::<DcqcnReceiver>(flow)
            .completion_time
    }

    fn detach(
        &self,
        world: &mut World<Packet>,
        src_host: ComponentId,
        dst_host: ComponentId,
        flow: FlowId,
    ) -> ndp_transport::FlowHarvest {
        ndp_transport::detach_endpoints::<DcqcnReceiver>(world, src_host, dst_host, flow, |_, r| {
            ndp_transport::FlowHarvest {
                delivered_bytes: r.payload_bytes,
                completion_time: r.completion_time,
                first_data: r.first_arrival,
                ..Default::default()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_sim::Speed;
    use ndp_topology::{QueueSpec, SingleBottleneck};

    #[test]
    fn single_flow_runs_at_line_rate() {
        let mut w: World<Packet> = World::new(1);
        let sb = SingleBottleneck::build(
            &mut w,
            1,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::dcqcn_default(),
        );
        let size = 5_000_000u64;
        attach_dcqcn_flow(
            &mut w,
            1,
            (sb.senders[0], 0),
            (sb.receiver, 1),
            DcqcnCfg::new(size),
            Time::ZERO,
        );
        w.run_until(Time::from_ms(100));
        let rx = w.get::<Host>(sb.receiver).endpoint::<DcqcnReceiver>(1);
        assert_eq!(rx.payload_bytes, size);
        let fct = rx.completion_time.unwrap() - rx.first_arrival.unwrap();
        let goodput = size as f64 * 8.0 / fct.as_secs() / 1e9;
        assert!(
            goodput > 9.0,
            "uncongested DCQCN should run at line rate: {goodput:.2}"
        );
        assert_eq!(rx.cnps_sent, 0, "no marks on an idle link");
    }

    #[test]
    fn two_flows_get_marked_and_back_off_without_loss() {
        let mut w: World<Packet> = World::new(2);
        let sb = SingleBottleneck::build(
            &mut w,
            2,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::dcqcn_default(),
        );
        let size = 20_000_000u64;
        for s in 0..2u64 {
            attach_dcqcn_flow(
                &mut w,
                s + 1,
                (sb.senders[s as usize], s as u32),
                (sb.receiver, 2),
                DcqcnCfg::new(size),
                Time::ZERO,
            );
        }
        w.run_until(Time::from_secs(1));
        let mut cnps = 0;
        for s in 0..2u64 {
            let rx = w.get::<Host>(sb.receiver).endpoint::<DcqcnReceiver>(s + 1);
            assert_eq!(rx.payload_bytes, size, "flow {s}");
            cnps += rx.cnps_sent;
            let tx = w
                .get::<Host>(sb.senders[s as usize])
                .endpoint::<DcqcnSender>(s + 1);
            assert!(tx.stats.cnps_received > 0, "sender {s} never throttled");
        }
        assert!(cnps > 0);
        let q = w.get::<ndp_net::queue::Queue>(sb.bottleneck);
        assert_eq!(q.stats.dropped_data, 0, "lossless fabric must not drop");
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut s = DcqcnSender::new(1, 1, DcqcnCfg::new(1_000_000));
        s.on_cnp();
        let a0 = s.alpha;
        // Simulate alpha timer without CNPs.
        for _ in 0..10 {
            s.cnp_since_alpha_timer = false;
            s.alpha *= 1.0 - s.cfg.g;
        }
        assert!(s.alpha < a0 / 1.5);
    }

    #[test]
    fn rate_cut_and_fast_recovery() {
        let mut s = DcqcnSender::new(1, 1, DcqcnCfg::new(1_000_000));
        let line = s.cfg.line_rate.as_bps() as f64;
        s.on_cnp();
        assert!(s.rc < line, "CNP must cut the rate");
        let after_cut = s.rc;
        for _ in 0..s.cfg.stages {
            s.on_increase_timer();
        }
        assert!(s.rc > after_cut, "fast recovery must restore rate");
        assert!(s.rc <= line);
    }
}
