//! Baseline transports the paper compares NDP against (§5/§6):
//!
//! * [`tcp`] — TCP NewReno with per-flow ECMP, Linux-like MinRTO, optional
//!   three-way handshake / TFO modelling, and the DCTCP extension (ECN
//!   fraction estimator + proportional window reduction).
//! * [`mptcp`] — Multipath TCP with 8 subflows on distinct paths coupled by
//!   the LIA increase (RFC 6356), the high-throughput baseline of Fig 14.
//! * [`dcqcn`] — DCQCN rate-based congestion control for RoCE over the
//!   lossless (PFC) fabric: per-CNP multiplicative decrease with the α
//!   estimator, timer-driven fast-recovery/additive-increase.
//! * [`phost`] — pHost, the receiver-driven transport *without* packet
//!   trimming (§6.2 "Who needs packet trimming?").
//! * [`blast`] — unresponsive constant-bit-rate senders and counting sinks
//!   for the Figure 2 switch-service comparison.
//!
//! Every sender/receiver is an [`ndp_net::host::Endpoint`]; attach helpers
//! mirror `ndp_core::attach_flow`. Each protocol file also exposes its
//! [`ndp_transport::Transport`] adapter as a `static` (TCP and DCTCP are
//! configured instances of one adapter), so the experiment harnesses can
//! drive every baseline through the same object-safe surface.

pub mod blast;
pub mod dcqcn;
pub mod mptcp;
pub mod phost;
pub mod tcp;

pub use blast::{attach_blast, BlastSender, CountSink, BLAST};
pub use dcqcn::{attach_dcqcn_flow, DcqcnCfg, DcqcnReceiver, DcqcnSender, DCQCN};
pub use mptcp::{attach_mptcp_flow, MptcpCfg, MptcpReceiver, MptcpSender, MPTCP};
pub use phost::{attach_phost_flow, PHostCfg, PHostReceiver, PHostSender, PHOST};
pub use tcp::{attach_tcp_flow, Handshake, TcpCfg, TcpReceiver, TcpSender, DCTCP, TCP};
