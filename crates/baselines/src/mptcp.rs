//! Multipath TCP with LIA coupling (RFC 6356), the paper's
//! high-throughput baseline [31].
//!
//! Eight subflows per connection, each pinned to a distinct (randomly
//! chosen) path tag, sharing one transfer. Each subflow runs NewReno
//! loss recovery over its own sequence space; the *increase* is coupled:
//!
//! ```text
//! per ack:  cwnd_r += min( a · bytes / cwnd_total , bytes / cwnd_r )
//! a = cwnd_total · max_r(cwnd_r / rtt_r²) / ( Σ_r cwnd_r / rtt_r )²
//! ```
//!
//! Data is allocated to subflows on demand from a shared pool, so a stalled
//! subflow simply stops claiming bytes.

use std::any::Any;
use std::collections::BTreeMap;

use ndp_net::host::{Endpoint, EndpointCtx};
use ndp_net::packet::{Flags, FlowId, HostId, Packet, PacketKind, PathTag, HEADER_BYTES};
use ndp_net::Host;
use ndp_sim::{ComponentId, Time, World};
use rand::Rng;

const RTO_TOKEN_BASE: u8 = 1; // token = base + subflow index

/// MPTCP configuration.
#[derive(Clone, Debug)]
pub struct MptcpCfg {
    pub size_bytes: u64,
    pub mtu: u32,
    pub n_subflows: usize,
    pub init_cwnd_pkts: u32,
    pub min_rto: Time,
    /// Path tags, one per subflow (filled randomly if empty).
    pub paths: Vec<PathTag>,
    pub notify: Option<(ComponentId, u64)>,
}

impl MptcpCfg {
    pub fn new(size_bytes: u64) -> MptcpCfg {
        MptcpCfg {
            size_bytes,
            mtu: 9000,
            n_subflows: 8,
            init_cwnd_pkts: 2,
            min_rto: Time::from_ms(10),
            paths: Vec::new(),
            notify: None,
        }
    }

    pub fn mss(&self) -> u64 {
        (self.mtu - HEADER_BYTES) as u64
    }
}

struct Subflow {
    path: PathTag,
    snd_una: u64,
    snd_nxt: u64,
    /// Bytes claimed from the shared pool (local seq space size so far).
    claimed: u64,
    cwnd: u64,
    ssthresh: u64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    srtt: Option<Time>,
    rto_armed: bool,
    backoff: u32,
    /// Send time of the oldest unacknowledged segment (RTO anchor).
    una_time: Time,
}

impl Subflow {
    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }
}

/// MPTCP sender statistics.
#[derive(Clone, Debug, Default)]
pub struct MptcpStats {
    pub start_time: Option<Time>,
    pub completion_time: Option<Time>,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub packets_sent: u64,
}

impl MptcpStats {
    pub fn fct(&self) -> Option<Time> {
        Some(self.completion_time? - self.start_time?)
    }
}

/// The MPTCP sender endpoint.
pub struct MptcpSender {
    flow: FlowId,
    dst: HostId,
    cfg: MptcpCfg,
    subs: Vec<Subflow>,
    /// Bytes of the transfer not yet claimed by any subflow.
    pool: u64,
    total_acked: u64,
    done: bool,
    pub stats: MptcpStats,
}

impl MptcpSender {
    pub fn new(flow: FlowId, dst: HostId, cfg: MptcpCfg) -> MptcpSender {
        let mss = cfg.mss();
        let subs = (0..cfg.n_subflows)
            .map(|i| Subflow {
                path: cfg.paths.get(i).copied().unwrap_or(i as PathTag),
                snd_una: 0,
                snd_nxt: 0,
                claimed: 0,
                cwnd: cfg.init_cwnd_pkts as u64 * mss,
                ssthresh: u64::MAX / 2,
                dupacks: 0,
                in_recovery: false,
                recover: 0,
                srtt: None,
                rto_armed: false,
                backoff: 1,
                una_time: Time::ZERO,
            })
            .collect();
        let pool = cfg.size_bytes;
        MptcpSender {
            flow,
            dst,
            cfg,
            subs,
            pool,
            total_acked: 0,
            done: false,
            stats: MptcpStats::default(),
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn subflow_cwnds(&self) -> Vec<u64> {
        self.subs.iter().map(|s| s.cwnd).collect()
    }

    fn mss(&self) -> u64 {
        self.cfg.mss()
    }

    /// RFC 6356 coupled-increase coefficient.
    fn lia_alpha(&self) -> f64 {
        let total: u64 = self.subs.iter().map(|s| s.cwnd).sum();
        if total == 0 {
            return 1.0;
        }
        let mut best = 0.0f64;
        let mut denom = 0.0f64;
        for s in &self.subs {
            let rtt = s.srtt.unwrap_or(Time::from_us(100)).as_secs().max(1e-9);
            best = best.max(s.cwnd as f64 / (rtt * rtt));
            denom += s.cwnd as f64 / rtt;
        }
        if denom <= 0.0 {
            return 1.0;
        }
        total as f64 * best / (denom * denom)
    }

    fn send_segment(&mut self, idx: usize, seq: u64, ctx: &mut EndpointCtx<'_, '_>) {
        let (path, claimed) = {
            let s = &self.subs[idx];
            (s.path, s.claimed)
        };
        let payload = (claimed - seq).min(self.mss());
        let mut pkt = Packet::data(
            ctx.host(),
            self.dst,
            self.flow,
            seq,
            payload as u32 + HEADER_BYTES,
        );
        pkt.path = path;
        pkt.subflow = idx as u16;
        pkt.sent = ctx.now();
        self.stats.packets_sent += 1;
        if seq == self.subs[idx].snd_una {
            self.subs[idx].una_time = ctx.now();
        }
        ctx.send(pkt);
        self.arm_rto(idx, ctx);
    }

    fn arm_rto(&mut self, idx: usize, ctx: &mut EndpointCtx<'_, '_>) {
        let s = &mut self.subs[idx];
        if !s.rto_armed {
            s.rto_armed = true;
            let t = self.cfg.min_rto * s.backoff as u64;
            ctx.timer_in(t, RTO_TOKEN_BASE + idx as u8);
        }
    }

    fn send_available(&mut self, idx: usize, ctx: &mut EndpointCtx<'_, '_>) {
        loop {
            let (nxt, una, cwnd, claimed) = {
                let s = &self.subs[idx];
                (s.snd_nxt, s.snd_una, s.cwnd, s.claimed)
            };
            if nxt - una >= cwnd {
                break;
            }
            // Claim more bytes from the shared pool if needed.
            if nxt >= claimed {
                let want = self.mss().min(self.pool);
                if want == 0 {
                    break;
                }
                self.pool -= want;
                self.subs[idx].claimed += want;
            }
            let s = &mut self.subs[idx];
            let payload = (s.claimed - s.snd_nxt).min(self.cfg.mss());
            let seq = s.snd_nxt;
            s.snd_nxt += payload;
            self.send_segment(idx, seq, ctx);
        }
    }

    fn on_ack(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        let idx = pkt.subflow as usize;
        if idx >= self.subs.len() {
            return;
        }
        let ack = u64::from(pkt.ack);
        let alpha = self.lia_alpha();
        let total_cwnd: u64 = self.subs.iter().map(|s| s.cwnd).sum();
        let mss = self.mss();
        let s = &mut self.subs[idx];
        if ack > s.snd_una {
            let newly = ack - s.snd_una;
            s.snd_una = ack;
            s.una_time = ctx.now();
            s.dupacks = 0;
            s.backoff = 1;
            if pkt.sent > Time::ZERO {
                let sample = ctx.now() - pkt.sent;
                s.srtt = Some(match s.srtt {
                    None => sample,
                    Some(old) => Time::from_ps((7 * old.as_ps() + sample.as_ps()) / 8),
                });
            }
            self.total_acked += newly;
            if s.in_recovery {
                if ack >= s.recover {
                    s.in_recovery = false;
                    s.cwnd = s.ssthresh;
                } else {
                    let seq = s.snd_una;
                    self.send_segment(idx, seq, ctx);
                    self.check_done(ctx);
                    return;
                }
            } else if s.cwnd < s.ssthresh {
                s.cwnd += newly.min(mss);
            } else {
                s.cwnd += lia_increment(alpha, newly, mss, total_cwnd, s.cwnd);
            }
            self.send_available(idx, ctx);
            self.check_done(ctx);
        } else if ack == s.snd_una && s.flight() > 0 {
            s.dupacks += 1;
            if s.dupacks == 3 && !s.in_recovery {
                self.stats.fast_retransmits += 1;
                let s = &mut self.subs[idx];
                s.ssthresh = (s.flight() / 2).max(2 * mss);
                s.cwnd = s.ssthresh + 3 * mss;
                s.in_recovery = true;
                s.recover = s.snd_nxt;
                let seq = s.snd_una;
                self.send_segment(idx, seq, ctx);
            }
        }
    }

    fn check_done(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        if !self.done && self.total_acked >= self.cfg.size_bytes {
            self.done = true;
            self.stats.completion_time = Some(ctx.now());
            if let Some((comp, tok)) = self.cfg.notify {
                ctx.notify(comp, tok);
            }
        }
    }
}

impl Endpoint for MptcpSender {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        self.stats.start_time = Some(ctx.now());
        if self.cfg.paths.is_empty() {
            // Independent random path per subflow (per-flow ECMP hashing).
            for s in &mut self.subs {
                s.path = ctx.rng().gen();
            }
        }
        for idx in 0..self.subs.len() {
            self.send_available(idx, ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind == PacketKind::Ack {
            self.on_ack(pkt, ctx);
        }
    }

    fn on_timer(&mut self, token: u8, ctx: &mut EndpointCtx<'_, '_>) {
        let idx = (token - RTO_TOKEN_BASE) as usize;
        if idx >= self.subs.len() {
            return;
        }
        self.subs[idx].rto_armed = false;
        if self.done || self.subs[idx].flight() == 0 {
            return;
        }
        let s = &self.subs[idx];
        let deadline = s.una_time + self.cfg.min_rto * s.backoff as u64;
        if ctx.now() < deadline {
            self.subs[idx].rto_armed = true;
            let remaining = deadline - ctx.now();
            ctx.timer_in(remaining, RTO_TOKEN_BASE + idx as u8);
            return;
        }
        self.stats.timeouts += 1;
        let mss = self.mss();
        let s = &mut self.subs[idx];
        s.ssthresh = (s.flight() / 2).max(2 * mss);
        s.cwnd = mss;
        s.in_recovery = false;
        s.dupacks = 0;
        s.backoff = (s.backoff * 2).min(64);
        let seq = s.snd_una;
        self.send_segment(idx, seq, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// RFC 6356 congestion-avoidance increment for one subflow:
/// `min(alpha · bytes · mss / total_cwnd, bytes · mss / cwnd)` — coupled
/// growth, capped by what a regular TCP would do.
pub fn lia_increment(alpha: f64, newly: u64, mss: u64, total_cwnd: u64, cwnd: u64) -> u64 {
    let inc_coupled = alpha * newly as f64 * mss as f64 / total_cwnd.max(1) as f64;
    let inc_uncoupled = newly as f64 * mss as f64 / cwnd.max(1) as f64;
    inc_coupled.min(inc_uncoupled).max(1.0) as u64
}

/// Per-subflow cumulative-ACK receiver.
pub struct MptcpReceiver {
    peer: HostId,
    n_subflows: usize,
    rcv_nxt: Vec<u64>,
    ooo: Vec<BTreeMap<u64, u64>>,
    pub payload_bytes: u64,
    pub completion_time: Option<Time>,
    pub first_arrival: Option<Time>,
    total: u64,
    notify: Option<(ComponentId, u64)>,
}

impl MptcpReceiver {
    pub fn new(peer: HostId, n_subflows: usize, total: u64) -> MptcpReceiver {
        MptcpReceiver {
            peer,
            n_subflows,
            rcv_nxt: vec![0; n_subflows],
            ooo: vec![BTreeMap::new(); n_subflows],
            payload_bytes: 0,
            completion_time: None,
            first_arrival: None,
            total,
            notify: None,
        }
    }

    pub fn with_notify(mut self, comp: ComponentId, token: u64) -> MptcpReceiver {
        self.notify = Some((comp, token));
        self
    }

    pub fn is_done(&self) -> bool {
        self.completion_time.is_some()
    }
}

impl Endpoint for MptcpReceiver {
    fn on_start(&mut self, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind != PacketKind::Data {
            return;
        }
        let sf = pkt.subflow as usize;
        if sf >= self.n_subflows {
            return;
        }
        if self.first_arrival.is_none() {
            self.first_arrival = Some(ctx.now());
        }
        let start = u64::from(pkt.seq);
        let end = start + pkt.payload as u64;
        let nxt = &mut self.rcv_nxt[sf];
        let ooo = &mut self.ooo[sf];
        let before = *nxt;
        if end > *nxt {
            let s = start.max(*nxt);
            let e = ooo.get(&s).copied().unwrap_or(0).max(end);
            ooo.insert(s, e);
            while let Some((&s0, &e0)) = ooo.first_key_value() {
                if s0 <= *nxt {
                    ooo.pop_first();
                    if e0 > *nxt {
                        *nxt = e0;
                    }
                } else {
                    break;
                }
            }
        }
        let delivered = *nxt - before;
        if delivered > 0 {
            self.payload_bytes += delivered;
            ctx.account_delivered(delivered);
        }
        let mut ack = Packet::control(ctx.host(), self.peer, pkt.flow, PacketKind::Ack);
        ack.ack = Packet::ack32(self.rcv_nxt[sf]);
        ack.subflow = pkt.subflow;
        ack.path = pkt.path;
        ack.sent = pkt.sent;
        if pkt.flags.has(Flags::CE) {
            ack.flags = ack.flags.with(Flags::CE);
        }
        ctx.send(ack);
        if self.payload_bytes >= self.total && self.completion_time.is_none() {
            self.completion_time = Some(ctx.now());
            let fct = self.first_arrival.map_or(Time::ZERO, |t| ctx.now() - t);
            ctx.complete(self.payload_bytes, fct);
            if let Some((comp, tok)) = self.notify {
                ctx.notify(comp, tok);
            }
        }
    }

    fn on_timer(&mut self, _token: u8, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Attach an MPTCP flow.
pub fn attach_mptcp_flow(
    world: &mut World<Packet>,
    flow: FlowId,
    src: (ComponentId, HostId),
    dst: (ComponentId, HostId),
    cfg: MptcpCfg,
    start: Time,
) {
    let notify = cfg.notify;
    let n_subflows = cfg.n_subflows;
    let total = cfg.size_bytes;
    let sender = MptcpSender::new(flow, dst.1, cfg);
    let mut receiver = MptcpReceiver::new(src.1, n_subflows, total);
    if let Some((comp, tok)) = notify {
        receiver = receiver.with_notify(comp, tok);
    }
    world
        .get_mut::<Host>(src.0)
        .add_endpoint(flow, Box::new(sender));
    world
        .get_mut::<Host>(dst.0)
        .add_endpoint(flow, Box::new(receiver));
    world.post_wake(start, src.0, flow << 8);
}

/// MPTCP's [`Transport`] adapter: 8 subflows on distinct paths, coupled
/// by the LIA increase, over the TCP drop-tail fabric.
pub struct MptcpTransport;

pub static MPTCP: MptcpTransport = MptcpTransport;

impl ndp_transport::Transport for MptcpTransport {
    fn label(&self) -> &'static str {
        "MPTCP"
    }

    fn fabric(&self) -> ndp_transport::QueueSpec {
        ndp_transport::QueueSpec::droptail_default()
    }

    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &ndp_transport::FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        _n_paths: u32,
        mtu: u32,
    ) {
        let mut cfg = MptcpCfg::new(spec.size);
        cfg.mtu = mtu;
        cfg.notify = spec.notify;
        attach_mptcp_flow(world, spec.flow, src, dst, cfg, spec.start);
    }

    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64 {
        world
            .get::<Host>(host)
            .endpoint::<MptcpReceiver>(flow)
            .payload_bytes
    }

    fn completion_time(
        &self,
        world: &World<Packet>,
        host: ComponentId,
        flow: FlowId,
    ) -> Option<Time> {
        world
            .get::<Host>(host)
            .endpoint::<MptcpReceiver>(flow)
            .completion_time
    }

    fn detach(
        &self,
        world: &mut World<Packet>,
        src_host: ComponentId,
        dst_host: ComponentId,
        flow: FlowId,
    ) -> ndp_transport::FlowHarvest {
        ndp_transport::detach_endpoints::<MptcpReceiver>(
            world,
            src_host,
            dst_host,
            flow,
            |tx, r| {
                let s = tx.get::<MptcpSender>();
                ndp_transport::FlowHarvest {
                    delivered_bytes: r.payload_bytes,
                    completion_time: r.completion_time,
                    first_data: r.first_arrival,
                    retransmissions: s.map_or(0, |s| s.stats.fast_retransmits + s.stats.timeouts),
                    timeouts: s.map_or(0, |s| s.stats.timeouts),
                    ..Default::default()
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_topology::{FatTree, FatTreeCfg, QueueSpec};

    #[test]
    fn mptcp_fills_a_fat_tree_path_bundle() {
        let mut w: World<Packet> = World::new(1);
        let cfg = FatTreeCfg::new(4).with_fabric(QueueSpec::droptail_default());
        let ft = FatTree::build(&mut w, cfg);
        let size = 20_000_000u64;
        attach_mptcp_flow(
            &mut w,
            1,
            (ft.hosts[0], 0),
            (ft.hosts[15], 15),
            MptcpCfg::new(size),
            Time::ZERO,
        );
        w.run_until(Time::from_ms(200));
        let rx = w.get::<Host>(ft.hosts[15]).endpoint::<MptcpReceiver>(1);
        assert_eq!(rx.payload_bytes, size);
        let tx = w.get::<Host>(ft.hosts[0]).endpoint::<MptcpSender>(1);
        let fct = tx.stats.fct().unwrap();
        let goodput = size as f64 * 8.0 / fct.as_secs() / 1e9;
        assert!(
            goodput > 7.0,
            "8 subflows should fill most of the 10G access link: {goodput:.2}"
        );
    }

    #[test]
    fn lia_alpha_is_one_for_identical_subflows() {
        let mut s = MptcpSender::new(1, 1, MptcpCfg::new(1_000_000));
        for sub in &mut s.subs {
            sub.cwnd = 100_000;
            sub.srtt = Some(Time::from_us(100));
        }
        let a = s.lia_alpha();
        // For n identical subflows, alpha = total*·(c/r²)/(n·c/r)² = 1/n·...
        // numerically: total=8c, best=c/r², denom=8c/r → a = 8c·c/r² / 64c²/r² = 1/8.
        assert!((a - 1.0 / 8.0).abs() < 1e-9, "alpha {a}");
    }

    #[test]
    fn coupled_increase_is_an_eighth_of_uncoupled_for_equal_subflows() {
        // LIA's defining property: with 8 identical healthy subflows, the
        // aggregate grows like ONE regular TCP, i.e. each subflow gets
        // roughly 1/8 of the uncoupled increment.
        let mss = 8936u64;
        let c = 100 * mss;
        let total = 8 * c;
        let alpha = 1.0 / 8.0; // from lia_alpha_is_one_for_identical_subflows
        let coupled = lia_increment(alpha, mss, mss, total, c);
        let uncoupled = lia_increment(1e9, mss, mss, c, c); // cap side
        assert_eq!(uncoupled, mss * mss / c);
        // coupled = (1/8)·mss²/(8c) = uncoupled/64 per subflow, so the
        // 8-subflow aggregate grows at uncoupled/8 — one TCP's worth.
        assert!(
            coupled * 8 <= uncoupled,
            "coupled {coupled} must be well below uncoupled {uncoupled}"
        );
        // Never zero: growth must not stall entirely.
        assert!(coupled >= 1);
    }
}
