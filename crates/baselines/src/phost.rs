//! pHost [16]: receiver-driven credits *without* packet trimming.
//!
//! §6.2 "Who needs packet trimming?": pHost sprays packets per-packet over
//! a drop-tail fabric with small buffers and bursts the first RTT at line
//! rate, like NDP — but when the first window is dropped wholesale (incast)
//! the receiver has no idea what was sent. Its only recovery signal is a
//! token timeout. The paper finds a 432:1 incast takes pHost 1–1.5 s vs
//! NDP's 140 ms, and permutation utilization is ~70 % vs 95 %.
//!
//! This implementation reuses the host pull-pacer as the token pacer
//! (both are receiver-paced credit schemes); the differences are all on
//! the loss-recovery side: no NACKs, no return-to-sender, timeout-driven
//! re-credits.

use std::any::Any;

use ndp_net::host::{Endpoint, EndpointCtx, PullPriority};
use ndp_net::packet::{Flags, FlowId, HostId, Packet, PacketKind, HEADER_BYTES};
use ndp_net::Host;
use ndp_sim::{ComponentId, Time, World};
use rand::Rng;

const TIMEOUT_TOKEN: u8 = 1;

/// pHost flow configuration.
#[derive(Clone, Debug)]
pub struct PHostCfg {
    pub size_bytes: u64,
    pub mtu: u32,
    /// First-RTT free window (line-rate burst).
    pub iw_pkts: u64,
    /// Receiver-side token timeout: re-issue credits if the flow stalls.
    pub token_timeout: Time,
    pub notify: Option<(ComponentId, u64)>,
}

impl PHostCfg {
    pub fn new(size_bytes: u64) -> PHostCfg {
        PHostCfg {
            size_bytes,
            mtu: 9000,
            iw_pkts: 30,
            token_timeout: Time::from_us(500),
            notify: None,
        }
    }

    pub fn payload_per_pkt(&self) -> u64 {
        (self.mtu - HEADER_BYTES) as u64
    }

    pub fn total_pkts(&self) -> u64 {
        self.size_bytes.div_ceil(self.payload_per_pkt()).max(1)
    }
}

/// pHost sender statistics.
#[derive(Clone, Debug, Default)]
pub struct PHostStats {
    pub start_time: Option<Time>,
    pub completion_time: Option<Time>,
    pub packets_sent: u64,
    pub retransmissions: u64,
}

/// The pHost sender.
pub struct PHostSender {
    flow: FlowId,
    dst: HostId,
    cfg: PHostCfg,
    total_pkts: u64,
    next_new: u64,
    acked: Vec<bool>,
    acked_count: u64,
    token_ctr: u64,
    scan: u64,
    done: bool,
    pub stats: PHostStats,
}

impl PHostSender {
    pub fn new(flow: FlowId, dst: HostId, cfg: PHostCfg) -> PHostSender {
        let total_pkts = cfg.total_pkts();
        PHostSender {
            flow,
            dst,
            cfg,
            total_pkts,
            next_new: 0,
            acked: vec![false; total_pkts as usize],
            acked_count: 0,
            token_ctr: 0,
            scan: 0,
            done: false,
            stats: PHostStats::default(),
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    fn wire_size(&self, seq: u64) -> u32 {
        let per = self.cfg.payload_per_pkt();
        let payload = self
            .cfg
            .size_bytes
            .saturating_sub(seq * per)
            .min(per)
            .max(1) as u32;
        payload + HEADER_BYTES
    }

    fn send_seq(&mut self, seq: u64, rtx: bool, ctx: &mut EndpointCtx<'_, '_>) {
        let mut pkt = Packet::data(ctx.host(), self.dst, self.flow, seq, self.wire_size(seq));
        // Per-packet spraying: random tag, reduced modulo fan-out in-switch.
        pkt.path = ctx.rng().gen();
        pkt.sent = ctx.now();
        if seq == self.total_pkts - 1 {
            pkt.flags = pkt.flags.with(Flags::FIN);
        }
        if rtx {
            pkt.flags = pkt.flags.with(Flags::RTX);
            self.stats.retransmissions += 1;
        }
        self.stats.packets_sent += 1;
        ctx.send(pkt);
    }

    /// Token-driven send: unsent data first, then round-robin over unacked.
    fn pump(&mut self, n: u64, ctx: &mut EndpointCtx<'_, '_>) {
        for _ in 0..n {
            if self.next_new < self.total_pkts {
                let seq = self.next_new;
                self.next_new += 1;
                self.send_seq(seq, false, ctx);
            } else if self.acked_count < self.total_pkts {
                // Resend the next unacked packet in scan order.
                for _ in 0..self.total_pkts {
                    let seq = self.scan % self.total_pkts;
                    self.scan += 1;
                    if !self.acked[seq as usize] {
                        self.send_seq(seq, true, ctx);
                        break;
                    }
                }
            }
        }
    }
}

impl Endpoint for PHostSender {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        self.stats.start_time = Some(ctx.now());
        let burst = self.cfg.iw_pkts.min(self.total_pkts);
        for _ in 0..burst {
            let seq = self.next_new;
            self.next_new += 1;
            self.send_seq(seq, false, ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        match pkt.kind {
            PacketKind::Ack => {
                let seq = u64::from(pkt.seq);
                if seq < self.total_pkts && !self.acked[seq as usize] {
                    self.acked[seq as usize] = true;
                    self.acked_count += 1;
                    if self.acked_count == self.total_pkts && !self.done {
                        self.done = true;
                        self.stats.completion_time = Some(ctx.now());
                    }
                }
            }
            PacketKind::Pull | PacketKind::Token if u64::from(pkt.ack) > self.token_ctr => {
                let n = u64::from(pkt.ack) - self.token_ctr;
                self.token_ctr = u64::from(pkt.ack);
                self.pump(n, ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _token: u8, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The pHost receiver: ACK per packet, token per arrival, timeout-driven
/// re-credits when the flow stalls.
pub struct PHostReceiver {
    peer: HostId,
    total: Option<u64>,
    received: Vec<bool>,
    received_count: u64,
    last_arrival: Time,
    token_timeout: Time,
    timer_armed: bool,
    done: bool,
    notify: Option<(ComponentId, u64)>,
    pub payload_bytes: u64,
    pub completion_time: Option<Time>,
    pub first_arrival: Option<Time>,
    pub timeout_credits: u64,
}

impl PHostReceiver {
    pub fn new(peer: HostId, token_timeout: Time) -> PHostReceiver {
        PHostReceiver {
            peer,
            total: None,
            received: Vec::new(),
            received_count: 0,
            last_arrival: Time::ZERO,
            token_timeout,
            timer_armed: false,
            done: false,
            notify: None,
            payload_bytes: 0,
            completion_time: None,
            first_arrival: None,
            timeout_credits: 0,
        }
    }

    pub fn with_notify(mut self, comp: ComponentId, token: u64) -> PHostReceiver {
        self.notify = Some((comp, token));
        self
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    fn mark(&mut self, seq: u64) -> bool {
        if self.received.len() <= seq as usize {
            self.received.resize(seq as usize + 1, false);
        }
        if self.received[seq as usize] {
            false
        } else {
            self.received[seq as usize] = true;
            self.received_count += 1;
            true
        }
    }

    fn arm_timer(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        if !self.timer_armed && !self.done {
            self.timer_armed = true;
            ctx.timer_in(self.token_timeout, TIMEOUT_TOKEN);
        }
    }
}

impl Endpoint for PHostReceiver {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        // pHost announces flows with an RTS control packet, so the receiver
        // can run its token timeout even if the *entire* first data window
        // is dropped (the common case in big incasts). We model the RTS by
        // starting the receiver's timeout clock at flow start.
        self.arm_timer(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind != PacketKind::Data || pkt.is_trimmed() {
            return;
        }
        if self.first_arrival.is_none() {
            self.first_arrival = Some(ctx.now());
        }
        self.last_arrival = ctx.now();
        if pkt.flags.has(Flags::FIN) {
            self.total = Some(u64::from(pkt.seq) + 1);
        }
        if self.mark(u64::from(pkt.seq)) {
            self.payload_bytes += pkt.payload as u64;
            ctx.account_delivered(pkt.payload as u64);
        }
        // Per-packet ACK.
        let mut ack = Packet::control(ctx.host(), self.peer, pkt.flow, PacketKind::Ack);
        ack.seq = pkt.seq;
        ack.path = ctx.rng().gen();
        ack.sent = pkt.sent;
        ctx.send(ack);
        if let Some(total) = self.total {
            if self.received_count >= total && !self.done {
                self.done = true;
                self.completion_time = Some(ctx.now());
                ctx.pull_cancel();
                let fct = self.first_arrival.map_or(Time::ZERO, |t| ctx.now() - t);
                ctx.complete(self.payload_bytes, fct);
                if let Some((comp, tok)) = self.notify {
                    ctx.notify(comp, tok);
                }
                return;
            }
        }
        ctx.pull_request(self.peer, PullPriority::Normal);
        self.arm_timer(ctx);
    }

    fn on_timer(&mut self, token: u8, ctx: &mut EndpointCtx<'_, '_>) {
        if token != TIMEOUT_TOKEN {
            return;
        }
        self.timer_armed = false;
        if self.done {
            return;
        }
        if ctx.now().saturating_sub(self.last_arrival) >= self.token_timeout {
            // The flow stalled: whatever tokens were out are presumed lost
            // along with their data. Issue a fresh batch of credits.
            let missing = match self.total {
                Some(t) => t - self.received_count,
                None => 8,
            };
            self.timeout_credits += 1;
            for _ in 0..missing.min(8) {
                ctx.pull_request(self.peer, PullPriority::Normal);
            }
        }
        self.arm_timer(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Attach a pHost flow (use a small drop-tail fabric).
pub fn attach_phost_flow(
    world: &mut World<Packet>,
    flow: FlowId,
    src: (ComponentId, HostId),
    dst: (ComponentId, HostId),
    cfg: PHostCfg,
    start: Time,
) {
    let notify = cfg.notify;
    let timeout = cfg.token_timeout;
    let sender = PHostSender::new(flow, dst.1, cfg);
    let mut receiver = PHostReceiver::new(src.1, timeout);
    if let Some((comp, tok)) = notify {
        receiver = receiver.with_notify(comp, tok);
    }
    world
        .get_mut::<Host>(src.0)
        .add_endpoint(flow, Box::new(sender));
    world
        .get_mut::<Host>(dst.0)
        .add_endpoint(flow, Box::new(receiver));
    world.post_wake(start, src.0, flow << 8);
    // Start the receiver's token-timeout clock (models pHost's RTS).
    world.post_wake(start, dst.0, flow << 8);
}

/// pHost's [`Transport`] adapter: receiver-driven credits *without* packet
/// trimming, over small drop-tail queues (§6.2).
pub struct PHostTransport;

pub static PHOST: PHostTransport = PHostTransport;

impl ndp_transport::Transport for PHostTransport {
    fn label(&self) -> &'static str {
        "pHost"
    }

    fn fabric(&self) -> ndp_transport::QueueSpec {
        ndp_transport::QueueSpec::phost_default()
    }

    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &ndp_transport::FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        _n_paths: u32,
        mtu: u32,
    ) {
        let mut cfg = PHostCfg::new(spec.size);
        cfg.mtu = mtu;
        cfg.notify = spec.notify;
        attach_phost_flow(world, spec.flow, src, dst, cfg, spec.start);
    }

    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64 {
        world
            .get::<Host>(host)
            .endpoint::<PHostReceiver>(flow)
            .payload_bytes
    }

    fn completion_time(
        &self,
        world: &World<Packet>,
        host: ComponentId,
        flow: FlowId,
    ) -> Option<Time> {
        world
            .get::<Host>(host)
            .endpoint::<PHostReceiver>(flow)
            .completion_time
    }

    fn detach(
        &self,
        world: &mut World<Packet>,
        src_host: ComponentId,
        dst_host: ComponentId,
        flow: FlowId,
    ) -> ndp_transport::FlowHarvest {
        ndp_transport::detach_endpoints::<PHostReceiver>(
            world,
            src_host,
            dst_host,
            flow,
            |tx, r| {
                let s = tx.get::<PHostSender>();
                ndp_transport::FlowHarvest {
                    delivered_bytes: r.payload_bytes,
                    completion_time: r.completion_time,
                    first_data: r.first_arrival,
                    retransmissions: s.map_or(0, |s| s.stats.retransmissions),
                    timeouts: r.timeout_credits,
                    ..Default::default()
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_sim::Speed;
    use ndp_topology::{QueueSpec, SingleBottleneck};

    #[test]
    fn clean_link_transfer_completes() {
        let mut w: World<Packet> = World::new(1);
        let sb = SingleBottleneck::build(
            &mut w,
            1,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::phost_default(),
        );
        let size = 5_000_000u64;
        attach_phost_flow(
            &mut w,
            1,
            (sb.senders[0], 0),
            (sb.receiver, 1),
            PHostCfg::new(size),
            Time::ZERO,
        );
        w.run_until(Time::from_ms(100));
        let rx = w.get::<Host>(sb.receiver).endpoint::<PHostReceiver>(1);
        assert_eq!(rx.payload_bytes, size);
        assert!(rx.is_done());
    }

    #[test]
    fn incast_recovers_only_via_timeouts_and_is_slow() {
        let mut w: World<Packet> = World::new(2);
        let n = 30usize;
        let sb = SingleBottleneck::build(
            &mut w,
            n,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::phost_default(),
        );
        let size = 30 * 8936u64;
        for s in 0..n as u64 {
            attach_phost_flow(
                &mut w,
                s + 1,
                (sb.senders[s as usize], s as u32),
                (sb.receiver, n as u32),
                PHostCfg::new(size),
                Time::ZERO,
            );
        }
        w.run_until(Time::from_secs(5));
        let mut last = Time::ZERO;
        let mut timeout_credits = 0;
        for s in 0..n as u64 {
            let rx = w.get::<Host>(sb.receiver).endpoint::<PHostReceiver>(s + 1);
            assert!(rx.is_done(), "flow {s} incomplete");
            last = last.max(rx.completion_time.unwrap());
            timeout_credits += rx.timeout_credits;
        }
        assert!(
            timeout_credits > 0,
            "incast must lose bursts and need timeout recovery"
        );
        // Ideal is ~6.5 ms (30 × 30 × 9 KB at 10 Gb/s); pHost pays at least
        // the initial token-timeout stall on top. The dramatic divergence
        // from NDP shows up at 432:1 scale (see the inline_phost
        // experiment); here we assert the qualitative signature: losses
        // recovered only by timeout, completion strictly above ideal.
        assert!(last > Time::from_ms(6), "pHost incast took {last}");
    }
}
