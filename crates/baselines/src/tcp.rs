//! TCP NewReno and DCTCP.
//!
//! A byte-sequence TCP in the style of htsim's: slow start, congestion
//! avoidance, duplicate-ACK fast retransmit with NewReno partial-ACK
//! recovery, exponential-backoff RTO with a configurable MinRTO (200 ms
//! Linux-like by default — the paper attributes TCP's terrible incast tail
//! exactly to this), and optional connection-establishment modelling
//! (three-way handshake vs TFO vs pre-established).
//!
//! DCTCP (Alizadeh et al. [4]) rides on the same machinery: data packets
//! are ECT, switches mark CE above threshold, the receiver echoes marks
//! per packet, and the sender maintains `alpha` with gain 1/16, cutting
//! `cwnd` by `alpha/2` once per window.

use std::any::Any;
use std::collections::BTreeMap;

use ndp_net::host::{Endpoint, EndpointCtx};
use ndp_net::packet::{Flags, FlowId, HostId, Packet, PacketKind, PathTag, HEADER_BYTES};
use ndp_net::Host;
use ndp_sim::{ComponentId, Time, World};

const RTO_TOKEN: u8 = 1;

/// Connection-establishment behaviour (Figure 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Handshake {
    /// Connection pre-established (the steady-state assumption used in all
    /// simulation figures).
    None,
    /// Classic SYN / SYN-ACK round trip before data.
    ThreeWay,
    /// TCP Fast Open: data rides on the SYN.
    Tfo,
}

/// TCP flow configuration.
#[derive(Clone, Debug)]
pub struct TcpCfg {
    pub size_bytes: u64,
    pub mtu: u32,
    /// Initial congestion window in segments (RFC 6928 default).
    pub init_cwnd_pkts: u32,
    pub min_rto: Time,
    pub handshake: Handshake,
    /// ECN-capable + DCTCP control law.
    pub dctcp: bool,
    /// DCTCP estimation gain.
    pub dctcp_g: f64,
    /// Fixed per-flow ECMP path tag (hash-equivalent: chosen randomly by
    /// the harness; collisions are the point of Fig 14).
    pub path: PathTag,
    pub notify: Option<(ComponentId, u64)>,
}

impl TcpCfg {
    pub fn new(size_bytes: u64) -> TcpCfg {
        TcpCfg {
            size_bytes,
            mtu: 9000,
            init_cwnd_pkts: 10,
            min_rto: Time::from_ms(200),
            handshake: Handshake::None,
            dctcp: false,
            dctcp_g: 1.0 / 16.0,
            path: 0,
            notify: None,
        }
    }

    pub fn dctcp(size_bytes: u64) -> TcpCfg {
        TcpCfg {
            dctcp: true,
            min_rto: Time::from_ms(10),
            ..TcpCfg::new(size_bytes)
        }
    }

    pub fn mss(&self) -> u64 {
        (self.mtu - HEADER_BYTES) as u64
    }
}

/// Sender-side statistics.
#[derive(Clone, Debug, Default)]
pub struct TcpStats {
    pub start_time: Option<Time>,
    pub completion_time: Option<Time>,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub packets_sent: u64,
    pub marks_echoed: u64,
    pub final_alpha: f64,
}

impl TcpStats {
    pub fn fct(&self) -> Option<Time> {
        Some(self.completion_time? - self.start_time?)
    }
}

enum State {
    Closed,
    SynSent,
    Established,
}

/// The TCP/DCTCP sender endpoint.
pub struct TcpSender {
    flow: FlowId,
    dst: HostId,
    cfg: TcpCfg,
    state: State,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: u64,
    ssthresh: u64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    srtt: Option<Time>,
    rttvar: Time,
    rto: Time,
    rto_armed: bool,
    backoff: u32,
    /// Send time of the oldest unacknowledged segment (RTO anchor).
    una_time: Time,
    // DCTCP state.
    alpha: f64,
    bytes_acked_win: u64,
    bytes_marked_win: u64,
    win_end: u64,
    cut_this_window: bool,
    done: bool,
    pub stats: TcpStats,
}

impl TcpSender {
    pub fn new(flow: FlowId, dst: HostId, cfg: TcpCfg) -> TcpSender {
        let mss = cfg.mss();
        let cwnd = cfg.init_cwnd_pkts as u64 * mss;
        let rto = cfg.min_rto;
        TcpSender {
            flow,
            dst,
            cfg,
            state: State::Closed,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh: u64::MAX / 2,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: Time::ZERO,
            rto,
            rto_armed: false,
            backoff: 1,
            una_time: Time::ZERO,
            alpha: 0.0,
            bytes_acked_win: 0,
            bytes_marked_win: 0,
            win_end: 0,
            cut_this_window: false,
            done: false,
            stats: TcpStats::default(),
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn mss(&self) -> u64 {
        self.cfg.mss()
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn send_segment(&mut self, seq: u64, ctx: &mut EndpointCtx<'_, '_>) {
        let payload = (self.cfg.size_bytes - seq).min(self.mss());
        let mut pkt = Packet::data(
            ctx.host(),
            self.dst,
            self.flow,
            seq,
            payload as u32 + HEADER_BYTES,
        );
        pkt.path = self.cfg.path;
        pkt.sent = ctx.now();
        if self.cfg.dctcp {
            pkt.flags = pkt.flags.with(Flags::ECT);
        }
        if seq + payload >= self.cfg.size_bytes {
            pkt.flags = pkt.flags.with(Flags::FIN);
        }
        self.stats.packets_sent += 1;
        if seq == self.snd_una {
            self.una_time = ctx.now();
        }
        ctx.send(pkt);
        self.arm_rto(ctx);
    }

    fn send_available(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        while self.snd_nxt < self.cfg.size_bytes && self.snd_nxt - self.snd_una < self.cwnd {
            let seq = self.snd_nxt;
            let payload = (self.cfg.size_bytes - seq).min(self.mss());
            self.snd_nxt += payload;
            self.send_segment(seq, ctx);
        }
    }

    fn arm_rto(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        if !self.rto_armed {
            self.rto_armed = true;
            ctx.timer_in(self.rto * self.backoff as u64, RTO_TOKEN);
        }
    }

    fn update_rtt(&mut self, sample: Time) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(s) => {
                let err = if sample > s { sample - s } else { s - sample };
                self.rttvar = Time::from_ps((3 * self.rttvar.as_ps() + err.as_ps()) / 4);
                self.srtt = Some(Time::from_ps((7 * s.as_ps() + sample.as_ps()) / 8));
            }
        }
        let candidate = self.srtt.unwrap() + self.rttvar * 4;
        self.rto = candidate.max(self.cfg.min_rto);
    }

    /// DCTCP per-window alpha update and proportional cut.
    fn dctcp_on_ack(&mut self, newly: u64, ece: bool) {
        self.bytes_acked_win += newly;
        if ece {
            self.bytes_marked_win += newly;
            self.stats.marks_echoed += 1;
        }
        if self.snd_una >= self.win_end {
            let f = if self.bytes_acked_win == 0 {
                0.0
            } else {
                self.bytes_marked_win as f64 / self.bytes_acked_win as f64
            };
            self.alpha = (1.0 - self.cfg.dctcp_g) * self.alpha + self.cfg.dctcp_g * f;
            self.stats.final_alpha = self.alpha;
            self.bytes_acked_win = 0;
            self.bytes_marked_win = 0;
            self.win_end = self.snd_nxt;
            self.cut_this_window = false;
        }
        if ece && !self.cut_this_window {
            self.cut_this_window = true;
            let cut = (self.cwnd as f64 * (1.0 - self.alpha / 2.0)) as u64;
            self.cwnd = cut.max(self.mss());
            self.ssthresh = self.cwnd;
        }
    }

    fn on_ack(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if matches!(self.state, State::SynSent) {
            // SYN-ACK: connection established, start pushing data.
            self.state = State::Established;
            self.update_rtt(ctx.now() - pkt.sent);
            self.send_available(ctx);
            return;
        }
        let ack = u64::from(pkt.ack);
        let ece = pkt.flags.has(Flags::CE);
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            self.una_time = ctx.now();
            self.dupacks = 0;
            self.backoff = 1;
            if pkt.sent > Time::ZERO {
                self.update_rtt(ctx.now() - pkt.sent);
            }
            if self.cfg.dctcp {
                self.dctcp_on_ack(newly, ece);
            } else if ece {
                // Classic ECN: halve once per window.
                if !self.cut_this_window {
                    self.cut_this_window = true;
                    self.win_end = self.snd_nxt;
                    self.ssthresh = (self.cwnd / 2).max(2 * self.mss());
                    self.cwnd = self.ssthresh;
                } else if self.snd_una >= self.win_end {
                    self.cut_this_window = false;
                }
            }
            if self.in_recovery {
                if ack >= self.recover {
                    // Full recovery.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: retransmit the next hole.
                    let seq = self.snd_una;
                    self.send_segment(seq, ctx);
                }
            } else if !ece || !self.cfg.dctcp {
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly.min(self.mss());
                } else {
                    self.cwnd += (self.mss() * self.mss() / self.cwnd).max(1);
                }
            } else {
                // DCTCP still grows outside mark events.
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly.min(self.mss());
                } else {
                    self.cwnd += (self.mss() * self.mss() / self.cwnd).max(1);
                }
            }
            if self.snd_una >= self.cfg.size_bytes && !self.done {
                self.done = true;
                self.stats.completion_time = Some(ctx.now());
                if let Some((comp, tok)) = self.cfg.notify {
                    ctx.notify(comp, tok);
                }
                return;
            }
            self.send_available(ctx);
        } else if ack == self.snd_una && self.flight() > 0 {
            self.dupacks += 1;
            if self.dupacks == 3 && !self.in_recovery {
                // Fast retransmit.
                self.stats.fast_retransmits += 1;
                self.ssthresh = (self.flight() / 2).max(2 * self.mss());
                self.cwnd = self.ssthresh + 3 * self.mss();
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                let seq = self.snd_una;
                self.send_segment(seq, ctx);
            } else if self.in_recovery {
                // Inflate during recovery to keep the pipe full.
                self.cwnd += self.mss();
                self.send_available(ctx);
            }
        }
    }
}

impl Endpoint for TcpSender {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        self.stats.start_time = Some(ctx.now());
        match self.cfg.handshake {
            Handshake::ThreeWay => {
                self.state = State::SynSent;
                let mut syn = Packet::control(ctx.host(), self.dst, self.flow, PacketKind::Data);
                syn.kind = PacketKind::Data;
                syn.size = HEADER_BYTES;
                syn.payload = 0;
                syn.flags = Flags::SYN;
                syn.path = self.cfg.path;
                syn.sent = ctx.now();
                ctx.send(syn);
                self.arm_rto(ctx);
            }
            Handshake::Tfo | Handshake::None => {
                self.state = State::Established;
                self.send_available(ctx);
            }
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind == PacketKind::Ack {
            self.on_ack(pkt, ctx);
        }
    }

    fn on_timer(&mut self, token: u8, ctx: &mut EndpointCtx<'_, '_>) {
        if token != RTO_TOKEN {
            return;
        }
        self.rto_armed = false;
        if self.done {
            return;
        }
        if matches!(self.state, State::SynSent) {
            // Retransmit the SYN.
            self.backoff = (self.backoff * 2).min(64);
            self.stats.timeouts += 1;
            let mut syn = Packet::control(ctx.host(), self.dst, self.flow, PacketKind::Data);
            syn.kind = PacketKind::Data;
            syn.size = HEADER_BYTES;
            syn.payload = 0;
            syn.flags = Flags::SYN;
            syn.path = self.cfg.path;
            syn.sent = ctx.now();
            ctx.send(syn);
            self.arm_rto(ctx);
            return;
        }
        if self.flight() == 0 {
            return;
        }
        // Timeout only if the oldest unacked segment has been out a full
        // RTO; otherwise re-arm for the remainder.
        let deadline = self.una_time + self.rto * self.backoff as u64;
        if ctx.now() < deadline {
            self.rto_armed = true;
            ctx.timer_in(deadline - ctx.now(), RTO_TOKEN);
            return;
        }
        self.stats.timeouts += 1;
        self.ssthresh = (self.flight() / 2).max(2 * self.mss());
        self.cwnd = self.mss();
        self.in_recovery = false;
        self.dupacks = 0;
        self.backoff = (self.backoff * 2).min(64);
        let seq = self.snd_una;
        self.send_segment(seq, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The TCP receiver: cumulative ACKs with out-of-order buffering and
/// per-packet DCTCP mark echo.
pub struct TcpReceiver {
    peer: HostId,
    path: PathTag,
    /// Highest contiguous byte received.
    rcv_nxt: u64,
    /// Out-of-order segments: start -> end.
    ooo: BTreeMap<u64, u64>,
    total: Option<u64>,
    handshake_done: bool,
    pub payload_bytes: u64,
    pub completion_time: Option<Time>,
    pub first_arrival: Option<Time>,
    notify: Option<(ComponentId, u64)>,
}

impl TcpReceiver {
    pub fn new(peer: HostId, path: PathTag) -> TcpReceiver {
        TcpReceiver {
            peer,
            path,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            total: None,
            handshake_done: false,
            payload_bytes: 0,
            completion_time: None,
            first_arrival: None,
            notify: None,
        }
    }

    pub fn with_notify(mut self, comp: ComponentId, token: u64) -> TcpReceiver {
        self.notify = Some((comp, token));
        self
    }

    pub fn is_done(&self) -> bool {
        self.completion_time.is_some()
    }

    fn absorb(&mut self, start: u64, end: u64) {
        if end <= self.rcv_nxt {
            return;
        }
        let start = start.max(self.rcv_nxt);
        self.ooo
            .insert(start, self.ooo.get(&start).copied().unwrap_or(0).max(end));
        // Advance rcv_nxt over any now-contiguous segments.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.ooo.pop_first();
                if e > self.rcv_nxt {
                    self.rcv_nxt = e;
                }
            } else {
                break;
            }
        }
    }

    fn send_ack(&mut self, data: &Packet, ctx: &mut EndpointCtx<'_, '_>) {
        let mut ack = Packet::control(ctx.host(), self.peer, data.flow, PacketKind::Ack);
        ack.ack = Packet::ack32(self.rcv_nxt);
        ack.seq = data.seq;
        ack.subflow = data.subflow;
        ack.path = self.path;
        ack.sent = data.sent;
        if data.flags.has(Flags::CE) {
            // DCTCP-style precise echo.
            ack.flags = ack.flags.with(Flags::CE);
        }
        ctx.send(ack);
    }
}

impl Endpoint for TcpReceiver {
    fn on_start(&mut self, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind != PacketKind::Data {
            return;
        }
        if self.first_arrival.is_none() {
            self.first_arrival = Some(ctx.now());
        }
        if pkt.flags.has(Flags::SYN) && pkt.payload == 0 {
            // Bare SYN of a three-way handshake: reply SYN-ACK.
            if !self.handshake_done {
                self.handshake_done = true;
            }
            let mut synack = Packet::control(ctx.host(), self.peer, pkt.flow, PacketKind::Ack);
            synack.flags = Flags::SYN;
            synack.path = self.path;
            synack.sent = pkt.sent;
            ctx.send(synack);
            return;
        }
        let start = u64::from(pkt.seq);
        let end = start + pkt.payload as u64;
        let before = self.rcv_nxt;
        self.absorb(start, end);
        if self.rcv_nxt > before {
            let delivered = self.rcv_nxt - before;
            self.payload_bytes += delivered;
            ctx.account_delivered(delivered);
        }
        if pkt.flags.has(Flags::FIN) {
            self.total = Some(end);
        }
        self.send_ack(&pkt, ctx);
        if let Some(total) = self.total {
            if self.rcv_nxt >= total && self.completion_time.is_none() {
                self.completion_time = Some(ctx.now());
                let fct = self.first_arrival.map_or(Time::ZERO, |t| ctx.now() - t);
                ctx.complete(self.payload_bytes, fct);
                if let Some((comp, tok)) = self.notify {
                    ctx.notify(comp, tok);
                }
            }
        }
    }

    fn on_timer(&mut self, _token: u8, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Attach a TCP (or DCTCP) flow between two hosts.
#[allow(clippy::too_many_arguments)]
pub fn attach_tcp_flow(
    world: &mut World<Packet>,
    flow: FlowId,
    src: (ComponentId, HostId),
    dst: (ComponentId, HostId),
    cfg: TcpCfg,
    start: Time,
) {
    let path = cfg.path;
    let notify = cfg.notify;
    let sender = TcpSender::new(flow, dst.1, cfg);
    let mut receiver = TcpReceiver::new(src.1, path);
    if let Some((comp, tok)) = notify {
        receiver = receiver.with_notify(comp, tok);
    }
    world
        .get_mut::<Host>(src.0)
        .add_endpoint(flow, Box::new(sender));
    world
        .get_mut::<Host>(dst.0)
        .add_endpoint(flow, Box::new(receiver));
    world.post_wake(start, src.0, flow << 8);
}

/// TCP's [`Transport`] adapter; DCTCP is the same adapter with the ECN
/// control law (and its marking fabric) switched on.
pub struct TcpTransport {
    pub dctcp: bool,
}

/// TCP NewReno over 200-packet drop-tail queues.
pub static TCP: TcpTransport = TcpTransport { dctcp: false };

/// DCTCP over 200-packet queues with a 30-packet marking threshold.
pub static DCTCP: TcpTransport = TcpTransport { dctcp: true };

impl ndp_transport::Transport for TcpTransport {
    fn label(&self) -> &'static str {
        if self.dctcp {
            "DCTCP"
        } else {
            "TCP"
        }
    }

    fn fabric(&self) -> ndp_transport::QueueSpec {
        if self.dctcp {
            ndp_transport::QueueSpec::dctcp_default()
        } else {
            ndp_transport::QueueSpec::droptail_default()
        }
    }

    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &ndp_transport::FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        _n_paths: u32,
        mtu: u32,
    ) {
        let mut cfg = if self.dctcp {
            TcpCfg::dctcp(spec.size)
        } else {
            TcpCfg::new(spec.size)
        };
        cfg.mtu = mtu;
        cfg.path = ndp_transport::flow_hash_path(spec.flow);
        cfg.notify = spec.notify;
        attach_tcp_flow(world, spec.flow, src, dst, cfg, spec.start);
    }

    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64 {
        world
            .get::<Host>(host)
            .endpoint::<TcpReceiver>(flow)
            .payload_bytes
    }

    fn completion_time(
        &self,
        world: &World<Packet>,
        host: ComponentId,
        flow: FlowId,
    ) -> Option<Time> {
        world
            .get::<Host>(host)
            .endpoint::<TcpReceiver>(flow)
            .completion_time
    }

    fn detach(
        &self,
        world: &mut World<Packet>,
        src_host: ComponentId,
        dst_host: ComponentId,
        flow: FlowId,
    ) -> ndp_transport::FlowHarvest {
        ndp_transport::detach_endpoints::<TcpReceiver>(world, src_host, dst_host, flow, |tx, r| {
            let s = tx.get::<TcpSender>();
            ndp_transport::FlowHarvest {
                delivered_bytes: r.payload_bytes,
                completion_time: r.completion_time,
                first_data: r.first_arrival,
                retransmissions: s.map_or(0, |s| s.stats.fast_retransmits + s.stats.timeouts),
                timeouts: s.map_or(0, |s| s.stats.timeouts),
                ..Default::default()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_net::host::HostLatency;
    use ndp_sim::Speed;
    use ndp_topology::{BackToBack, QueueSpec, SingleBottleneck};

    fn b2b(seed: u64, fabric: QueueSpec) -> (World<Packet>, BackToBack) {
        let mut w: World<Packet> = World::new(seed);
        let b = BackToBack::build(
            &mut w,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            fabric,
            HostLatency::default(),
        );
        (w, b)
    }

    fn tcp_stats(w: &World<Packet>, host: ndp_sim::ComponentId, flow: FlowId) -> TcpStats {
        w.get::<Host>(host)
            .endpoint::<TcpSender>(flow)
            .stats
            .clone()
    }

    #[test]
    fn transfer_completes_and_delivers_exact_bytes() {
        let (mut w, b) = b2b(1, QueueSpec::droptail_default());
        let size = 5_000_000u64;
        attach_tcp_flow(
            &mut w,
            1,
            (b.hosts[0], 0),
            (b.hosts[1], 1),
            TcpCfg::new(size),
            Time::ZERO,
        );
        w.run_until(Time::from_ms(200));
        let rx = w.get::<Host>(b.hosts[1]).endpoint::<TcpReceiver>(1);
        assert_eq!(rx.payload_bytes, size);
        assert!(rx.completion_time.is_some());
        let tx = tcp_stats(&w, b.hosts[0], 1);
        assert_eq!(tx.timeouts, 0, "clean link should not time out");
        assert!(tx.completion_time.is_some());
    }

    #[test]
    fn slow_start_doubles_then_fills_pipe() {
        let (mut w, b) = b2b(2, QueueSpec::droptail_default());
        let size = 20_000_000u64;
        attach_tcp_flow(
            &mut w,
            1,
            (b.hosts[0], 0),
            (b.hosts[1], 1),
            TcpCfg::new(size),
            Time::ZERO,
        );
        w.run_until(Time::from_ms(200));
        let tx = tcp_stats(&w, b.hosts[0], 1);
        let fct = tx.fct().unwrap();
        let goodput = size as f64 * 8.0 / fct.as_secs() / 1e9;
        assert!(
            goodput > 8.5,
            "long flow should approach line rate, got {goodput:.2}"
        );
    }

    #[test]
    fn three_way_handshake_adds_an_rtt() {
        let run = |hs: Handshake| {
            let (mut w, b) = b2b(3, QueueSpec::droptail_default());
            let cfg = TcpCfg {
                handshake: hs,
                ..TcpCfg::new(100_000)
            };
            attach_tcp_flow(&mut w, 1, (b.hosts[0], 0), (b.hosts[1], 1), cfg, Time::ZERO);
            w.run_until(Time::from_ms(200));
            tcp_stats(&w, b.hosts[0], 1).fct().unwrap()
        };
        let plain = run(Handshake::None);
        let tfo = run(Handshake::Tfo);
        let full = run(Handshake::ThreeWay);
        assert_eq!(
            plain, tfo,
            "TFO == no-handshake when connection data fits the IW"
        );
        assert!(full > plain, "3WHS must cost extra");
        // The extra cost is about one RTT (2 us propagation + header tx).
        assert!(full - plain < Time::from_us(10));
    }

    #[test]
    fn fast_retransmit_recovers_mid_window_loss_without_rto() {
        // Random single-packet losses inside a streaming window leave
        // plenty of later packets to generate dup-ACKs, so NewReno must
        // recover via fast retransmit, far quicker than the RTO. (Burst-
        // tail losses, by contrast, can only be recovered by the RTO —
        // exactly the paper's complaint about short flows.)
        use ndp_net::pipe::Pipe;
        use ndp_net::queue::{LinkClass, Queue};
        let mut w: World<Packet> = World::new(4);
        let h0 = w.reserve();
        let h1 = w.reserve();
        let speed = Speed::gbps(10);
        // Data path drops ~0.3% of packets (corruption); ACK path is clean.
        let p01 = w.add(Pipe::new(Time::from_us(1), h1).with_corruption(0.003));
        let nic0 = w.add(Queue::new(
            speed,
            p01,
            LinkClass::HostNic,
            QueueSpec::droptail_default().build_host_nic(9000),
        ));
        let p10 = w.add(Pipe::new(Time::from_us(1), h0));
        let nic1 = w.add(Queue::new(
            speed,
            p10,
            LinkClass::HostNic,
            QueueSpec::droptail_default().build_host_nic(9000),
        ));
        w.install(h0, Host::new(0, nic0, speed, 9000));
        w.install(h1, Host::new(1, nic1, speed, 9000));
        let size = 20_000_000u64;
        let cfg = TcpCfg {
            min_rto: Time::from_ms(10),
            ..TcpCfg::new(size)
        };
        attach_tcp_flow(&mut w, 1, (h0, 0), (h1, 1), cfg, Time::ZERO);
        w.run_until(Time::from_secs(20));
        let tx = tcp_stats(&w, h0, 1);
        assert!(tx.completion_time.is_some(), "long flow incomplete");
        assert!(
            tx.fast_retransmits > 0,
            "mid-window loss must trigger fast retransmit"
        );
        // ~6-7 losses over 2239 packets, each recovered in about an RTT:
        // total time stays near the ideal 16 ms, far from RTO territory.
        assert!(
            tx.fct().unwrap() < Time::from_ms(100),
            "fct {}",
            tx.fct().unwrap()
        );
        let rx = w.get::<Host>(h1).endpoint::<TcpReceiver>(1);
        assert_eq!(rx.payload_bytes, size);
    }

    #[test]
    fn dctcp_keeps_queue_near_threshold_and_avoids_loss() {
        let mut w: World<Packet> = World::new(5);
        let sb = SingleBottleneck::build(
            &mut w,
            2,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::dctcp_default(),
        );
        let size = 10_000_000u64;
        for s in 0..2 {
            attach_tcp_flow(
                &mut w,
                s + 1,
                (sb.senders[s as usize], s as u32),
                (sb.receiver, 2),
                TcpCfg::dctcp(size),
                Time::ZERO,
            );
        }
        w.run_until(Time::from_secs(1));
        for s in 0..2u64 {
            let tx = tcp_stats(&w, sb.senders[s as usize], s + 1);
            assert!(tx.completion_time.is_some());
            assert!(
                tx.marks_echoed > 0,
                "DCTCP should see marks under congestion"
            );
        }
        let q = w.get::<ndp_net::queue::Queue>(sb.bottleneck);
        assert_eq!(
            q.stats.dropped_data, 0,
            "DCTCP should avoid loss in a 200-pkt queue"
        );
        // Queue stays well below the 200-packet cap thanks to marking.
        assert!(
            q.stats.max_occupancy_bytes < 100 * 9000,
            "occupancy {} too high",
            q.stats.max_occupancy_bytes
        );
    }

    #[test]
    fn incast_with_200ms_minrto_hits_timeouts() {
        let mut w: World<Packet> = World::new(6);
        let n = 20usize;
        let sb = SingleBottleneck::build(
            &mut w,
            n,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::DropTail {
                cap_pkts: 20,
                ecn_thresh_pkts: None,
            },
        );
        let size = 450_000u64;
        for s in 0..n as u64 {
            attach_tcp_flow(
                &mut w,
                s + 1,
                (sb.senders[s as usize], s as u32),
                (sb.receiver, n as u32),
                TcpCfg::new(size),
                Time::ZERO,
            );
        }
        w.run_until(Time::from_secs(10));
        let mut timeouts = 0;
        let mut last = Time::ZERO;
        for s in 0..n as u64 {
            let tx = tcp_stats(&w, sb.senders[s as usize], s + 1);
            assert!(tx.completion_time.is_some(), "flow {s} incomplete");
            timeouts += tx.timeouts;
            last = last.max(tx.completion_time.unwrap());
        }
        assert!(timeouts > 0, "synchronized incast losses should cause RTOs");
        // The 200ms MinRTO pushes the tail far beyond the ideal ~7ms.
        assert!(
            last > Time::from_ms(100),
            "tail should be RTO-dominated, got {last}"
        );
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut r = TcpReceiver::new(0, 0);
        r.absorb(8936, 17872);
        assert_eq!(r.rcv_nxt, 0);
        r.absorb(0, 8936);
        assert_eq!(r.rcv_nxt, 17872);
        r.absorb(26808, 35744);
        r.absorb(17872, 26808);
        assert_eq!(r.rcv_nxt, 35744);
        // Duplicate and overlapping segments are harmless.
        r.absorb(0, 8936);
        r.absorb(30000, 35744);
        assert_eq!(r.rcv_nxt, 35744);
    }
}
