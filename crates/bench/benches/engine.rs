//! Raw engine throughput: events/sec on the k=8 NDP permutation workload,
//! for the two-tier scheduler (default) and the classic binary-heap
//! reference. `cargo bench --bench engine` prints both; the ratio is the
//! scheduler refactor's speedup and is recorded in BENCH_engine.json.

use criterion::{criterion_group, criterion_main, Criterion};
use ndp_experiments::harness::{permutation_run, Proto};
use ndp_experiments::topo::TopoSpec;
use ndp_sim::{set_default_scheduler, SchedulerKind, Time};
use ndp_topology::FatTreeCfg;

fn bench_engine_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(1);
    g.measurement_time(std::time::Duration::from_secs(10));
    for kind in [SchedulerKind::TwoTier, SchedulerKind::Classic] {
        g.bench_function(&format!("permutation_k8/{}", kind.label()), |b| {
            set_default_scheduler(kind);
            b.iter(|| {
                let r = permutation_run(
                    Proto::Ndp,
                    TopoSpec::fattree(FatTreeCfg::new(8)),
                    Time::from_ms(2),
                    7,
                    None,
                );
                criterion::black_box(r.utilization)
            });
            set_default_scheduler(SchedulerKind::TwoTier);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_schedulers);
criterion_main!(benches);
