//! Raw engine throughput on the three BENCH_engine.json workloads —
//! steady permutation, large incast, open-loop dynamic traffic — each in
//! its default fused-hop wiring and the seed's explicit-`Pipe` reference.
//! The fused/unfused wall-time ratio (at bit-identical protocol behaviour)
//! is the hop-fusion speedup; `engine_json` turns the same measurements
//! into the committed effective-events/sec suite. The permutation workload
//! additionally runs on the classic binary-heap scheduler so the original
//! scheduler-refactor ratio stays observable.

use criterion::{criterion_group, criterion_main, Criterion};
use ndp_experiments::harness::{incast_run, permutation_run, Proto};
use ndp_experiments::openloop::{openloop_run, DistKind};
use ndp_experiments::sweep::OpenLoopPoint;
use ndp_experiments::topo::TopoSpec;
use ndp_sim::{set_default_scheduler, SchedulerKind, Time};
use ndp_topology::{FatTreeCfg, LeafSpineCfg};

fn permutation_k8(fused: bool) -> u64 {
    let cfg = if fused {
        FatTreeCfg::new(8)
    } else {
        FatTreeCfg::new(8).unfused()
    };
    permutation_run(
        Proto::Ndp,
        TopoSpec::fattree(cfg),
        Time::from_ms(2),
        7,
        None,
    )
    .events_processed
}

fn incast_432(fused: bool) -> u64 {
    let cfg = if fused {
        FatTreeCfg::new(12)
    } else {
        FatTreeCfg::new(12).unfused()
    };
    incast_run(
        Proto::Ndp,
        TopoSpec::fattree(cfg),
        431,
        450_000,
        None,
        7,
        Time::from_ms(500),
    )
    .events_processed
}

fn openloop_websearch_60(fused: bool) -> u64 {
    let cfg = if fused {
        LeafSpineCfg::new(8, 4, 4)
    } else {
        LeafSpineCfg::new(8, 4, 4).unfused()
    };
    openloop_run(OpenLoopPoint {
        proto: Proto::Ndp,
        topo: TopoSpec::leafspine(cfg),
        dist: DistKind::WebSearch,
        load: 0.6,
        seed: 7,
        warmup: Time::from_ms(2),
        measure: Time::from_ms(20),
        drain: Time::from_ms(20),
    })
    .events_processed
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(1);
    g.measurement_time(std::time::Duration::from_secs(10));
    type WorkloadFn = fn(bool) -> u64;
    let workloads: [(&str, WorkloadFn); 3] = [
        ("permutation_k8", permutation_k8),
        ("incast_432", incast_432),
        ("openloop_websearch_60", openloop_websearch_60),
    ];
    for (name, run) in workloads {
        for fused in [true, false] {
            let wiring = if fused { "fused" } else { "unfused" };
            g.bench_function(&format!("{name}/{wiring}"), |b| {
                b.iter(|| criterion::black_box(run(fused)))
            });
        }
    }
    // The original scheduler A/B, kept on the cheapest workload.
    g.bench_function("permutation_k8/classic-sched", |b| {
        set_default_scheduler(SchedulerKind::Classic);
        b.iter(|| criterion::black_box(permutation_k8(true)));
        set_default_scheduler(SchedulerKind::TwoTier);
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
