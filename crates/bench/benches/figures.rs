//! Criterion benches: one per paper figure/table, each regenerating the
//! figure at `Scale::Quick`. `cargo bench --workspace` therefore re-runs
//! the entire evaluation; per-figure wall time also tracks simulator
//! performance regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use ndp_experiments as ex;
use ndp_experiments::Scale;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    // Each experiment is a full simulation campaign: Criterion's minimum
    // of 10 samples is plenty, and one second of measurement avoids extra
    // iterations of multi-second campaigns.
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(1));

    macro_rules! fig {
        ($name:literal, $module:ident) => {
            g.bench_function($name, |b| {
                b.iter(|| {
                    let rep = ex::$module::run(Scale::Quick);
                    criterion::black_box(rep.headline())
                })
            });
        };
    }

    // Every figure has a regenerating binary in ndp-experiments; the
    // multi-protocol campaigns (fig08/09/13/14/15/16/19/23, full inline
    // results) take minutes each even at quick scale, so the timed bench
    // set covers the single-protocol figures plus the heaviest NDP-only
    // campaign — enough to track simulator performance regressions across
    // every subsystem (engine, switches, topologies, transports).
    fig!("fig02_cp_collapse", fig02_cp_collapse);
    fig!("fig04_latency_cdf", fig04_latency_cdf);
    fig!("fig10_prioritization", fig10_prioritization);
    fig!("fig11_iw_throughput", fig11_iw_throughput);
    fig!("fig12_pull_spacing", fig12_pull_spacing);
    fig!("fig17_iw_buffer_sweep", fig17_iw_buffer_sweep);
    fig!("fig20_large_incast", fig20_large_incast);
    fig!("fig21_sender_limited", fig21_sender_limited);
    fig!("fig22_failure", fig22_failure);

    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    // Raw simulator throughput: a 10 MB NDP transfer end to end.
    c.bench_function("engine/two_host_10MB", |b| {
        b.iter(|| criterion::black_box(ex::quick::two_host_transfer(10_000_000).fct))
    });
}

criterion_group!(benches, bench_figures, bench_engine);
criterion_main!(benches);
