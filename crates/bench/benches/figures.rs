//! Criterion benches over the experiment registry: each timed bench
//! resolves its experiment by id from `ndp_experiments::registry` and
//! regenerates it at `Scale::Quick`, so the bench surface tracks the same
//! registry the `ndp` CLI serves and new experiments can be timed by
//! adding their id to `TIMED`.

use criterion::{criterion_group, criterion_main, Criterion};
use ndp_experiments::registry;
use ndp_experiments::Scale;

/// The timed subset: the multi-protocol campaigns (fig08/09/13/14/15/16/
/// 19/23, full inline results) take minutes each even at quick scale, so
/// the timed set covers the single-protocol figures plus the heaviest
/// NDP-only campaign — enough to track simulator performance regressions
/// across every subsystem (engine, switches, topologies, transports).
const TIMED: &[&str] = &[
    "fig02", "fig04", "fig10", "fig11", "fig12", "fig17", "fig20", "fig21", "fig22",
];

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    // Each experiment is a full simulation campaign: Criterion's minimum
    // of 10 samples is plenty, and one second of measurement avoids extra
    // iterations of multi-second campaigns.
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(1));

    for id in TIMED {
        let exp = registry::find(id).expect("timed bench id must be registered");
        g.bench_function(exp.id(), |b| {
            b.iter(|| criterion::black_box(exp.run(Scale::Quick, None).headline()))
        });
    }

    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    // Raw simulator throughput: a 10 MB NDP transfer end to end.
    c.bench_function("engine/two_host_10MB", |b| {
        b.iter(|| criterion::black_box(ndp_experiments::quick::two_host_transfer(10_000_000).fct))
    });
}

criterion_group!(benches, bench_figures, bench_engine);
criterion_main!(benches);
