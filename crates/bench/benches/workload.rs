//! Open-loop runner throughput: wall-clock cost of one quick-scale
//! dynamic-traffic point (NDP, web-search sizes, 30 % load, k=4).
//! `cargo bench --bench workload`; `workload_json` records the same
//! point's flows/sec and events/sec in BENCH_workload.json.

use criterion::{criterion_group, criterion_main, Criterion};
use ndp_experiments::openloop::{openloop_run, DistKind};
use ndp_experiments::sweep::OpenLoopPoint;
use ndp_experiments::topo::TopoSpec;
use ndp_experiments::Proto;
use ndp_sim::Time;
use ndp_topology::FatTreeCfg;

/// The fixed quick-scale point both the bench and BENCH_workload.json use.
fn bench_point() -> OpenLoopPoint {
    OpenLoopPoint {
        proto: Proto::Ndp,
        topo: TopoSpec::fattree(FatTreeCfg::new(4)),
        dist: DistKind::WebSearch,
        load: 0.3,
        seed: 7,
        warmup: Time::from_ms(1),
        measure: Time::from_ms(10),
        drain: Time::from_ms(10),
    }
}

fn bench_openloop(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    g.bench_function("openloop_ndp_websearch_k4_load30", |b| {
        b.iter(|| {
            let r = openloop_run(bench_point());
            assert!(r.measured > 0, "degenerate bench point");
            criterion::black_box(r.events_processed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_openloop);
criterion_main!(benches);
