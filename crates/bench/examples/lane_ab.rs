//! Interleaved lanes-on/lanes-off wall-time A/B on the perf-suite
//! workloads. Alternating configurations within one process cancels the
//! ambient-load drift that makes back-to-back whole-suite runs
//! incomparable on a busy box:
//!
//! ```sh
//! cargo run --release -p ndp-bench --example lane_ab
//! ```
//!
//! Results are bit-identical either way (pinned by the lane A/B proptests);
//! only the wall time differs. Ratios > 1.0 mean the delay lanes win.

use ndp_experiments::harness::{incast_run, permutation_run, Proto};
use ndp_experiments::openloop::{openloop_run, DistKind};
use ndp_experiments::sweep::OpenLoopPoint;
use ndp_experiments::topo::TopoSpec;
use ndp_sim::{set_default_lanes, Time};
use ndp_topology::{FatTreeCfg, LeafSpineCfg};
use std::time::Instant;

fn ab(name: &str, rounds: usize, mut work: impl FnMut()) {
    let mut best = [f64::INFINITY; 2]; // [lanes off, lanes on]
    for _ in 0..rounds {
        for lanes in [false, true] {
            set_default_lanes(lanes);
            let start = Instant::now();
            work();
            let s = start.elapsed().as_secs_f64();
            best[lanes as usize] = best[lanes as usize].min(s);
        }
    }
    set_default_lanes(true);
    println!(
        "{name}: best off={:.4}s on={:.4}s speedup={:.3}x",
        best[0],
        best[1],
        best[0] / best[1]
    );
}

fn main() {
    ab("permutation_k8", 10, || {
        let r = permutation_run(
            Proto::Ndp,
            TopoSpec::fattree(FatTreeCfg::new(8)),
            Time::from_ms(2),
            7,
            None,
        );
        assert!(r.utilization > 0.5);
    });
    ab("incast_432", 6, || {
        let r = incast_run(
            Proto::Ndp,
            TopoSpec::fattree(FatTreeCfg::new(12)),
            431,
            450_000,
            None,
            7,
            Time::from_ms(500),
        );
        assert_eq!(r.incomplete, 0);
    });
    ab("openloop_websearch_60", 6, || {
        let r = openloop_run(OpenLoopPoint {
            proto: Proto::Ndp,
            topo: TopoSpec::leafspine(LeafSpineCfg::new(8, 4, 4)),
            dist: DistKind::WebSearch,
            load: 0.6,
            seed: 7,
            warmup: Time::from_ms(2),
            measure: Time::from_ms(20),
            drain: Time::from_ms(20),
        });
        assert!(r.measured > 0);
    });
}
