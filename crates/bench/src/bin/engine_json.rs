//! Regenerate `BENCH_engine.json`: events/sec of the k=8 NDP permutation
//! workload under the classic (binary heap) and two-tier (wheel + fast
//! lane) schedulers, plus the speedup ratio.
//!
//! Usage: `cargo run --release -p ndp-bench --bin engine_json [reps]`
//! from the repository root; writes `BENCH_engine.json` to the current
//! directory. The best of `reps` runs (default 3) is reported per
//! scheduler to filter scheduling noise.

use ndp_experiments::harness::{permutation_run, Proto};
use ndp_experiments::topo::TopoSpec;
use ndp_sim::{set_default_scheduler, SchedulerKind, Time};
use ndp_topology::FatTreeCfg;
use std::time::Instant;

struct Measurement {
    events: u64,
    best_secs: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.best_secs
    }
}

fn measure(kind: SchedulerKind, reps: usize) -> Measurement {
    set_default_scheduler(kind);
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let r = permutation_run(
            Proto::Ndp,
            TopoSpec::fattree(FatTreeCfg::new(8)),
            Time::from_ms(2),
            7,
            None,
        );
        let secs = start.elapsed().as_secs_f64();
        assert!(
            r.utilization > 0.5,
            "degenerate workload (util {:.2})",
            r.utilization
        );
        events = r.events_processed;
        best = best.min(secs);
    }
    set_default_scheduler(SchedulerKind::TwoTier);
    Measurement {
        events,
        best_secs: best,
    }
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    eprintln!("measuring classic scheduler ({reps} reps)...");
    let classic = measure(SchedulerKind::Classic, reps);
    eprintln!("measuring two-tier scheduler ({reps} reps)...");
    let two_tier = measure(SchedulerKind::TwoTier, reps);
    assert_eq!(
        classic.events, two_tier.events,
        "schedulers must process identical event counts for a fixed seed"
    );
    let json = format!(
        "{{\n  \"workload\": \"NDP permutation, k=8 FatTree (128 hosts), 2 ms simulated, seed 7\",\n  \
           \"events\": {},\n  \
           \"classic\": {{ \"secs\": {:.4}, \"events_per_sec\": {:.0} }},\n  \
           \"two_tier\": {{ \"secs\": {:.4}, \"events_per_sec\": {:.0} }},\n  \
           \"speedup\": {:.3}\n}}\n",
        classic.events,
        classic.best_secs,
        classic.events_per_sec(),
        two_tier.best_secs,
        two_tier.events_per_sec(),
        two_tier.events_per_sec() / classic.events_per_sec(),
    );
    print!("{json}");
    std::fs::write("BENCH_engine.json", json).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json");
}
