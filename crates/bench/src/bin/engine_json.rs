//! Regenerate (or gate on) `BENCH_engine.json`: the hot-path engine suite.
//!
//! Three workloads with very different event mixes — steady long-flow
//! permutation, a trim-heavy large incast, and dynamic open-loop traffic —
//! each measured as *effective* events/sec: the unfused reference event
//! count (explicit `Pipe` per link, the seed's wiring) divided by the wall
//! time of the fused-hop run that produces bit-identical results. That
//! credits hop fusion for the events it makes unnecessary while staying
//! comparable with the committed pre-fusion events/sec trajectory.
//!
//! Usage (from the repository root):
//!
//! ```sh
//! cargo run --release -p ndp-bench --bin engine_json [reps]      # regenerate
//! cargo run --release -p ndp-bench --bin engine_json -- --check  # CI perf gate
//! ```
//!
//! `--check` re-measures the suite and exits non-zero if the geometric-mean
//! events/sec regressed more than 10% below the committed
//! `BENCH_engine.json`; commits tagged `[skip-perf-gate]` bypass it in CI.
//! It also prints a per-workload delta table against the committed file and,
//! when `GITHUB_STEP_SUMMARY` is set (as in CI), appends the same table as
//! markdown to the job summary. The best of `reps` runs (default 3) is
//! reported per workload to filter scheduling noise.
//!
//! Alongside the three end-to-end workloads the suite tracks a
//! **scheduler-only post/pop kernel** (`sched_post_pop`): raw engine posts at
//! hot, granule-aligned, overflow and zero delays with a no-op component, so
//! scheduler regressions are visible even when protocol work masks them.
//! The kernel is recorded in `BENCH_engine.json` but excluded from the gated
//! geomean (its rate is an order of magnitude above the workloads').

use ndp_experiments::harness::{incast_run, permutation_run, Proto};
use ndp_experiments::json;
use ndp_experiments::openloop::{openloop_run, DistKind};
use ndp_experiments::sweep::OpenLoopPoint;
use ndp_experiments::topo::TopoSpec;
use ndp_sim::{Component, Ctx, Event, Time, World};
use ndp_topology::{FatTreeCfg, LeafSpineCfg};
use std::time::Instant;

/// The committed two-tier events/sec of the pre-fusion single-workload
/// suite (NDP permutation, k=8): the trajectory this suite is gated
/// against.
const PRE_FUSION_EPS: f64 = 15_905_998.0;

/// Allowed relative slack before `--check` fails the build.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Run one workload to completion and return its dispatched-event count.
/// `fused` selects the default fused-hop wiring or the seed's explicit
/// `Pipe` reference; both produce bit-identical protocol behaviour (pinned
/// by the golden traces and the fused/unfused A/B proptests).
fn run_permutation(fused: bool) -> u64 {
    let cfg = if fused {
        FatTreeCfg::new(8)
    } else {
        FatTreeCfg::new(8).unfused()
    };
    let r = permutation_run(
        Proto::Ndp,
        TopoSpec::fattree(cfg),
        Time::from_ms(2),
        7,
        None,
    );
    assert!(
        r.utilization > 0.5,
        "degenerate permutation (util {:.2})",
        r.utilization
    );
    r.events_processed
}

fn run_incast(fused: bool) -> u64 {
    // 431-to-1 over a k=12 fat-tree (432 hosts), 450 KB per sender — the
    // paper's large-incast shape, dominated by trims and retransmissions.
    let cfg = if fused {
        FatTreeCfg::new(12)
    } else {
        FatTreeCfg::new(12).unfused()
    };
    let r = incast_run(
        Proto::Ndp,
        TopoSpec::fattree(cfg),
        431,
        450_000,
        None,
        7,
        Time::from_ms(500),
    );
    assert_eq!(r.incomplete, 0, "incast did not finish within the horizon");
    r.events_processed
}

fn run_openloop(fused: bool) -> u64 {
    let cfg = if fused {
        LeafSpineCfg::new(8, 4, 4)
    } else {
        LeafSpineCfg::new(8, 4, 4).unfused()
    };
    let r = openloop_run(OpenLoopPoint {
        proto: Proto::Ndp,
        topo: TopoSpec::leafspine(cfg),
        dist: DistKind::WebSearch,
        load: 0.6,
        seed: 7,
        warmup: Time::from_ms(2),
        measure: Time::from_ms(20),
        drain: Time::from_ms(20),
    });
    assert!(r.measured > 0, "open-loop point measured no flows");
    r.events_processed
}

/// Scheduler-only kernel: post bursts across the delay classes the engine
/// distinguishes — lane-hot repeats, an exact wheel granule, overflow-heap
/// RTO-scale delays and zero-delay refeeds — against a no-op component, so
/// the measured rate is pure post/pop cost.
fn run_sched_micro() -> (u64, f64) {
    struct Sink;
    impl Component<u64> for Sink {
        fn handle(&mut self, _ev: Event<u64>, _ctx: &mut Ctx<'_, u64>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    const ROUNDS: u64 = 40_000;
    const BATCH: u64 = 64;
    let mut w: World<u64> = World::new(7);
    let sink = w.add(Sink);
    let start = Instant::now();
    for round in 0..ROUNDS {
        let base = Time::from_ns(round * 1000);
        for i in 0..8 {
            w.post(w.now(), sink, i); // fast-lane refeed
        }
        for i in 0..BATCH {
            let d = match i % 16 {
                0..=7 => Time::from_ns(100),
                8..=11 => Time::from_ns(250),
                12 | 13 => Time::from_ns(777),
                14 => Time::from_ps(65_536),
                _ => Time::from_ms(3),
            };
            w.post(base + d, sink, i);
        }
        w.run_until(base + Time::from_ns(1000));
    }
    w.run_until_idle();
    (w.events_processed(), start.elapsed().as_secs_f64())
}

/// Best-of-`reps` post/pop rate of the scheduler kernel.
fn measure_sched(reps: usize) -> Row {
    eprintln!("measuring sched_post_pop ({reps} reps)...");
    let mut events = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (e, secs) = run_sched_micro();
        if events != 0 {
            assert_eq!(e, events, "sched kernel is nondeterministic");
        }
        events = e;
        best = best.min(secs);
    }
    Row {
        name: "sched_post_pop",
        describe: "scheduler-only kernel: 64-post bursts over lane-hot / granule / \
                   overflow delays plus zero-delay refeeds, no-op component, seed 7",
        ref_events: events,
        fused_events: events,
        ref_secs: best,
        best_secs: best,
    }
}

struct Workload {
    name: &'static str,
    describe: &'static str,
    run: fn(bool) -> u64,
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "permutation_k8",
        describe: "NDP permutation, k=8 FatTree (128 hosts), 2 ms simulated, seed 7",
        run: run_permutation,
    },
    Workload {
        name: "incast_432",
        describe: "NDP 431-to-1 incast, k=12 FatTree (432 hosts), 450 KB per sender, seed 7",
        run: run_incast,
    },
    Workload {
        name: "openloop_websearch_60",
        describe: "open-loop web-search at 60% load, quick leaf-spine (32 hosts), 20 ms measured",
        run: run_openloop,
    },
];

struct Row {
    name: &'static str,
    describe: &'static str,
    ref_events: u64,
    fused_events: u64,
    ref_secs: f64,
    best_secs: f64,
}

impl Row {
    /// Effective events/sec: reference (unfused) work over fused wall time.
    fn events_per_sec(&self) -> f64 {
        self.ref_events as f64 / self.best_secs
    }
}

fn measure(w: &Workload, reps: usize) -> Row {
    eprintln!("measuring {} ({reps} reps)...", w.name);
    // Unfused runs fix the reference event count (a pure function of the
    // workload) and a same-machine, same-build reference wall time.
    let mut ref_events = 0;
    let mut ref_secs = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        ref_events = (w.run)(false);
        ref_secs = ref_secs.min(start.elapsed().as_secs_f64());
    }
    let mut best = f64::INFINITY;
    let mut fused_events = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let events = (w.run)(true);
        best = best.min(start.elapsed().as_secs_f64());
        if fused_events != 0 {
            assert_eq!(events, fused_events, "{} is nondeterministic", w.name);
        }
        fused_events = events;
    }
    assert!(
        fused_events < ref_events,
        "{}: fusion must dispatch fewer events ({fused_events} vs {ref_events})",
        w.name
    );
    Row {
        name: w.name,
        describe: w.describe,
        ref_events,
        fused_events,
        ref_secs,
        best_secs: best,
    }
}

fn geomean(rates: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = rates.fold((0.0, 0u32), |(s, n), r| (s + r.ln(), n + 1));
    (sum / n as f64).exp()
}

fn render(rows: &[Row], micro: &Row) -> String {
    let g = geomean(rows.iter().map(Row::events_per_sec));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"suite\": \"engine hot-path: effective events/sec = unfused-reference \
         events / fused wall seconds, best of N reps\",\n",
    );
    out.push_str(&format!(
        "  \"pre_fusion_two_tier_events_per_sec\": {PRE_FUSION_EPS:.0},\n"
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\",\n      \"describe\": \"{}\",\n      \
             \"ref_events\": {}, \"fused_events\": {}, \"ref_secs\": {:.4}, \
             \"secs\": {:.4}, \"events_per_sec\": {:.0} }}{}\n",
            r.name,
            r.describe,
            r.ref_events,
            r.fused_events,
            r.ref_secs,
            r.best_secs,
            r.events_per_sec(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"sched_micro\": {{ \"name\": \"{}\",\n    \"describe\": \"{}\",\n    \
         \"events\": {}, \"secs\": {:.4}, \"post_pop_events_per_sec\": {:.0} }},\n",
        micro.name,
        micro.describe,
        micro.ref_events,
        micro.best_secs,
        micro.events_per_sec(),
    ));
    out.push_str(&format!("  \"geomean_events_per_sec\": {g:.0},\n"));
    out.push_str(&format!(
        "  \"speedup_vs_pre_fusion\": {:.3}\n",
        g / PRE_FUSION_EPS
    ));
    out.push_str("}\n");
    out
}

/// One delta-table line: measured vs the committed rate for the same name.
fn delta_cell(committed: Option<f64>, measured: f64) -> (String, String) {
    match committed {
        Some(c) if c > 0.0 => (
            format!("{c:.0}"),
            format!("{:+.1}%", (measured / c - 1.0) * 100.0),
        ),
        _ => ("—".into(), "—".into()),
    }
}

/// Per-workload markdown delta table (also readable as plain text). The
/// same string goes to stdout and, in CI, to the job summary.
fn delta_table(doc: &json::Json, rows: &[Row], micro: &Row, got: f64, committed: f64) -> String {
    let committed_of = |name: &str| -> Option<f64> {
        doc.get("workloads")?
            .as_arr()?
            .iter()
            .find(|w| w.get("name").and_then(json::Json::as_str) == Some(name))?
            .get("events_per_sec")?
            .as_f64()
    };
    let mut t = String::new();
    t.push_str("| workload | committed ev/s | measured ev/s | delta |\n");
    t.push_str("| --- | ---: | ---: | ---: |\n");
    for r in rows {
        let (c, d) = delta_cell(committed_of(r.name), r.events_per_sec());
        t.push_str(&format!(
            "| {} | {} | {:.0} | {} |\n",
            r.name,
            c,
            r.events_per_sec(),
            d
        ));
    }
    let committed_micro = doc
        .get("sched_micro")
        .and_then(|m| m.get("post_pop_events_per_sec"))
        .and_then(json::Json::as_f64);
    let (c, d) = delta_cell(committed_micro, micro.events_per_sec());
    t.push_str(&format!(
        "| {} (ungated) | {} | {:.0} | {} |\n",
        micro.name,
        c,
        micro.events_per_sec(),
        d
    ));
    let (c, d) = delta_cell(Some(committed), got);
    t.push_str(&format!("| **geomean** | {c} | {got:.0} | {d} |\n"));
    t
}

/// `--check`: re-measure and compare against the committed file.
fn check(reps: usize) -> ! {
    let committed = std::fs::read_to_string("BENCH_engine.json")
        .expect("BENCH_engine.json must exist (run engine_json without --check first)");
    let doc = json::parse(&committed).expect("BENCH_engine.json must be valid JSON");
    let committed_geomean = doc
        .get("geomean_events_per_sec")
        .and_then(json::Json::as_f64)
        .expect("committed suite must record geomean_events_per_sec");
    let rows: Vec<Row> = WORKLOADS.iter().map(|w| measure(w, reps)).collect();
    let micro = measure_sched(reps);
    let got = geomean(rows.iter().map(Row::events_per_sec));
    let floor = committed_geomean * (1.0 - REGRESSION_TOLERANCE);
    println!(
        "perf gate: measured geomean {got:.0} events/sec vs committed {committed_geomean:.0} \
         (floor {floor:.0})"
    );
    let table = delta_table(&doc, &rows, &micro, got, committed_geomean);
    println!("{table}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        let summary = format!("### Engine perf gate (best of {reps})\n\n{table}\n");
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
        {
            let _ = f.write_all(summary.as_bytes());
        }
    }
    if got < floor {
        eprintln!(
            "perf gate FAILED: events/sec regressed more than {:.0}% below the committed \
             baseline; fix the regression or regenerate BENCH_engine.json (and justify it), \
             or tag the commit [skip-perf-gate]",
            REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("perf gate OK");
    std::process::exit(0);
}

fn main() {
    let mut reps = 3usize;
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            gate = true;
        } else if let Ok(n) = arg.parse() {
            reps = n;
        } else {
            panic!("unrecognized argument '{arg}' (expected a rep count or --check)");
        }
    }
    if gate {
        check(reps);
    }
    let rows: Vec<Row> = WORKLOADS.iter().map(|w| measure(w, reps)).collect();
    let micro = measure_sched(reps);
    let out = render(&rows, &micro);
    // The pretty writer above must stay machine-readable: --check (and any
    // downstream tooling) reloads the committed file through the parser.
    json::parse(&out).expect("rendered suite must be valid JSON");
    print!("{out}");
    std::fs::write("BENCH_engine.json", out).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json");
}
