//! Regenerate `BENCH_workload.json`: throughput of the open-loop
//! dynamic-traffic runner on a fixed quick-scale point (NDP, web-search
//! flow sizes, 30 % offered load, k=4 FatTree), reported as offered
//! flows/sec and engine events/sec of wall-clock time.
//!
//! Usage: `cargo run --release -p ndp-bench --bin workload_json [reps]`
//! from the repository root; writes `BENCH_workload.json` to the current
//! directory. The best of `reps` runs (default 3) is reported.

use ndp_experiments::openloop::{openloop_run, DistKind, OpenLoopResult};
use ndp_experiments::sweep::OpenLoopPoint;
use ndp_experiments::topo::TopoSpec;
use ndp_experiments::Proto;
use ndp_sim::Time;
use ndp_topology::FatTreeCfg;
use std::time::Instant;

fn point() -> OpenLoopPoint {
    OpenLoopPoint {
        proto: Proto::Ndp,
        topo: TopoSpec::fattree(FatTreeCfg::new(4)),
        dist: DistKind::WebSearch,
        load: 0.3,
        seed: 7,
        warmup: Time::from_ms(1),
        measure: Time::from_ms(10),
        drain: Time::from_ms(10),
    }
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let mut best = f64::INFINITY;
    let mut last: Option<OpenLoopResult> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = openloop_run(point());
        let secs = start.elapsed().as_secs_f64();
        assert!(r.measured > 0 && !r.slowdown.is_empty(), "degenerate point");
        best = best.min(secs);
        last = Some(r);
    }
    let r = last.expect("at least one rep");
    assert_eq!(
        r.live_components_end, r.live_components_baseline,
        "live components must drain back to the pre-traffic baseline"
    );
    let json = format!(
        "{{\n  \"workload\": \"open-loop NDP, websearch sizes, 30% load, k=4 FatTree, 21 ms simulated, seed 7\",\n  \
           \"offered_flows\": {},\n  \
           \"events\": {},\n  \
           \"best_secs\": {:.4},\n  \
           \"flows_per_sec\": {:.0},\n  \
           \"events_per_sec\": {:.0},\n  \
           \"peak_live_flows\": {},\n  \
           \"peak_live_components\": {},\n  \
           \"live_components_baseline\": {}\n}}\n",
        r.offered,
        r.events_processed,
        best,
        r.offered as f64 / best,
        r.events_processed as f64 / best,
        r.peak_live_flows,
        r.peak_live_components,
        r.live_components_baseline,
    );
    print!("{json}");
    std::fs::write("BENCH_workload.json", json).expect("write BENCH_workload.json");
    eprintln!("wrote BENCH_workload.json");
}
