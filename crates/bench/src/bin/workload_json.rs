//! Regenerate `BENCH_workload.json`: two workload-layer kernels, each
//! reported as best-of-`reps` wall-clock throughput.
//!
//! * `open_loop` — the open-loop dynamic-traffic runner on a fixed
//!   quick-scale point (NDP, web-search flow sizes, 30 % offered load,
//!   k=4 FatTree): offered flows/sec and engine events/sec.
//! * `rpc_generation` — pure request-tree generation: one fan-out-8 RPC
//!   tenant's Poisson stream drained to its horizon (no simulation),
//!   requests/sec and legs/sec. This is the workload half of the RPC
//!   serving subsystem, isolated from the engine.
//!
//! Usage: `cargo run --release -p ndp-bench --bin workload_json [reps]`
//! from the repository root; writes `BENCH_workload.json` to the current
//! directory. The best of `reps` runs (default 3) is reported.

use ndp_experiments::openloop::{openloop_run, DistKind, OpenLoopResult};
use ndp_experiments::sweep::OpenLoopPoint;
use ndp_experiments::topo::TopoSpec;
use ndp_experiments::Proto;
use ndp_sim::Time;
use ndp_topology::FatTreeCfg;
use ndp_workloads::{ArrivalProcess, EmpiricalCdf, RpcProfile, RpcWorkload, TenantMix, TreeShape};
use std::time::Instant;

fn point() -> OpenLoopPoint {
    OpenLoopPoint {
        proto: Proto::Ndp,
        topo: TopoSpec::fattree(FatTreeCfg::new(4)),
        dist: DistKind::WebSearch,
        load: 0.3,
        seed: 7,
        warmup: Time::from_ms(1),
        measure: Time::from_ms(10),
        drain: Time::from_ms(10),
    }
}

fn rpc_workload() -> RpcWorkload {
    let profile = RpcProfile {
        name: "bench_rpc",
        shape: TreeShape::FanIn,
        fanout: 8,
        leg_sizes: EmpiricalCdf::websearch(),
        response_sizes: Some(EmpiricalCdf::fixed("rsp", 1_460)),
        arrivals: ArrivalProcess::Poisson { rate_hz: 100_000.0 },
        closed_loop_width: 1,
        slo_ps: 1_000_000,
        clients: None,
    };
    RpcWorkload::new(
        256,
        TenantMix::new(vec![profile]),
        7,
        Time::from_secs(2).as_ps(),
    )
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    // Kernel 1: open-loop simulation runner.
    let mut ol_best = f64::INFINITY;
    let mut last: Option<OpenLoopResult> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = openloop_run(point());
        let secs = start.elapsed().as_secs_f64();
        assert!(r.measured > 0 && !r.slowdown.is_empty(), "degenerate point");
        ol_best = ol_best.min(secs);
        last = Some(r);
    }
    let r = last.expect("at least one rep");
    assert_eq!(
        r.live_components_end, r.live_components_baseline,
        "live components must drain back to the pre-traffic baseline"
    );

    // Kernel 2: RPC request-tree generation, no engine in the loop.
    let mut rpc_best = f64::INFINITY;
    let mut requests = 0u64;
    let mut legs = 0u64;
    let mut leg_bytes = 0u64;
    for _ in 0..reps {
        let wl = rpc_workload();
        requests = 0;
        legs = 0;
        leg_bytes = 0;
        let start = Instant::now();
        for req in wl {
            requests += 1;
            legs += req.legs.len() as u64;
            leg_bytes += req.legs.iter().map(|l| l.bytes).sum::<u64>();
            if let Some(rsp) = &req.response {
                legs += 1;
                leg_bytes += rsp.bytes;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        assert!(requests > 100_000, "degenerate RPC stream: {requests}");
        rpc_best = rpc_best.min(secs);
    }

    let json = format!(
        "{{\n  \"open_loop\": {{\n    \
           \"workload\": \"open-loop NDP, websearch sizes, 30% load, k=4 FatTree, 21 ms simulated, seed 7\",\n    \
           \"offered_flows\": {},\n    \
           \"events\": {},\n    \
           \"best_secs\": {:.4},\n    \
           \"flows_per_sec\": {:.0},\n    \
           \"events_per_sec\": {:.0},\n    \
           \"peak_live_flows\": {},\n    \
           \"peak_live_components\": {},\n    \
           \"live_components_baseline\": {}\n  }},\n  \
           \"rpc_generation\": {{\n    \
           \"workload\": \"fan-out-8 RPC trees, websearch shard sizes, 100k req/s Poisson, 2 s horizon, 256 hosts, seed 7\",\n    \
           \"requests\": {},\n    \
           \"legs\": {},\n    \
           \"leg_bytes\": {},\n    \
           \"best_secs\": {:.4},\n    \
           \"requests_per_sec\": {:.0},\n    \
           \"legs_per_sec\": {:.0}\n  }}\n}}\n",
        r.offered,
        r.events_processed,
        ol_best,
        r.offered as f64 / ol_best,
        r.events_processed as f64 / ol_best,
        r.peak_live_flows,
        r.peak_live_components,
        r.live_components_baseline,
        requests,
        legs,
        leg_bytes,
        rpc_best,
        requests as f64 / rpc_best,
        legs as f64 / rpc_best,
    );
    print!("{json}");
    std::fs::write("BENCH_workload.json", json).expect("write BENCH_workload.json");
    eprintln!("wrote BENCH_workload.json");
}
