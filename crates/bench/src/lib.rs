//! Criterion benchmark shims: every paper figure is exposed as a bench in
//! `benches/figures.rs`, each running the corresponding experiment at
//! `Scale::Quick`. This crate intentionally has no library code of its
//! own — it exists so `cargo bench --workspace` regenerates the paper's
//! evaluation.
