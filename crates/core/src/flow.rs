//! Harness glue: attach an NDP flow between two hosts in a built world.

use ndp_net::host::{Host, PullPriority};
use ndp_net::packet::{FlowId, HostId, Packet};
use ndp_sim::{ComponentId, Time, World};

use crate::receiver::NdpReceiver;
pub use crate::sender::NdpFlowCfg;
use crate::sender::NdpSender;

/// Register sender and receiver endpoints for one flow and schedule its
/// start. `src`/`dst` are (host component id, host id) pairs as returned by
/// the topology builders.
#[allow(clippy::too_many_arguments)]
pub fn attach_flow(
    world: &mut World<Packet>,
    flow: FlowId,
    src: (ComponentId, HostId),
    dst: (ComponentId, HostId),
    cfg: NdpFlowCfg,
    start: Time,
) {
    let sender = NdpSender::new(flow, dst.1, cfg.clone());
    let prio = if cfg.high_priority {
        PullPriority::High
    } else {
        PullPriority::Normal
    };
    let mut receiver = NdpReceiver::new(src.1).with_priority(prio);
    if let Some((comp, tok)) = cfg.notify {
        receiver = receiver.with_notify(comp, tok);
    }
    world
        .get_mut::<Host>(src.0)
        .add_endpoint(flow, Box::new(sender));
    world
        .get_mut::<Host>(dst.0)
        .add_endpoint(flow, Box::new(receiver));
    // Token 0 == flow start on the sender host.
    world.post_wake(start, src.0, flow << 8);
}

/// Convenience accessors for post-run harvesting.
pub fn sender_stats(
    world: &World<Packet>,
    host: ComponentId,
    flow: FlowId,
) -> crate::NdpSenderStats {
    world
        .get::<Host>(host)
        .endpoint::<NdpSender>(flow)
        .stats
        .clone()
}

pub fn receiver_stats(
    world: &World<Packet>,
    host: ComponentId,
    flow: FlowId,
) -> crate::NdpReceiverStats {
    world
        .get::<Host>(host)
        .endpoint::<NdpReceiver>(flow)
        .stats
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_net::host::HostLatency;
    use ndp_net::pipe::Pipe;
    use ndp_net::queue::Queue;
    use ndp_sim::Speed;
    use ndp_topology::{BackToBack, FatTree, FatTreeCfg, QueueSpec, SingleBottleneck};

    fn b2b(seed: u64) -> (World<Packet>, BackToBack) {
        let mut w: World<Packet> = World::new(seed);
        let b = BackToBack::build(
            &mut w,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::ndp_default(),
            HostLatency::default(),
        );
        (w, b)
    }

    #[test]
    fn back_to_back_transfer_completes_at_line_rate() {
        let (mut w, b) = b2b(1);
        let size = 10_000_000u64; // 10 MB
        let cfg = NdpFlowCfg {
            n_paths: 1,
            ..NdpFlowCfg::new(size)
        };
        attach_flow(&mut w, 1, (b.hosts[0], 0), (b.hosts[1], 1), cfg, Time::ZERO);
        w.run_until(Time::from_ms(100));
        let rx = receiver_stats(&w, b.hosts[1], 1);
        let tx = sender_stats(&w, b.hosts[0], 1);
        assert_eq!(rx.payload_bytes, size, "every byte delivered exactly once");
        assert!(tx.completion_time.is_some(), "sender saw all ACKs");
        let fct = tx.fct().unwrap();
        let goodput_gbps = size as f64 * 8.0 / fct.as_secs() / 1e9;
        assert!(goodput_gbps > 9.0, "goodput {goodput_gbps:.2} Gb/s");
        assert_eq!(
            tx.retransmissions, 0,
            "nothing to retransmit on an idle link"
        );
        assert_eq!(rx.duplicate_pkts, 0);
    }

    #[test]
    fn tiny_flow_single_packet() {
        let (mut w, b) = b2b(2);
        let cfg = NdpFlowCfg {
            n_paths: 1,
            ..NdpFlowCfg::new(100)
        };
        attach_flow(&mut w, 1, (b.hosts[0], 0), (b.hosts[1], 1), cfg, Time::ZERO);
        w.run_until(Time::from_ms(10));
        let rx = receiver_stats(&w, b.hosts[1], 1);
        assert_eq!(rx.payload_bytes, 100);
        assert!(rx.completion_time.is_some());
        // One packet, one ACK, no pull needed for completion.
        assert_eq!(rx.data_pkts, 1);
    }

    #[test]
    fn fat_tree_cross_pod_transfer_with_reordering() {
        let mut w: World<Packet> = World::new(3);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        let size = 2_000_000u64;
        let cfg = NdpFlowCfg {
            n_paths: ft.n_paths(0, 15),
            ..NdpFlowCfg::new(size)
        };
        attach_flow(
            &mut w,
            1,
            (ft.hosts[0], 0),
            (ft.hosts[15], 15),
            cfg,
            Time::ZERO,
        );
        w.run_until(Time::from_ms(50));
        let rx = receiver_stats(&w, ft.hosts[15], 1);
        assert_eq!(rx.payload_bytes, size);
        let tx = sender_stats(&w, ft.hosts[0], 1);
        assert!(tx.completion_time.is_some());
        // All four cores carried traffic (per-packet multipath).
        for c in 0..4 {
            assert!(
                w.get::<ndp_net::switch::Switch>(ft.cores[c]).rx_pkts > 10,
                "core {c} unused"
            );
        }
    }

    #[test]
    fn incast_is_lossless_for_metadata_and_completes() {
        let mut w: World<Packet> = World::new(4);
        let n = 30usize;
        let sb = SingleBottleneck::build(
            &mut w,
            n,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::ndp_default(),
        );
        let size = 30 * 8936; // 30 packets each
        for s in 0..n {
            let cfg = NdpFlowCfg {
                n_paths: 1,
                ..NdpFlowCfg::new(size)
            };
            attach_flow(
                &mut w,
                s as u64 + 1,
                (sb.senders[s], s as HostId),
                (sb.receiver, n as HostId),
                cfg,
                Time::ZERO,
            );
        }
        w.run_until(Time::from_ms(100));
        let mut total = 0u64;
        let mut last_done = Time::ZERO;
        for s in 0..n {
            let tx = sender_stats(&w, sb.senders[s], s as u64 + 1);
            assert!(tx.completion_time.is_some(), "sender {s} incomplete");
            total += size;
            let rx = receiver_stats(&w, sb.receiver, s as u64 + 1);
            last_done = last_done.max(rx.completion_time.unwrap());
        }
        let rx_host = w.get::<Host>(sb.receiver);
        assert_eq!(rx_host.stats().delivered_payload_bytes, total);
        // The bottleneck trimmed but never dropped data silently.
        let q = w.get::<Queue>(sb.bottleneck);
        assert!(q.stats.trimmed > 0, "incast of {n} should trim");
        assert_eq!(q.stats.dropped_data, 0, "metadata must be lossless");
        // Completion near-optimal: total bytes at 10 Gb/s plus 20% slack
        // for the trim-heavy first RTT.
        let optimal = Speed::gbps(10).tx_time(total + total / 5);
        assert!(
            last_done < optimal + Time::from_ms(1),
            "took {last_done} vs optimal {optimal}"
        );
    }

    #[test]
    fn corruption_recovers_via_rto() {
        let mut w: World<Packet> = World::new(5);
        // Build a lossy back-to-back pair by hand.
        let h0 = w.reserve();
        let h1 = w.reserve();
        let mtu = 9000;
        let speed = Speed::gbps(10);
        let p01 = w.add(Pipe::new(Time::from_us(1), h1).with_corruption(0.05));
        let nic0 = w.add(Queue::new(
            speed,
            p01,
            ndp_net::queue::LinkClass::HostNic,
            QueueSpec::ndp_default().build_host_nic(mtu),
        ));
        let p10 = w.add(Pipe::new(Time::from_us(1), h0).with_corruption(0.05));
        let nic1 = w.add(Queue::new(
            speed,
            p10,
            ndp_net::queue::LinkClass::HostNic,
            QueueSpec::ndp_default().build_host_nic(mtu),
        ));
        w.install(h0, Host::new(0, nic0, speed, mtu));
        w.install(h1, Host::new(1, nic1, speed, mtu));
        let size = 1_000_000u64;
        let cfg = NdpFlowCfg {
            n_paths: 1,
            ..NdpFlowCfg::new(size)
        };
        attach_flow(&mut w, 1, (h0, 0), (h1, 1), cfg, Time::ZERO);
        w.run_until(Time::from_secs(2));
        let rx = receiver_stats(&w, h1, 1);
        assert_eq!(rx.payload_bytes, size, "all data must eventually arrive");
        let tx = sender_stats(&w, h0, 1);
        assert!(tx.rtx_rto > 0, "corruption must exercise the RTO path");
    }

    #[test]
    fn high_priority_flow_finishes_first_under_contention() {
        let mut w: World<Packet> = World::new(6);
        let n = 7usize;
        let sb = SingleBottleneck::build(
            &mut w,
            n,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::ndp_default(),
        );
        // Six long flows + one short high-priority flow, all simultaneous.
        let long = 2_000_000u64;
        let short = 200_000u64;
        for s in 0..6 {
            let cfg = NdpFlowCfg {
                n_paths: 1,
                ..NdpFlowCfg::new(long)
            };
            attach_flow(
                &mut w,
                s as u64 + 1,
                (sb.senders[s], s as HostId),
                (sb.receiver, n as HostId),
                cfg,
                Time::ZERO,
            );
        }
        let cfg = NdpFlowCfg {
            n_paths: 1,
            high_priority: true,
            ..NdpFlowCfg::new(short)
        };
        attach_flow(
            &mut w,
            7,
            (sb.senders[6], 6),
            (sb.receiver, n as HostId),
            cfg,
            Time::ZERO,
        );
        w.run_until(Time::from_ms(100));
        let short_fct = receiver_stats(&w, sb.receiver, 7).completion_time.unwrap();
        for s in 0..6 {
            let long_fct = receiver_stats(&w, sb.receiver, s + 1)
                .completion_time
                .unwrap();
            assert!(
                short_fct < long_fct,
                "priority flow must finish before long flows"
            );
        }
        // The priority flow should complete close to its idle-network time:
        // size/linkrate plus the first-RTT contention.
        let idle = Speed::gbps(10).tx_time(short + short / 50);
        assert!(
            short_fct < idle + Time::from_us(500),
            "short flow took {short_fct} vs idle {idle}"
        );
    }

    #[test]
    fn pull_counter_gap_sends_multiple_packets() {
        // §3.2.1: if a PULL is delayed and the next one (sent on another
        // path) arrives first, its counter pulls two packets.
        use ndp_net::host::{Endpoint, EndpointCtx};
        use std::any::Any;
        struct Recorder {
            sent: Vec<u32>,
        }
        impl Endpoint for Recorder {
            fn on_start(&mut self, _c: &mut EndpointCtx<'_, '_>) {}
            fn on_packet(&mut self, p: Packet, _c: &mut EndpointCtx<'_, '_>) {
                self.sent.push(p.seq);
            }
            fn on_timer(&mut self, _t: u8, _c: &mut EndpointCtx<'_, '_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let (mut w, b) = b2b(7);
        let cfg = NdpFlowCfg {
            iw_pkts: 1,
            n_paths: 1,
            ..NdpFlowCfg::new(9000 * 20)
        };
        let sender = NdpSender::new(1, 1, cfg);
        w.get_mut::<Host>(b.hosts[0])
            .add_endpoint(1, Box::new(sender));
        w.get_mut::<Host>(b.hosts[1])
            .add_endpoint(1, Box::new(Recorder { sent: vec![] }));
        w.post_wake(Time::ZERO, b.hosts[0], 1 << 8);
        w.run_until(Time::from_us(50));
        // Simulate a reordered pull arriving with counter 3 (pulls 1,2
        // lost/late): the sender must emit 3 packets at once.
        let mut pull = Packet::control(1, 0, 1, PacketKind::Pull);
        pull.ack = 3;
        w.post(Time::from_us(60), b.hosts[0], pull);
        w.run_until(Time::from_us(200));
        let h = w.get::<Host>(b.hosts[0]);
        let s: &NdpSender = h.endpoint(1);
        assert_eq!(s.stats.data_sent, 4, "IW packet + 3 pulled");
        // A stale pull (counter 2 < 3) must be ignored.
        let mut stale = Packet::control(1, 0, 1, PacketKind::Pull);
        stale.ack = 2;
        w.post(Time::from_us(210), b.hosts[0], stale);
        w.run_until(Time::from_us(300));
        let h = w.get::<Host>(b.hosts[0]);
        let s: &NdpSender = h.endpoint(1);
        assert_eq!(s.stats.data_sent, 4, "stale pull ignored");
    }

    use ndp_net::packet::PacketKind;

    #[test]
    fn lost_tail_pull_stalls_stock_sender_but_liveness_net_recovers() {
        // A NACKed packet leaves the RTO's jurisdiction (nothing is
        // outstanding) and waits for a PULL. If that pull — the last one
        // the receiver owes — is lost, the stock sender stalls forever:
        // `pull_liveness` is the opt-in net that self-clocks after a full
        // RTO of silence.
        use ndp_net::host::{Endpoint, EndpointCtx};
        use std::any::Any;
        struct Recorder {
            data_seqs: Vec<u32>,
        }
        impl Endpoint for Recorder {
            fn on_start(&mut self, _c: &mut EndpointCtx<'_, '_>) {}
            fn on_packet(&mut self, p: Packet, _c: &mut EndpointCtx<'_, '_>) {
                if p.kind == PacketKind::Data {
                    self.data_seqs.push(p.seq);
                }
            }
            fn on_timer(&mut self, _t: u8, _c: &mut EndpointCtx<'_, '_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        for liveness in [false, true] {
            let (mut w, b) = b2b(8);
            let cfg = NdpFlowCfg {
                iw_pkts: 2,
                n_paths: 1,
                pull_liveness: liveness,
                ..NdpFlowCfg::new(2 * 8936)
            };
            let sender = NdpSender::new(1, 1, cfg);
            w.get_mut::<Host>(b.hosts[0])
                .add_endpoint(1, Box::new(sender));
            w.get_mut::<Host>(b.hosts[1])
                .add_endpoint(1, Box::new(Recorder { data_seqs: vec![] }));
            w.post_wake(Time::ZERO, b.hosts[0], 1 << 8);
            w.run_until(Time::from_us(50));
            // Hand-feed the feedback the silent Recorder never sends:
            // seq 1 ACKed, seq 0 trimmed (NACK). The pull that the NACK
            // implies is "lost" — no pull ever arrives.
            let mut ack = Packet::control(1, 0, 1, PacketKind::Ack);
            ack.seq = 1;
            w.post(Time::from_us(60), b.hosts[0], ack);
            let mut nack = Packet::control(1, 0, 1, PacketKind::Nack);
            nack.seq = 0;
            w.post(Time::from_us(61), b.hosts[0], nack);
            w.run_until(Time::from_ms(20));
            let h = w.get::<Host>(b.hosts[0]);
            let s: &NdpSender = h.endpoint(1);
            if liveness {
                assert!(
                    s.stats.rtx_rto >= 1,
                    "liveness net must fire for the lost pull"
                );
                let r: &Recorder = w.get::<Host>(b.hosts[1]).endpoint(1);
                assert!(
                    r.data_seqs.iter().skip(2).any(|&q| q == 0),
                    "seq 0 must be retransmitted, got {:?}",
                    r.data_seqs
                );
            } else {
                assert_eq!(
                    s.stats.retransmissions, 0,
                    "stock sender has no recovery path for a lost tail pull"
                );
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_fct() {
        fn run(seed: u64) -> Time {
            let mut w: World<Packet> = World::new(seed);
            let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
            let cfg = NdpFlowCfg {
                n_paths: ft.n_paths(0, 15),
                ..NdpFlowCfg::new(500_000)
            };
            attach_flow(
                &mut w,
                1,
                (ft.hosts[0], 0),
                (ft.hosts[15], 15),
                cfg,
                Time::ZERO,
            );
            w.run_until(Time::from_ms(50));
            receiver_stats(&w, ft.hosts[15], 1).completion_time.unwrap()
        }
        assert_eq!(run(11), run(11));
    }
}
