//! The NDP transport protocol (§3.2) — the paper's primary contribution.
//!
//! NDP is receiver-driven: a sender pushes one full window of data blind
//! (zero-RTT, every first-window packet carries SYN + its sequence offset),
//! then sends **only** when pulled. The receiver learns the complete demand
//! from arriving packets *and trimmed headers* (metadata is lossless), ACKs
//! or NACKs every arrival immediately, and queues one PULL per arrival in
//! the host-wide pull queue whose pacer clocks data in at exactly the
//! receiver's link rate.
//!
//! The modules map to the paper's mechanisms:
//!
//! * [`path`] — per-packet multipath: randomly permuted path lists
//!   (§3.1.1) plus the path scoreboard that temporarily excludes NACK/loss
//!   outlier paths (§3.2.3, the mechanism that saves Figure 22).
//! * [`sender`] — first-RTT push, pull-counter handling, RTX-before-new
//!   data, return-to-sender logic with incast-echo avoidance (§3.2.4), and
//!   the 1 ms RTO that only fires for corrupted packets.
//! * [`receiver`] — per-arrival ACK/NACK, pull queueing with priority,
//!   last-packet pull cancellation, completion accounting.
//! * [`flow`] — harness-level glue to attach a flow between two hosts.
//! * [`transport`] — the [`ndp_transport::Transport`] adapter (plus the
//!   Figure 22 no-path-penalty ablation as a configured instance).

pub mod flow;
pub mod path;
pub mod receiver;
pub mod sender;
pub mod transport;

pub use flow::{attach_flow, NdpFlowCfg};
pub use path::PathSet;
pub use receiver::{NdpReceiver, NdpReceiverStats};
pub use sender::{NdpSender, NdpSenderStats};
pub use transport::{NdpTransport, NDP, NDP_NO_PENALTY};
