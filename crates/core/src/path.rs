//! Sender-side multipath state: permuted path lists and the path
//! scoreboard.
//!
//! §3.1.1: "Each NDP sender takes the list of paths to a destination,
//! randomly permutes it, then sends packets on paths in this order. After
//! it has sent one packet on each path, it randomly permutes the list
//! again" — equal spreading without inadvertent synchronization between
//! senders.
//!
//! §3.2.3: the sender keeps per-path ACK/NACK/loss counts; when it
//! re-permutes, paths whose NACK or loss ratios are outliers are
//! *temporarily* removed. Counters decay at each permutation so an
//! excluded path is retried once the failure heals.

use rand::rngs::SmallRng;
use rand::Rng;

/// Per-destination path list with scoreboard.
#[derive(Clone, Debug)]
pub struct PathSet {
    n: u32,
    order: Vec<u32>,
    pos: usize,
    acks: Vec<u64>,
    nacks: Vec<u64>,
    losses: Vec<u64>,
    /// Remaining permutation rounds for which each path stays excluded.
    cooldown: Vec<u32>,
    /// Enables §3.2.3 outlier exclusion (Fig 22 ablates this).
    penalize: bool,
}

/// Rounds an outlier path sits out before being re-probed. Sixteen rounds
/// balances avoiding a sick path against re-concentrating load on the
/// healthy ones (excessive exclusion makes *other* paths look congested
/// and triggers cascading penalties — measured in Figure 22's ablation).
const EXCLUSION_ROUNDS: u32 = 16;

impl PathSet {
    pub fn new(n_paths: u32, penalize: bool) -> PathSet {
        assert!(n_paths >= 1);
        let n = n_paths as usize;
        PathSet {
            n: n_paths,
            order: (0..n_paths).collect(),
            pos: n, // force a shuffle on first use
            acks: vec![0; n],
            nacks: vec![0; n],
            losses: vec![0; n],
            cooldown: vec![0; n],
            penalize,
        }
    }

    pub fn n_paths(&self) -> u32 {
        self.n
    }

    /// Next path tag to send on.
    pub fn next(&mut self, rng: &mut SmallRng) -> u32 {
        if self.n == 1 {
            return 0;
        }
        loop {
            if self.pos >= self.order.len() {
                self.reshuffle(rng);
            }
            let p = self.order[self.pos];
            self.pos += 1;
            if self.cooldown[p as usize] == 0 {
                return p;
            }
        }
    }

    fn reshuffle(&mut self, rng: &mut SmallRng) {
        // Fisher-Yates.
        for i in (1..self.order.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.order.swap(i, j);
        }
        self.pos = 0;
        for c in &mut self.cooldown {
            *c = c.saturating_sub(1);
        }
        if self.penalize {
            self.recompute_exclusions();
        }
        // Exponential decay makes exclusion temporary (§3.2.3:
        // "temporarily removes outliers").
        for i in 0..self.n as usize {
            self.acks[i] -= self.acks[i] / 8;
            self.nacks[i] -= self.nacks[i] / 8;
            self.losses[i] -= self.losses[i] / 8;
        }
    }

    fn recompute_exclusions(&mut self) {
        let n = self.n as usize;
        // NACK-ratio per path, compared against the *other* paths' mean:
        // during a legitimate incast every path NACKs heavily, so a path is
        // only an outlier if it NACKs markedly more than its peers.
        let mut ratios: Vec<Option<f64>> = vec![None; n];
        for (i, ratio) in ratios.iter_mut().enumerate() {
            let total = self.acks[i] + self.nacks[i];
            if total >= 8 {
                *ratio = Some(self.nacks[i] as f64 / total as f64);
            }
        }
        let sampled: Vec<(usize, f64)> = ratios
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|v| (i, v)))
            .collect();
        let total_loss: u64 = self.losses.iter().sum();
        let mut newly = vec![false; n];
        if sampled.len() >= 2 {
            let sum: f64 = sampled.iter().map(|s| s.1).sum();
            for &(i, r) in &sampled {
                let mean_other = (sum - r) / (sampled.len() - 1) as f64;
                if r > 0.20 + 2.0 * mean_other {
                    newly[i] = true;
                }
            }
        }
        for (flag, &loss) in newly.iter_mut().zip(&self.losses) {
            let mean_other_loss = (total_loss - loss) as f64 / (n - 1).max(1) as f64;
            if loss >= 3 && loss as f64 > 4.0 * mean_other_loss.max(0.25) {
                *flag = true;
            }
        }
        // Never exclude everything.
        let excluded_after = (0..n).filter(|&i| newly[i] || self.cooldown[i] > 0).count();
        if excluded_after < n {
            for (i, _) in newly.iter().enumerate().filter(|(_, &new)| new) {
                self.cooldown[i] = EXCLUSION_ROUNDS;
                // Forget the bad history so re-probing starts clean.
                self.acks[i] = 0;
                self.nacks[i] = 0;
                self.losses[i] = 0;
            }
        }
    }

    pub fn on_ack(&mut self, path: u32) {
        if let Some(a) = self.acks.get_mut(path as usize) {
            *a += 1;
        }
    }

    pub fn on_nack(&mut self, path: u32) {
        if let Some(nk) = self.nacks.get_mut(path as usize) {
            *nk += 1;
        }
    }

    pub fn on_loss(&mut self, path: u32) {
        if let Some(l) = self.losses.get_mut(path as usize) {
            *l += 1;
        }
    }

    pub fn is_excluded(&self, path: u32) -> bool {
        self.cooldown[path as usize] > 0
    }

    /// Pick a path different from `avoid` (retransmissions always use a new
    /// path, §3.2.3).
    pub fn next_avoiding(&mut self, rng: &mut SmallRng, avoid: u32) -> u32 {
        if self.n == 1 {
            return 0;
        }
        for _ in 0..2 * self.n as usize + 2 {
            let p = self.next(rng);
            if p != avoid {
                return p;
            }
        }
        avoid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn covers_all_paths_each_round() {
        let mut ps = PathSet::new(16, true);
        let mut r = rng();
        for _round in 0..10 {
            let mut seen = [false; 16];
            for _ in 0..16 {
                seen[ps.next(&mut r) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "each round visits every path once");
        }
    }

    #[test]
    fn rounds_differ_between_permutations() {
        let mut ps = PathSet::new(16, true);
        let mut r = rng();
        let round1: Vec<u32> = (0..16).map(|_| ps.next(&mut r)).collect();
        let round2: Vec<u32> = (0..16).map(|_| ps.next(&mut r)).collect();
        assert_ne!(round1, round2, "permutation should change between rounds");
    }

    #[test]
    fn single_path_is_trivial() {
        let mut ps = PathSet::new(1, true);
        let mut r = rng();
        for _ in 0..5 {
            assert_eq!(ps.next(&mut r), 0);
        }
        assert_eq!(ps.next_avoiding(&mut r, 0), 0);
    }

    #[test]
    fn nack_outlier_gets_excluded_then_recovers() {
        let mut ps = PathSet::new(4, true);
        let mut r = rng();
        // Path 3 NACKs everything, others are clean.
        for _ in 0..50 {
            ps.on_nack(3);
            ps.on_ack(0);
            ps.on_ack(1);
            ps.on_ack(2);
        }
        // Trigger a reshuffle.
        for _ in 0..8 {
            ps.next(&mut r);
        }
        assert!(ps.is_excluded(3));
        let picks: Vec<u32> = (0..30).map(|_| ps.next(&mut r)).collect();
        assert!(
            picks.iter().all(|&p| p != 3),
            "excluded path must not be used"
        );
        // Stop the pain; decay should eventually re-admit path 3.
        for _ in 0..2000 {
            ps.next(&mut r);
            ps.on_ack(0);
            ps.on_ack(1);
            ps.on_ack(2);
        }
        assert!(!ps.is_excluded(3), "exclusion must be temporary");
    }

    #[test]
    fn uniform_incast_nacks_do_not_exclude() {
        // During incast every path NACKs heavily; none should be excluded.
        let mut ps = PathSet::new(8, true);
        let mut r = rng();
        for _ in 0..100 {
            for p in 0..8 {
                ps.on_nack(p);
                if p % 2 == 0 {
                    ps.on_ack(p);
                }
            }
        }
        for _ in 0..16 {
            ps.next(&mut r);
        }
        for p in 0..8 {
            assert!(!ps.is_excluded(p), "path {p} wrongly excluded");
        }
    }

    #[test]
    fn loss_outlier_excluded() {
        let mut ps = PathSet::new(4, true);
        let mut r = rng();
        for _ in 0..10 {
            ps.on_loss(2);
        }
        for p in 0..4 {
            for _ in 0..20 {
                ps.on_ack(p);
            }
        }
        for _ in 0..8 {
            ps.next(&mut r);
        }
        assert!(ps.is_excluded(2));
    }

    #[test]
    fn penalty_disabled_never_excludes() {
        let mut ps = PathSet::new(4, false);
        let mut r = rng();
        for _ in 0..100 {
            ps.on_nack(3);
            ps.on_ack(0);
        }
        for _ in 0..40 {
            ps.next(&mut r);
        }
        assert!(!ps.is_excluded(3));
    }

    #[test]
    fn next_avoiding_avoids() {
        let mut ps = PathSet::new(8, true);
        let mut r = rng();
        for _ in 0..100 {
            assert_ne!(ps.next_avoiding(&mut r, 5), 5);
        }
    }

    #[test]
    fn never_excludes_all_paths() {
        let mut ps = PathSet::new(2, true);
        let mut r = rng();
        for _ in 0..100 {
            ps.on_nack(0);
            ps.on_nack(1);
            ps.on_loss(0);
            ps.on_loss(1);
        }
        // Must still be able to pick something.
        let p = ps.next(&mut r);
        assert!(p < 2);
    }
}
