//! The NDP receiver state machine.
//!
//! §3.2: for each arriving trimmed header, NACK immediately (the sender
//! must *prepare* the retransmission); for each arriving data packet, ACK
//! immediately (the sender may free the buffer); for **every** arrival,
//! add a PULL to the host's shared pull queue. When the FIN-marked last
//! packet arrives and the transfer is complete, cancel any queued pulls
//! for this sender so the pacer doesn't waste link capacity on them.
//!
//! Reordering needs no special handling: nothing here infers loss from
//! sequence gaps — trimmed headers carry exact per-packet information, in
//! any order (§3.2.1).

use std::any::Any;

use ndp_net::host::{Endpoint, EndpointCtx, PullPriority};
use ndp_net::packet::{Flags, HostId, Packet, PacketKind};
use ndp_sim::{ComponentId, Time};

/// Receiver-side counters.
#[derive(Clone, Debug, Default)]
pub struct NdpReceiverStats {
    pub data_pkts: u64,
    pub duplicate_pkts: u64,
    pub headers: u64,
    pub payload_bytes: u64,
    pub first_arrival: Option<Time>,
    pub completion_time: Option<Time>,
    /// Per-packet one-way delivery latencies (original send → first
    /// untrimmed arrival), in picoseconds, recorded when tracing is on.
    pub delivery_latencies: Vec<u64>,
}

/// The receiver endpoint for one NDP connection.
pub struct NdpReceiver {
    peer: HostId,
    prio: PullPriority,
    /// `total = FIN seq + 1`, learned from any FIN-flagged arrival
    /// (trimmed headers keep their flags).
    total: Option<u64>,
    received: Vec<bool>,
    received_count: u64,
    done: bool,
    notify: Option<(ComponentId, u64)>,
    trace_latency: bool,
    pub stats: NdpReceiverStats,
}

impl NdpReceiver {
    pub fn new(peer: HostId) -> NdpReceiver {
        NdpReceiver {
            peer,
            prio: PullPriority::Normal,
            total: None,
            received: Vec::new(),
            received_count: 0,
            done: false,
            notify: None,
            trace_latency: false,
            stats: NdpReceiverStats::default(),
        }
    }

    /// Pull this connection with strict priority (§5.1 "Benefits of
    /// prioritization": the receiver is the only entity that can
    /// dynamically prioritize its inbound traffic).
    pub fn with_priority(mut self, prio: PullPriority) -> NdpReceiver {
        self.prio = prio;
        self
    }

    pub fn with_notify(mut self, comp: ComponentId, token: u64) -> NdpReceiver {
        self.notify = Some((comp, token));
        self
    }

    /// Record per-packet delivery latencies (Figure 4).
    pub fn with_latency_trace(mut self) -> NdpReceiver {
        self.trace_latency = true;
        self
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Flow completion time measured at the receiver (first arrival →
    /// all data received).
    pub fn fct(&self) -> Option<Time> {
        Some(self.stats.completion_time? - self.stats.first_arrival?)
    }

    fn mark(&mut self, seq: u64) -> bool {
        if self.received.len() <= seq as usize {
            self.received.resize(seq as usize + 1, false);
        }
        if self.received[seq as usize] {
            false
        } else {
            self.received[seq as usize] = true;
            self.received_count += 1;
            true
        }
    }

    #[allow(dead_code)] // mirror of mark_received, kept for protocol debugging
    fn is_received(&self, seq: u64) -> bool {
        self.received.get(seq as usize).copied().unwrap_or(false)
    }

    fn check_done(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        let Some(total) = self.total else { return };
        if self.done || self.received_count < total {
            return;
        }
        self.done = true;
        self.stats.completion_time = Some(ctx.now());
        // Remove queued pulls for this sender (§3.2) and retire the
        // connection id into time-wait (§3.2.2 at-most-once semantics).
        ctx.pull_cancel();
        ctx.enter_time_wait();
        let fct = self
            .stats
            .first_arrival
            .map_or(Time::ZERO, |t| ctx.now() - t);
        ctx.complete(self.stats.payload_bytes, fct);
        if let Some((comp, tok)) = self.notify {
            ctx.notify(comp, tok);
        }
    }

    fn reply(&self, kind: PacketKind, data: &Packet, ctx: &mut EndpointCtx<'_, '_>) {
        let mut r = Packet::control(ctx.host(), self.peer, data.flow, kind);
        r.seq = data.seq;
        // Echo the data packet's path so the sender's scoreboard can
        // attribute the ACK/NACK (§3.2.3), and its send time for RTT
        // estimation.
        r.path = data.path;
        r.sent = data.sent;
        ctx.send(r);
    }
}

impl Endpoint for NdpReceiver {
    fn on_start(&mut self, _ctx: &mut EndpointCtx<'_, '_>) {
        // Passive open (listen): nothing to do until data arrives — §3.2.2,
        // connection state is established by whichever packet arrives first.
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        if pkt.kind != PacketKind::Data || pkt.is_rts() {
            return;
        }
        if self.stats.first_arrival.is_none() {
            self.stats.first_arrival = Some(ctx.now());
        }
        if pkt.flags.has(Flags::FIN) {
            self.total = Some(u64::from(pkt.seq) + 1);
        }
        if pkt.is_trimmed() {
            // Payload was cut: NACK so the sender readies a retransmission.
            self.stats.headers += 1;
            self.reply(PacketKind::Nack, &pkt, ctx);
            if !self.done {
                ctx.pull_request(self.peer, self.prio);
            }
        } else {
            self.stats.data_pkts += 1;
            if self.mark(u64::from(pkt.seq)) {
                self.stats.payload_bytes += pkt.payload as u64;
                ctx.account_delivered(pkt.payload as u64);
                if self.trace_latency {
                    self.stats
                        .delivery_latencies
                        .push((ctx.now() - pkt.sent).as_ps());
                }
            } else {
                self.stats.duplicate_pkts += 1;
            }
            self.reply(PacketKind::Ack, &pkt, ctx);
            if !self.done {
                ctx.pull_request(self.peer, self.prio);
            }
            self.check_done(ctx);
        }
    }

    fn on_timer(&mut self, _token: u8, _ctx: &mut EndpointCtx<'_, '_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}
