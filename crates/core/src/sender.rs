//! The NDP sender state machine.
//!
//! Lifecycle (§3.2): push `min(IW, total)` packets immediately at line rate
//! (all carrying SYN and their sequence offset), then go quiescent. Every
//! subsequent transmission is triggered by a PULL (retransmissions queued
//! by NACKs go first, then new data), a returned header (return-to-sender,
//! with the anti-incast-echo rules of §3.2.4), or — only for genuinely lost
//! packets, i.e. corruption — the retransmission timeout.

use std::any::Any;
use std::collections::VecDeque;

use ndp_net::host::{Endpoint, EndpointCtx};
use ndp_net::packet::{Flags, FlowId, HostId, Packet, PacketKind, HEADER_BYTES};
use ndp_sim::{ComponentId, FxHashSet, Time};

use crate::path::PathSet;

const RTO_TOKEN: u8 = 1;

/// "Not outstanding" sentinel for the dense per-seq path store (real path
/// indices are small — a path set never approaches 2^32 entries).
const NO_PATH: u32 = u32::MAX;

/// Sender-side counters for the evaluation figures.
#[derive(Clone, Debug, Default)]
pub struct NdpSenderStats {
    pub data_sent: u64,
    pub retransmissions: u64,
    /// Retransmissions triggered via NACK→pull.
    pub rtx_nack: u64,
    /// Retransmissions triggered by returned (RTS) headers.
    pub rtx_rts: u64,
    /// Retransmissions triggered by the RTO (corruption recovery).
    pub rtx_rto: u64,
    pub acks: u64,
    pub nacks: u64,
    pub pulls: u64,
    pub rts_received: u64,
    /// Pulls that arrived when there was nothing left to send.
    pub wasted_pulls: u64,
    pub start_time: Option<Time>,
    pub completion_time: Option<Time>,
}

impl NdpSenderStats {
    /// Flow completion time as seen by the sender (start → all ACKed).
    pub fn fct(&self) -> Option<Time> {
        Some(self.completion_time? - self.start_time?)
    }
}

/// Configuration for one NDP flow.
#[derive(Clone, Debug)]
pub struct NdpFlowCfg {
    pub size_bytes: u64,
    /// Initial window in packets (the paper's only sender parameter; 30 by
    /// default, §6.2).
    pub iw_pkts: u64,
    pub mtu: u32,
    /// Retransmission timeout (1 ms is safe given the 400 µs worst-case
    /// RTT, §3.2.4).
    pub rto: Time,
    /// Number of sender-selectable paths to the destination.
    pub n_paths: u32,
    /// Path-scoreboard outlier exclusion (§3.2.3). Fig 22 ablates this.
    pub path_penalty: bool,
    /// Receiver pulls this flow with strict priority.
    pub high_priority: bool,
    /// Opt-in recovery net for lost PULL packets. The stock RTO (§3.2.4)
    /// only tracks *outstanding* data: once every sent packet has ACK or
    /// NACK feedback, all remaining transmissions wait on the receiver's
    /// pull clock. Pulls carry a cumulative counter, so a lost pull is
    /// normally repaired by the next one — but if the *last* pull the
    /// receiver owed us is lost, no later pull exists, the receiver has no
    /// timer, and the flow stalls forever. With this flag set, a full RTO
    /// of total silence with work still queued self-clocks one packet to
    /// restart the feedback loop. Off by default: the net can fire
    /// spuriously when a pull queue is more than an RTO deep (massive
    /// incast), so only request-serving workloads that need every leg to
    /// complete opt in.
    pub pull_liveness: bool,
    /// Completion notification: (component, token) woken when done.
    pub notify: Option<(ComponentId, u64)>,
}

impl NdpFlowCfg {
    pub fn new(size_bytes: u64) -> NdpFlowCfg {
        NdpFlowCfg {
            size_bytes,
            iw_pkts: 30,
            mtu: 9000,
            rto: Time::from_ms(1),
            n_paths: 1,
            path_penalty: true,
            high_priority: false,
            pull_liveness: false,
            notify: None,
        }
    }

    pub fn payload_per_pkt(&self) -> u64 {
        (self.mtu - HEADER_BYTES) as u64
    }

    /// Total packets for the transfer.
    pub fn total_pkts(&self) -> u64 {
        self.size_bytes.div_ceil(self.payload_per_pkt()).max(1)
    }
}

/// The sender endpoint.
pub struct NdpSender {
    flow: FlowId,
    dst: HostId,
    cfg: NdpFlowCfg,
    total_pkts: u64,
    next_new: u64,
    /// Packets queued for retransmission (pulled before new data).
    rtx_q: VecDeque<u64>,
    rtx_set: FxHashSet<u64>,
    acked: Vec<bool>,
    acked_count: u64,
    /// Per-seq path of packets awaiting ACK/NACK ([`NO_PATH`] = not
    /// outstanding), dense like `acked`. Insert-on-send and the three
    /// feedback removals are the flow's hottest map traffic, so this is a
    /// flat store instead of an ordered map; the one ordered query (oldest
    /// outstanding seq, RTO only) scans — RTO firing is loss-rare.
    outstanding: Vec<u32>,
    outstanding_count: u64,
    /// Total ACK+NACK feedback received (each queues a pull at the rx).
    feedback: u64,
    /// Highest pull counter honoured.
    pull_ctr: u64,
    /// First-window sequences returned to sender (RTS echo suppression).
    first_window_rts: FxHashSet<u64>,
    iw_sent: u64,
    /// Ring of recent feedback kinds (true = ACK) for the RTS "mostly
    /// ACKed" rule.
    recent: VecDeque<bool>,
    paths: PathSet,
    rto_armed: bool,
    /// Time of the most recent feedback (ACK/NACK/PULL/RTS) or send. The
    /// RTO is a reliability net for *corrupted* packets (§3.2): it fires
    /// only when the flow has been completely silent for a full RTO, never
    /// merely because a burst's tail is still being serialized or pulled.
    last_activity: Time,
    done: bool,
    pub stats: NdpSenderStats,
}

impl NdpSender {
    pub fn new(flow: FlowId, dst: HostId, cfg: NdpFlowCfg) -> NdpSender {
        let total_pkts = cfg.total_pkts();
        let paths = PathSet::new(cfg.n_paths, cfg.path_penalty);
        NdpSender {
            flow,
            dst,
            cfg,
            total_pkts,
            next_new: 0,
            rtx_q: VecDeque::new(),
            rtx_set: FxHashSet::default(),
            acked: vec![false; total_pkts as usize],
            acked_count: 0,
            outstanding: vec![NO_PATH; total_pkts as usize],
            outstanding_count: 0,
            feedback: 0,
            pull_ctr: 0,
            first_window_rts: FxHashSet::default(),
            iw_sent: 0,
            recent: VecDeque::new(),
            paths,
            rto_armed: false,
            last_activity: Time::ZERO,
            done: false,
            stats: NdpSenderStats::default(),
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn total_pkts(&self) -> u64 {
        self.total_pkts
    }

    fn pkt_wire_size(&self, seq: u64) -> u32 {
        let per = self.cfg.payload_per_pkt();
        let offset = seq * per;
        let payload = self.cfg.size_bytes.saturating_sub(offset).min(per).max(1) as u32;
        payload + HEADER_BYTES
    }

    fn send_data(
        &mut self,
        seq: u64,
        rtx: bool,
        avoid_path: Option<u32>,
        ctx: &mut EndpointCtx<'_, '_>,
    ) {
        debug_assert!(seq < self.total_pkts, "send_data past end of flow");
        let path = match avoid_path {
            Some(p) => self.paths.next_avoiding(ctx.rng(), p),
            None => self.paths.next(ctx.rng()),
        };
        let mut pkt = Packet::data(
            ctx.host(),
            self.dst,
            self.flow,
            seq,
            self.pkt_wire_size(seq),
        );
        pkt.path = path;
        pkt.sent = ctx.now();
        if seq < self.cfg.iw_pkts {
            // §3.2.2: every first-RTT packet carries SYN + its offset so
            // whichever arrives first can establish connection state.
            pkt.flags = pkt.flags.with(Flags::SYN);
        }
        if rtx {
            pkt.flags = pkt.flags.with(Flags::RTX);
            self.stats.retransmissions += 1;
        }
        // Mark the last packet (§3.2). Trimming preserves flags, so the
        // receiver learns the transfer length even if this packet's payload
        // is cut; it completes only once *all* of 0..total has arrived.
        if seq == self.total_pkts - 1 {
            pkt.flags = pkt.flags.with(Flags::FIN);
        }
        if self.cfg.high_priority {
            pkt.flags = pkt.flags.with(Flags::PRIO);
        }
        let o = &mut self.outstanding[seq as usize];
        if *o == NO_PATH {
            self.outstanding_count += 1;
        }
        *o = path;
        self.stats.data_sent += 1;
        self.last_activity = ctx.now();
        ctx.send(pkt);
        self.arm_rto(ctx);
    }

    #[inline]
    fn clear_outstanding(&mut self, seq: u64) {
        let o = &mut self.outstanding[seq as usize];
        if *o != NO_PATH {
            *o = NO_PATH;
            self.outstanding_count -= 1;
        }
    }

    fn arm_rto(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        if !self.rto_armed && self.outstanding_count > 0 {
            self.rto_armed = true;
            ctx.timer_in(self.cfg.rto, RTO_TOKEN);
        }
    }

    fn queue_rtx(&mut self, seq: u64) {
        if !self.acked[seq as usize] && self.rtx_set.insert(seq) {
            self.rtx_q.push_back(seq);
        }
    }

    fn pop_rtx(&mut self) -> Option<u64> {
        while let Some(seq) = self.rtx_q.pop_front() {
            self.rtx_set.remove(&seq);
            if !self.acked[seq as usize] {
                return Some(seq);
            }
        }
        None
    }

    /// Send up to `n` packets in response to pulls: retransmissions first,
    /// then new data (§3.2).
    fn pump(&mut self, n: u64, ctx: &mut EndpointCtx<'_, '_>) {
        for _ in 0..n {
            if let Some(seq) = self.pop_rtx() {
                self.stats.rtx_nack += 1;
                self.send_data(seq, true, None, ctx);
            } else if self.next_new < self.total_pkts {
                let seq = self.next_new;
                self.next_new += 1;
                self.send_data(seq, false, None, ctx);
            } else {
                self.stats.wasted_pulls += 1;
            }
        }
    }

    fn on_ack(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        let seq = u64::from(pkt.seq);
        if seq >= self.total_pkts {
            return;
        }
        self.stats.acks += 1;
        self.paths.on_ack(pkt.path);
        self.push_recent(true);
        self.feedback += 1;
        self.clear_outstanding(seq);
        if !self.acked[seq as usize] {
            self.acked[seq as usize] = true;
            self.acked_count += 1;
            if self.acked_count == self.total_pkts && !self.done {
                self.done = true;
                self.stats.completion_time = Some(ctx.now());
                if let Some((comp, tok)) = self.cfg.notify {
                    ctx.notify(comp, tok);
                }
            }
        }
    }

    fn on_nack(&mut self, pkt: Packet, _ctx: &mut EndpointCtx<'_, '_>) {
        let seq = u64::from(pkt.seq);
        if seq >= self.total_pkts {
            return;
        }
        self.stats.nacks += 1;
        self.paths.on_nack(pkt.path);
        self.push_recent(false);
        self.feedback += 1;
        // Feedback received: the packet is known-trimmed, stop RTO-tracking
        // it (the receiver queued a pull; retransmission will be pulled).
        self.clear_outstanding(seq);
        self.queue_rtx(seq);
    }

    fn push_recent(&mut self, ack: bool) {
        self.recent.push_back(ack);
        if self.recent.len() > 16 {
            self.recent.pop_front();
        }
    }

    /// §3.2.4 return-to-sender: resend immediately only if (a) we are not
    /// expecting more pulls, or (b) the whole first window bounced, or (c)
    /// feedback is mostly ACKs (asymmetric network — a different path will
    /// likely work). Otherwise queue for pulling, which keeps the pull
    /// clock going without echoing the incast.
    fn on_rts(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        let seq = u64::from(pkt.seq);
        if seq >= self.total_pkts {
            return;
        }
        self.stats.rts_received += 1;
        self.clear_outstanding(seq);
        if self.acked[seq as usize] {
            return;
        }
        if seq < self.iw_sent {
            self.first_window_rts.insert(seq);
        }
        let expecting_pulls = self.feedback > self.pull_ctr;
        let whole_window_returned = self.iw_sent > 0
            && self.first_window_rts.len() as u64 >= self.iw_sent.min(self.total_pkts);
        let mostly_acked = self.recent.len() >= 8
            && self.recent.iter().filter(|&&a| a).count() * 4 >= self.recent.len() * 3;
        if !expecting_pulls || whole_window_returned || mostly_acked {
            self.stats.rtx_rts += 1;
            self.send_data(seq, true, Some(pkt.path), ctx);
        } else {
            self.queue_rtx(seq);
        }
    }

    /// RTO expiry with nothing outstanding. Stock behaviour: stay quiet —
    /// every remaining transmission is the pull clock's job. With
    /// [`NdpFlowCfg::pull_liveness`] set, a full RTO of total silence with
    /// work still queued means the pull clock itself died (the tail pull
    /// was lost); self-clock one packet so feedback starts flowing again.
    /// The packet goes out via [`NdpSender::send_data`], becomes
    /// outstanding, and re-arms the regular RTO, so repeated losses keep
    /// being retried.
    fn pull_liveness_timer(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        if !self.cfg.pull_liveness {
            return;
        }
        if self.rtx_q.is_empty() && self.next_new >= self.total_pkts {
            return;
        }
        let now = ctx.now();
        let deadline = self.last_activity + self.cfg.rto;
        if now < deadline {
            // Feedback flowed more recently than a full RTO ago: the pull
            // may simply be queued. Keep the net armed and check again.
            self.rto_armed = true;
            ctx.timer_in(deadline - now, RTO_TOKEN);
            return;
        }
        self.stats.rtx_rto += 1;
        if let Some(seq) = self.pop_rtx() {
            self.send_data(seq, true, None, ctx);
        } else {
            let seq = self.next_new;
            self.next_new += 1;
            self.send_data(seq, false, None, ctx);
        }
    }
}

impl Endpoint for NdpSender {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
        // Idempotent: trigger chains can deliver duplicate start wakes
        // (both ends of the predecessor flow notify its completion). The
        // initial window is already out; restarting would push `next_new`
        // past `total_pkts` and send phantom sequences.
        if self.stats.start_time.is_some() {
            return;
        }
        self.stats.start_time = Some(ctx.now());
        let burst = self.cfg.iw_pkts.min(self.total_pkts);
        self.iw_sent = burst;
        for _ in 0..burst {
            let seq = self.next_new;
            self.next_new += 1;
            self.send_data(seq, false, None, ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
        self.last_activity = ctx.now();
        match pkt.kind {
            PacketKind::Ack => self.on_ack(pkt, ctx),
            PacketKind::Nack => self.on_nack(pkt, ctx),
            PacketKind::Pull if u64::from(pkt.ack) > self.pull_ctr => {
                let n = u64::from(pkt.ack) - self.pull_ctr;
                self.pull_ctr = u64::from(pkt.ack);
                self.stats.pulls += n;
                self.pump(n, ctx);
            }
            PacketKind::Data if pkt.is_rts() => self.on_rts(pkt, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u8, ctx: &mut EndpointCtx<'_, '_>) {
        if token != RTO_TOKEN {
            return;
        }
        self.rto_armed = false;
        if self.done {
            return;
        }
        if self.outstanding_count == 0 {
            self.pull_liveness_timer(ctx);
            return;
        }
        let now = ctx.now();
        let deadline = self.last_activity + self.cfg.rto;
        if now < deadline {
            // Feedback is still flowing: the flow isn't stalled, so nothing
            // is presumed lost. Re-arm for the remaining silence window.
            self.rto_armed = true;
            ctx.timer_in(deadline - now, RTO_TOKEN);
            return;
        }
        // Full RTO of silence with packets outstanding: something was
        // genuinely lost (corruption, or a dropped header). Resend the
        // oldest outstanding packet on a different path and penalize the
        // old one (§3.2.3).
        if let Some(i) = self.outstanding.iter().position(|&p| p != NO_PATH) {
            let (seq, path) = (i as u64, self.outstanding[i]);
            self.paths.on_loss(path);
            self.stats.rtx_rto += 1;
            self.send_data(seq, true, Some(path), ctx);
        }
        self.arm_rto(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
