//! NDP's [`Transport`] adapter — the bridge between the protocol-neutral
//! experiment harnesses and [`crate::attach_flow`].
//!
//! The Figure 22 ablation (path penalty disabled, §3.2.3) is a configured
//! instance of the same adapter, not a separate protocol.

use ndp_net::host::Host;
use ndp_net::packet::{FlowId, HostId, Packet};
use ndp_sim::{ComponentId, Time, World};
use ndp_transport::{FlowHarvest, FlowSpec, QueueSpec, Transport};

use crate::receiver::NdpReceiver;
use crate::{attach_flow, NdpFlowCfg};

/// NDP over the trimming fabric, with the §3.2.3 path scoreboard on or off.
pub struct NdpTransport {
    pub label: &'static str,
    pub path_penalty: bool,
}

/// The paper's NDP: per-packet multipath with the path penalty enabled.
pub static NDP: NdpTransport = NdpTransport {
    label: "NDP",
    path_penalty: true,
};

/// Figure 22's ablation: keep spraying onto sick paths.
pub static NDP_NO_PENALTY: NdpTransport = NdpTransport {
    label: "NDP (no path penalty)",
    path_penalty: false,
};

impl Transport for NdpTransport {
    fn label(&self) -> &'static str {
        self.label
    }

    fn fabric(&self) -> QueueSpec {
        QueueSpec::ndp_default()
    }

    fn attach(
        &self,
        world: &mut World<Packet>,
        spec: &FlowSpec,
        src: (ComponentId, HostId),
        dst: (ComponentId, HostId),
        n_paths: u32,
        mtu: u32,
    ) {
        let mut cfg = NdpFlowCfg::new(spec.size);
        cfg.mtu = mtu;
        cfg.n_paths = n_paths;
        cfg.path_penalty = self.path_penalty;
        cfg.high_priority = spec.prio;
        cfg.pull_liveness = spec.liveness;
        cfg.notify = spec.notify;
        if let Some(iw) = spec.iw {
            cfg.iw_pkts = iw;
        }
        attach_flow(world, spec.flow, src, dst, cfg, spec.start);
    }

    fn delivered_bytes(&self, world: &World<Packet>, host: ComponentId, flow: FlowId) -> u64 {
        world
            .get::<Host>(host)
            .endpoint::<NdpReceiver>(flow)
            .stats
            .payload_bytes
    }

    fn completion_time(
        &self,
        world: &World<Packet>,
        host: ComponentId,
        flow: FlowId,
    ) -> Option<Time> {
        world
            .get::<Host>(host)
            .endpoint::<NdpReceiver>(flow)
            .stats
            .completion_time
    }

    fn detach(
        &self,
        world: &mut World<Packet>,
        src_host: ComponentId,
        dst_host: ComponentId,
        flow: FlowId,
    ) -> FlowHarvest {
        ndp_transport::detach_endpoints::<NdpReceiver>(world, src_host, dst_host, flow, |tx, r| {
            let s = tx.get::<crate::sender::NdpSender>();
            FlowHarvest {
                delivered_bytes: r.stats.payload_bytes,
                completion_time: r.stats.completion_time,
                first_data: r.stats.first_arrival,
                retransmissions: s.map_or(0, |s| s.stats.retransmissions),
                timeouts: s.map_or(0, |s| s.stats.rtx_rto),
                trimmed_headers: r.stats.headers,
                rts_events: s.map_or(0, |s| s.stats.rts_received),
            }
        })
    }
}
