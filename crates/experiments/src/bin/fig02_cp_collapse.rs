//! Regenerates the paper's fig02_cp_collapse result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig02_cp_collapse::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
