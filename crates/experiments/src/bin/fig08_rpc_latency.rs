//! Regenerates the paper's fig08_rpc_latency result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig08_rpc_latency::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
