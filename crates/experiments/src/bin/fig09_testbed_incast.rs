//! Regenerates the paper's fig09_testbed_incast result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig09_testbed_incast::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
