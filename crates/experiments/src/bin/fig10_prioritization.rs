//! Regenerates the paper's fig10_prioritization result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig10_prioritization::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
