//! Regenerates the paper's fig11_iw_throughput result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig11_iw_throughput::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
