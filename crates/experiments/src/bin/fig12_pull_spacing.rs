//! Regenerates the paper's fig12_pull_spacing result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig12_pull_spacing::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
