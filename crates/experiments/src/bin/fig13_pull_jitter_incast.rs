//! Regenerates the paper's fig13_pull_jitter_incast result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig13_pull_jitter_incast::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
