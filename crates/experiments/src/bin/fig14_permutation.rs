//! Regenerates the paper's fig14_permutation result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig14_permutation::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
