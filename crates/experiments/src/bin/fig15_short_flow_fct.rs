//! Regenerates the paper's fig15_short_flow_fct result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig15_short_flow_fct::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
