//! Regenerates the paper's fig16_incast_scaling result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig16_incast_scaling::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
