//! Regenerates the paper's fig17_iw_buffer_sweep result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig17_iw_buffer_sweep::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
