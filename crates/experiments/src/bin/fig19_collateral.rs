//! Regenerates the paper's fig19_collateral result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig19_collateral::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
