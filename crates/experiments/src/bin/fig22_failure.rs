//! Regenerates the paper's fig22_failure result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig22_failure::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
