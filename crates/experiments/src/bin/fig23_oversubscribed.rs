//! Regenerates the paper's fig23_oversubscribed result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::fig23_oversubscribed::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
