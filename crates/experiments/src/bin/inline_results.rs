//! Regenerates the paper's inline_results result. Set NDP_SCALE=paper for the
//! full-scale run (default: quick).
fn main() {
    let scale = ndp_experiments::Scale::from_env();
    let report = ndp_experiments::inline_results::run(scale);
    println!("{report}");
    println!("headline: {}", report.headline());
}
