//! The one CLI over the experiment registry.
//!
//! ```sh
//! ndp list                      # every experiment id + title
//! ndp topos                     # every registered topology
//! ndp run fig14                 # human-readable tables + headline
//! ndp run fig14 --scale paper   # the paper's parameters
//! ndp run fig16 --json          # machine-readable document
//! ndp run topo_matrix --topo leafspine
//!                               # topology-neutral run on one fabric
//! ndp run all --json            # every experiment, one JSON array
//! ```
//!
//! `--scale` defaults to `NDP_SCALE` (quick when unset); `--topo`
//! defaults to `NDP_TOPO` (each experiment's own fabric when unset).
//! Exit codes: 0 success, 2 usage error.

use ndp_experiments::json::Json;
use ndp_experiments::registry::{self, Experiment};
use ndp_experiments::topo::{self, TopoEntry};
use ndp_experiments::Scale;

const USAGE: &str = "\
usage: ndp <command>

commands:
  list                                 list experiment ids and titles
  topos                                list registered topologies
  run <id>|all [--scale paper|quick] [--topo <name>] [--json]
                                       run one (or every) experiment;
                                       --topo overrides the fabric of
                                       topology-neutral experiments;
                                       --json emits a machine-readable
                                       document instead of tables

scale defaults to $NDP_SCALE (quick when unset); topology defaults to
$NDP_TOPO (each experiment's own fabric when unset).";

fn usage_error(msg: &str) -> ! {
    eprintln!("ndp: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("topos") => topos(),
        Some("run") => run(&args[1..]),
        Some("--help" | "-h" | "help") => println!("{USAGE}"),
        Some(other) => usage_error(&format!("unknown command '{other}'")),
        None => usage_error("missing command"),
    }
}

fn list() {
    let width = registry::all()
        .iter()
        .map(|e| e.id().len())
        .max()
        .unwrap_or(0);
    for exp in registry::all() {
        println!("{:width$}  {}", exp.id(), exp.description());
    }
}

fn topos() {
    let width = topo::TOPOLOGIES
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(0);
    for entry in topo::TOPOLOGIES {
        println!("{:width$}  {}", entry.name, entry.describe);
    }
}

fn run(args: &[String]) {
    let mut target: Option<&str> = None;
    let mut scale: Option<Scale> = None;
    let mut topo_flag: Option<&'static TopoEntry> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--scale needs a value"));
                scale = Some(
                    Scale::parse(v).unwrap_or_else(|| usage_error(&format!("bad scale '{v}'"))),
                );
            }
            "--topo" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--topo needs a value"));
                topo_flag = Some(topo::find_topo(v).unwrap_or_else(|| {
                    usage_error(&format!("unknown topology '{v}' (see 'ndp topos')"))
                }));
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag '{flag}'")),
            id => {
                if target.replace(id).is_some() {
                    usage_error("more than one experiment id");
                }
            }
        }
    }
    // Consult NDP_SCALE/NDP_TOPO only when no explicit flag was given, so
    // a stale/typoed env var cannot override (or abort) an explicit flag.
    let scale = scale.unwrap_or_else(Scale::from_env);
    let topo_env = if topo_flag.is_none() {
        topo::topo_from_env()
    } else {
        None
    };
    let Some(target) = target else {
        usage_error("run needs an experiment id (or 'all')");
    };
    let selected: Vec<&'static dyn Experiment> = if target == "all" {
        registry::all().to_vec()
    } else {
        match registry::find(target) {
            Some(e) => vec![e],
            None => usage_error(&format!("unknown experiment '{target}' (see 'ndp list')")),
        }
    };
    // An explicit --topo on a fixed-shape experiment is a usage error; the
    // NDP_TOPO *default* merely doesn't apply to fixed-shape experiments
    // (so `ndp run all` under NDP_TOPO still works).
    if let (Some(entry), [single]) = (topo_flag, selected.as_slice()) {
        if !single.supports_topo() {
            usage_error(&format!(
                "experiment '{}' has a fixed topology and does not accept --topo {}",
                single.id(),
                entry.name
            ));
        }
    }
    let mut documents = Vec::new();
    for exp in &selected {
        let topo = topo_flag.or(topo_env).filter(|_| exp.supports_topo());
        if !json {
            let suffix = topo
                .map(|t| format!(" --topo {}", t.name))
                .unwrap_or_default();
            eprintln!(
                "== {} — {} [{}{}] ==",
                exp.id(),
                exp.title(),
                scale.name(),
                suffix
            );
        }
        let started = std::time::Instant::now();
        let report = exp.run(scale, topo);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        if json {
            documents.push(registry::document(
                *exp,
                scale,
                topo,
                report.as_ref(),
                wall_ms,
            ));
        } else {
            println!("{report}");
            println!("headline: {}", report.headline());
        }
    }
    if json {
        match documents.as_mut_slice() {
            [single] => println!("{}", std::mem::replace(single, Json::Null).render()),
            _ => println!("{}", Json::Arr(documents).render()),
        }
    }
}
