//! The one CLI over the experiment registry.
//!
//! ```sh
//! ndp list                      # every experiment id + title
//! ndp topos                     # every registered topology
//! ndp run fig14                 # human-readable tables + headline
//! ndp run fig14 --scale paper   # the paper's parameters
//! ndp run fig16 --json          # machine-readable document
//! ndp run topo_matrix --topo leafspine
//!                               # topology-neutral run on one fabric
//! ndp run all --json            # every experiment, one JSON array
//! ```
//!
//! `--scale` defaults to `NDP_SCALE` (quick when unset); `--topo`
//! defaults to `NDP_TOPO` (each experiment's own fabric when unset).
//! Exit codes: 0 success, 2 usage error.

use ndp_experiments::json::Json;
use ndp_experiments::registry::{self, Experiment};
use ndp_experiments::topo::{self, TopoEntry};
use ndp_experiments::Scale;
use ndp_telemetry::{PointTelemetry, TelemetryConfig};

const USAGE: &str = "\
usage: ndp <command>

commands:
  list                                 list experiment ids and titles
  topos                                list registered topologies
  run <id>|all [--scale paper|quick] [--topo <name>] [--json]
      [--trace <path>]
                                       run one (or every) experiment;
                                       --topo overrides the fabric of
                                       topology-neutral experiments;
                                       --json emits a machine-readable
                                       document instead of tables;
                                       --trace records in-sim telemetry
                                       (probes, flow spans, packet flight
                                       records) as NDJSON at <path> plus
                                       a Chrome trace-event file next to
                                       it (Perfetto-loadable)

scale defaults to $NDP_SCALE (quick when unset); topology defaults to
$NDP_TOPO (each experiment's own fabric when unset).";

fn usage_error(msg: &str) -> ! {
    eprintln!("ndp: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("topos") => topos(),
        Some("run") => run(&args[1..]),
        Some("--help" | "-h" | "help") => println!("{USAGE}"),
        Some(other) => usage_error(&format!("unknown command '{other}'")),
        None => usage_error("missing command"),
    }
}

fn list() {
    let width = registry::all()
        .iter()
        .map(|e| e.id().len())
        .max()
        .unwrap_or(0);
    for exp in registry::all() {
        println!("{:width$}  {}", exp.id(), exp.description());
    }
}

fn topos() {
    let width = topo::TOPOLOGIES
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(0);
    for entry in topo::TOPOLOGIES {
        println!("{:width$}  {}", entry.name, entry.describe);
    }
}

fn run(args: &[String]) {
    let mut target: Option<&str> = None;
    let mut scale: Option<Scale> = None;
    let mut topo_flag: Option<&'static TopoEntry> = None;
    let mut json = false;
    let mut trace: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--trace" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--trace needs a path"));
                trace = Some(v);
            }
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--scale needs a value"));
                scale = Some(
                    Scale::parse(v).unwrap_or_else(|| usage_error(&format!("bad scale '{v}'"))),
                );
            }
            "--topo" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--topo needs a value"));
                topo_flag = Some(topo::find_topo(v).unwrap_or_else(|| {
                    usage_error(&format!("unknown topology '{v}' (see 'ndp topos')"))
                }));
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag '{flag}'")),
            id => {
                if target.replace(id).is_some() {
                    usage_error("more than one experiment id");
                }
            }
        }
    }
    // Consult NDP_SCALE/NDP_TOPO only when no explicit flag was given, so
    // a stale/typoed env var cannot override (or abort) an explicit flag.
    let scale = scale.unwrap_or_else(Scale::from_env);
    let topo_env = if topo_flag.is_none() {
        topo::topo_from_env()
    } else {
        None
    };
    let Some(target) = target else {
        usage_error("run needs an experiment id (or 'all')");
    };
    let selected: Vec<&'static dyn Experiment> = if target == "all" {
        registry::all().to_vec()
    } else {
        match registry::find(target) {
            Some(e) => vec![e],
            None => usage_error(&format!("unknown experiment '{target}' (see 'ndp list')")),
        }
    };
    // An explicit --topo on a fixed-shape experiment is a usage error; the
    // NDP_TOPO *default* merely doesn't apply to fixed-shape experiments
    // (so `ndp run all` under NDP_TOPO still works).
    if let (Some(entry), [single]) = (topo_flag, selected.as_slice()) {
        if !single.supports_topo() {
            usage_error(&format!(
                "experiment '{}' has a fixed topology and does not accept --topo {}",
                single.id(),
                entry.name
            ));
        }
    }
    let mut documents = Vec::new();
    let mut trace_points: Vec<PointTelemetry> = Vec::new();
    for exp in &selected {
        let topo = topo_flag.or(topo_env).filter(|_| exp.supports_topo());
        if !json {
            let suffix = topo
                .map(|t| format!(" --topo {}", t.name))
                .unwrap_or_default();
            eprintln!(
                "== {} — {} [{}{}] ==",
                exp.id(),
                exp.title(),
                scale.name(),
                suffix
            );
        }
        // One telemetry session per experiment: its key-sorted points feed
        // that experiment's envelope block, then accumulate (in registry
        // order) into the session-wide trace files.
        if trace.is_some() {
            ndp_telemetry::session::begin(TelemetryConfig::default());
        }
        let started = std::time::Instant::now();
        let report = exp.run(scale, topo);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let points = if trace.is_some() {
            ndp_telemetry::session::end().map_or(Vec::new(), |(_, p)| p)
        } else {
            Vec::new()
        };
        if json {
            let tele = trace.map(|_| telemetry_json(&points));
            documents.push(registry::document_with_telemetry(
                *exp,
                scale,
                topo,
                report.as_ref(),
                wall_ms,
                tele,
            ));
        } else {
            println!("{report}");
            println!("headline: {}", report.headline());
        }
        trace_points.extend(points);
    }
    if let Some(path) = trace {
        write_trace_files(path, &trace_points, json);
    }
    if json {
        match documents.as_mut_slice() {
            [single] => println!("{}", std::mem::replace(single, Json::Null).render()),
            _ => println!("{}", Json::Arr(documents).render()),
        }
    }
}

/// The `telemetry` envelope block: the session summary for one
/// experiment's points.
fn telemetry_json(points: &[PointTelemetry]) -> Json {
    let s = ndp_telemetry::summarize(points);
    Json::obj([
        ("points", Json::num(s.points as f64)),
        ("gauge_records", Json::num(s.gauge_records as f64)),
        ("span_records", Json::num(s.span_records as f64)),
        ("request_records", Json::num(s.request_records as f64)),
        ("hop_records", Json::num(s.hop_records as f64)),
        ("gauges_evicted", Json::num(s.gauges_evicted as f64)),
        ("hops_evicted", Json::num(s.hops_evicted as f64)),
        ("peak_queue_bytes", Json::num(s.peak_queue_bytes as f64)),
        ("max_span_gap_ps", Json::num(s.max_span_gap_ps as f64)),
        ("stuck_spans", Json::num(s.stuck_spans as f64)),
        ("stuck_requests", Json::num(s.stuck_requests as f64)),
    ])
}

/// `<path>` gets the NDJSON stream; the Chrome trace-event document goes
/// next to it (`.ndjson` → `.chrome.json`, else `<path>.chrome.json`).
fn chrome_path(path: &str) -> String {
    match path.strip_suffix(".ndjson") {
        Some(stem) => format!("{stem}.chrome.json"),
        None => format!("{path}.chrome.json"),
    }
}

fn write_trace_files(path: &str, points: &[PointTelemetry], json: bool) {
    let ndjson = ndp_telemetry::write_ndjson(points);
    if let Err(e) = std::fs::write(path, &ndjson) {
        eprintln!("ndp: cannot write trace '{path}': {e}");
        std::process::exit(1);
    }
    let chrome = chrome_path(path);
    if let Err(e) = std::fs::write(&chrome, ndp_telemetry::write_chrome_trace(points)) {
        eprintln!("ndp: cannot write trace '{chrome}': {e}");
        std::process::exit(1);
    }
    if !json {
        let s = ndp_telemetry::summarize(points);
        eprintln!(
            "trace: {} points, {} gauges, {} spans ({} stuck), {} requests ({} stuck), \
             {} hops -> {path} + {chrome}",
            s.points,
            s.gauge_records,
            s.span_records,
            s.stuck_spans,
            s.request_records,
            s.stuck_requests,
            s.hop_records
        );
    }
}
