//! The `failure_matrix` experiment family: open-loop traffic through a
//! scheduled fabric failure, per transport × topology.
//!
//! Each cell runs one seeded world through four windows: `warmup`
//! (unmeasured), `pre` (healthy baseline), `during` (one core-tier link
//! pair is down, both directions), and `post` (link restored). The
//! failure is executed inside simulated time by a
//! [`ndp_topology::ChaosController`] walking a [`FabricEvent`] schedule —
//! the same machinery `ndp run` exposes for ad-hoc campaigns — so the
//! switch port masks flip, buffered packets are lost, and multipath
//! senders must re-spray around the hole while single-path transports
//! lean on retransmission.
//!
//! Every completed flow is attributed to the phase its *arrival* fell in
//! (a flow that starts healthy and finishes mid-failure is a `pre` flow
//! whose slowdown absorbs the failure), and each phase reports
//! p50/p99/p999 slowdown. The cell also reports `stuck_flows` (measured
//! flows that never completed within the drain cap — the survivability
//! claim is that NDP has zero), `reroutes` (packets the switches steered
//! off dead ports), and the controller's per-kind link-event tally.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

use ndp_metrics::{SlowdownBins, Table};
use ndp_net::flight::{FlightHook, FlightRecorder};
use ndp_net::packet::{HostId, Packet};
use ndp_net::queue::Queue;
use ndp_net::switch::Switch;
use ndp_net::{CompletionSink, Host};
use ndp_sim::{SchedulerKind, Time, World};
use ndp_telemetry::{Probe, ProbeSpec, SampleRing, SpanLog};
use ndp_topology::{link_index, ChaosController, ChaosTally, FabricEvent, FabricOp, Topology};
use ndp_workloads::{ArrivalProcess, DynamicWorkload};

use crate::harness::{Proto, Scale};
use crate::openloop::{DistKind, Spawner, SWEEP_PROTOS};
use crate::sweep::SweepSpec;
use crate::topo::{registered, TopoEntry, TopoSpec};

/// The default topology axis: one three-tier and one two-tier fabric, so
/// the failure exercises both the Agg→Core and the ToR→Spine reroute
/// arithmetic.
pub const MATRIX_TOPOS: &[&str] = &["fattree", "leafspine"];

/// The phase labels, in timeline order.
pub const PHASES: &[&str] = &["pre", "during", "post"];

/// One (transport, topology) failure-injection simulation.
#[derive(Clone, Debug)]
pub struct FailurePoint {
    pub proto: Proto,
    pub topo: TopoSpec,
    pub dist: DistKind,
    pub load: f64,
    pub seed: u64,
    pub warmup: Time,
    /// Healthy baseline window (measured).
    pub pre: Time,
    /// Failure window: the victim link pair is down throughout.
    pub during: Time,
    /// Recovery window after the link comes back.
    pub post: Time,
    /// Drain cap after arrivals stop.
    pub drain: Time,
    /// Engine scheduler override (`None` = the process default), used by
    /// the determinism tests to A/B the two scheduler implementations.
    pub sched: Option<SchedulerKind>,
}

/// One cell's results.
pub struct FailureResult {
    pub proto: Proto,
    pub topo: &'static str,
    /// Per-phase slowdown samples, indexed like [`PHASES`].
    pub phases: [SlowdownBins; 3],
    /// Flows whose start fell in the measurement window.
    pub measured: usize,
    /// Measured flows that did not complete within the drain cap.
    pub stuck_flows: usize,
    pub offered: usize,
    /// Directional links taken down at the failure instant.
    pub failed_links: usize,
    /// Packets steered off dead ports, summed over every switch.
    pub reroutes: u64,
    /// Packets lost to down links (flushed, on-the-wire, or unbounceable
    /// arrivals), summed over every queue.
    pub dropped_down: u64,
    /// The chaos controller's per-kind event tally.
    pub tally: ChaosTally,
    pub events_processed: u64,
    pub event_kinds: ndp_sim::EventKindCounts,
    pub peak_live_components: usize,
    pub peak_live_flows: usize,
}

impl FailureResult {
    /// Phase percentile, NaN when the phase has no samples (the shared
    /// nearest-rank helper in `ndp_metrics::percentile`).
    pub fn percentile(&self, phase: usize, p: f64) -> f64 {
        self.phases[phase].overall().percentile_or_nan(p)
    }
}

/// The victim: the first core-tier link pair the fabric has, by label —
/// `agg_up[0][0]`/`core_down[0][0]` on three-tier shapes,
/// `tor_up[0][0]`/`spine_down[0][0]` on two-tier ones. Both directions
/// die together, like a real transceiver failure. Fabrics with neither
/// (back-to-back) get no failure: the matrix still runs, as a control.
fn victim_links(topo: &dyn Topology) -> Vec<usize> {
    let links = topo.links();
    for pair in [
        ["agg_up[0][0]", "core_down[0][0]"],
        ["tor_up[0][0]", "spine_down[0][0]"],
    ] {
        let found: Vec<usize> = pair
            .iter()
            .filter_map(|label| link_index(&links, label))
            .collect();
        if found.len() == pair.len() {
            return found;
        }
    }
    Vec::new()
}

/// The simulation behind one [`FailurePoint`]: the open-loop pipeline
/// (lazy [`Spawner`], streaming completions, drain-to-idle) plus a
/// [`ChaosController`] that kills the victim link pair for the `during`
/// window. Builds its own seeded world, so sweep cells stay
/// bit-reproducible regardless of `NDP_THREADS`.
pub(crate) fn failure_world_run(point: &FailurePoint) -> FailureResult {
    let mut world: World<Packet> = match point.sched {
        Some(kind) => World::with_scheduler(point.seed, kind),
        None => World::new(point.seed),
    };
    let topo: Arc<dyn Topology> = Arc::from(point.topo.build(&mut world, point.proto.fabric()));
    let n = topo.n_hosts();
    let sink = world.add(CompletionSink::totals_only());
    for h in 0..n {
        world
            .get_mut::<Host>(topo.host(h as HostId))
            .set_completion_sink(sink);
    }

    let pre_end = point.warmup + point.pre;
    let during_end = pre_end + point.during;
    let arrivals_end = during_end + point.post;
    let victims = victim_links(topo.as_ref());
    let mut schedule = Vec::with_capacity(victims.len() * 2);
    for &link in &victims {
        schedule.push(FabricEvent {
            at: pre_end,
            op: FabricOp::LinkDown { link },
        });
        schedule.push(FabricEvent {
            at: during_end,
            op: FabricOp::LinkUp { link },
        });
    }
    let ctrl = (!schedule.is_empty())
        .then(|| ChaosController::install_into(&mut world, topo.as_ref(), schedule));

    let sizes = point.dist.cdf();
    let process = ArrivalProcess::poisson_for_load(
        point.load,
        topo.host_link_speed().as_bps(),
        sizes.mean_size(),
    );
    let workload =
        DynamicWorkload::new(n, process, sizes, point.seed ^ 0xD15C, arrivals_end.as_ps());
    let sp = Spawner::install_into(
        &mut world,
        point.proto,
        topo.clone(),
        workload,
        point.warmup,
    );
    let cap = arrivals_end + point.drain;

    // Telemetry wiring (opt-in, gated on an active session): flight
    // recorder on the victim queues plus reroute hooks on every switch,
    // a sampling probe over the same targets, per-flow spans from the
    // spawner. With no session none of this exists — the event stream and
    // golden hashes are untouched.
    let tele_cfg = ndp_telemetry::session::active();
    let mut tele_tags: Vec<String> = Vec::new();
    let mut tele_recorder: Option<Arc<Mutex<FlightRecorder>>> = None;
    let mut tele_ring: Option<Arc<Mutex<SampleRing>>> = None;
    let mut tele_spans: Option<SpanLog> = None;
    if let Some(cfg) = tele_cfg {
        let links = topo.links();
        let recorder = Arc::new(Mutex::new(FlightRecorder::new(cfg.flight_capacity)));
        let mut probe_queues = Vec::new();
        for &li in &victims {
            let l = &links[li];
            let tag = tele_tags.len() as u32;
            tele_tags.push(l.label.clone());
            probe_queues.push((l.queue, tag));
            if cfg.flight {
                let hook = FlightHook::new(Arc::clone(&recorder), tag);
                world.get_mut::<Queue>(l.queue).set_flight_hook(Some(hook));
            }
        }
        let mut probe_switches = Vec::new();
        let ids: Vec<_> = world.ids().collect();
        for id in ids {
            if world.try_get::<Switch>(id).is_none() {
                continue;
            }
            let tag = tele_tags.len() as u32;
            tele_tags.push(format!("switch[{}]", probe_switches.len()));
            probe_switches.push((id, tag));
            if cfg.flight {
                let hook = FlightHook::new(Arc::clone(&recorder), tag);
                world.get_mut::<Switch>(id).set_flight_hook(Some(hook));
            }
        }
        let live_gauge = Arc::new(AtomicU64::new(0));
        if cfg.spans {
            let spans = ndp_telemetry::span::span_log();
            let s = world.get_mut::<Spawner>(sp);
            s.set_span_log(spans.clone());
            s.set_live_gauge(Arc::clone(&live_gauge));
            tele_spans = Some(spans);
        }
        // Sample through the measured windows only: the drain tail is
        // near-constant, and letting it tick would evict the failure
        // window from the bounded ring on stuck-flow cells that run to
        // the full drain cap.
        let (_, ring) = Probe::install_into(
            &mut world,
            ProbeSpec {
                tick: cfg.probe_tick,
                until: arrivals_end,
                capacity: cfg.gauge_capacity,
                queues: probe_queues,
                switches: probe_switches,
                live_flows: Some(live_gauge),
            },
        );
        tele_ring = Some(ring);
        if cfg.flight {
            tele_recorder = Some(recorder);
        }
    }

    // Phase of a measured flow, by its arrival instant.
    let phase_of = |start: Time| -> usize {
        if start < pre_end {
            0
        } else if start < during_end {
            1
        } else {
            2
        }
    };

    let chunk = Time::from_ps(((arrivals_end.as_ps() / 8).max(Time::from_ms(1).as_ps())).max(1));
    // Note: SlowdownBins::default() has no bins — `new()` is the
    // shape-stable constructor.
    let mut phases: [SlowdownBins; 3] = [
        SlowdownBins::new(),
        SlowdownBins::new(),
        SlowdownBins::new(),
    ];
    let mut done = false;
    let mut target = Time::ZERO;
    while !done {
        target = (target.max(world.now()) + chunk).min(cap);
        done = target == cap;
        world.run_until(target);
        let batch = std::mem::take(&mut world.get_mut::<Spawner>(sp).completed);
        for c in &batch {
            if c.measured {
                phases[phase_of(c.start)].add(c.bytes, c.slowdown);
            }
        }
        if world.now() >= arrivals_end && world.get::<Spawner>(sp).live_flows() == 0 {
            done = true;
        }
        world.shrink_idle();
    }

    let (stragglers, offered, measured, peak_live_flows) = {
        let s = world.get_mut::<Spawner>(sp);
        (
            s.drain_live(),
            s.started as usize,
            s.measured_arrivals,
            s.peak_live,
        )
    };
    let mut stuck_flows = 0usize;
    for (flow, meta) in stragglers {
        if meta.measured {
            stuck_flows += 1;
        }
        let harvest = point.proto.transport().detach(
            &mut world,
            topo.host(meta.src),
            topo.host(meta.dst),
            flow,
        );
        if let Some(spans) = &tele_spans {
            let mut span =
                ndp_telemetry::FlowSpan::open(flow, meta.src, meta.dst, meta.bytes, meta.start);
            span.measured = meta.measured;
            span.stuck = true;
            span.absorb(&harvest);
            ndp_telemetry::span::push_span(spans, span);
        }
    }

    let ids: Vec<_> = world.ids().collect();
    let reroutes = ids
        .iter()
        .filter_map(|&id| world.try_get::<Switch>(id))
        .map(|sw| sw.rerouted)
        .sum();
    let dropped_down = ids
        .iter()
        .filter_map(|&id| world.try_get::<Queue>(id))
        .map(|q| q.stats.dropped_down)
        .sum();
    let tally = ctrl.map_or(ChaosTally::default(), |c| {
        world.get::<ChaosController>(c).tally
    });

    if tele_cfg.is_some() {
        let (gauges, gauges_evicted) = tele_ring.map_or((Vec::new(), 0), |r| {
            let mut g = match r.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            (g.take(), g.evicted)
        });
        let (hops, hops_evicted) = tele_recorder.map_or((Vec::new(), 0), |r| {
            let mut g = match r.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            (g.take(), g.evicted)
        });
        ndp_telemetry::session::submit(ndp_telemetry::PointTelemetry {
            key: format!("{}/{}", point.topo.name(), point.proto.label()),
            tags: tele_tags,
            gauges,
            gauges_evicted,
            spans: tele_spans.map_or(Vec::new(), |s| ndp_telemetry::span::take_spans(&s)),
            requests: Vec::new(),
            hops,
            hops_evicted,
        });
    }

    FailureResult {
        proto: point.proto,
        topo: point.topo.name(),
        phases,
        measured,
        stuck_flows,
        offered,
        failed_links: victims.len(),
        reroutes,
        dropped_down,
        tally,
        events_processed: world.events_processed(),
        event_kinds: world.event_kind_counts(),
        peak_live_components: world.peak_live_components(),
        peak_live_flows,
    }
}

pub struct Report {
    pub load: f64,
    pub cells: Vec<FailureResult>,
}

/// (warmup, pre, during, post, drain) windows. The drain is a *cap*, not
/// a fixed horizon — the run ends the moment the live-flow gauge hits
/// zero — so it is sized generously: an elephant arriving at the very end
/// of the post window needs tens of milliseconds to finish, and counting
/// that natural tail as "stuck" would drown the survivability signal.
fn windows(scale: Scale) -> (Time, Time, Time, Time, Time) {
    match scale {
        Scale::Paper => (
            Time::from_ms(5),
            Time::from_ms(15),
            Time::from_ms(15),
            Time::from_ms(15),
            Time::from_ms(200),
        ),
        Scale::Quick => (
            Time::from_ms(2),
            Time::from_ms(6),
            Time::from_ms(6),
            Time::from_ms(6),
            Time::from_ms(120),
        ),
    }
}

pub fn run(scale: Scale, topo: Option<&'static TopoEntry>) -> Report {
    let entries: Vec<&'static TopoEntry> = match topo {
        Some(e) => vec![e],
        None => MATRIX_TOPOS.iter().map(|n| registered(n)).collect(),
    };
    let (warmup, pre, during, post, drain) = windows(scale);
    // High enough that the dead link's lost capacity visibly hurts the
    // during-failure percentiles, low enough that every transport's
    // recovery machinery still completes the post-failure tail.
    let load = 0.3;
    let points: Vec<FailurePoint> = entries
        .iter()
        .enumerate()
        .flat_map(|(ti, e)| {
            SWEEP_PROTOS.iter().map(move |&proto| FailurePoint {
                proto,
                topo: e.spec(scale),
                dist: DistKind::WebSearch,
                load,
                // One seed per topology, shared across protocols: paired
                // arrival sequences within each fabric column.
                seed: 0xFA11 + ti as u64,
                warmup,
                pre,
                during,
                post,
                drain,
                sched: None,
            })
        })
        .collect();
    let cells = SweepSpec::new("failure_matrix", points).run(failure_world_run);
    Report { load, cells }
}

fn fmt_or_dash(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "-".into()
    }
}

impl Report {
    /// One cell's phase p99, NaN when missing.
    pub fn p99(&self, topo: &str, proto: Proto, phase: usize) -> f64 {
        self.cells
            .iter()
            .find(|c| c.topo == topo && c.proto == proto)
            .map(|c| c.percentile(phase, 0.99))
            .unwrap_or(f64::NAN)
    }

    pub fn stuck(&self, topo: &str, proto: Proto) -> usize {
        self.cells
            .iter()
            .find(|c| c.topo == topo && c.proto == proto)
            .map(|c| c.stuck_flows)
            .unwrap_or(usize::MAX)
    }

    pub fn headline(&self) -> String {
        let topos: Vec<&str> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.topo) {
                    seen.push(c.topo);
                }
            }
            seen
        };
        let per_topo: Vec<String> = topos
            .iter()
            .map(|&t| {
                format!(
                    "{t}: NDP p99 {}→{}→{}, {} stuck",
                    fmt_or_dash(self.p99(t, Proto::Ndp, 0), 1),
                    fmt_or_dash(self.p99(t, Proto::Ndp, 1), 1),
                    fmt_or_dash(self.p99(t, Proto::Ndp, 2), 1),
                    self.stuck(t, Proto::Ndp),
                )
            })
            .collect();
        format!(
            "link failure mid-run @{:.0}% load, pre→during→post slowdown — {}",
            self.load * 100.0,
            per_topo.join("; ")
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec![
            "topology".to_string(),
            "protocol".into(),
            "flows".into(),
            "stuck".into(),
            "reroutes".into(),
            "events".into(),
        ];
        for phase in PHASES {
            header.push(format!("{phase} p50/p99/p999"));
        }
        let mut t = Table::new(header);
        for c in &self.cells {
            let mut row = vec![
                c.topo.to_string(),
                c.proto.label().to_string(),
                c.measured.to_string(),
                c.stuck_flows.to_string(),
                c.reroutes.to_string(),
                c.tally.applied().to_string(),
            ];
            for phase in 0..PHASES.len() {
                row.push(format!(
                    "{}/{}/{}",
                    fmt_or_dash(c.percentile(phase, 0.50), 1),
                    fmt_or_dash(c.percentile(phase, 0.99), 1),
                    fmt_or_dash(c.percentile(phase, 0.999), 1)
                ));
            }
            t.row(row);
        }
        write!(
            f,
            "Failure matrix — one core-tier link pair down mid-run @{:.0}% load\n{}",
            self.load * 100.0,
            t.render()
        )
    }
}

/// Registry entry.
pub struct FailureMatrix;

impl crate::registry::Experiment for FailureMatrix {
    fn id(&self) -> &'static str {
        "failure_matrix"
    }
    fn title(&self) -> &'static str {
        "Transport x topology matrix through a scheduled link failure"
    }
    fn description(&self) -> &'static str {
        "Open-loop websearch traffic while a core-tier link pair dies and \
         recovers mid-run; per-phase (pre/during/post) p50/p99/p999 \
         slowdown, stuck flows and reroute counts for NDP vs DCTCP vs \
         pHost across {fattree, leafspine} (or the fabric named by --topo)"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale, topo))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }

    fn run_stats(&self) -> crate::registry::RunStats {
        crate::registry::RunStats {
            events_processed: Some(self.cells.iter().map(|c| c.events_processed).sum()),
            event_kinds: Some(self.cells.iter().map(|c| c.event_kinds).sum()),
            peak_live_components: self
                .cells
                .iter()
                .map(|c| c.peak_live_components as u64)
                .max(),
            peak_live_flows: self.cells.iter().map(|c| c.peak_live_flows as u64).max(),
            link_events_applied: Some(self.cells.iter().map(|c| c.tally.applied()).sum()),
            reroutes: Some(self.cells.iter().map(|c| c.reroutes).sum()),
            stuck_flows: Some(self.cells.iter().map(|c| c.stuck_flows as u64).sum()),
            dropped_down: Some(self.cells.iter().map(|c| c.dropped_down).sum()),
        }
    }

    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("load", Json::num(self.load)),
            ("phases", Json::arr(PHASES.iter().map(|&p| Json::str(p)))),
            (
                "cells",
                Json::arr(self.cells.iter().map(|c| {
                    Json::obj([
                        ("topo", Json::str(c.topo)),
                        ("proto", Json::str(c.proto.label())),
                        ("measured", Json::num(c.measured as f64)),
                        ("stuck_flows", Json::num(c.stuck_flows as f64)),
                        ("failed_links", Json::num(c.failed_links as f64)),
                        ("reroutes", Json::num(c.reroutes as f64)),
                        ("dropped_down", Json::num(c.dropped_down as f64)),
                        (
                            "link_events",
                            Json::obj([
                                ("applied", Json::num(c.tally.applied() as f64)),
                                ("link_down", Json::num(c.tally.link_down as f64)),
                                ("link_up", Json::num(c.tally.link_up as f64)),
                            ]),
                        ),
                        (
                            "phases",
                            Json::arr((0..PHASES.len()).map(|ph| {
                                Json::obj([
                                    ("phase", Json::str(PHASES[ph])),
                                    ("n", Json::num(c.phases[ph].overall().len() as f64)),
                                    ("p50", Json::num(c.percentile(ph, 0.50))),
                                    ("p99", Json::num(c.percentile(ph, 0.99))),
                                    ("p999", Json::num(c.percentile(ph, 0.999))),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_point(topo: &str, proto: Proto, seed: u64) -> FailurePoint {
        let (warmup, pre, during, post, drain) = windows(Scale::Quick);
        FailurePoint {
            proto,
            topo: registered(topo).spec(Scale::Quick),
            dist: DistKind::WebSearch,
            load: 0.3,
            seed,
            warmup,
            pre,
            during,
            post,
            drain,
            sched: None,
        }
    }

    fn fingerprint(r: &FailureResult) -> Vec<u64> {
        let mut v = vec![
            r.measured as u64,
            r.stuck_flows as u64,
            r.offered as u64,
            r.reroutes,
            r.tally.applied(),
            r.events_processed,
        ];
        for (ph, bins) in r.phases.iter().enumerate() {
            v.push(bins.overall().len() as u64);
            v.push(r.percentile(ph, 0.99).to_bits());
        }
        v
    }

    #[test]
    fn ndp_survives_a_core_link_failure_with_zero_stuck_flows() {
        let r = failure_world_run(&quick_point("fattree", Proto::Ndp, 0xFA11));
        assert_eq!(r.failed_links, 2, "both directions of the victim die");
        assert_eq!(r.tally.applied(), 4, "2x LinkDown + 2x LinkUp");
        for (ph, bins) in r.phases.iter().enumerate() {
            assert!(
                !bins.is_empty(),
                "phase {} measured no completions",
                PHASES[ph]
            );
        }
        // The survivability claim: every measured flow completes.
        assert_eq!(r.stuck_flows, 0, "NDP must strand no flows");
        // The during-failure window visibly hurts vs. the healthy baseline
        // (respray + retransmission around the hole cost real time).
        let (pre, during) = (r.percentile(0, 0.99), r.percentile(1, 0.99));
        assert!(
            during > pre,
            "failure should degrade p99: pre {pre:.2} vs during {during:.2}"
        );
        // The reroute path actually fired while the link was down.
        assert!(r.reroutes > 0, "no packets were steered off the dead port");
    }

    #[test]
    fn failure_run_is_bit_identical_across_threads_and_schedulers() {
        let points = vec![
            quick_point("fattree", Proto::Ndp, 7),
            quick_point("leafspine", Proto::Dctcp, 7),
        ];
        let spec = SweepSpec::new("det", points.clone());
        let serial: Vec<_> = spec
            .run_with_threads(1, failure_world_run)
            .iter()
            .map(fingerprint)
            .collect();
        let threaded: Vec<_> = spec
            .run_with_threads(7, failure_world_run)
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(serial, threaded, "thread count changed results");
        for (kind, point) in [
            (SchedulerKind::TwoTier, &points[0]),
            (SchedulerKind::Classic, &points[0]),
        ] {
            let mut p = point.clone();
            p.sched = Some(kind);
            assert_eq!(
                fingerprint(&failure_world_run(&p)),
                serial[0],
                "{kind:?} scheduler diverged from the default"
            );
        }
    }

    #[test]
    fn matrix_covers_both_axes_and_reports_chaos_counters() {
        let rep = run(Scale::Quick, None);
        assert_eq!(rep.cells.len(), MATRIX_TOPOS.len() * SWEEP_PROTOS.len());
        for c in &rep.cells {
            assert!(
                c.measured > 0,
                "{}/{}: no measured flows",
                c.topo,
                c.proto.label()
            );
            assert_eq!(c.tally.applied(), 4, "{}: wrong event tally", c.topo);
        }
        // The registry envelope carries the chaos counters.
        let stats = crate::registry::Report::run_stats(&rep);
        assert_eq!(stats.link_events_applied, Some(4 * rep.cells.len() as u64));
        assert!(stats.stuck_flows.is_some());
        assert!(stats.reroutes.is_some());
    }
}
