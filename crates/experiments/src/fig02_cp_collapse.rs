//! Figure 2: CP's congestion collapse and phase effects vs the NDP switch.
//!
//! 1–200 unresponsive line-rate senders converge on one 10 Gb/s link.
//! We report, per flow count: mean % of fair goodput and the mean of the
//! worst 10 % of flows, for the CP switch (FIFO trim, no priority, no
//! randomization) and the NDP switch (dual queue, 10:1 WRR, 50 % tail
//! trim). Expected shape: NDP stays ≈100 % with tight worst-10 %; CP's
//! mean decays as headers eat the link and its worst-10 % collapses from
//! phase effects.

use ndp_baselines::blast::{attach_blast, fair_share_fraction, CountSink};
use ndp_metrics::{mean, worst_fraction_mean, Table};
use ndp_net::host::Host;
use ndp_net::packet::Packet;
use ndp_sim::{Speed, Time, World};
use ndp_topology::{QueueSpec, SingleBottleneck};

use crate::harness::Scale;

pub struct Row {
    pub n_flows: usize,
    pub ndp_mean: f64,
    pub ndp_worst10: f64,
    pub cp_mean: f64,
    pub cp_worst10: f64,
}

pub struct Report {
    pub rows: Vec<Row>,
}

fn one_run(fabric: QueueSpec, n: usize, span: Time, seed: u64) -> Vec<f64> {
    let mut world: World<Packet> = World::new(seed);
    let sb = SingleBottleneck::build(
        &mut world,
        n,
        Speed::gbps(10),
        Time::from_us(1),
        9000,
        fabric,
    );
    for s in 0..n {
        // Stagger starts within one packet time so arrival phases differ
        // (as OS scheduling jitter would in the real world; without this,
        // the CP phase effect is even *more* brutal).
        let start = Time::from_ns(7_200 * s as u64 / n.max(1) as u64);
        attach_blast(
            &mut world,
            s as u64 + 1,
            (sb.senders[s], s as u32),
            (sb.receiver, n as u32),
            9000,
            Speed::gbps(10),
            start,
        );
    }
    world.run_until(span);
    let host = world.get::<Host>(sb.receiver);
    (1..=n as u64)
        .map(|f| {
            let bytes = host.endpoint::<CountSink>(f).payload_bytes;
            100.0 * fair_share_fraction(bytes, n, Speed::gbps(10), 9000, span)
        })
        .collect()
}

pub fn run(scale: Scale) -> Report {
    let span = match scale {
        Scale::Paper => Time::from_ms(20),
        Scale::Quick => Time::from_ms(5),
    };
    let counts: &[usize] = match scale {
        Scale::Paper => &[1, 2, 5, 10, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200],
        Scale::Quick => &[1, 5, 20, 60, 100],
    };
    let rows = counts
        .iter()
        .map(|&n| {
            let ndp = one_run(QueueSpec::ndp_default(), n, span, 42);
            let cp = one_run(QueueSpec::Cp { thresh_pkts: 8 }, n, span, 42);
            Row {
                n_flows: n,
                ndp_mean: mean(&ndp),
                ndp_worst10: worst_fraction_mean(&ndp, 0.10),
                cp_mean: mean(&cp),
                cp_worst10: worst_fraction_mean(&cp, 0.10),
            }
        })
        .collect();
    Report { rows }
}

impl Report {
    pub fn headline(&self) -> String {
        let last = self.rows.last().expect("rows");
        format!(
            "at {} flows: NDP mean {:.0}% / worst-10% {:.0}%; CP mean {:.0}% / worst-10% {:.0}%",
            last.n_flows, last.ndp_mean, last.ndp_worst10, last.cp_mean, last.cp_worst10
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "flows",
            "NDP mean%",
            "NDP worst10%",
            "CP mean%",
            "CP worst10%",
        ]);
        for r in &self.rows {
            t.row([
                r.n_flows.to_string(),
                format!("{:.1}", r.ndp_mean),
                format!("{:.1}", r.ndp_worst10),
                format!("{:.1}", r.cp_mean),
                format!("{:.1}", r.cp_worst10),
            ]);
        }
        write!(
            f,
            "Figure 2 — percent of fair goodput achieved (unresponsive flows)\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig02;

impl crate::registry::Experiment for Fig02 {
    fn id(&self) -> &'static str {
        "fig02"
    }
    fn title(&self) -> &'static str {
        "CP congestion collapse and phase effects vs the NDP switch"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "rows",
            Json::arr(self.rows.iter().map(|r| {
                Json::obj([
                    ("flows", Json::num(r.n_flows as f64)),
                    ("ndp_mean_pct", Json::num(r.ndp_mean)),
                    ("ndp_worst10_pct", Json::num(r.ndp_worst10)),
                    ("cp_mean_pct", Json::num(r.cp_mean)),
                    ("cp_worst10_pct", Json::num(r.cp_worst10)),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndp_beats_cp_under_overload() {
        let rep = run(Scale::Quick);
        let heavy = rep.rows.last().unwrap();
        assert!(heavy.ndp_mean > 85.0, "NDP mean {:.1}", heavy.ndp_mean);
        assert!(heavy.ndp_mean > heavy.cp_mean, "NDP must beat CP");
        // Phase effects: CP's worst flows do relatively worse than NDP's.
        assert!(
            heavy.ndp_worst10 / heavy.ndp_mean.max(1e-9)
                >= heavy.cp_worst10 / heavy.cp_mean.max(1e-9) - 0.05,
            "NDP fairness must not be worse than CP's"
        );
    }
}
