//! Figure 4: CDF of per-packet delivery latency (first send → ACKed data
//! arrival) for permutation, random, and 100:1 incast traffic on the
//! 432-host FatTree.
//!
//! Expected shape: permutation and random medians around ~100 µs; the
//! 135 KB incast (whole transfer inside the first RTT) shows heavy
//! trimming with a long tail; the 1350 KB incast settles into pull-paced
//! delivery with a low median.

use ndp_core::NdpReceiver;
use ndp_metrics::{Cdf, Table};
use ndp_net::host::Host;
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{Time, World};
use ndp_topology::{FatTree, FatTreeCfg};

use crate::harness::{FlowSpec, Scale};

pub struct Report {
    pub permutation: Cdf,
    pub random: Cdf,
    pub incast_135k: Cdf,
    pub incast_1350k: Cdf,
}

fn collect_latencies(world: &World<Packet>, ft: &FatTree, flows: &[(u64, usize)]) -> Cdf {
    let mut samples = Vec::new();
    for &(flow, dst) in flows {
        let r = world
            .get::<Host>(ft.hosts[dst])
            .endpoint::<NdpReceiver>(flow);
        samples.extend(r.stats.delivery_latencies.iter().map(|&ps| ps as f64 / 1e6));
    }
    Cdf::from_samples(samples)
}

fn tm_run(scale: Scale, seed: u64, random: bool, horizon: Time) -> Cdf {
    let cfg = FatTreeCfg::new(scale.big_k());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let dsts = if random {
        ndp_workloads::random_matrix(n, &mut rng)
    } else {
        ndp_workloads::permutation(n, &mut rng)
    };
    let mut flows = Vec::new();
    for (src, &dst) in dsts.iter().enumerate() {
        let flow = src as u64 + 1;
        let spec = FlowSpec::new(
            flow,
            src as HostId,
            dst as HostId,
            crate::harness::LONG_FLOW,
        );
        attach_with_trace(&mut world, &ft, &spec);
        flows.push((flow, dst));
    }
    world.run_until(horizon);
    collect_latencies(&world, &ft, &flows)
}

/// Attach an NDP flow whose receiver records delivery latencies.
fn attach_with_trace(world: &mut World<Packet>, ft: &FatTree, spec: &FlowSpec) {
    use ndp_core::{NdpFlowCfg, NdpSender};
    let mut cfg = NdpFlowCfg::new(spec.size);
    cfg.mtu = ft.cfg.mtu;
    cfg.n_paths = ft.n_paths(spec.src, spec.dst);
    if let Some(iw) = spec.iw {
        cfg.iw_pkts = iw;
    }
    let sender = NdpSender::new(spec.flow, spec.dst, cfg);
    let receiver = NdpReceiver::new(spec.src).with_latency_trace();
    world
        .get_mut::<Host>(ft.hosts[spec.src as usize])
        .add_endpoint(spec.flow, Box::new(sender));
    world
        .get_mut::<Host>(ft.hosts[spec.dst as usize])
        .add_endpoint(spec.flow, Box::new(receiver));
    world.post_wake(spec.start, ft.hosts[spec.src as usize], spec.flow << 8);
}

fn incast_traced(scale: Scale, size: u64, seed: u64) -> Cdf {
    let cfg = FatTreeCfg::new(scale.big_k());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let n_senders = match scale {
        Scale::Paper => 100,
        Scale::Quick => 50,
    };
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let workers = ndp_workloads::incast(0, n_senders, n, &mut rng);
    let mut flows = Vec::new();
    for (i, &w) in workers.iter().enumerate() {
        let flow = i as u64 + 1;
        let spec = FlowSpec::new(flow, w as HostId, 0, size);
        attach_with_trace(&mut world, &ft, &spec);
        flows.push((flow, 0usize));
    }
    world.run_until(Time::from_secs(2));
    collect_latencies(&world, &ft, &flows)
}

pub fn run(scale: Scale) -> Report {
    let horizon = match scale {
        Scale::Paper => Time::from_ms(20),
        Scale::Quick => Time::from_ms(6),
    };
    Report {
        permutation: tm_run(scale, 11, false, horizon),
        random: tm_run(scale, 12, true, horizon),
        incast_135k: incast_traced(scale, 135_000, 13),
        incast_1350k: incast_traced(scale, 1_350_000, 14),
    }
}

impl Report {
    pub fn headline(&self) -> String {
        format!(
            "median delivery latency: permutation {:.0}us, random {:.0}us, incast-135K {:.0}us, incast-1350K {:.0}us",
            self.permutation.median(),
            self.random.median(),
            self.incast_135k.median(),
            self.incast_1350k.median()
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "percentile",
            "perm (us)",
            "random (us)",
            "incast 135K",
            "incast 1350K",
        ]);
        for p in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00] {
            t.row([
                format!("{:.0}%", p * 100.0),
                format!("{:.1}", self.permutation.percentile(p)),
                format!("{:.1}", self.random.percentile(p)),
                format!("{:.1}", self.incast_135k.percentile(p)),
                format!("{:.1}", self.incast_1350k.percentile(p)),
            ]);
        }
        write!(f, "Figure 4 — delivery latency CDF (us)\n{}", t.render())
    }
}

/// Registry entry.
pub struct Fig04;

impl crate::registry::Experiment for Fig04 {
    fn id(&self) -> &'static str {
        "fig04"
    }
    fn title(&self) -> &'static str {
        "Per-packet delivery latency CDFs (permutation/random/incast)"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        use crate::registry::{cdf_json, CDF_POINTS};
        Json::obj([
            ("unit", Json::str("us")),
            ("permutation", cdf_json(&self.permutation, CDF_POINTS)),
            ("random", cdf_json(&self.random, CDF_POINTS)),
            ("incast_135k", cdf_json(&self.incast_135k, CDF_POINTS)),
            ("incast_1350k", cdf_json(&self.incast_1350k, CDF_POINTS)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let rep = run(Scale::Quick);
        // Loaded-but-uncongested traffic keeps sub-ms medians.
        assert!(
            rep.permutation.median() < 1_000.0,
            "perm median {}",
            rep.permutation.median()
        );
        assert!(rep.random.median() < 2_000.0);
        // The all-in-first-RTT incast has a far heavier tail than the
        // pull-paced large incast median.
        assert!(rep.incast_135k.percentile(0.99) > rep.incast_1350k.median());
        assert!(!rep.incast_1350k.is_empty() && !rep.incast_135k.is_empty());
    }
}
