//! Figure 8: time to perform a 1 KB RPC over NDP, TCP Fast Open and TCP,
//! with and without deep CPU sleep states.
//!
//! The testbed artefacts are modelled per DESIGN.md: NDP runs on a
//! DPDK-style polling host (small constant per-packet cost), TCP/TFO on an
//! interrupt-driven kernel host; the "sleep" variants add the ~160 µs
//! C-state wake-up the paper found dominates the gap. Expected ordering:
//! NDP ≪ TFO(no sleep) < TCP(no sleep) < TFO < TCP.

use ndp_metrics::{Cdf, Table};
use ndp_net::host::HostLatency;
use ndp_net::packet::Packet;
use ndp_sim::{ComponentId, Speed, Time, World};
use ndp_topology::{BackToBack, QueueSpec};

use crate::harness::{attach_generic, FlowSpec, Proto, Scale, Trigger};
use ndp_baselines::tcp::Handshake;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    Ndp,
    Tfo,
    Tcp,
    TfoNoSleep,
    TcpNoSleep,
}

impl Stack {
    pub fn label(self) -> &'static str {
        match self {
            Stack::Ndp => "NDP",
            Stack::Tfo => "TFO",
            Stack::Tcp => "TCP",
            Stack::TfoNoSleep => "TFO (no sleep)",
            Stack::TcpNoSleep => "TCP (no sleep)",
        }
    }

    fn latency_model(self) -> HostLatency {
        match self {
            // DPDK polling: the paper's breakdown gives ~22 us for a raw
            // ping and ~40 us of NDP protocol + app processing per RPC.
            Stack::Ndp => HostLatency {
                rx_delay: Time::from_us(7),
                tx_delay: Time::from_us(7),
                ..Default::default()
            },
            // Interrupt-driven kernel stack.
            Stack::TfoNoSleep | Stack::TcpNoSleep => HostLatency {
                rx_delay: Time::from_us(25),
                tx_delay: Time::from_us(12),
                ..Default::default()
            },
            // Same, but C-states deeper than C1 enabled: ~160 us wake-up
            // split across the two hosts that wake per RPC.
            Stack::Tfo | Stack::Tcp => HostLatency {
                rx_delay: Time::from_us(25),
                tx_delay: Time::from_us(12),
                wake_latency: Time::from_us(80),
                sleep_after: Time::from_us(200),
                ..Default::default()
            },
        }
    }

    fn proto(self) -> Proto {
        match self {
            Stack::Ndp => Proto::Ndp,
            _ => Proto::Tcp,
        }
    }

    fn handshake(self) -> Handshake {
        match self {
            Stack::Ndp => Handshake::None,
            Stack::Tfo | Stack::TfoNoSleep => Handshake::Tfo,
            Stack::Tcp | Stack::TcpNoSleep => Handshake::ThreeWay,
        }
    }
}

pub struct Report {
    pub cdfs: Vec<(Stack, Cdf)>,
}

/// One request/response pair per RPC: client sends 1 KB, server replies
/// 1 KB when the request completes. RPCs repeat with a 1 ms think time
/// (long enough for deep sleep to kick in, as in the paper's testbed).
fn run_stack(stack: Stack, n_rpcs: usize) -> Cdf {
    let mut world: World<Packet> = World::new(99);
    let b2b = BackToBack::build(
        &mut world,
        Speed::gbps(10),
        Time::from_us(1),
        1500,
        match stack {
            Stack::Ndp => QueueSpec::ndp_default(),
            _ => QueueSpec::droptail_default(),
        },
        stack.latency_model(),
    );
    let trig: ComponentId = world.reserve();
    let mut trigger = Trigger::new();
    let think = Time::from_ms(1);
    for i in 0..n_rpcs {
        let req_flow = (2 * i + 1) as u64;
        let rsp_flow = (2 * i + 2) as u64;
        // Request: client (host0) -> server (host1). All flows are armed
        // far in the future; the trigger chain (and one explicit kick for
        // the first request) provides the actual start times.
        let mut req = FlowSpec::new(req_flow, 0, 1, 1_000);
        req.notify = Some((trig, req_flow));
        req.start = Time::MAX;
        // The response flow is started by the trigger when the request
        // completes; the *next* request starts when the response completes.
        let mut rsp = FlowSpec::new(rsp_flow, 1, 0, 1_000);
        rsp.notify = Some((trig, rsp_flow));
        rsp.start = Time::MAX;
        match stack.proto() {
            Proto::Ndp => {
                attach_generic(
                    &mut world,
                    Proto::Ndp,
                    &req,
                    (b2b.hosts[0], 0),
                    (b2b.hosts[1], 1),
                    1,
                    1500,
                );
                attach_generic(
                    &mut world,
                    Proto::Ndp,
                    &rsp,
                    (b2b.hosts[1], 1),
                    (b2b.hosts[0], 0),
                    1,
                    1500,
                );
            }
            _ => {
                let mk = |spec: &FlowSpec, src: u32, dst: u32| {
                    let mut cfg = ndp_baselines::tcp::TcpCfg::new(spec.size);
                    cfg.mtu = 1500;
                    cfg.handshake = stack.handshake();
                    cfg.notify = spec.notify;
                    (cfg, src, dst)
                };
                let (cfg, _, _) = mk(&req, 0, 1);
                ndp_baselines::tcp::attach_tcp_flow(
                    &mut world,
                    req_flow,
                    (b2b.hosts[0], 0),
                    (b2b.hosts[1], 1),
                    cfg,
                    Time::MAX, // started by trigger
                );
                let (cfg, _, _) = mk(&rsp, 1, 0);
                ndp_baselines::tcp::attach_tcp_flow(
                    &mut world,
                    rsp_flow,
                    (b2b.hosts[1], 1),
                    (b2b.hosts[0], 0),
                    cfg,
                    Time::MAX,
                );
            }
        }
        // request done -> start response immediately.
        trigger.on(req_flow, Time::ZERO, vec![(b2b.hosts[1], rsp_flow << 8)]);
        // response done -> start next request after think time.
        if i + 1 < n_rpcs {
            let next_req = (2 * (i + 1) + 1) as u64;
            trigger.on(rsp_flow, think, vec![(b2b.hosts[0], next_req << 8)]);
        }
    }
    world.install(trig, trigger);
    // Kick off the first request.
    world.post_wake(Time::ZERO, b2b.hosts[0], 1u64 << 8);
    world.run_until(Time::from_secs(30));
    // NDP flows get started by attach at their `start` time; we posted
    // Time::ZERO starts for flow 1 only — NDP attach also posted start
    // wakes, which for requests >1 must be ignored until triggered. To keep
    // this simple, NDP RPCs are measured from the trigger log instead.
    let trig_ref = world.get::<Trigger>(trig);
    let mut samples = Vec::new();
    let mut prev_rsp_done: Option<Time> = None;
    for i in 0..n_rpcs {
        let req_flow = (2 * i + 1) as u64;
        let rsp_flow = (2 * i + 2) as u64;
        let (Some(_req_done), Some(rsp_done)) =
            (trig_ref.fired_at(req_flow), trig_ref.fired_at(rsp_flow))
        else {
            continue;
        };
        let started = match prev_rsp_done {
            None => Time::ZERO,
            Some(t) => t + think,
        };
        prev_rsp_done = Some(rsp_done);
        samples.push((rsp_done - started).as_us());
    }
    Cdf::from_samples(samples)
}

pub fn run(scale: Scale) -> Report {
    let n = match scale {
        Scale::Paper => 200,
        Scale::Quick => 40,
    };
    let stacks = [
        Stack::Ndp,
        Stack::TfoNoSleep,
        Stack::TcpNoSleep,
        Stack::Tfo,
        Stack::Tcp,
    ];
    Report {
        cdfs: stacks.iter().map(|&s| (s, run_stack(s, n))).collect(),
    }
}

impl Report {
    pub fn median(&self, stack: Stack) -> f64 {
        self.cdfs
            .iter()
            .find(|(s, _)| *s == stack)
            .map(|(_, c)| c.median())
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        format!(
            "median 1KB RPC: NDP {:.0}us, TFO(no sleep) {:.0}us, TCP(no sleep) {:.0}us, TFO {:.0}us, TCP {:.0}us",
            self.median(Stack::Ndp),
            self.median(Stack::TfoNoSleep),
            self.median(Stack::TcpNoSleep),
            self.median(Stack::Tfo),
            self.median(Stack::Tcp)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["stack", "p10 (us)", "median (us)", "p90 (us)", "p99 (us)"]);
        for (s, c) in &self.cdfs {
            t.row([
                s.label().to_string(),
                format!("{:.0}", c.percentile(0.10)),
                format!("{:.0}", c.median()),
                format!("{:.0}", c.percentile(0.90)),
                format!("{:.0}", c.percentile(0.99)),
            ]);
        }
        write!(f, "Figure 8 — 1KB RPC latency\n{}", t.render())
    }
}

/// Registry entry.
pub struct Fig08;

impl crate::registry::Experiment for Fig08 {
    fn id(&self) -> &'static str {
        "fig08"
    }
    fn title(&self) -> &'static str {
        "1KB RPC latency: NDP vs TCP/TFO, with and without deep sleep"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        use crate::registry::{cdf_json, CDF_POINTS};
        Json::obj([
            ("unit", Json::str("us")),
            (
                "stacks",
                Json::arr(self.cdfs.iter().map(|(s, c)| {
                    Json::obj([
                        ("stack", Json::str(s.label())),
                        ("rpc_latency", cdf_json(c, CDF_POINTS)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let rep = run(Scale::Quick);
        let ndp = rep.median(Stack::Ndp);
        let tfo_ns = rep.median(Stack::TfoNoSleep);
        let tcp_ns = rep.median(Stack::TcpNoSleep);
        let tfo = rep.median(Stack::Tfo);
        let tcp = rep.median(Stack::Tcp);
        assert!(ndp < tfo_ns, "NDP {ndp} < TFO-no-sleep {tfo_ns}");
        assert!(tfo_ns < tcp_ns, "TFO beats TCP without sleep");
        assert!(tfo_ns < tfo, "sleep states inflate TFO");
        assert!(tcp_ns < tcp, "sleep states inflate TCP");
        // NDP is severalfold faster than full TCP, as in the paper.
        assert!(tcp > 2.5 * ndp, "TCP {tcp} vs NDP {ndp}");
    }
}
