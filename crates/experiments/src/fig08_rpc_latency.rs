//! Figure 8: time to perform a 1 KB RPC over NDP, TCP Fast Open and TCP,
//! with and without deep CPU sleep states.
//!
//! The testbed artefacts are modelled per DESIGN.md: NDP runs on a
//! DPDK-style polling host (small constant per-packet cost), TCP/TFO on an
//! interrupt-driven kernel host; the "sleep" variants add the ~160 µs
//! C-state wake-up the paper found dominates the gap. Expected ordering:
//! NDP ≪ TFO(no sleep) < TCP(no sleep) < TFO < TCP.

use std::sync::Arc;

use ndp_metrics::{Cdf, Table};
use ndp_net::host::HostLatency;
use ndp_net::packet::Packet;
use ndp_sim::{Speed, Time, World};
use ndp_topology::{BackToBack, QueueSpec, Topology};
use ndp_workloads::{ArrivalProcess, EmpiricalCdf, RpcProfile, RpcWorkload, TenantMix, TreeShape};

use crate::harness::{Proto, Scale};
use crate::rpc::RpcDriver;
use ndp_baselines::tcp::Handshake;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    Ndp,
    Tfo,
    Tcp,
    TfoNoSleep,
    TcpNoSleep,
}

impl Stack {
    pub fn label(self) -> &'static str {
        match self {
            Stack::Ndp => "NDP",
            Stack::Tfo => "TFO",
            Stack::Tcp => "TCP",
            Stack::TfoNoSleep => "TFO (no sleep)",
            Stack::TcpNoSleep => "TCP (no sleep)",
        }
    }

    fn latency_model(self) -> HostLatency {
        match self {
            // DPDK polling: the paper's breakdown gives ~22 us for a raw
            // ping and ~40 us of NDP protocol + app processing per RPC.
            Stack::Ndp => HostLatency {
                rx_delay: Time::from_us(7),
                tx_delay: Time::from_us(7),
                ..Default::default()
            },
            // Interrupt-driven kernel stack.
            Stack::TfoNoSleep | Stack::TcpNoSleep => HostLatency {
                rx_delay: Time::from_us(25),
                tx_delay: Time::from_us(12),
                ..Default::default()
            },
            // Same, but C-states deeper than C1 enabled: ~160 us wake-up
            // split across the two hosts that wake per RPC.
            Stack::Tfo | Stack::Tcp => HostLatency {
                rx_delay: Time::from_us(25),
                tx_delay: Time::from_us(12),
                wake_latency: Time::from_us(80),
                sleep_after: Time::from_us(200),
                ..Default::default()
            },
        }
    }

    fn proto(self) -> Proto {
        match self {
            Stack::Ndp => Proto::Ndp,
            _ => Proto::Tcp,
        }
    }

    fn handshake(self) -> Handshake {
        match self {
            Stack::Ndp => Handshake::None,
            Stack::Tfo | Stack::TfoNoSleep => Handshake::Tfo,
            Stack::Tcp | Stack::TcpNoSleep => Handshake::ThreeWay,
        }
    }
}

pub struct Report {
    pub cdfs: Vec<(Stack, Cdf)>,
}

/// One request/response pair per RPC: client sends 1 KB, server replies
/// 1 KB when the request completes. RPCs repeat with a ~1 ms think time
/// (long enough for deep sleep to kick in, as in the paper's testbed).
///
/// The RPC loop is one closed-loop [`RpcProfile`] (ping-pong shape, chain
/// width 1) driven by the [`RpcDriver`]; the TCP/TFO handshake variants
/// ride the driver's pluggable attach hook instead of the generic
/// per-protocol path, so the only bespoke piece left is the per-stack
/// host latency model.
fn run_stack(stack: Stack, n_rpcs: usize) -> Cdf {
    let mut world: World<Packet> = World::new(99);
    let b2b = BackToBack::build(
        &mut world,
        Speed::gbps(10),
        Time::from_us(1),
        1500,
        match stack {
            Stack::Ndp => QueueSpec::ndp_default(),
            _ => QueueSpec::droptail_default(),
        },
        stack.latency_model(),
    );
    let hosts = b2b.hosts;
    let topo: Arc<dyn Topology> = Arc::new(b2b);
    let profile = RpcProfile {
        name: "fig08_rpc",
        shape: TreeShape::PingPong,
        fanout: 1,
        leg_sizes: EmpiricalCdf::fixed("req", 1_000),
        response_sizes: Some(EmpiricalCdf::fixed("rsp", 1_000)),
        arrivals: ArrivalProcess::ClosedLoop {
            median_gap_ps: Time::from_ms(1).as_ps(),
        },
        closed_loop_width: 1,
        slo_ps: Time::from_ms(1).as_ps(),
        clients: Some(vec![0]),
    };
    let horizon = Time::from_secs(30);
    let workload = RpcWorkload::new(2, TenantMix::new(vec![profile]), 99, horizon.as_ps());
    let drv = RpcDriver::install_into(&mut world, stack.proto(), topo, workload, Time::ZERO);
    if stack.proto() != Proto::Ndp {
        // Kernel-stack variants: same driver, but legs attach as TCP
        // flows with the stack's handshake model.
        let handshake = stack.handshake();
        world
            .get_mut::<RpcDriver>(drv)
            .set_attach(Arc::new(move |w, spec| {
                let mut cfg = ndp_baselines::tcp::TcpCfg::new(spec.size);
                cfg.mtu = 1500;
                cfg.handshake = handshake;
                cfg.notify = spec.notify;
                ndp_baselines::tcp::attach_tcp_flow(
                    w,
                    spec.flow,
                    (hosts[spec.src as usize], spec.src),
                    (hosts[spec.dst as usize], spec.dst),
                    cfg,
                    spec.start,
                );
            }));
    }
    let chunk = Time::from_ms(5);
    let mut target = Time::ZERO;
    while world.get::<RpcDriver>(drv).completed.len() < n_rpcs && target < horizon {
        target = (target + chunk).min(horizon);
        world.run_until(target);
    }
    let samples: Vec<f64> = world
        .get::<RpcDriver>(drv)
        .completed
        .iter()
        .take(n_rpcs)
        .map(|c| c.latency.as_us())
        .collect();
    Cdf::from_samples(samples)
}

pub fn run(scale: Scale) -> Report {
    let n = match scale {
        Scale::Paper => 200,
        Scale::Quick => 40,
    };
    let stacks = [
        Stack::Ndp,
        Stack::TfoNoSleep,
        Stack::TcpNoSleep,
        Stack::Tfo,
        Stack::Tcp,
    ];
    Report {
        cdfs: stacks.iter().map(|&s| (s, run_stack(s, n))).collect(),
    }
}

impl Report {
    pub fn median(&self, stack: Stack) -> f64 {
        self.cdfs
            .iter()
            .find(|(s, _)| *s == stack)
            .map(|(_, c)| c.median())
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        format!(
            "median 1KB RPC: NDP {:.0}us, TFO(no sleep) {:.0}us, TCP(no sleep) {:.0}us, TFO {:.0}us, TCP {:.0}us",
            self.median(Stack::Ndp),
            self.median(Stack::TfoNoSleep),
            self.median(Stack::TcpNoSleep),
            self.median(Stack::Tfo),
            self.median(Stack::Tcp)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["stack", "p10 (us)", "median (us)", "p90 (us)", "p99 (us)"]);
        for (s, c) in &self.cdfs {
            t.row([
                s.label().to_string(),
                format!("{:.0}", c.percentile(0.10)),
                format!("{:.0}", c.median()),
                format!("{:.0}", c.percentile(0.90)),
                format!("{:.0}", c.percentile(0.99)),
            ]);
        }
        write!(f, "Figure 8 — 1KB RPC latency\n{}", t.render())
    }
}

/// Registry entry.
pub struct Fig08;

impl crate::registry::Experiment for Fig08 {
    fn id(&self) -> &'static str {
        "fig08"
    }
    fn title(&self) -> &'static str {
        "1KB RPC latency: NDP vs TCP/TFO, with and without deep sleep"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        use crate::registry::{cdf_json, CDF_POINTS};
        Json::obj([
            ("unit", Json::str("us")),
            (
                "stacks",
                Json::arr(self.cdfs.iter().map(|(s, c)| {
                    Json::obj([
                        ("stack", Json::str(s.label())),
                        ("rpc_latency", cdf_json(c, CDF_POINTS)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let rep = run(Scale::Quick);
        let ndp = rep.median(Stack::Ndp);
        let tfo_ns = rep.median(Stack::TfoNoSleep);
        let tcp_ns = rep.median(Stack::TcpNoSleep);
        let tfo = rep.median(Stack::Tfo);
        let tcp = rep.median(Stack::Tcp);
        assert!(ndp < tfo_ns, "NDP {ndp} < TFO-no-sleep {tfo_ns}");
        assert!(tfo_ns < tcp_ns, "TFO beats TCP without sleep");
        assert!(tfo_ns < tfo, "sleep states inflate TFO");
        assert!(tcp_ns < tcp, "sleep states inflate TCP");
        // NDP is severalfold faster than full TCP, as in the paper.
        assert!(tcp > 2.5 * ndp, "TCP {tcp} vs NDP {ndp}");
    }
}
