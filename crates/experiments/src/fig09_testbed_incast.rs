//! Figure 9: seven-to-one incast on the 8-server two-tier testbed,
//! response size 10 KB–1 MB; median and 90th-percentile completion time
//! for NDP vs TCP, against the theoretical optimum.
//!
//! Expected shape: NDP tracks the optimum within a few percent with
//! p90 ≈ median; TCP grows linearly but ~4× slower, and its p90 blows up
//! whenever the 200 ms MinRTO fires.

use ndp_metrics::{Cdf, Table};
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{Speed, Time, World};
use ndp_topology::{TwoTier, TwoTierCfg};

use crate::harness::{attach_generic, completion_time, FlowSpec, Proto, Scale};

pub struct Row {
    pub size: u64,
    pub ndp_median_ms: f64,
    pub ndp_p90_ms: f64,
    pub tcp_median_ms: f64,
    pub tcp_p90_ms: f64,
    pub optimum_ms: f64,
}

pub struct Report {
    pub rows: Vec<Row>,
}

/// One 7:1 incast trial; returns the last-flow completion time.
///
/// Both protocols run over the *testbed's* shallow-buffered switches
/// (the NetFPGA output queues hold ~8 jumbograms) — on the real testbed
/// TCP did not get different hardware, and its incast losses + 200 ms
/// MinRTO are exactly what Figure 9's p90 shows. The shallow buffer is a
/// property of the scenario, so it is applied uniformly to whatever
/// fabric the registry hands back — no per-protocol dispatch here.
fn trial(proto: Proto, size: u64, seed: u64) -> Time {
    let fabric = proto.fabric().with_data_cap(8);
    let cfg = TwoTierCfg::testbed().with_fabric(fabric);
    let mut world: World<Packet> = World::new(seed);
    let tt = TwoTier::build(&mut world, cfg);
    // Frontend is host 0; workers are hosts 1..8. The request leg is one
    // base RTT, folded into the optimum rather than simulated.
    for w in 1..8usize {
        let spec = FlowSpec::new(w as u64, w as HostId, 0, size);
        attach_generic(
            &mut world,
            proto,
            &spec,
            (tt.hosts[w], w as HostId),
            (tt.hosts[0], 0),
            tt.n_paths(w as u32, 0),
            9000,
        );
    }
    world.run_until(Time::from_secs(30));
    let mut last = Time::ZERO;
    for w in 1..8u64 {
        match completion_time(&world, tt.hosts[0], w, proto) {
            Some(t) => last = last.max(t),
            None => return Time::from_secs(30),
        }
    }
    last
}

pub fn run(scale: Scale) -> Report {
    let sizes: &[u64] = match scale {
        Scale::Paper => &[
            10_000, 50_000, 100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000,
        ],
        Scale::Quick => &[10_000, 100_000, 450_000, 1_000_000],
    };
    let trials = match scale {
        Scale::Paper => 9,
        Scale::Quick => 5,
    };
    let mut rows = Vec::new();
    for &size in sizes {
        let mut ndp = Cdf::new();
        let mut tcp = Cdf::new();
        for t in 0..trials {
            ndp.add(trial(Proto::Ndp, size, 100 + t as u64).as_ms());
            tcp.add(trial(Proto::Tcp, size, 200 + t as u64).as_ms());
        }
        // Optimum: all seven responses serialized on the frontend link,
        // plus one base RTT for the request fan-out.
        let wire = crate::harness::incast_ideal(7, size, Speed::gbps(10), 9000);
        let optimum = wire + Time::from_us(35);
        rows.push(Row {
            size,
            ndp_median_ms: ndp.median(),
            ndp_p90_ms: ndp.percentile(0.90),
            tcp_median_ms: tcp.median(),
            tcp_p90_ms: tcp.percentile(0.90),
            optimum_ms: optimum.as_ms(),
        });
    }
    Report { rows }
}

impl Report {
    pub fn headline(&self) -> String {
        let r = self.rows.last().expect("rows");
        format!(
            "at {} KB: NDP median {:.1} ms (optimum {:.1} ms), TCP median {:.1} ms",
            r.size / 1000,
            r.ndp_median_ms,
            r.optimum_ms,
            r.tcp_median_ms
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "size (KB)",
            "optimum (ms)",
            "NDP med (ms)",
            "NDP p90 (ms)",
            "TCP med (ms)",
            "TCP p90 (ms)",
        ]);
        for r in &self.rows {
            t.row([
                (r.size / 1000).to_string(),
                format!("{:.2}", r.optimum_ms),
                format!("{:.2}", r.ndp_median_ms),
                format!("{:.2}", r.ndp_p90_ms),
                format!("{:.2}", r.tcp_median_ms),
                format!("{:.2}", r.tcp_p90_ms),
            ]);
        }
        write!(
            f,
            "Figure 9 — 7:1 incast completion time vs response size\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig09;

impl crate::registry::Experiment for Fig09 {
    fn id(&self) -> &'static str {
        "fig09"
    }
    fn title(&self) -> &'static str {
        "Testbed 7:1 incast completion vs response size (NDP/TCP/optimum)"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "rows",
            Json::arr(self.rows.iter().map(|r| {
                Json::obj([
                    ("size_bytes", Json::num(r.size as f64)),
                    ("optimum_ms", Json::num(r.optimum_ms)),
                    ("ndp_median_ms", Json::num(r.ndp_median_ms)),
                    ("ndp_p90_ms", Json::num(r.ndp_p90_ms)),
                    ("tcp_median_ms", Json::num(r.tcp_median_ms)),
                    ("tcp_p90_ms", Json::num(r.tcp_p90_ms)),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndp_is_near_optimal_and_beats_tcp() {
        let rep = run(Scale::Quick);
        for r in &rep.rows {
            assert!(
                r.ndp_median_ms < r.optimum_ms * 1.25 + 0.2,
                "size {}: NDP median {:.2} vs optimum {:.2}",
                r.size,
                r.ndp_median_ms,
                r.optimum_ms
            );
            // NDP's p90 is within ~10% of its median (the two curves
            // overlap in the paper's figure).
            assert!(r.ndp_p90_ms <= r.ndp_median_ms * 1.3 + 0.2);
        }
        // TCP is markedly slower on the bigger responses.
        let big = rep.rows.iter().find(|r| r.size >= 450_000).unwrap();
        assert!(
            big.tcp_median_ms > 1.5 * big.ndp_median_ms,
            "TCP {:.2} vs NDP {:.2}",
            big.tcp_median_ms,
            big.ndp_median_ms
        );
    }
}
