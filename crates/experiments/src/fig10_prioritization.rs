//! Figure 10: prioritizing a short flow over six long flows to the same
//! host. The receiver puts the short flow's PULLs at the head of its pull
//! queue. Expected: FCT(prio) ≈ FCT(idle) + ~50 µs, while without
//! prioritization the short flow is fair-shared to ~1/7 of the link and
//! takes ~10× the idle time.

use ndp_metrics::Table;
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{Time, World};
use ndp_topology::{TwoTier, TwoTierCfg};

use crate::harness::{attach_generic, completion_time, FlowSpec, Proto, Scale, LONG_FLOW};

pub struct Report {
    pub size: u64,
    pub idle: Time,
    pub with_prio: Time,
    pub without_prio: Time,
}

fn trial(size: u64, prio: bool, background: bool, seed: u64) -> Time {
    let cfg = TwoTierCfg::testbed();
    let mut world: World<Packet> = World::new(seed);
    let tt = TwoTier::build(&mut world, cfg);
    // Receiver host 0; short flow from host 1; long flows from hosts 2..8.
    if background {
        for s in 2..8usize {
            let spec = FlowSpec::new(s as u64, s as HostId, 0, LONG_FLOW);
            attach_generic(
                &mut world,
                Proto::Ndp,
                &spec,
                (tt.hosts[s], s as HostId),
                (tt.hosts[0], 0),
                tt.n_paths(s as u32, 0),
                9000,
            );
        }
    }
    let mut spec = FlowSpec::new(1, 1, 0, size);
    spec.prio = prio;
    attach_generic(
        &mut world,
        Proto::Ndp,
        &spec,
        (tt.hosts[1], 1),
        (tt.hosts[0], 0),
        tt.n_paths(1, 0),
        9000,
    );
    world.run_until(Time::from_secs(5));
    completion_time(&world, tt.hosts[0], 1, Proto::Ndp).expect("short flow must complete")
}

pub fn run(_scale: Scale) -> Report {
    let size = 200_000;
    Report {
        size,
        idle: trial(size, false, false, 5),
        with_prio: trial(size, true, true, 5),
        without_prio: trial(size, false, true, 5),
    }
}

/// The paper also reports that for sizes 10 KB–1 MB the prio-vs-idle gap
/// stays under 50 µs; expose the sweep for EXPERIMENTS.md.
pub fn sweep(scale: Scale) -> Vec<(u64, Time, Time)> {
    let sizes: &[u64] = match scale {
        Scale::Paper => &[10_000, 50_000, 200_000, 500_000, 1_000_000],
        Scale::Quick => &[10_000, 200_000, 1_000_000],
    };
    sizes
        .iter()
        .map(|&s| (s, trial(s, false, false, 6), trial(s, true, true, 6)))
        .collect()
}

impl Report {
    pub fn headline(&self) -> String {
        format!(
            "200KB short flow FCT: idle {:.0}us, prioritized {:.0}us (+{:.0}us), unprioritized {:.0}us (+{:.0}us)",
            self.idle.as_us(),
            self.with_prio.as_us(),
            (self.with_prio - self.idle).as_us(),
            self.without_prio.as_us(),
            (self.without_prio - self.idle).as_us()
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["scenario", "FCT (us)", "delta vs idle (us)"]);
        t.row([
            "idle".to_string(),
            format!("{:.1}", self.idle.as_us()),
            "0".into(),
        ]);
        t.row([
            "with prioritization".to_string(),
            format!("{:.1}", self.with_prio.as_us()),
            format!("{:.1}", (self.with_prio - self.idle).as_us()),
        ]);
        t.row([
            "without prioritization".to_string(),
            format!("{:.1}", self.without_prio.as_us()),
            format!("{:.1}", (self.without_prio - self.idle).as_us()),
        ]);
        write!(
            f,
            "Figure 10 — short flow vs six long flows, one receiver\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig10;

impl crate::registry::Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }
    fn title(&self) -> &'static str {
        "Short-flow prioritization vs six long flows at one receiver"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("size_bytes", Json::num(self.size as f64)),
            ("idle_us", Json::num(self.idle.as_us())),
            ("with_prio_us", Json::num(self.with_prio.as_us())),
            ("without_prio_us", Json::num(self.without_prio.as_us())),
        ])
    }
}

/// The §4 claim behind Figure 10: the prio-vs-idle gap stays small for
/// every size from 10 KB to 1 MB. `sweep()` packaged as its own
/// registry entry.
pub struct SweepReport {
    /// (size, idle FCT, prioritized-under-load FCT)
    pub rows: Vec<(u64, Time, Time)>,
}

impl SweepReport {
    pub fn headline(&self) -> String {
        let worst = self
            .rows
            .iter()
            .map(|&(_, idle, prio)| (prio - idle).as_us())
            .fold(0.0, f64::max);
        format!("worst prioritized-vs-idle FCT gap across 10KB..1MB: {worst:.0}us")
    }
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["size (KB)", "idle (us)", "prioritized (us)", "gap (us)"]);
        for &(size, idle, prio) in &self.rows {
            t.row([
                (size / 1000).to_string(),
                format!("{:.1}", idle.as_us()),
                format!("{:.1}", prio.as_us()),
                format!("{:.1}", (prio - idle).as_us()),
            ]);
        }
        write!(
            f,
            "Figure 10 (size sweep) — prioritized FCT vs idle FCT\n{}",
            t.render()
        )
    }
}

impl crate::registry::Report for SweepReport {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "rows",
            Json::arr(self.rows.iter().map(|&(size, idle, prio)| {
                Json::obj([
                    ("size_bytes", Json::num(size as f64)),
                    ("idle_us", Json::num(idle.as_us())),
                    ("prio_us", Json::num(prio.as_us())),
                ])
            })),
        )])
    }
}

/// Registry entry for the size sweep.
pub struct Fig10Sweep;

impl crate::registry::Experiment for Fig10Sweep {
    fn id(&self) -> &'static str {
        "fig10_sweep"
    }
    fn title(&self) -> &'static str {
        "Prioritization gap across flow sizes (10KB..1MB)"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(SweepReport { rows: sweep(scale) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prioritization_shields_the_short_flow() {
        let rep = run(Scale::Quick);
        assert!(rep.idle < rep.with_prio, "contention must cost something");
        assert!(rep.with_prio < rep.without_prio, "priority must help");
        // The prioritized FCT stays within a few hundred us of idle (the
        // residual first-window backlog ahead of it at the last hop; see
        // EXPERIMENTS.md — the paper measured +50us on hardware), while the
        // unprioritized flow is fair-shared to ~1/7 of the link and pays
        // several times more.
        let prio_penalty = rep.with_prio - rep.idle;
        let noprio_penalty = rep.without_prio - rep.idle;
        assert!(
            prio_penalty < Time::from_us(400),
            "prio penalty {prio_penalty}"
        );
        assert!(
            noprio_penalty > prio_penalty * 3,
            "no-prio {noprio_penalty} vs prio {prio_penalty}"
        );
    }
}
