//! Figure 11: throughput between two directly connected hosts as a
//! function of NDP's initial window.
//!
//! The "perfect" curve is the bare simulator; the "experimental" curve
//! adds the host-processing delays measured on the Linux/DPDK prototype
//! (the paper found the prototype needs IW ≈ 25 instead of 15 — the extra
//! ten packets cover host processing). We set the one-way link latency to
//! 50 µs so the perfect curve saturates near IW 15 like the paper's
//! simulation (their b2b baseline RTT, see DESIGN.md).

use ndp_core::{attach_flow, NdpFlowCfg};
use ndp_metrics::Table;
use ndp_net::host::HostLatency;
use ndp_net::packet::Packet;
use ndp_sim::{Speed, Time, World};
use ndp_topology::{BackToBack, QueueSpec};

use crate::harness::Scale;
use crate::sweep::SweepSpec;

pub struct Report {
    /// (iw, perfect Gb/s, experimental Gb/s)
    pub rows: Vec<(u64, f64, f64)>,
}

fn throughput(iw: u64, host_delay: bool) -> f64 {
    let mut world: World<Packet> = World::new(3);
    let latency = if host_delay {
        // ~72 us of extra round-trip host processing: the ten extra packets
        // of buffering the paper measured.
        HostLatency {
            rx_delay: Time::from_us(18),
            tx_delay: Time::from_us(18),
            ..Default::default()
        }
    } else {
        HostLatency::default()
    };
    let b2b = BackToBack::build(
        &mut world,
        Speed::gbps(10),
        Time::from_us(50),
        9000,
        QueueSpec::ndp_default(),
        latency,
    );
    let size = 30_000_000u64;
    let cfg = NdpFlowCfg {
        n_paths: 1,
        iw_pkts: iw,
        ..NdpFlowCfg::new(size)
    };
    attach_flow(
        &mut world,
        1,
        (b2b.hosts[0], 0),
        (b2b.hosts[1], 1),
        cfg,
        Time::ZERO,
    );
    world.run_until(Time::from_secs(10));
    let rx = ndp_core::flow::receiver_stats(&world, b2b.hosts[1], 1);
    let fct = rx.completion_time.expect("transfer completes");
    size as f64 * 8.0 / fct.as_secs() / 1e9
}

pub fn run(scale: Scale) -> Report {
    let iws: &[u64] = match scale {
        Scale::Paper => &[1, 2, 4, 8, 12, 15, 16, 20, 25, 32, 64, 128, 256],
        Scale::Quick => &[1, 4, 8, 16, 32, 128],
    };
    // Sweep (iw × host-model) as one grid, then fold the host-model axis
    // back into (perfect, experimental) columns by walking the grid points
    // alongside their results.
    let spec = SweepSpec::grid(
        "fig11: IW x host model",
        iws,
        &[false, true],
        |&iw, &host| (iw, host),
    );
    let tputs = spec.run(|&(iw, host_delay)| throughput(iw, host_delay));
    let mut cells = spec.points.iter().zip(tputs);
    let rows = iws
        .iter()
        .map(|&iw| {
            let (&p, perfect) = cells.next().expect("one perfect cell per IW");
            let (&e, experimental) = cells.next().expect("one experimental cell per IW");
            debug_assert_eq!((p, e), ((iw, false), (iw, true)), "grid order drifted");
            (iw, perfect, experimental)
        })
        .collect();
    Report { rows }
}

impl Report {
    pub fn at(&self, iw: u64) -> Option<&(u64, f64, f64)> {
        self.rows.iter().find(|r| r.0 == iw)
    }

    pub fn headline(&self) -> String {
        let lo = self.rows.first().unwrap();
        let hi = self.rows.last().unwrap();
        format!(
            "IW {}: perfect {:.2} Gb/s, experimental {:.2} Gb/s -> IW {}: perfect {:.2}, experimental {:.2}",
            lo.0, lo.1, lo.2, hi.0, hi.1, hi.2
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["IW (pkts)", "perfect (Gb/s)", "experimental (Gb/s)"]);
        for (iw, p, e) in &self.rows {
            t.row([iw.to_string(), format!("{p:.2}"), format!("{e:.2}")]);
        }
        write!(
            f,
            "Figure 11 — throughput vs initial window, back-to-back hosts\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig11;

impl crate::registry::Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }
    fn title(&self) -> &'static str {
        "Back-to-back throughput vs NDP initial window"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "rows",
            Json::arr(self.rows.iter().map(|&(iw, perfect, experimental)| {
                Json::obj([
                    ("iw_pkts", Json::num(iw as f64)),
                    ("perfect_gbps", Json::num(perfect)),
                    ("experimental_gbps", Json::num(experimental)),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_needs_more_window_with_host_delays() {
        let rep = run(Scale::Quick);
        // Small IW underutilizes; big IW saturates.
        let small = rep.at(1).unwrap();
        let big = rep.at(128).unwrap();
        assert!(small.1 < 2.0, "IW=1 perfect {:.2}", small.1);
        assert!(big.1 > 9.0, "IW=128 perfect {:.2}", big.1);
        assert!(big.2 > 9.0, "IW=128 experimental {:.2}", big.2);
        // At a mid window the perfect host is already saturated while the
        // delayed host still isn't — the paper's 15-vs-25 gap.
        let mid = rep.at(16).unwrap();
        assert!(
            mid.1 > 9.0,
            "perfect should saturate by IW 16: {:.2}",
            mid.1
        );
        assert!(
            mid.2 < mid.1 - 0.5,
            "host delays must cost throughput at IW 16: {:.2}",
            mid.2
        );
    }

    #[test]
    fn throughput_is_monotone_in_iw() {
        let rep = run(Scale::Quick);
        for w in rep.rows.windows(2) {
            assert!(w[1].1 >= w[0].1 - 0.3, "perfect curve roughly monotone");
            assert!(
                w[1].2 >= w[0].2 - 0.3,
                "experimental curve roughly monotone"
            );
        }
    }
}
