//! Figure 12: distribution of PULL spacing measured at the sender for
//! 1500 B and 9000 B packets.
//!
//! The pacer targets one pull per packet serialization time (1.2 µs /
//! 7.2 µs at 10 Gb/s). The "measured" curves sample the synthetic jitter
//! distributions calibrated to the paper's plot: the 9000 B curve is tight
//! around its target, the 1500 B curve has real variance but the same
//! median.

use ndp_core::{attach_flow, NdpFlowCfg};
use ndp_metrics::{Cdf, Table};
use ndp_net::host::{Host, HostLatency, JitterDist};
use ndp_net::packet::Packet;
use ndp_sim::{Speed, Time, World};
use ndp_topology::{BackToBack, QueueSpec};

use crate::harness::Scale;

pub struct Report {
    pub spacing_1500: Cdf,
    pub spacing_9000: Cdf,
}

fn measure(mtu: u32, jitter: JitterDist, n_pkts: u64) -> Cdf {
    let mut world: World<Packet> = World::new(21);
    let latency = HostLatency {
        pull_jitter: Some(jitter),
        ..Default::default()
    };
    let b2b = BackToBack::build(
        &mut world,
        Speed::gbps(10),
        Time::from_us(1),
        mtu,
        QueueSpec::ndp_default(),
        latency,
    );
    world.get_mut::<Host>(b2b.hosts[1]).trace_pulls(true);
    let size = n_pkts * (mtu as u64 - 64);
    let cfg = NdpFlowCfg {
        n_paths: 1,
        mtu,
        iw_pkts: 10,
        ..NdpFlowCfg::new(size)
    };
    attach_flow(
        &mut world,
        1,
        (b2b.hosts[0], 0),
        (b2b.hosts[1], 1),
        cfg,
        Time::ZERO,
    );
    world.run_until(Time::from_secs(5));
    let times = &world.get::<Host>(b2b.hosts[1]).stats().pull_times;
    let gaps: Vec<f64> = times
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64 / 1e6)
        .filter(|&g| g > 0.0)
        .collect();
    Cdf::from_samples(gaps)
}

pub fn run(scale: Scale) -> Report {
    let n = match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 3_000,
    };
    Report {
        spacing_1500: measure(1500, JitterDist::measured_1500b(), n),
        spacing_9000: measure(9000, JitterDist::measured_9000b(), n),
    }
}

impl Report {
    pub fn headline(&self) -> String {
        format!(
            "median pull spacing: 1500B {:.2}us (target 1.2), 9000B {:.2}us (target 7.2)",
            self.spacing_1500.median(),
            self.spacing_9000.median()
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["percentile", "1500B gap (us)", "9000B gap (us)"]);
        for p in [0.05, 0.25, 0.50, 0.75, 0.95, 0.99] {
            t.row([
                format!("{:.0}%", p * 100.0),
                format!("{:.2}", self.spacing_1500.percentile(p)),
                format!("{:.2}", self.spacing_9000.percentile(p)),
            ]);
        }
        write!(f, "Figure 12 — PULL spacing at the sender\n{}", t.render())
    }
}

/// Registry entry.
pub struct Fig12;

impl crate::registry::Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }
    fn title(&self) -> &'static str {
        "PULL spacing at the sender (1500B vs 9000B packets)"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        use crate::registry::{cdf_json, CDF_POINTS};
        Json::obj([
            ("unit", Json::str("us")),
            ("spacing_1500", cdf_json(&self.spacing_1500, CDF_POINTS)),
            ("spacing_9000", cdf_json(&self.spacing_9000, CDF_POINTS)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_match_targets_and_1500b_is_noisier() {
        let rep = run(Scale::Quick);
        let m15 = rep.spacing_1500.median();
        let m90 = rep.spacing_9000.median();
        assert!((m15 - 1.2).abs() < 0.4, "1500B median {m15}");
        assert!((m90 - 7.2).abs() < 1.0, "9000B median {m90}");
        // Relative spread: 1500B is much wider (Fig 12's visual).
        let spread15 = rep.spacing_1500.percentile(0.95) / m15;
        let spread90 = rep.spacing_9000.percentile(0.95) / m90;
        assert!(
            spread15 > spread90,
            "1500B spread {spread15:.2} vs 9000B {spread90:.2}"
        );
    }
}
