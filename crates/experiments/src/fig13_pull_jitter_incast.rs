//! Figure 13: does imperfect pull spacing hurt incast performance?
//!
//! A 200:1 incast with flow sizes up to 120 KB, comparing perfectly paced
//! pulls against pulls drawn from the measured (synthetic) spacing
//! distribution. The paper finds no discernible difference — the
//! validation that real-world pacing artefacts don't invalidate the
//! simulation results.

use ndp_metrics::Table;
use ndp_net::host::{Host, HostLatency, JitterDist};
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{Time, World};
use ndp_topology::{FatTree, FatTreeCfg};

use crate::harness::{attach_on, completion_time, FlowSpec, Proto, Scale};

pub struct Report {
    /// (flow size, perfect-pulls last FCT us, jittered-pulls last FCT us)
    pub rows: Vec<(u64, f64, f64)>,
}

fn trial(scale: Scale, size: u64, jitter: bool, seed: u64) -> Time {
    let mut cfg = FatTreeCfg::new(scale.big_k()).with_mtu(1500);
    if jitter {
        cfg.host_latency = HostLatency {
            pull_jitter: Some(JitterDist::measured_1500b()),
            ..Default::default()
        };
    }
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let n_senders = match scale {
        Scale::Paper => 200,
        Scale::Quick => 60,
    };
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let workers = ndp_workloads::incast(0, n_senders.min(n - 1), n, &mut rng);
    for (i, &w) in workers.iter().enumerate() {
        let spec = FlowSpec::new(i as u64 + 1, w as HostId, 0, size);
        attach_on(&mut world, &ft, Proto::Ndp, &spec);
    }
    world.run_until(Time::from_secs(5));
    let mut last = Time::ZERO;
    for i in 0..workers.len() as u64 {
        last = last.max(completion_time(&world, ft.hosts[0], i + 1, Proto::Ndp).expect("complete"));
    }
    // Access world's host to keep the borrow checker honest about ft usage.
    let _ = world.get::<Host>(ft.hosts[0]).id();
    last
}

pub fn run(scale: Scale) -> Report {
    let sizes: &[u64] = match scale {
        Scale::Paper => &[10_000, 20_000, 40_000, 60_000, 80_000, 100_000, 120_000],
        Scale::Quick => &[20_000, 60_000, 120_000],
    };
    Report {
        rows: sizes
            .iter()
            .map(|&s| {
                (
                    s,
                    trial(scale, s, false, 31).as_us(),
                    trial(scale, s, true, 31).as_us(),
                )
            })
            .collect(),
    }
}

impl Report {
    pub fn headline(&self) -> String {
        let max_rel: f64 = self
            .rows
            .iter()
            .map(|(_, p, j)| ((j - p) / p).abs())
            .fold(0.0, f64::max);
        format!(
            "max relative FCT difference perfect vs measured pulls: {:.1}%",
            max_rel * 100.0
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "flow size (KB)",
            "perfect pulls (us)",
            "measured pulls (us)",
        ]);
        for (s, p, j) in &self.rows {
            t.row([(s / 1000).to_string(), format!("{p:.0}"), format!("{j:.0}")]);
        }
        write!(
            f,
            "Figure 13 — 200:1 incast FCT, perfect vs measured pull spacing\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig13;

impl crate::registry::Experiment for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }
    fn title(&self) -> &'static str {
        "200:1 incast FCT, perfect vs measured pull spacing"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "rows",
            Json::arr(self.rows.iter().map(|&(size, perfect, measured)| {
                Json::obj([
                    ("size_bytes", Json::num(size as f64)),
                    ("perfect_us", Json::num(perfect)),
                    ("measured_us", Json::num(measured)),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_makes_no_discernible_difference() {
        let rep = run(Scale::Quick);
        for (s, p, j) in &rep.rows {
            let rel = ((j - p) / p).abs();
            assert!(
                rel < 0.15,
                "size {s}: perfect {p:.0}us vs jittered {j:.0}us ({rel:.3})"
            );
        }
    }
}
