//! Figure 14: per-flow throughput under a permutation traffic matrix on
//! the 432-host FatTree, for NDP (8-pkt queues), MPTCP (8 subflows,
//! 200-pkt queues), DCTCP and DCQCN.
//!
//! Expected shape: DCTCP/DCQCN suffer per-flow-ECMP collisions (~40 %
//! utilization, slowest flows ≪ 1 Gb/s); MPTCP reaches ~89 %; NDP ~92 %+
//! with the tightest distribution (slowest flow ≈ 9 Gb/s).

use ndp_metrics::Table;
use ndp_sim::Time;
use ndp_topology::FatTreeCfg;

use crate::harness::{PermutationResult, Proto, Scale};
use crate::sweep::{sweep_permutation, PermutationPoint, SweepSpec};
use crate::topo::{TopoEntry, TopoSpec};

pub struct Report {
    pub results: Vec<(Proto, PermutationResult)>,
}

pub fn run(scale: Scale, topo: Option<&'static TopoEntry>) -> Report {
    let duration = match scale {
        Scale::Paper => Time::from_ms(30),
        Scale::Quick => Time::from_ms(10),
    };
    // Default fabric: the figure's own "big" FatTree (432 hosts at paper
    // scale); any registered topology can stand in via --topo.
    let fabric = match topo {
        Some(e) => e.spec(scale),
        None => TopoSpec::fattree(FatTreeCfg::new(scale.big_k())),
    };
    let protos = [Proto::Ndp, Proto::Mptcp, Proto::Dctcp, Proto::Dcqcn];
    let spec = SweepSpec::new(
        "fig14: permutation x protocol",
        protos
            .iter()
            .map(|&proto| PermutationPoint {
                proto,
                topo: fabric.clone(),
                duration,
                seed: 7,
                iw: None,
            })
            .collect(),
    );
    Report {
        results: protos.into_iter().zip(sweep_permutation(&spec)).collect(),
    }
}

impl Report {
    pub fn utilization(&self, proto: Proto) -> f64 {
        self.results
            .iter()
            .find(|(p, _)| *p == proto)
            .map(|(_, r)| r.utilization)
            .unwrap_or(0.0)
    }

    pub fn min_gbps(&self, proto: Proto) -> f64 {
        self.results
            .iter()
            .find(|(p, _)| *p == proto)
            .and_then(|(_, r)| r.per_flow_gbps.first().copied())
            .unwrap_or(0.0)
    }

    pub fn headline(&self) -> String {
        format!(
            "utilization: NDP {:.0}%, MPTCP {:.0}%, DCTCP {:.0}%, DCQCN {:.0}%; slowest NDP flow {:.1} Gb/s",
            100.0 * self.utilization(Proto::Ndp),
            100.0 * self.utilization(Proto::Mptcp),
            100.0 * self.utilization(Proto::Dctcp),
            100.0 * self.utilization(Proto::Dcqcn),
            self.min_gbps(Proto::Ndp)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "protocol",
            "util %",
            "min Gb/s",
            "p10 Gb/s",
            "median Gb/s",
            "max Gb/s",
        ]);
        for (p, r) in &self.results {
            let v = &r.per_flow_gbps;
            let n = v.len();
            t.row([
                p.label().to_string(),
                format!("{:.1}", 100.0 * r.utilization),
                format!("{:.2}", v[0]),
                format!("{:.2}", v[n / 10]),
                format!("{:.2}", v[n / 2]),
                format!("{:.2}", v[n - 1]),
            ]);
        }
        write!(
            f,
            "Figure 14 — permutation per-flow throughput\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig14;

impl crate::registry::Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }
    fn title(&self) -> &'static str {
        "Permutation per-flow throughput (NDP vs MPTCP/DCTCP/DCQCN)"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale, topo))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "protocols",
            Json::arr(self.results.iter().map(|(p, r)| {
                Json::obj([
                    ("proto", Json::str(p.label())),
                    ("utilization", Json::num(r.utilization)),
                    (
                        "per_flow_gbps_sorted",
                        Json::arr(r.per_flow_gbps.iter().map(|&g| Json::num(g))),
                    ),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_matches_paper() {
        let rep = run(Scale::Quick, None);
        let ndp = rep.utilization(Proto::Ndp);
        let mptcp = rep.utilization(Proto::Mptcp);
        let dctcp = rep.utilization(Proto::Dctcp);
        let dcqcn = rep.utilization(Proto::Dcqcn);
        assert!(ndp > 0.85, "NDP utilization {ndp:.2}");
        assert!(ndp > mptcp, "NDP {ndp:.2} > MPTCP {mptcp:.2}");
        assert!(mptcp > dctcp, "MPTCP {mptcp:.2} > DCTCP {dctcp:.2}");
        assert!(
            dctcp < 0.75,
            "single-path ECMP collisions should cap DCTCP: {dctcp:.2}"
        );
        assert!(dcqcn < 0.75, "DCQCN is also single-path: {dcqcn:.2}");
        // Fairness: NDP's slowest flow stays near line rate.
        assert!(
            rep.min_gbps(Proto::Ndp) > 0.75 * 10.0 * ndp,
            "NDP min flow {:.2}",
            rep.min_gbps(Proto::Ndp)
        );
    }
}
