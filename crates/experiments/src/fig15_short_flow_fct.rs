//! Figure 15: FCT of repeated 90 KB transfers between two otherwise-idle
//! hosts while every other host sources four long flows to random
//! destinations — the standing-queue test.
//!
//! Expected ordering (medians): NDP ≪ DCTCP ≤ DCQCN ≪ MPTCP, because NDP's
//! in-network buffers are 8 packets while DCTCP's marking holds ~30 and
//! MPTCP greedily fills the 200-packet buffers.

use ndp_metrics::{Cdf, Table};
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{ComponentId, Time, World};
use ndp_topology::{FatTree, FatTreeCfg};

use crate::harness::{attach_on, completion_time, FlowSpec, Proto, Scale, Trigger, LONG_FLOW};

pub struct Report {
    pub cdfs: Vec<(Proto, Cdf)>,
}

fn probe_fcts(proto: Proto, scale: Scale, seed: u64) -> Cdf {
    let cfg = FatTreeCfg::new(scale.big_k()).with_fabric(proto.fabric());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    // Background: every host except the two probes sources 4 long flows.
    let probe_a = 0usize;
    let probe_b = n / 2; // different pod
    let mut flow_id = 1_000u64;
    let bg_per_host = match scale {
        Scale::Paper => 4,
        Scale::Quick => 2,
    };
    for src in 0..n {
        if src == probe_a || src == probe_b {
            continue;
        }
        for _ in 0..bg_per_host {
            let dst = ndp_workloads::uniform_where(n, &mut rng, |d| {
                d != src && d != probe_a && d != probe_b
            });
            let spec = FlowSpec::new(flow_id, src as HostId, dst as HostId, LONG_FLOW);
            flow_id += 1;
            attach_on(&mut world, &ft, proto, &spec);
        }
    }
    // Probes: a chain of 90KB transfers A->B, each started when the
    // previous completes (plus a small gap).
    let n_probes = match scale {
        Scale::Paper => 60,
        Scale::Quick => 15,
    };
    let trig: ComponentId = world.reserve();
    let mut trigger = Trigger::new();
    for i in 0..n_probes {
        let flow = i as u64 + 1;
        let mut spec = FlowSpec::new(flow, probe_a as HostId, probe_b as HostId, 90_000);
        spec.notify = Some((trig, flow));
        spec.start = if i == 0 { Time::from_ms(1) } else { Time::MAX };
        attach_on(&mut world, &ft, proto, &spec);
        if i + 1 < n_probes {
            trigger.on(
                flow,
                Time::from_us(100),
                vec![(ft.hosts[probe_a], (flow + 1) << 8)],
            );
        }
    }
    world.install(trig, trigger);
    world.run_until(match scale {
        Scale::Paper => Time::from_secs(5),
        Scale::Quick => Time::from_secs(2),
    });
    // FCT = completion - start; starts are in the trigger log (previous
    // completion + gap), the first at 1 ms.
    let trig_ref = world.get::<Trigger>(trig);
    let mut samples = Vec::new();
    let mut start = Time::from_ms(1);
    for i in 0..n_probes {
        let flow = i as u64 + 1;
        let Some(done) = completion_time(&world, ft.hosts[probe_b], flow, proto) else {
            break;
        };
        samples.push((done - start).as_ms());
        match trig_ref.fired_at(flow) {
            Some(t) => start = t + Time::from_us(100),
            None => break,
        }
    }
    Cdf::from_samples(samples)
}

pub fn run(scale: Scale) -> Report {
    let protos = [Proto::Ndp, Proto::Dctcp, Proto::Dcqcn, Proto::Mptcp];
    Report {
        cdfs: protos
            .iter()
            .map(|&p| (p, probe_fcts(p, scale, 17)))
            .collect(),
    }
}

impl Report {
    pub fn median(&self, proto: Proto) -> f64 {
        self.cdfs
            .iter()
            .find(|(p, _)| *p == proto)
            .map(|(_, c)| c.median())
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        format!(
            "median 90KB FCT: NDP {:.2}ms, DCTCP {:.2}ms, DCQCN {:.2}ms, MPTCP {:.2}ms",
            self.median(Proto::Ndp),
            self.median(Proto::Dctcp),
            self.median(Proto::Dcqcn),
            self.median(Proto::Mptcp)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["protocol", "median (ms)", "p90 (ms)", "p99 (ms)", "samples"]);
        for (p, c) in &self.cdfs {
            if c.is_empty() {
                t.row([
                    p.label().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "0".into(),
                ]);
                continue;
            }
            t.row([
                p.label().to_string(),
                format!("{:.3}", c.median()),
                format!("{:.3}", c.percentile(0.90)),
                format!("{:.3}", c.percentile(0.99)),
                c.len().to_string(),
            ]);
        }
        write!(
            f,
            "Figure 15 — 90KB FCTs under background load\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig15;

impl crate::registry::Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }
    fn title(&self) -> &'static str {
        "90KB FCTs under background load (standing-queue test)"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        use crate::registry::{cdf_json, CDF_POINTS};
        Json::obj([
            ("unit", Json::str("ms")),
            (
                "protocols",
                Json::arr(self.cdfs.iter().map(|(p, c)| {
                    Json::obj([
                        ("proto", Json::str(p.label())),
                        ("samples", Json::num(c.len() as f64)),
                        ("fct", cdf_json(c, CDF_POINTS)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndp_beats_dctcp_beats_mptcp() {
        let rep = run(Scale::Quick);
        let ndp = rep.median(Proto::Ndp);
        let dctcp = rep.median(Proto::Dctcp);
        let mptcp = rep.median(Proto::Mptcp);
        assert!(ndp < dctcp, "NDP {ndp:.3}ms < DCTCP {dctcp:.3}ms");
        assert!(dctcp < mptcp, "DCTCP {dctcp:.3}ms < MPTCP {mptcp:.3}ms");
        // NDP's worst case stays within ~2x the unloaded transfer time.
        let c = &rep.cdfs.iter().find(|(p, _)| *p == Proto::Ndp).unwrap().1;
        assert!(
            c.percentile(1.0) < 1.0,
            "NDP p100 {:.3}ms",
            c.percentile(1.0)
        );
    }
}
