//! Figure 16: incast completion time vs number of backend servers
//! (450 KB responses) on the 432-host FatTree, for MPTCP, DCTCP, DCQCN and
//! NDP; both the fastest and the slowest flow, to expose fairness spread.
//!
//! Expected: NDP and DCQCN sit on the optimal line with a tight min/max
//! spread (NDP's slowest ≤ ~1.2× its fastest); DCTCP is ~5 % off with a
//! wide spread; MPTCP is crippled by synchronized tail losses.

use ndp_metrics::Table;
use ndp_sim::{Speed, Time};
use ndp_topology::FatTreeCfg;

use crate::harness::{incast_ideal, Proto, Scale};
use crate::sweep::{sweep_incast, IncastPoint, SweepSpec};
use crate::topo::TopoSpec;

pub struct Row {
    pub n: usize,
    pub proto: Proto,
    pub first_ms: f64,
    pub last_ms: f64,
    pub incomplete: usize,
}

pub struct Report {
    pub rows: Vec<Row>,
    pub ideal_ms: Vec<(usize, f64)>,
}

pub fn run(scale: Scale) -> Report {
    let size = 450_000u64;
    let counts: &[usize] = match scale {
        Scale::Paper => &[8, 16, 32, 64, 128, 200, 300, 400],
        Scale::Quick => &[8, 32, 64, 100],
    };
    let protos = [Proto::Ndp, Proto::Dctcp, Proto::Dcqcn, Proto::Mptcp];
    let ideal: Vec<(usize, f64)> = counts
        .iter()
        .map(|&n| (n, incast_ideal(n, size, Speed::gbps(10), 9000).as_ms()))
        .collect();
    let spec = SweepSpec::grid(
        "fig16: incast size x protocol",
        counts,
        &protos,
        |&n, &proto| IncastPoint {
            proto,
            topo: TopoSpec::fattree(FatTreeCfg::new(scale.big_k())),
            n_senders: n,
            size,
            iw: None,
            seed: 3,
            horizon: Time::from_secs(30),
        },
    );
    let rows = spec
        .points
        .iter()
        .zip(sweep_incast(&spec))
        .map(|(point, r)| Row {
            n: point.n_senders,
            proto: point.proto,
            first_ms: r.first().map_or(f64::NAN, |t| t.as_ms()),
            last_ms: r.last().map_or(f64::NAN, |t| t.as_ms()),
            incomplete: r.incomplete,
        })
        .collect();
    Report {
        rows,
        ideal_ms: ideal,
    }
}

impl Report {
    pub fn last_ms(&self, proto: Proto, n: usize) -> f64 {
        self.rows
            .iter()
            .find(|r| r.proto == proto && r.n == n)
            .map(|r| r.last_ms)
            .unwrap_or(f64::NAN)
    }

    pub fn ideal(&self, n: usize) -> f64 {
        self.ideal_ms
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, i)| *i)
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        let n = self.ideal_ms.last().unwrap().0;
        format!(
            "at {}:1 (450KB): ideal {:.1}ms, NDP {:.1}ms, DCQCN {:.1}ms, DCTCP {:.1}ms, MPTCP {:.1}ms",
            n,
            self.ideal(n),
            self.last_ms(Proto::Ndp, n),
            self.last_ms(Proto::Dcqcn, n),
            self.last_ms(Proto::Dctcp, n),
            self.last_ms(Proto::Mptcp, n)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "N",
            "ideal (ms)",
            "protocol",
            "first (ms)",
            "last (ms)",
            "incomplete",
        ]);
        for r in &self.rows {
            t.row([
                r.n.to_string(),
                format!("{:.2}", self.ideal(r.n)),
                r.proto.label().to_string(),
                format!("{:.2}", r.first_ms),
                format!("{:.2}", r.last_ms),
                r.incomplete.to_string(),
            ]);
        }
        write!(
            f,
            "Figure 16 — incast completion vs number of senders\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig16;

impl crate::registry::Experiment for Fig16 {
    fn id(&self) -> &'static str {
        "fig16"
    }
    fn title(&self) -> &'static str {
        "Incast completion vs number of senders (450KB responses)"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            (
                "ideal",
                Json::arr(self.ideal_ms.iter().map(|&(n, ms)| {
                    Json::obj([("n", Json::num(n as f64)), ("ms", Json::num(ms))])
                })),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("n", Json::num(r.n as f64)),
                        ("proto", Json::str(r.proto.label())),
                        ("first_ms", Json::num(r.first_ms)),
                        ("last_ms", Json::num(r.last_ms)),
                        ("incomplete", Json::num(r.incomplete as f64)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndp_near_ideal_mptcp_crippled() {
        let rep = run(Scale::Quick);
        let n = 64;
        let ideal = rep.ideal(n);
        let ndp = rep.last_ms(Proto::Ndp, n);
        let mptcp = rep.last_ms(Proto::Mptcp, n);
        assert!(ndp < ideal * 1.25, "NDP {ndp:.2} vs ideal {ideal:.2}");
        assert!(
            mptcp > 2.0 * ndp,
            "MPTCP {mptcp:.2} should be far slower than NDP {ndp:.2}"
        );
        // NDP fairness: the slowest flow stays within ~60% of the fastest
        // (the paper reports ≤20% on its testbed; our fully synchronized
        // starts maximize first-RTT variance), and the spread is far
        // tighter than DCTCP's (paper: up to 7x).
        let row = rep
            .rows
            .iter()
            .find(|r| r.proto == Proto::Ndp && r.n == n)
            .unwrap();
        assert!(
            row.last_ms < row.first_ms * 1.6,
            "NDP spread {:.2}..{:.2}",
            row.first_ms,
            row.last_ms
        );
        let drow = rep
            .rows
            .iter()
            .find(|r| r.proto == Proto::Dctcp && r.n == n)
            .unwrap();
        assert!(
            row.last_ms / row.first_ms < drow.last_ms / drow.first_ms,
            "NDP spread ({:.2}x) must beat DCTCP's ({:.2}x)",
            row.last_ms / row.first_ms,
            drow.last_ms / drow.first_ms
        );
        assert_eq!(row.incomplete, 0);
    }
}
