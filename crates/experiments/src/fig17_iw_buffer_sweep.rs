//! Figure 17: permutation utilization as a function of the initial window
//! for switch buffers of 6/8/10 packets (9 K MTU) and 8 packets (1.5 K
//! MTU).
//!
//! Expected: IW below ~15 underutilizes regardless of buffering; 8-packet
//! buffers reach ≥95 % by IW ~20–30; 6-packet buffers plateau slightly
//! lower; very large IW loses a little to header pressure; 1.5 K MTU needs
//! a larger IW (~30) for the same utilization.

use ndp_metrics::Table;
use ndp_sim::Time;
use ndp_topology::{FatTreeCfg, QueueSpec};

use crate::harness::{Proto, Scale};
use crate::sweep::{sweep_permutation, PermutationPoint, SweepSpec};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Variant {
    pub buffer_pkts: usize,
    pub mtu: u32,
}

pub struct Report {
    /// (variant, iw, utilization)
    pub rows: Vec<(Variant, u64, f64)>,
}

pub fn run(scale: Scale) -> Report {
    let variants = [
        Variant {
            buffer_pkts: 6,
            mtu: 9000,
        },
        Variant {
            buffer_pkts: 8,
            mtu: 9000,
        },
        Variant {
            buffer_pkts: 10,
            mtu: 9000,
        },
        Variant {
            buffer_pkts: 8,
            mtu: 1500,
        },
    ];
    let iws: &[u64] = match scale {
        Scale::Paper => &[5, 8, 10, 12, 15, 20, 25, 30, 35, 40],
        Scale::Quick => &[5, 15, 30],
    };
    let duration = match scale {
        Scale::Paper => Time::from_ms(20),
        Scale::Quick => Time::from_ms(8),
    };
    // The paper sweeps on the 432-host tree; k=8 preserves the shape at a
    // fraction of the cost and Scale::Paper can still use big_k.
    let k = match scale {
        Scale::Paper => 8,
        Scale::Quick => 4,
    };
    let cells = SweepSpec::grid("fig17: buffer/mtu x IW", &variants, iws, |&v, &iw| (v, iw));
    let spec = SweepSpec::new(
        cells.label,
        cells
            .points
            .iter()
            .map(|&(v, iw)| {
                let cfg = FatTreeCfg::new(k)
                    .with_mtu(v.mtu)
                    .with_fabric(QueueSpec::Ndp {
                        data_cap_pkts: v.buffer_pkts,
                    });
                PermutationPoint {
                    proto: Proto::Ndp,
                    // Pinned: the buffer size IS the scenario knob, so the
                    // transport's default fabric must not override it.
                    topo: crate::topo::TopoSpec::fattree_pinned(cfg),
                    duration,
                    seed: 23,
                    iw: Some(iw),
                }
            })
            .collect(),
    );
    let rows = cells
        .points
        .iter()
        .zip(sweep_permutation(&spec))
        .map(|(&(v, iw), r)| (v, iw, r.utilization))
        .collect();
    Report { rows }
}

impl Report {
    pub fn util(&self, buffer: usize, mtu: u32, iw: u64) -> f64 {
        self.rows
            .iter()
            .find(|(v, i, _)| v.buffer_pkts == buffer && v.mtu == mtu && *i == iw)
            .map(|(_, _, u)| *u)
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        let best = self.rows.iter().map(|r| r.2).fold(0.0, f64::max);
        format!(
            "peak permutation utilization {:.1}% (8-pkt buffers)",
            best * 100.0
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["buffer (pkts)", "MTU", "IW", "utilization %"]);
        for (v, iw, u) in &self.rows {
            t.row([
                v.buffer_pkts.to_string(),
                v.mtu.to_string(),
                iw.to_string(),
                format!("{:.1}", u * 100.0),
            ]);
        }
        write!(
            f,
            "Figure 17 — utilization vs IW and buffer size\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig17;

impl crate::registry::Experiment for Fig17 {
    fn id(&self) -> &'static str {
        "fig17"
    }
    fn title(&self) -> &'static str {
        "Permutation utilization vs initial window and buffer size"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "rows",
            Json::arr(self.rows.iter().map(|&(v, iw, util)| {
                Json::obj([
                    ("buffer_pkts", Json::num(v.buffer_pkts as f64)),
                    ("mtu", Json::num(v.mtu as f64)),
                    ("iw_pkts", Json::num(iw as f64)),
                    ("utilization", Json::num(util)),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rep = run(Scale::Quick);
        // Small IW underutilizes.
        assert!(rep.util(8, 9000, 5) < rep.util(8, 9000, 30) - 0.03);
        // 8-packet buffers with a healthy IW exceed 90%.
        assert!(
            rep.util(8, 9000, 30) > 0.90,
            "util {:.3}",
            rep.util(8, 9000, 30)
        );
        // 6-packet buffers trail 8-packet ones (slightly).
        assert!(rep.util(6, 9000, 30) <= rep.util(8, 9000, 30) + 0.02);
        // 1.5K MTU at the same IW is no better than 9K.
        assert!(rep.util(8, 1500, 30) <= rep.util(8, 9000, 30) + 0.02);
    }
}
