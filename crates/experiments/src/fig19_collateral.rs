//! Figure 19: collateral damage caused by a 64-flow incast on a
//! *different* host of the same ToR, for DCTCP, DCQCN and NDP.
//!
//! Setup (Fig 18): host A receives one long-running flow; host B, on the
//! same ToR, receives a 64:1 incast of 900 KB responses. We trace goodput
//! of both hosts in 1 ms buckets. Expected: DCTCP's long flow dips for
//! tens of ms while losses recover; DCQCN's PFC pauses repeatedly punch
//! holes in the long flow; NDP's long flow dips for under ~2 ms (the first
//! RTT of the incast) and recovers to line rate.

use ndp_metrics::{Table, TimeSeries};
use ndp_net::host::Host;
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{Time, World};
use ndp_topology::{TwoTier, TwoTierCfg};

use crate::harness::{attach_generic, FlowSpec, Proto, Scale, LONG_FLOW};

pub struct Trace {
    pub proto: Proto,
    pub long_flow: TimeSeries,
    pub incast: TimeSeries,
    /// Buckets (ms) where the long flow ran below half line rate after the
    /// incast started.
    pub long_flow_depressed_ms: usize,
}

pub struct Report {
    pub traces: Vec<Trace>,
    pub incast_start: Time,
}

fn trial(proto: Proto, scale: Scale, seed: u64) -> Trace {
    let n_incast = match scale {
        Scale::Paper => 64,
        Scale::Quick => 32,
    };
    // Victim rack (hosts 0, 1) + sender racks, two hosts each.
    let cfg = TwoTierCfg::collateral(n_incast / 2 + 1).with_fabric(proto.fabric());
    let mut world: World<Packet> = World::new(seed);
    let tt = TwoTier::build(&mut world, cfg);
    let bucket = Time::from_ms(1);
    world.get_mut::<Host>(tt.hosts[0]).enable_rx_trace(bucket);
    world.get_mut::<Host>(tt.hosts[1]).enable_rx_trace(bucket);
    // Long flow into host 0 from the last sender host.
    let long_src = tt.hosts.len() - 1;
    let spec = FlowSpec::new(1, long_src as HostId, 0, LONG_FLOW);
    attach_generic(
        &mut world,
        proto,
        &spec,
        (tt.hosts[long_src], long_src as HostId),
        (tt.hosts[0], 0),
        tt.n_paths(long_src as u32, 0),
        9000,
    );
    // 64:1 incast of 900KB into host 1 starting at t=50ms, from hosts 2..,
    // skipping the long-flow source.
    let incast_start = Time::from_ms(50);
    for i in 0..n_incast {
        let src = 2 + i;
        assert!(src < long_src);
        let mut s = FlowSpec::new(10 + i as u64, src as HostId, 1, 900_000);
        s.start = incast_start;
        attach_generic(
            &mut world,
            proto,
            &s,
            (tt.hosts[src], src as HostId),
            (tt.hosts[1], 1),
            tt.n_paths(src as u32, 1),
            9000,
        );
    }
    let horizon = match proto {
        Proto::Dctcp => Time::from_ms(400),
        _ => Time::from_ms(200),
    };
    world.run_until(horizon);
    let collect = |host: usize| {
        let mut ts = TimeSeries::new(bucket);
        if let Some((b, buckets)) = world.get::<Host>(tt.hosts[host]).rx_trace() {
            for (i, &bytes) in buckets.iter().enumerate() {
                ts.add(b * i as u64, bytes);
            }
        }
        ts
    };
    let long_flow = collect(0);
    let incast = collect(1);
    let start_bucket = (incast_start.as_ps() / bucket.as_ps()) as usize;
    let depressed = long_flow
        .rates_gbps()
        .iter()
        .skip(start_bucket)
        .filter(|(_, r)| *r < 5.0)
        .count();
    Trace {
        proto,
        long_flow,
        incast,
        long_flow_depressed_ms: depressed,
    }
}

pub fn run(scale: Scale) -> Report {
    let protos = [Proto::Dctcp, Proto::Dcqcn, Proto::Ndp];
    Report {
        traces: protos.iter().map(|&p| trial(p, scale, 13)).collect(),
        incast_start: Time::from_ms(50),
    }
}

impl Report {
    pub fn depressed_ms(&self, proto: Proto) -> usize {
        self.traces
            .iter()
            .find(|t| t.proto == proto)
            .map(|t| t.long_flow_depressed_ms)
            .unwrap_or(usize::MAX)
    }

    pub fn headline(&self) -> String {
        format!(
            "long-flow depressed buckets (<5Gb/s, 1ms each): DCTCP {}, DCQCN {}, NDP {}",
            self.depressed_ms(Proto::Dctcp),
            self.depressed_ms(Proto::Dcqcn),
            self.depressed_ms(Proto::Ndp)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in &self.traces {
            writeln!(
                f,
                "Figure 19 — {} (incast starts at {})",
                t.proto.label(),
                self.incast_start
            )?;
            let mut tab = Table::new(["t (ms)", "long flow Gb/s", "incast Gb/s"]);
            let long = t.long_flow.rates_gbps();
            let inc = t.incast.rates_gbps();
            let n = long.len().max(inc.len());
            for i in (0..n).step_by(2) {
                let lf = long.get(i).map(|x| x.1).unwrap_or(0.0);
                let ic = inc.get(i).map(|x| x.1).unwrap_or(0.0);
                tab.row([
                    format!("{:.0}", i as f64),
                    format!("{lf:.2}"),
                    format!("{ic:.2}"),
                ]);
            }
            writeln!(f, "{}", tab.render())?;
        }
        Ok(())
    }
}

/// Registry entry.
pub struct Fig19;

impl crate::registry::Experiment for Fig19 {
    fn id(&self) -> &'static str {
        "fig19"
    }
    fn title(&self) -> &'static str {
        "Collateral damage of a same-ToR incast on a long flow"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let series = |ts: &ndp_metrics::TimeSeries| {
            Json::arr(ts.rates_gbps().iter().map(|&(t, gbps)| {
                Json::obj([("t_ms", Json::num(t.as_ms())), ("gbps", Json::num(gbps))])
            }))
        };
        Json::obj([
            ("incast_start_ms", Json::num(self.incast_start.as_ms())),
            (
                "traces",
                Json::arr(self.traces.iter().map(|tr| {
                    Json::obj([
                        ("proto", Json::str(tr.proto.label())),
                        (
                            "long_flow_depressed_ms",
                            Json::num(tr.long_flow_depressed_ms as f64),
                        ),
                        ("long_flow", series(&tr.long_flow)),
                        ("incast", series(&tr.incast)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndp_recovers_fastest() {
        let rep = run(Scale::Quick);
        let ndp = rep.depressed_ms(Proto::Ndp);
        let dctcp = rep.depressed_ms(Proto::Dctcp);
        assert!(ndp <= 3, "NDP long flow should dip <3ms, got {ndp}");
        assert!(
            dctcp > ndp,
            "DCTCP ({dctcp}ms) must suffer longer than NDP ({ndp}ms)"
        );
        // The incast itself completes: its aggregate trace carries all the
        // bytes eventually.
        for t in &rep.traces {
            let total = t.incast.total_bytes();
            assert!(total > 0, "{:?} incast never delivered", t.proto);
        }
    }
}
