//! Figure 20: is there a limit to the size of incast NDP can cope with?
//!
//! Incasts of 1 → 8000 flows of 270 KB on the 8192-host FatTree, for
//! initial windows of 23, 10 and 1. Reported: (a) last-flow completion
//! overhead over the theoretical optimum; (b) retransmissions per packet,
//! split by trigger (NACK-pull vs return-to-sender), the paper's Fig 20b.
//!
//! Expected: overhead ≤ ~2 % for IW 23 (worst for small incasts), IW 1
//! terrible below 8 flows (can't fill the pipe); NACKs dominate small
//! incasts, return-to-sender takes over above ~100 flows; mean
//! retransmissions per packet stay around or below one even at 8000.

use ndp_core::NdpSender;
use ndp_metrics::Table;
use ndp_net::host::Host;
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{Speed, Time, World};
use ndp_topology::{FatTree, FatTreeCfg};

use crate::harness::{attach_on, completion_time, incast_ideal, FlowSpec, Proto, Scale};
use crate::sweep::SweepSpec;

pub struct Row {
    pub iw: u64,
    pub n: usize,
    pub overhead_pct: f64,
    pub rtx_nack_per_pkt: f64,
    pub rtx_rts_per_pkt: f64,
}

pub struct Report {
    pub rows: Vec<Row>,
}

fn trial(scale: Scale, n: usize, iw: u64, seed: u64) -> Row {
    let cfg = FatTreeCfg::new(scale.huge_k());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n_hosts = ft.n_hosts();
    let size = 270_000u64;
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let workers = ndp_workloads::incast(0, n.min(n_hosts - 1), n_hosts, &mut rng);
    for (i, &w) in workers.iter().enumerate() {
        let mut spec = FlowSpec::new(i as u64 + 1, w as HostId, 0, size);
        spec.iw = Some(iw);
        attach_on(&mut world, &ft, Proto::Ndp, &spec);
    }
    world.run_until(Time::from_secs(60));
    let mut last = Time::ZERO;
    let mut total_pkts = 0u64;
    let mut rtx_nack = 0u64;
    let mut rtx_rts = 0u64;
    for (i, &w) in workers.iter().enumerate() {
        let done = completion_time(&world, ft.hosts[0], i as u64 + 1, Proto::Ndp)
            .expect("incast flow must complete");
        last = last.max(done);
        let s = world
            .get::<Host>(ft.hosts[w])
            .endpoint::<NdpSender>(i as u64 + 1);
        total_pkts += s.total_pkts();
        rtx_nack += s.stats.rtx_nack;
        rtx_rts += s.stats.rtx_rts + s.stats.rtx_rto;
    }
    let ideal = incast_ideal(workers.len(), size, Speed::gbps(10), 9000);
    Row {
        iw,
        n: workers.len(),
        overhead_pct: 100.0 * (last.as_secs() - ideal.as_secs()) / ideal.as_secs(),
        rtx_nack_per_pkt: rtx_nack as f64 / total_pkts as f64,
        rtx_rts_per_pkt: rtx_rts as f64 / total_pkts as f64,
    }
}

pub fn run(scale: Scale) -> Report {
    let counts: &[usize] = match scale {
        Scale::Paper => &[1, 8, 30, 100, 300, 1000, 3000, 8000],
        Scale::Quick => &[1, 8, 30, 100],
    };
    let iws: &[u64] = match scale {
        Scale::Paper => &[23, 10, 1],
        Scale::Quick => &[23, 1],
    };
    let spec = SweepSpec::grid("fig20: IW x incast size", iws, counts, |&iw, &n| (iw, n));
    Report {
        rows: spec.run(|&(iw, n)| trial(scale, n, iw, 7)),
    }
}

impl Report {
    pub fn overhead(&self, iw: u64, n: usize) -> f64 {
        self.rows
            .iter()
            .find(|r| r.iw == iw && r.n == n)
            .map(|r| r.overhead_pct)
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        let worst = self
            .rows
            .iter()
            .filter(|r| r.iw == 23 && r.n >= 8)
            .map(|r| r.overhead_pct)
            .fold(0.0, f64::max);
        format!(
            "IW 23: worst completion overhead over optimal {:.1}% (n >= 8)",
            worst
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "IW",
            "incast size",
            "overhead %",
            "rtx/pkt (NACK)",
            "rtx/pkt (RTS+RTO)",
        ]);
        for r in &self.rows {
            t.row([
                r.iw.to_string(),
                r.n.to_string(),
                format!("{:.2}", r.overhead_pct),
                format!("{:.3}", r.rtx_nack_per_pkt),
                format!("{:.3}", r.rtx_rts_per_pkt),
            ]);
        }
        write!(
            f,
            "Figure 20 — large incast overhead and retransmission mechanisms\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig20;

impl crate::registry::Experiment for Fig20 {
    fn id(&self) -> &'static str {
        "fig20"
    }
    fn title(&self) -> &'static str {
        "Large-incast overhead and retransmission mechanisms"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "rows",
            Json::arr(self.rows.iter().map(|r| {
                Json::obj([
                    ("iw_pkts", Json::num(r.iw as f64)),
                    ("n", Json::num(r.n as f64)),
                    ("overhead_pct", Json::num(r.overhead_pct)),
                    ("rtx_nack_per_pkt", Json::num(r.rtx_nack_per_pkt)),
                    ("rtx_rts_per_pkt", Json::num(r.rtx_rts_per_pkt)),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_small_and_rts_takes_over() {
        let rep = run(Scale::Quick);
        for r in &rep.rows {
            if r.iw == 23 && r.n >= 8 {
                assert!(
                    r.overhead_pct < 10.0,
                    "IW23 n={} overhead {:.2}%",
                    r.n,
                    r.overhead_pct
                );
                assert!(
                    r.rtx_nack_per_pkt + r.rtx_rts_per_pkt < 1.5,
                    "rtx per pkt stays bounded"
                );
            }
        }
        // Tiny IW can't fill the pipe for small incasts.
        assert!(rep.overhead(1, 1) > rep.overhead(23, 1));
        // NACK-triggered retransmissions appear once trimming starts.
        let big = rep.rows.iter().find(|r| r.iw == 23 && r.n == 100).unwrap();
        assert!(big.rtx_nack_per_pkt + big.rtx_rts_per_pkt > 0.05);
    }
}
