//! Figure 21: sender-limited traffic. Host A sends to B, C, D and E while
//! host F also sends to E. Fair queuing of the pull queue at E must give A
//! exactly what it can use (≈2.4 Gb/s) and fill the rest of E's link from
//! F, while A's four flows split A's NIC almost perfectly.
//!
//! Paper's numbers: A→B/C/D ≈ 2.5, A→E ≈ 2.38, F→E ≈ 7.55; both A's
//! uplink and E's downlink ≈ 9.9 Gb/s.

use ndp_metrics::Table;
use ndp_net::packet::{HostId, Packet};
use ndp_sim::{Time, World};
use ndp_topology::{TwoTier, TwoTierCfg};

use crate::harness::{attach_generic, delivered_bytes, FlowSpec, Proto, Scale, LONG_FLOW};

pub struct Report {
    /// (label, Gb/s)
    pub flows: Vec<(&'static str, f64)>,
    pub total_from_a: f64,
    pub total_to_e: f64,
}

pub fn run(scale: Scale) -> Report {
    // A=0 B=1 C=2 | D=3 E=4 F=5.
    let cfg = TwoTierCfg::sender_limited();
    let mut world: World<Packet> = World::new(77);
    let tt = TwoTier::build(&mut world, cfg);
    let pairs: [(&str, usize, usize); 5] = [
        ("A->B", 0, 1),
        ("A->C", 0, 2),
        ("A->D", 0, 3),
        ("A->E", 0, 4),
        ("F->E", 5, 4),
    ];
    for (i, &(_, src, dst)) in pairs.iter().enumerate() {
        let spec = FlowSpec::new(i as u64 + 1, src as HostId, dst as HostId, LONG_FLOW);
        attach_generic(
            &mut world,
            Proto::Ndp,
            &spec,
            (tt.hosts[src], src as HostId),
            (tt.hosts[dst], dst as HostId),
            tt.n_paths(src as u32, dst as u32),
            9000,
        );
    }
    let duration = match scale {
        Scale::Paper => Time::from_ms(50),
        Scale::Quick => Time::from_ms(15),
    };
    world.run_until(duration);
    let mut flows = Vec::new();
    let mut from_a = 0.0;
    let mut to_e = 0.0;
    for (i, &(label, _src, dst)) in pairs.iter().enumerate() {
        let bytes = delivered_bytes(&world, tt.hosts[dst], i as u64 + 1, Proto::Ndp);
        let gbps = bytes as f64 * 8.0 / duration.as_secs() / 1e9;
        if label.starts_with("A->") {
            from_a += gbps;
        }
        if label.ends_with("->E") || label == "A->E" {
            to_e += gbps;
        }
        flows.push((label, gbps));
    }
    Report {
        flows,
        total_from_a: from_a,
        total_to_e: to_e,
    }
}

impl Report {
    pub fn gbps(&self, label: &str) -> f64 {
        self.flows
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, g)| *g)
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        format!(
            "A->B {:.2}, A->C {:.2}, A->D {:.2}, A->E {:.2}, F->E {:.2} Gb/s; from A {:.2}, to E {:.2}",
            self.gbps("A->B"),
            self.gbps("A->C"),
            self.gbps("A->D"),
            self.gbps("A->E"),
            self.gbps("F->E"),
            self.total_from_a,
            self.total_to_e
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["flow", "Gb/s"]);
        for (l, g) in &self.flows {
            t.row([l.to_string(), format!("{g:.2}")]);
        }
        t.row([
            "Total from A".to_string(),
            format!("{:.2}", self.total_from_a),
        ]);
        t.row(["Total to E".to_string(), format!("{:.2}", self.total_to_e)]);
        write!(
            f,
            "Figure 21 — sender-limited topology throughputs\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig21;

impl crate::registry::Experiment for Fig21 {
    fn id(&self) -> &'static str {
        "fig21"
    }
    fn title(&self) -> &'static str {
        "Sender-limited traffic: pull fair-queuing fills both bottlenecks"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            (
                "flows",
                Json::arr(self.flows.iter().map(|&(label, gbps)| {
                    Json::obj([("flow", Json::str(label)), ("gbps", Json::num(gbps))])
                })),
            ),
            ("total_from_a_gbps", Json::num(self.total_from_a)),
            ("total_to_e_gbps", Json::num(self.total_to_e)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_fair_queuing_fills_both_bottlenecks() {
        let rep = run(Scale::Quick);
        // Both bottleneck links nearly saturated.
        assert!(rep.total_from_a > 9.0, "A's uplink {:.2}", rep.total_from_a);
        assert!(rep.total_to_e > 9.0, "E's downlink {:.2}", rep.total_to_e);
        // A's four flows share A's link almost equally.
        for l in ["A->B", "A->C", "A->D", "A->E"] {
            let g = rep.gbps(l);
            assert!((1.9..=3.1).contains(&g), "{l} got {g:.2} Gb/s");
        }
        // F fills the rest of E's link: far more than an equal split.
        assert!(rep.gbps("F->E") > 6.5, "F->E {:.2}", rep.gbps("F->E"));
    }
}
