//! Figure 22: permutation throughput when one core↔agg link renegotiates
//! from 10 Gb/s to 1 Gb/s (asymmetric failure) on the 128-host FatTree.
//!
//! Expected: NDP (with the §3.2.3 path penalty) and MPTCP route around the
//! sick link; NDP *without* the penalty keeps spraying onto it and a
//! band of flows collapses to ~3 Gb/s; a few DCTCP flows hash onto the
//! link and get crushed (~0.4 Gb/s).

use ndp_metrics::Table;
use ndp_net::packet::{HostId, Packet};
use ndp_net::queue::LinkClass;
use ndp_sim::{Speed, Time, World};
use ndp_topology::{
    link_index, ChaosController, FabricEvent, FabricOp, FatTree, FatTreeCfg, Topology,
};

use crate::harness::{attach_on, delivered_bytes, FlowSpec, Proto, Scale, LONG_FLOW};

pub struct Report {
    /// (protocol, sorted per-flow Gb/s)
    pub results: Vec<(Proto, Vec<f64>)>,
}

fn trial(proto: Proto, scale: Scale, seed: u64) -> Vec<f64> {
    let k = match scale {
        Scale::Paper => 8, // 128 hosts, as in the paper
        Scale::Quick => 4,
    };
    let cfg = FatTreeCfg::new(k).with_fabric(proto.fabric());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    // Degrade pod 0, agg 0, uplink 0 in both directions, through the
    // fabric-chaos machinery: two `LinkDegrade` events at t=0 walked by a
    // `ChaosController`. The controller's wake is posted before any
    // traffic exists, so the renegotiated speed applies before the first
    // packet is serialized — same outcome as degrading the queues by
    // hand, one less ad-hoc failure path.
    let links = ft.links();
    let schedule: Vec<FabricEvent> = ["agg_up[0][0]", "core_down[0][0]"]
        .iter()
        .map(|label| {
            let link = link_index(&links, label).expect("k>=4 FatTree has the degraded core link");
            debug_assert!(matches!(
                links[link].class,
                LinkClass::AggUp | LinkClass::CoreDown
            ));
            FabricEvent {
                at: Time::ZERO,
                op: FabricOp::LinkDegrade {
                    link,
                    speed: Speed::gbps(1),
                },
            }
        })
        .collect();
    ChaosController::install_into(&mut world, &ft, schedule);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let dsts = ndp_workloads::permutation(n, &mut rng);
    for (src, &dst) in dsts.iter().enumerate() {
        let spec = FlowSpec::new(src as u64 + 1, src as HostId, dst as HostId, LONG_FLOW);
        attach_on(&mut world, &ft, proto, &spec);
    }
    let duration = match scale {
        Scale::Paper => Time::from_ms(30),
        Scale::Quick => Time::from_ms(12),
    };
    world.run_until(duration);
    let mut per_flow: Vec<f64> = dsts
        .iter()
        .enumerate()
        .map(|(src, &dst)| {
            delivered_bytes(&world, ft.hosts[dst], src as u64 + 1, proto) as f64 * 8.0
                / duration.as_secs()
                / 1e9
        })
        .collect();
    per_flow.sort_by(|a, b| a.partial_cmp(b).unwrap());
    per_flow
}

pub fn run(scale: Scale) -> Report {
    let protos = [Proto::Ndp, Proto::NdpNoPenalty, Proto::Mptcp, Proto::Dctcp];
    Report {
        results: protos.iter().map(|&p| (p, trial(p, scale, 19))).collect(),
    }
}

impl Report {
    pub fn min(&self, proto: Proto) -> f64 {
        self.results
            .iter()
            .find(|(p, _)| *p == proto)
            .and_then(|(_, v)| v.first().copied())
            .unwrap_or(f64::NAN)
    }

    pub fn mean(&self, proto: Proto) -> f64 {
        self.results
            .iter()
            .find(|(p, _)| *p == proto)
            .map(|(_, v)| v.iter().sum::<f64>() / v.len() as f64)
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        format!(
            "slowest flow with degraded core link: NDP {:.1} Gb/s, NDP-no-penalty {:.1}, MPTCP {:.1}, DCTCP {:.1}",
            self.min(Proto::Ndp),
            self.min(Proto::NdpNoPenalty),
            self.min(Proto::Mptcp),
            self.min(Proto::Dctcp)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["protocol", "min Gb/s", "p10 Gb/s", "mean Gb/s", "max Gb/s"]);
        for (p, v) in &self.results {
            t.row([
                p.label().to_string(),
                format!("{:.2}", v[0]),
                format!("{:.2}", v[v.len() / 10]),
                format!("{:.2}", self.mean(*p)),
                format!("{:.2}", v[v.len() - 1]),
            ]);
        }
        write!(
            f,
            "Figure 22 — permutation with a core link degraded to 1 Gb/s\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig22;

impl crate::registry::Experiment for Fig22 {
    fn id(&self) -> &'static str {
        "fig22"
    }
    fn title(&self) -> &'static str {
        "Permutation with one core link degraded to 1 Gb/s"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([(
            "protocols",
            Json::arr(self.results.iter().map(|(p, v)| {
                Json::obj([
                    ("proto", Json::str(p.label())),
                    ("mean_gbps", Json::num(self.mean(*p))),
                    (
                        "per_flow_gbps_sorted",
                        Json::arr(v.iter().map(|&g| Json::num(g))),
                    ),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_penalty_rescues_ndp() {
        let rep = run(Scale::Quick);
        let with = rep.min(Proto::Ndp);
        let without = rep.min(Proto::NdpNoPenalty);
        assert!(
            with > without + 0.5,
            "penalty must lift the worst flow: with {with:.2} vs without {without:.2}"
        );
        assert!(rep.mean(Proto::Ndp) > 0.8 * rep.mean(Proto::NdpNoPenalty));
        // DCTCP's unluckiest flow is crushed by the 1G link.
        assert!(
            rep.min(Proto::Dctcp) < 1.5,
            "DCTCP min {:.2}",
            rep.min(Proto::Dctcp)
        );
    }
}
