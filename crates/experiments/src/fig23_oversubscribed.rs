//! Figure 23: the Facebook web workload on a 4:1 oversubscribed FatTree
//! (512 servers, 16 per ToR), closed-loop flow arrivals, moderate (5
//! connections/host) and high (10 connections/host) load; FCT CDFs for
//! NDP vs DCTCP, plus the ToR trim fraction NDP sustains.
//!
//! Expected: at moderate load (~40 % of NDP packets trimmed at the ToR
//! uplinks) NDP's median FCT is about half of DCTCP's; at high load (~70 %
//! trimmed) NDP still edges DCTCP and — the key claim — does **not**
//! collapse: packets that clear the ToR almost always reach the receiver.

use ndp_metrics::{Cdf, Table};
use ndp_net::packet::{HostId, Packet};
use ndp_net::queue::LinkClass;
use ndp_sim::{ComponentId, Time, World};
use ndp_topology::{FatTree, FatTreeCfg, Topology};
use ndp_workloads::{closed_loop_gap_ps, FlowSizeDist};

use crate::harness::{attach_on, completion_time, FlowSpec, Proto, Scale, Trigger};

pub struct LoadResult {
    pub proto: Proto,
    pub conns_per_host: usize,
    pub fct_cdf: Cdf,
    pub tor_up_trim_fraction: f64,
}

pub struct Report {
    pub results: Vec<LoadResult>,
}

fn trial(proto: Proto, scale: Scale, conns_per_host: usize, seed: u64) -> LoadResult {
    let (k, hpt) = match scale {
        Scale::Paper => (8, 16), // 512 hosts, 4:1 oversubscribed
        Scale::Quick => (4, 8),  // 64 hosts, 4:1 oversubscribed
    };
    let cfg = FatTreeCfg::new(k)
        .with_hosts_per_tor(hpt)
        .with_mtu(1500)
        .with_fabric(proto.fabric());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let dist = FlowSizeDist::FacebookWeb;
    let flows_per_slot = match scale {
        Scale::Paper => 12,
        Scale::Quick => 6,
    };
    let trig: ComponentId = world.reserve();
    let mut trigger = Trigger::new();
    let mut flow_id = 1u64;
    // (flow, dst, Ok(first start) | Err((predecessor, gap)))
    type PlannedFlow = (u64, usize, Result<Time, (u64, Time)>);
    let mut all_flows: Vec<PlannedFlow> = Vec::new();
    for host in 0..n {
        for _slot in 0..conns_per_host {
            let mut prev: Option<u64> = None;
            for j in 0..flows_per_slot {
                // No rack locality: uniformly random remote destination.
                let dst = ndp_workloads::uniform_where(n, &mut rng, |d| d / hpt != host / hpt);
                let size = dist.sample(&mut rng).max(64);
                let gap = Time::from_ps(closed_loop_gap_ps(1_000_000_000, &mut rng));
                let mut spec = FlowSpec::new(flow_id, host as HostId, dst as HostId, size);
                spec.notify = Some((trig, flow_id));
                spec.start = if j == 0 {
                    Time::from_ps(rand::Rng::gen_range(&mut rng, 0..1_000_000_000u64))
                } else {
                    Time::MAX
                };
                attach_on(&mut world, &ft, proto, &spec);
                let origin = match prev {
                    None => Ok(spec.start),
                    Some(p) => {
                        trigger.on(p, gap, vec![(ft.hosts[host], flow_id << 8)]);
                        Err((p, gap))
                    }
                };
                all_flows.push((flow_id, dst, origin));
                prev = Some(flow_id);
                flow_id += 1;
            }
        }
    }
    world.install(trig, trigger);
    let horizon = match scale {
        Scale::Paper => Time::from_ms(60),
        Scale::Quick => Time::from_ms(30),
    };
    world.run_until(horizon);
    // FCTs: completion - actual start. Chain flows start when their
    // predecessor's completion trigger fires plus the think gap, so their
    // start times come from the trigger log; this includes all queueing
    // delay, which is where DCTCP's deep buffers show up.
    let trig_ref = world.get::<Trigger>(trig);
    let mut samples = Vec::new();
    for &(flow, dst, origin) in &all_flows {
        let Some(done) = completion_time(&world, ft.hosts[dst], flow, proto) else {
            continue;
        };
        let start = match origin {
            Ok(t) => Some(t),
            Err((prev, gap)) => trig_ref.fired_at(prev).map(|t| t + gap),
        };
        if let Some(s) = start {
            samples.push((done - s).as_ms());
        }
    }
    let stats = ft.stats_by_class(&world);
    let tor_up = stats
        .iter()
        .find(|(c, _)| *c == LinkClass::TorUp)
        .map(|(_, s)| s);
    let trim_fraction = tor_up
        .map(|s| {
            let attempts = s.forwarded_pkts + s.dropped_data;
            if attempts == 0 {
                0.0
            } else {
                s.trimmed as f64 / attempts as f64
            }
        })
        .unwrap_or(0.0);
    LoadResult {
        proto,
        conns_per_host,
        fct_cdf: Cdf::from_samples(samples),
        tor_up_trim_fraction: trim_fraction,
    }
}

pub fn run(scale: Scale) -> Report {
    let mut results = Vec::new();
    for &(conns, seed) in &[(5usize, 41u64), (10, 43)] {
        results.push(trial(Proto::Ndp, scale, conns, seed));
        results.push(trial(Proto::Dctcp, scale, conns, seed));
    }
    Report { results }
}

impl Report {
    pub fn median(&self, proto: Proto, conns: usize) -> f64 {
        self.results
            .iter()
            .find(|r| r.proto == proto && r.conns_per_host == conns)
            .map(|r| {
                if r.fct_cdf.is_empty() {
                    f64::NAN
                } else {
                    r.fct_cdf.median()
                }
            })
            .unwrap_or(f64::NAN)
    }

    pub fn trim_fraction(&self, conns: usize) -> f64 {
        self.results
            .iter()
            .find(|r| r.proto == Proto::Ndp && r.conns_per_host == conns)
            .map(|r| r.tor_up_trim_fraction)
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        format!(
            "median FCT moderate load: NDP {:.2}ms vs DCTCP {:.2}ms (trim {:.0}%); high load: NDP {:.2}ms vs DCTCP {:.2}ms (trim {:.0}%)",
            self.median(Proto::Ndp, 5),
            self.median(Proto::Dctcp, 5),
            100.0 * self.trim_fraction(5),
            self.median(Proto::Ndp, 10),
            self.median(Proto::Dctcp, 10),
            100.0 * self.trim_fraction(10)
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "protocol",
            "conns/host",
            "median (ms)",
            "p90 (ms)",
            "p99 (ms)",
            "ToR-up trim %",
            "flows",
        ]);
        for r in &self.results {
            if r.fct_cdf.is_empty() {
                continue;
            }
            t.row([
                r.proto.label().to_string(),
                r.conns_per_host.to_string(),
                format!("{:.3}", r.fct_cdf.median()),
                format!("{:.3}", r.fct_cdf.percentile(0.90)),
                format!("{:.3}", r.fct_cdf.percentile(0.99)),
                format!("{:.1}", 100.0 * r.tor_up_trim_fraction),
                r.fct_cdf.len().to_string(),
            ]);
        }
        write!(
            f,
            "Figure 23 — Facebook web workload, 4:1 oversubscribed fabric\n{}",
            t.render()
        )
    }
}

/// Registry entry.
pub struct Fig23;

impl crate::registry::Experiment for Fig23 {
    fn id(&self) -> &'static str {
        "fig23"
    }
    fn title(&self) -> &'static str {
        "Facebook web workload on a 4:1 oversubscribed fabric"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        use crate::registry::{cdf_json, CDF_POINTS};
        Json::obj([(
            "results",
            Json::arr(self.results.iter().map(|r| {
                Json::obj([
                    ("proto", Json::str(r.proto.label())),
                    ("conns_per_host", Json::num(r.conns_per_host as f64)),
                    ("samples", Json::num(r.fct_cdf.len() as f64)),
                    ("tor_up_trim_fraction", Json::num(r.tor_up_trim_fraction)),
                    ("fct_ms", cdf_json(&r.fct_cdf, CDF_POINTS)),
                ])
            })),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndp_survives_oversubscription_and_beats_dctcp_at_moderate_load() {
        let rep = run(Scale::Quick);
        let ndp5 = rep.median(Proto::Ndp, 5);
        let dctcp5 = rep.median(Proto::Dctcp, 5);
        assert!(ndp5.is_finite() && dctcp5.is_finite());
        assert!(
            ndp5 < dctcp5,
            "NDP {ndp5:.3}ms must beat DCTCP {dctcp5:.3}ms"
        );
        // Trimming is substantial under oversubscription but NDP does not
        // collapse: high-load median stays within ~4x moderate-load median.
        assert!(rep.trim_fraction(10) > rep.trim_fraction(5));
        let ndp10 = rep.median(Proto::Ndp, 10);
        assert!(
            ndp10 < ndp5 * 6.0 + 1.0,
            "high load {ndp10:.3} vs moderate {ndp5:.3}"
        );
    }
}
