//! Shared experiment machinery: scale knobs, traffic-matrix runners and
//! the completion-driven trigger component.
//!
//! Protocol dispatch lives in the [`crate::transport`] registry and
//! fabric shapes in the [`crate::topo`] registry — this module drives
//! `&dyn Transport` objects over `&dyn Topology` fabrics and contains no
//! per-protocol or per-topology code at all.

use std::any::Any;
use std::collections::HashMap;

use ndp_net::packet::{FlowId, Packet};
use ndp_sim::{Component, ComponentId, Ctx, Event, Speed, Time, World};
use ndp_topology::Topology;

use crate::topo::TopoSpec;

pub use crate::transport::{flow_hash_path, FlowSpec, Proto};

/// Scale knob: `Paper` reproduces the paper's parameters, `Quick`
/// shrinks everything for CI and Criterion benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Paper,
    Quick,
}

impl Scale {
    /// Parse a scale name, case-insensitively.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "paper" => Some(Scale::Paper),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }

    /// Read `NDP_SCALE`. Unset (or empty) means `Quick`; anything that is
    /// not `paper`/`quick` (case-insensitive) is a hard error — a typoed
    /// `NDP_SCALE=Papre` must not silently run a quick-scale campaign.
    pub fn from_env() -> Scale {
        match std::env::var("NDP_SCALE") {
            Err(_) => Scale::Quick,
            Ok(v) if v.is_empty() => Scale::Quick,
            Ok(v) => Scale::parse(&v).unwrap_or_else(|| {
                panic!("NDP_SCALE must be 'paper' or 'quick' (case-insensitive), got '{v}'")
            }),
        }
    }

    /// The scale's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }

    /// Fabric scale parameter k for "the 432-host network" experiments.
    pub fn big_k(self) -> usize {
        match self {
            Scale::Paper => 12, // 432 hosts
            Scale::Quick => 8,  // 128 hosts
        }
    }

    /// Fabric scale parameter k for "the 8192-host network" experiments.
    pub fn huge_k(self) -> usize {
        match self {
            Scale::Paper => 32, // 8192 hosts
            Scale::Quick => 8,
        }
    }

    pub fn duration(self) -> Time {
        match self {
            Scale::Paper => Time::from_ms(50),
            Scale::Quick => Time::from_ms(15),
        }
    }
}

/// "Effectively infinite" flow size for long-running measurements: far
/// more than any horizon can drain, small enough that per-packet state
/// stays cheap.
pub const LONG_FLOW: u64 = 1 << 30;

/// Attach `spec` using protocol `proto` on any topology: the path count,
/// host components and MTU all come from the [`Topology`] surface.
pub fn attach_on(world: &mut World<Packet>, topo: &dyn Topology, proto: Proto, spec: &FlowSpec) {
    let mtu = topo.mtu();
    let n_paths = topo.n_paths(spec.src, spec.dst);
    let src = (topo.host(spec.src), spec.src);
    let dst = (topo.host(spec.dst), spec.dst);
    attach_generic(world, proto, spec, src, dst, n_paths, mtu);
}

/// Attach `spec` between explicit host components.
#[allow(clippy::too_many_arguments)]
pub fn attach_generic(
    world: &mut World<Packet>,
    proto: Proto,
    spec: &FlowSpec,
    src: (ComponentId, u32),
    dst: (ComponentId, u32),
    n_paths: u32,
    mtu: u32,
) {
    proto
        .transport()
        .attach(world, spec, src, dst, n_paths, mtu);
}

/// Receiver-side delivered payload bytes for any protocol.
pub fn delivered_bytes(
    world: &World<Packet>,
    host: ComponentId,
    flow: FlowId,
    proto: Proto,
) -> u64 {
    proto.transport().delivered_bytes(world, host, flow)
}

/// Receiver-side completion time (absolute) for any protocol.
pub fn completion_time(
    world: &World<Packet>,
    host: ComponentId,
    flow: FlowId,
    proto: Proto,
) -> Option<Time> {
    proto.transport().completion_time(world, host, flow)
}

/// A completion-driven sequencer: when woken with a registered token it
/// fires follow-up wakes (e.g. starting the next flow of a closed loop)
/// and records when each token fired.
#[derive(Default)]
pub struct Trigger {
    actions: HashMap<u64, (Time, Vec<(ComponentId, u64)>)>,
    pub fired: Vec<(u64, Time)>,
}

impl Trigger {
    pub fn new() -> Trigger {
        Trigger::default()
    }

    /// When `token` fires, wake each `(component, wake_token)` after `delay`.
    pub fn on(&mut self, token: u64, delay: Time, targets: Vec<(ComponentId, u64)>) {
        self.actions.insert(token, (delay, targets));
    }

    pub fn fired_at(&self, token: u64) -> Option<Time> {
        self.fired
            .iter()
            .find(|(t, _)| *t == token)
            .map(|(_, at)| *at)
    }
}

impl Component<Packet> for Trigger {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        if let Event::Wake(tok) = ev {
            self.fired.push((tok, ctx.now()));
            if let Some((delay, targets)) = self.actions.get(&tok) {
                for &(comp, wtok) in targets {
                    ctx.wake_other(comp, *delay, wtok);
                }
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Result of a permutation-traffic-matrix run.
pub struct PermutationResult {
    pub per_flow_gbps: Vec<f64>,
    pub utilization: f64,
    /// Events the engine dispatched for this run (engine-bench fuel).
    pub events_processed: u64,
}

/// Run a permutation matrix of long-running flows for `duration` and
/// measure per-flow goodput. One-shot entry point: routes through the
/// parallel sweep harness as a single-point grid.
pub fn permutation_run(
    proto: Proto,
    topo: TopoSpec,
    duration: Time,
    seed: u64,
    iw: Option<u64>,
) -> PermutationResult {
    let point = crate::sweep::PermutationPoint {
        proto,
        topo,
        duration,
        seed,
        iw,
    };
    crate::sweep::sweep_permutation(&crate::sweep::SweepSpec::single("permutation", point))
        .pop()
        .expect("single-point sweep")
}

/// The simulation behind one [`crate::sweep::PermutationPoint`]: builds its
/// own seeded world, so concurrent executions are independent and
/// bit-reproducible.
pub(crate) fn permutation_world_run(point: &crate::sweep::PermutationPoint) -> PermutationResult {
    let (proto, duration, seed, iw) = (point.proto, point.duration, point.seed, point.iw);
    let mut world: World<Packet> = World::new(seed);
    let topo = point.topo.build(&mut world, proto.fabric());
    let n = topo.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xDEAD);
    let dsts = ndp_workloads::permutation(n, &mut rng);
    for (src, &dst) in dsts.iter().enumerate() {
        let mut spec = FlowSpec::new(src as u64 + 1, src as u32, dst as u32, LONG_FLOW);
        spec.iw = iw;
        attach_on(&mut world, topo.as_ref(), proto, &spec);
    }
    world.run_until(duration);
    let mut per_flow = Vec::with_capacity(n);
    for (src, &dst) in dsts.iter().enumerate() {
        let bytes = delivered_bytes(&world, topo.host(dst as u32), src as u64 + 1, proto);
        per_flow.push(bytes as f64 * 8.0 / duration.as_secs() / 1e9);
    }
    per_flow.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let line = topo.host_link_speed().as_gbps();
    let utilization = per_flow.iter().sum::<f64>() / (n as f64 * line);
    PermutationResult {
        per_flow_gbps: per_flow,
        utilization,
        events_processed: world.events_processed(),
    }
}

/// Result of an N:1 incast run.
pub struct IncastResult {
    /// Per-flow completion times relative to the common start.
    pub fcts: Vec<Time>,
    pub incomplete: usize,
    /// Events the engine dispatched for this run (engine-bench fuel).
    pub events_processed: u64,
}

impl IncastResult {
    /// Completion time of the slowest *finished* flow; `None` when no flow
    /// completed within the horizon. Note that with `incomplete > 0` the
    /// true last-flow time is unknown (beyond the horizon), so callers
    /// reporting overall completion should also check [`Self::complete`].
    pub fn last(&self) -> Option<Time> {
        self.fcts.iter().copied().max()
    }

    /// Completion time of the fastest finished flow, if any.
    pub fn first(&self) -> Option<Time> {
        self.fcts.iter().copied().min()
    }

    /// Did every flow finish within the horizon?
    pub fn complete(&self) -> bool {
        self.incomplete == 0
    }
}

/// Run an N:1 incast of `size`-byte responses on the point's topology.
/// One-shot entry
/// point: routes through the parallel sweep harness as a single-point grid.
pub fn incast_run(
    proto: Proto,
    topo: TopoSpec,
    n_senders: usize,
    size: u64,
    iw: Option<u64>,
    seed: u64,
    horizon: Time,
) -> IncastResult {
    let point = crate::sweep::IncastPoint {
        proto,
        topo,
        n_senders,
        size,
        iw,
        seed,
        horizon,
    };
    crate::sweep::sweep_incast(&crate::sweep::SweepSpec::single("incast", point))
        .pop()
        .expect("single-point sweep")
}

/// The simulation behind one [`crate::sweep::IncastPoint`].
pub(crate) fn incast_world_run(point: &crate::sweep::IncastPoint) -> IncastResult {
    let (proto, n_senders, size, iw, seed, horizon) = (
        point.proto,
        point.n_senders,
        point.size,
        point.iw,
        point.seed,
        point.horizon,
    );
    let mut world: World<Packet> = World::new(seed);
    let topo = point.topo.build(&mut world, proto.fabric());
    let n = topo.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xBEEF);
    let frontend = 0usize;
    let workers = ndp_workloads::incast(frontend, n_senders, n, &mut rng);
    for (i, &w) in workers.iter().enumerate() {
        let mut spec = FlowSpec::new(i as u64 + 1, w as u32, frontend as u32, size);
        spec.iw = iw;
        attach_on(&mut world, topo.as_ref(), proto, &spec);
    }
    world.run_until(horizon);
    let mut fcts = Vec::new();
    let mut incomplete = 0;
    for i in 0..workers.len() {
        match completion_time(&world, topo.host(frontend as u32), i as u64 + 1, proto) {
            Some(t) => fcts.push(t),
            None => incomplete += 1,
        }
    }
    IncastResult {
        fcts,
        incomplete,
        events_processed: world.events_processed(),
    }
}

/// Ideal (store-and-forward, fully pipelined) last-flow completion for an
/// N:1 incast: all bytes serialized on the receiver link.
pub fn incast_ideal(n: usize, size: u64, link: Speed, mtu: u32) -> Time {
    let per = (mtu - ndp_net::packet::HEADER_BYTES) as u64;
    let pkts = size.div_ceil(per);
    let wire_bytes = n as u64 * (size + pkts * ndp_net::packet::HEADER_BYTES as u64);
    link.tx_time(wire_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry's quick-scale full-bisection fabric (16 hosts).
    fn quick_fattree() -> TopoSpec {
        crate::topo::registered("fattree").spec(Scale::Quick)
    }

    #[test]
    fn small_ndp_permutation_has_high_utilization() {
        let r = permutation_run(Proto::Ndp, quick_fattree(), Time::from_ms(5), 1, Some(30));
        assert!(
            r.utilization > 0.85,
            "NDP permutation utilization {}",
            r.utilization
        );
    }

    #[test]
    fn small_incast_all_protocols_complete() {
        for proto in [Proto::Ndp, Proto::Dctcp, Proto::Dcqcn] {
            let r = incast_run(
                proto,
                quick_fattree(),
                8,
                90_000,
                None,
                2,
                Time::from_secs(2),
            );
            assert!(r.complete(), "{:?} left flows incomplete", proto);
            assert_eq!(r.fcts.len(), 8);
            assert!(r.first() <= r.last());
        }
    }

    #[test]
    fn permutation_runs_on_every_registered_multi_host_topology() {
        // The harness is topology-neutral: the same permutation runner
        // drives every fabric shape in the registry and NDP keeps the
        // full-bisection ones busy.
        for entry in crate::topo::TOPOLOGIES {
            let spec = entry.spec(Scale::Quick);
            if spec.n_hosts() < 4 {
                continue; // a 2-host permutation is just one flow pair
            }
            let r = permutation_run(Proto::Ndp, spec, Time::from_ms(2), 3, Some(30));
            assert_eq!(r.per_flow_gbps.len(), entry.spec(Scale::Quick).n_hosts());
            assert!(
                r.utilization > 0.1,
                "{}: utilization {}",
                entry.name,
                r.utilization
            );
        }
    }

    #[test]
    fn empty_incast_result_has_no_fcts() {
        let r = IncastResult {
            fcts: Vec::new(),
            incomplete: 3,
            events_processed: 0,
        };
        assert_eq!(r.last(), None);
        assert_eq!(r.first(), None);
        assert!(!r.complete());
    }

    #[test]
    fn scale_parse_is_case_insensitive_and_strict() {
        assert_eq!(Scale::parse("Paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("papre"), None);
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn trigger_chains_wakes() {
        let mut w: World<Packet> = World::new(1);
        let trig = w.reserve();
        let mut t = Trigger::new();
        t.on(1, Time::from_us(5), vec![(trig, 2)]);
        w.install(trig, t);
        w.post_wake(Time::from_us(1), trig, 1);
        w.run_until_idle();
        let t = w.get::<Trigger>(trig);
        assert_eq!(t.fired_at(1), Some(Time::from_us(1)));
        assert_eq!(t.fired_at(2), Some(Time::from_us(6)));
    }
}
