//! Shared experiment machinery: protocol dispatch, traffic-matrix runners
//! and the completion-driven trigger component.

use std::any::Any;
use std::collections::HashMap;

use ndp_baselines::dcqcn::{attach_dcqcn_flow, DcqcnCfg, DcqcnReceiver};
use ndp_baselines::mptcp::{attach_mptcp_flow, MptcpCfg, MptcpReceiver};
use ndp_baselines::phost::{attach_phost_flow, PHostCfg, PHostReceiver};
use ndp_baselines::tcp::{attach_tcp_flow, TcpCfg, TcpReceiver};
use ndp_core::{attach_flow, NdpFlowCfg, NdpReceiver};
use ndp_net::host::Host;
use ndp_net::packet::{FlowId, HostId, Packet};
use ndp_sim::{Component, ComponentId, Ctx, Event, Speed, Time, World};
use ndp_topology::{FatTree, FatTreeCfg, QueueSpec};

/// Scale knob: `paper()` reproduces the paper's parameters, `quick()`
/// shrinks everything for CI and Criterion benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Paper,
    Quick,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("NDP_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// FatTree parameter k for "the 432-host network" experiments.
    pub fn big_k(self) -> usize {
        match self {
            Scale::Paper => 12, // 432 hosts
            Scale::Quick => 8,  // 128 hosts
        }
    }

    /// FatTree parameter k for "the 8192-host network" experiments.
    pub fn huge_k(self) -> usize {
        match self {
            Scale::Paper => 32, // 8192 hosts
            Scale::Quick => 8,
        }
    }

    pub fn duration(self) -> Time {
        match self {
            Scale::Paper => Time::from_ms(50),
            Scale::Quick => Time::from_ms(15),
        }
    }
}

/// The transports under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    Ndp,
    /// NDP with §3.2.3 path-penalty disabled (Figure 22's ablation).
    NdpNoPenalty,
    Tcp,
    Dctcp,
    Mptcp,
    Dcqcn,
    PHost,
}

impl Proto {
    pub fn label(self) -> &'static str {
        match self {
            Proto::Ndp => "NDP",
            Proto::NdpNoPenalty => "NDP (no path penalty)",
            Proto::Tcp => "TCP",
            Proto::Dctcp => "DCTCP",
            Proto::Mptcp => "MPTCP",
            Proto::Dcqcn => "DCQCN",
            Proto::PHost => "pHost",
        }
    }

    /// The switch service model this transport runs over (§6.1: NDP gets
    /// 8-packet queues, DCTCP/MPTCP 200-packet, DCQCN lossless+ECN).
    pub fn fabric(self) -> QueueSpec {
        match self {
            Proto::Ndp | Proto::NdpNoPenalty => QueueSpec::ndp_default(),
            Proto::Tcp | Proto::Mptcp => QueueSpec::droptail_default(),
            Proto::Dctcp => QueueSpec::dctcp_default(),
            Proto::Dcqcn => QueueSpec::dcqcn_default(),
            Proto::PHost => QueueSpec::phost_default(),
        }
    }
}

/// "Effectively infinite" flow size for long-running measurements: far
/// more than any horizon can drain, small enough that per-packet state
/// stays cheap.
pub const LONG_FLOW: u64 = 1 << 30;

/// Deterministic per-flow "ECMP hash" for single-path transports.
pub fn flow_hash_path(flow: FlowId) -> u32 {
    (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
}

/// One flow to set up.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    pub flow: FlowId,
    pub src: HostId,
    pub dst: HostId,
    pub size: u64,
    pub start: Time,
    pub prio: bool,
    pub notify: Option<(ComponentId, u64)>,
    /// Override NDP's initial window (None = paper default 30).
    pub iw: Option<u64>,
}

impl FlowSpec {
    pub fn new(flow: FlowId, src: HostId, dst: HostId, size: u64) -> FlowSpec {
        FlowSpec {
            flow,
            src,
            dst,
            size,
            start: Time::ZERO,
            prio: false,
            notify: None,
            iw: None,
        }
    }
}

/// Attach `spec` using protocol `proto` on a FatTree.
pub fn attach_on_fattree(world: &mut World<Packet>, ft: &FatTree, proto: Proto, spec: &FlowSpec) {
    let mtu = ft.cfg.mtu;
    let n_paths = ft.n_paths(spec.src, spec.dst);
    let src = (ft.hosts[spec.src as usize], spec.src);
    let dst = (ft.hosts[spec.dst as usize], spec.dst);
    attach_generic(world, proto, spec, src, dst, n_paths, mtu);
}

/// Attach `spec` between explicit host components.
#[allow(clippy::too_many_arguments)]
pub fn attach_generic(
    world: &mut World<Packet>,
    proto: Proto,
    spec: &FlowSpec,
    src: (ComponentId, HostId),
    dst: (ComponentId, HostId),
    n_paths: u32,
    mtu: u32,
) {
    match proto {
        Proto::Ndp | Proto::NdpNoPenalty => {
            let mut cfg = NdpFlowCfg::new(spec.size);
            cfg.mtu = mtu;
            cfg.n_paths = n_paths;
            cfg.path_penalty = proto == Proto::Ndp;
            cfg.high_priority = spec.prio;
            cfg.notify = spec.notify;
            if let Some(iw) = spec.iw {
                cfg.iw_pkts = iw;
            }
            attach_flow(world, spec.flow, src, dst, cfg, spec.start);
        }
        Proto::Tcp => {
            let mut cfg = TcpCfg::new(spec.size);
            cfg.mtu = mtu;
            cfg.path = flow_hash_path(spec.flow);
            cfg.notify = spec.notify;
            attach_tcp_flow(world, spec.flow, src, dst, cfg, spec.start);
        }
        Proto::Dctcp => {
            let mut cfg = TcpCfg::dctcp(spec.size);
            cfg.mtu = mtu;
            cfg.path = flow_hash_path(spec.flow);
            cfg.notify = spec.notify;
            attach_tcp_flow(world, spec.flow, src, dst, cfg, spec.start);
        }
        Proto::Mptcp => {
            let mut cfg = MptcpCfg::new(spec.size);
            cfg.mtu = mtu;
            cfg.notify = spec.notify;
            attach_mptcp_flow(world, spec.flow, src, dst, cfg, spec.start);
        }
        Proto::Dcqcn => {
            let mut cfg = DcqcnCfg::new(spec.size);
            cfg.mtu = mtu;
            cfg.path = flow_hash_path(spec.flow).max(1);
            cfg.notify = spec.notify;
            attach_dcqcn_flow(world, spec.flow, src, dst, cfg, spec.start);
        }
        Proto::PHost => {
            let mut cfg = PHostCfg::new(spec.size);
            cfg.mtu = mtu;
            cfg.notify = spec.notify;
            attach_phost_flow(world, spec.flow, src, dst, cfg, spec.start);
        }
    }
}

/// Receiver-side delivered payload bytes for any protocol.
pub fn delivered_bytes(
    world: &World<Packet>,
    host: ComponentId,
    flow: FlowId,
    proto: Proto,
) -> u64 {
    let h = world.get::<Host>(host);
    match proto {
        Proto::Ndp | Proto::NdpNoPenalty => h.endpoint::<NdpReceiver>(flow).stats.payload_bytes,
        Proto::Tcp | Proto::Dctcp => h.endpoint::<TcpReceiver>(flow).payload_bytes,
        Proto::Mptcp => h.endpoint::<MptcpReceiver>(flow).payload_bytes,
        Proto::Dcqcn => h.endpoint::<DcqcnReceiver>(flow).payload_bytes,
        Proto::PHost => h.endpoint::<PHostReceiver>(flow).payload_bytes,
    }
}

/// Receiver-side completion time (absolute) for any protocol.
pub fn completion_time(
    world: &World<Packet>,
    host: ComponentId,
    flow: FlowId,
    proto: Proto,
) -> Option<Time> {
    let h = world.get::<Host>(host);
    match proto {
        Proto::Ndp | Proto::NdpNoPenalty => h.endpoint::<NdpReceiver>(flow).stats.completion_time,
        Proto::Tcp | Proto::Dctcp => h.endpoint::<TcpReceiver>(flow).completion_time,
        Proto::Mptcp => h.endpoint::<MptcpReceiver>(flow).completion_time,
        Proto::Dcqcn => h.endpoint::<DcqcnReceiver>(flow).completion_time,
        Proto::PHost => h.endpoint::<PHostReceiver>(flow).completion_time,
    }
}

/// A completion-driven sequencer: when woken with a registered token it
/// fires follow-up wakes (e.g. starting the next flow of a closed loop)
/// and records when each token fired.
#[derive(Default)]
pub struct Trigger {
    actions: HashMap<u64, (Time, Vec<(ComponentId, u64)>)>,
    pub fired: Vec<(u64, Time)>,
}

impl Trigger {
    pub fn new() -> Trigger {
        Trigger::default()
    }

    /// When `token` fires, wake each `(component, wake_token)` after `delay`.
    pub fn on(&mut self, token: u64, delay: Time, targets: Vec<(ComponentId, u64)>) {
        self.actions.insert(token, (delay, targets));
    }

    pub fn fired_at(&self, token: u64) -> Option<Time> {
        self.fired
            .iter()
            .find(|(t, _)| *t == token)
            .map(|(_, at)| *at)
    }
}

impl Component<Packet> for Trigger {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        if let Event::Wake(tok) = ev {
            self.fired.push((tok, ctx.now()));
            if let Some((delay, targets)) = self.actions.get(&tok) {
                for &(comp, wtok) in targets {
                    ctx.wake_other(comp, *delay, wtok);
                }
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Result of a permutation-traffic-matrix run.
pub struct PermutationResult {
    pub per_flow_gbps: Vec<f64>,
    pub utilization: f64,
    /// Events the engine dispatched for this run (engine-bench fuel).
    pub events_processed: u64,
}

/// Run a permutation matrix of long-running flows for `duration` and
/// measure per-flow goodput. One-shot entry point: routes through the
/// parallel sweep harness as a single-point grid.
pub fn permutation_run(
    proto: Proto,
    cfg: FatTreeCfg,
    duration: Time,
    seed: u64,
    iw: Option<u64>,
) -> PermutationResult {
    let point = crate::sweep::PermutationPoint {
        proto,
        cfg,
        duration,
        seed,
        iw,
    };
    crate::sweep::sweep_permutation(&crate::sweep::SweepSpec::single("permutation", point))
        .pop()
        .expect("single-point sweep")
}

/// The simulation behind one [`crate::sweep::PermutationPoint`]: builds its
/// own seeded world, so concurrent executions are independent and
/// bit-reproducible.
pub(crate) fn permutation_world_run(point: &crate::sweep::PermutationPoint) -> PermutationResult {
    let crate::sweep::PermutationPoint {
        proto,
        cfg,
        duration,
        seed,
        iw,
    } = point;
    let (proto, duration, seed, iw) = (*proto, *duration, *seed, *iw);
    let cfg = cfg.clone().with_fabric(proto.fabric());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xDEAD);
    let dsts = ndp_workloads::permutation(n, &mut rng);
    for (src, &dst) in dsts.iter().enumerate() {
        let mut spec = FlowSpec::new(src as u64 + 1, src as HostId, dst as HostId, LONG_FLOW);
        spec.iw = iw;
        attach_on_fattree(&mut world, &ft, proto, &spec);
    }
    world.run_until(duration);
    let mut per_flow = Vec::with_capacity(n);
    for (src, &dst) in dsts.iter().enumerate() {
        let bytes = delivered_bytes(&world, ft.hosts[dst], src as u64 + 1, proto);
        per_flow.push(bytes as f64 * 8.0 / duration.as_secs() / 1e9);
    }
    per_flow.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let line = ft.cfg.link_speed.as_gbps();
    let utilization = per_flow.iter().sum::<f64>() / (n as f64 * line);
    PermutationResult {
        per_flow_gbps: per_flow,
        utilization,
        events_processed: world.events_processed(),
    }
}

/// Result of an N:1 incast run.
pub struct IncastResult {
    /// Per-flow completion times relative to the common start.
    pub fcts: Vec<Time>,
    pub incomplete: usize,
}

impl IncastResult {
    pub fn last(&self) -> Time {
        self.fcts.iter().copied().max().unwrap_or(Time::MAX)
    }
    pub fn first(&self) -> Time {
        self.fcts.iter().copied().min().unwrap_or(Time::MAX)
    }
}

/// Run an N:1 incast of `size`-byte responses on a FatTree. One-shot entry
/// point: routes through the parallel sweep harness as a single-point grid.
pub fn incast_run(
    proto: Proto,
    cfg: FatTreeCfg,
    n_senders: usize,
    size: u64,
    iw: Option<u64>,
    seed: u64,
    horizon: Time,
) -> IncastResult {
    let point = crate::sweep::IncastPoint {
        proto,
        cfg,
        n_senders,
        size,
        iw,
        seed,
        horizon,
    };
    crate::sweep::sweep_incast(&crate::sweep::SweepSpec::single("incast", point))
        .pop()
        .expect("single-point sweep")
}

/// The simulation behind one [`crate::sweep::IncastPoint`].
pub(crate) fn incast_world_run(point: &crate::sweep::IncastPoint) -> IncastResult {
    let crate::sweep::IncastPoint {
        proto,
        cfg,
        n_senders,
        size,
        iw,
        seed,
        horizon,
    } = point;
    let (proto, n_senders, size, iw, seed, horizon) =
        (*proto, *n_senders, *size, *iw, *seed, *horizon);
    let cfg = cfg.clone().with_fabric(proto.fabric());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed ^ 0xBEEF);
    let frontend = 0usize;
    let workers = ndp_workloads::incast(frontend, n_senders, n, &mut rng);
    for (i, &w) in workers.iter().enumerate() {
        let mut spec = FlowSpec::new(i as u64 + 1, w as HostId, frontend as HostId, size);
        spec.iw = iw;
        attach_on_fattree(&mut world, &ft, proto, &spec);
    }
    world.run_until(horizon);
    let mut fcts = Vec::new();
    let mut incomplete = 0;
    for i in 0..workers.len() {
        match completion_time(&world, ft.hosts[frontend], i as u64 + 1, proto) {
            Some(t) => fcts.push(t),
            None => incomplete += 1,
        }
    }
    IncastResult { fcts, incomplete }
}

/// Ideal (store-and-forward, fully pipelined) last-flow completion for an
/// N:1 incast: all bytes serialized on the receiver link.
pub fn incast_ideal(n: usize, size: u64, link: Speed, mtu: u32) -> Time {
    let per = (mtu - ndp_net::packet::HEADER_BYTES) as u64;
    let pkts = size.div_ceil(per);
    let wire_bytes = n as u64 * (size + pkts * ndp_net::packet::HEADER_BYTES as u64);
    link.tx_time(wire_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_hash_is_deterministic_and_spread() {
        let a = flow_hash_path(1);
        assert_eq!(a, flow_hash_path(1));
        let distinct: std::collections::HashSet<u32> =
            (0..100).map(|f| flow_hash_path(f) % 16).collect();
        assert!(distinct.len() > 8, "hash should spread across paths");
    }

    #[test]
    fn small_ndp_permutation_has_high_utilization() {
        let r = permutation_run(
            Proto::Ndp,
            FatTreeCfg::new(4),
            Time::from_ms(5),
            1,
            Some(30),
        );
        assert!(
            r.utilization > 0.85,
            "NDP permutation utilization {}",
            r.utilization
        );
    }

    #[test]
    fn small_incast_all_protocols_complete() {
        for proto in [Proto::Ndp, Proto::Dctcp, Proto::Dcqcn] {
            let r = incast_run(
                proto,
                FatTreeCfg::new(4),
                8,
                90_000,
                None,
                2,
                Time::from_secs(2),
            );
            assert_eq!(r.incomplete, 0, "{:?} left flows incomplete", proto);
            assert_eq!(r.fcts.len(), 8);
        }
    }

    #[test]
    fn trigger_chains_wakes() {
        let mut w: World<Packet> = World::new(1);
        let trig = w.reserve();
        let mut t = Trigger::new();
        t.on(1, Time::from_us(5), vec![(trig, 2)]);
        w.install(trig, t);
        w.post_wake(Time::from_us(1), trig, 1);
        w.run_until_idle();
        let t = w.get::<Trigger>(trig);
        assert_eq!(t.fired_at(1), Some(Time::from_us(1)));
        assert_eq!(t.fired_at(2), Some(Time::from_us(6)));
    }
}
