//! The paper's inline (non-figure) quantitative claims:
//!
//! * §3.1.1 — sender-permutation load balancing vs switch-random ECMP:
//!   uplink trim fraction 0.01 % vs 2.4 %, and a capacity edge for
//!   sender-chosen paths.
//! * §6.2 — permutation utilization vs topology size with 8-packet
//!   buffers: 98 % at 128 hosts declining gently to 90 % at 8192.
//! * §6.2 — pHost: 432:1 incast ~10× slower than NDP; permutation
//!   utilization ~70 % vs NDP's 95 %.
//! * §6.1.1 — long-lived incast beside a permutation: NDP keeps ~92 %
//!   utilization, DCTCP ~40 %, DCQCN collapses (~17 %).

use ndp_metrics::Table;
use ndp_net::packet::{HostId, Packet};
use ndp_net::queue::LinkClass;
use ndp_sim::{Time, World};
use ndp_topology::{FatTree, FatTreeCfg, RouteMode, Topology};

use crate::harness::{
    attach_on, delivered_bytes, incast_run, permutation_run, FlowSpec, Proto, Scale, LONG_FLOW,
};
use crate::topo::TopoSpec;

pub struct Report {
    pub lb_source_trim_pct: f64,
    pub lb_random_trim_pct: f64,
    pub lb_source_util: f64,
    pub lb_random_util: f64,
    pub scaling: Vec<(usize, f64)>,
    pub phost_incast_ms: f64,
    pub ndp_incast_ms: f64,
    pub phost_perm_util: f64,
    pub ndp_perm_util: f64,
    pub side_effect_utils: Vec<(Proto, f64)>,
}

/// §3.1.1 — run a permutation with sender-chosen paths vs per-packet
/// random ECMP and compare uplink (ToR-up + Agg-up) trim fractions.
fn lb_comparison(scale: Scale, mode: RouteMode, seed: u64) -> (f64, f64) {
    let k = match scale {
        Scale::Paper => 8,
        Scale::Quick => 4,
    };
    let cfg = FatTreeCfg::new(k).with_route_mode(mode);
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let dsts = ndp_workloads::permutation(n, &mut rng);
    for (src, &dst) in dsts.iter().enumerate() {
        let spec = FlowSpec::new(src as u64 + 1, src as HostId, dst as HostId, LONG_FLOW);
        attach_on(&mut world, &ft, Proto::Ndp, &spec);
    }
    let duration = match scale {
        Scale::Paper => Time::from_ms(20),
        Scale::Quick => Time::from_ms(8),
    };
    world.run_until(duration);
    let stats = ft.stats_by_class(&world);
    let mut up_trim = 0u64;
    let mut up_fwd = 0u64;
    for (c, s) in &stats {
        if matches!(c, LinkClass::TorUp | LinkClass::AggUp) {
            up_trim += s.trimmed;
            up_fwd += s.forwarded_pkts;
        }
    }
    let total: u64 = dsts
        .iter()
        .enumerate()
        .map(|(src, &dst)| delivered_bytes(&world, ft.hosts[dst], src as u64 + 1, Proto::Ndp))
        .sum();
    let util = total as f64 * 8.0 / duration.as_secs() / 1e9 / (n as f64 * 10.0);
    (
        100.0 * up_trim as f64 / (up_trim + up_fwd).max(1) as f64,
        util,
    )
}

pub fn run(scale: Scale) -> Report {
    let (src_trim, src_util) = lb_comparison(scale, RouteMode::SourceTag, 3);
    let (rnd_trim, rnd_util) = lb_comparison(scale, RouteMode::RandomUplinks, 3);

    // Topology-size scaling sweep.
    let ks: &[usize] = match scale {
        Scale::Paper => &[4, 8, 12, 16],
        Scale::Quick => &[4, 8],
    };
    let scaling: Vec<(usize, f64)> = ks
        .iter()
        .map(|&k| {
            let r = permutation_run(
                Proto::Ndp,
                TopoSpec::fattree(FatTreeCfg::new(k)),
                match scale {
                    Scale::Paper => Time::from_ms(15),
                    Scale::Quick => Time::from_ms(8),
                },
                5,
                Some(30),
            );
            (FatTreeCfg::new(k).n_hosts(), r.utilization)
        })
        .collect();

    // pHost comparison: large incast + permutation utilization.
    let n_incast = match scale {
        Scale::Paper => 400,
        Scale::Quick => 60,
    };
    let incast_size = 450_000u64;
    let ph = incast_run(
        Proto::PHost,
        TopoSpec::fattree(FatTreeCfg::new(scale.big_k())),
        n_incast,
        incast_size,
        None,
        9,
        Time::from_secs(60),
    );
    let nd = incast_run(
        Proto::Ndp,
        TopoSpec::fattree(FatTreeCfg::new(scale.big_k())),
        n_incast,
        incast_size,
        None,
        9,
        Time::from_secs(60),
    );
    let ph_perm = permutation_run(
        Proto::PHost,
        TopoSpec::fattree(FatTreeCfg::new(scale.big_k())),
        Time::from_ms(10),
        11,
        None,
    );
    let nd_perm = permutation_run(
        Proto::Ndp,
        TopoSpec::fattree(FatTreeCfg::new(scale.big_k())),
        Time::from_ms(10),
        11,
        None,
    );

    // §6.1.1 side effects: permutation + one long-lived 32:1 incast.
    let side_effect_utils = [Proto::Ndp, Proto::Dctcp, Proto::Dcqcn]
        .iter()
        .map(|&p| (p, side_effects(p, scale, 21)))
        .collect();

    Report {
        lb_source_trim_pct: src_trim,
        lb_random_trim_pct: rnd_trim,
        lb_source_util: src_util,
        lb_random_util: rnd_util,
        scaling,
        phost_incast_ms: ph.last().map_or(f64::NAN, |t| t.as_ms()),
        // NaN (JSON null) rather than a panic: one incomplete campaign
        // must not abort a whole `ndp run all` batch.
        ndp_incast_ms: nd.last().map_or(f64::NAN, |t| t.as_ms()),
        phost_perm_util: ph_perm.utilization,
        ndp_perm_util: nd_perm.utilization,
        side_effect_utils,
    }
}

/// Permutation running beside a long-lived incast; returns network
/// utilization of the permutation flows.
fn side_effects(proto: Proto, scale: Scale, seed: u64) -> f64 {
    let k = match scale {
        Scale::Paper => 8,
        Scale::Quick => 4,
    };
    let cfg = FatTreeCfg::new(k).with_fabric(proto.fabric());
    let mut world: World<Packet> = World::new(seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let dsts = ndp_workloads::permutation(n, &mut rng);
    for (src, &dst) in dsts.iter().enumerate() {
        let spec = FlowSpec::new(src as u64 + 1, src as HostId, dst as HostId, LONG_FLOW);
        attach_on(&mut world, &ft, proto, &spec);
    }
    // Long-lived incast onto host 0 from a quarter of the hosts.
    for (fid, i) in (10_000u64..).zip(0..(n / 4).max(8).min(n - 1)) {
        let src = 1 + i;
        let spec = FlowSpec::new(fid, src as HostId, 0, LONG_FLOW);
        attach_on(&mut world, &ft, proto, &spec);
    }
    let duration = match scale {
        Scale::Paper => Time::from_ms(20),
        Scale::Quick => Time::from_ms(10),
    };
    world.run_until(duration);
    let total: u64 = dsts
        .iter()
        .enumerate()
        .map(|(src, &dst)| delivered_bytes(&world, ft.hosts[dst], src as u64 + 1, proto))
        .sum();
    total as f64 * 8.0 / duration.as_secs() / 1e9 / (n as f64 * 10.0)
}

impl Report {
    pub fn headline(&self) -> String {
        format!(
            "uplink trims: source-LB {:.3}% vs random ECMP {:.3}%; pHost 432-ish:1 incast {:.0}ms vs NDP {:.0}ms; perm util pHost {:.0}% vs NDP {:.0}%",
            self.lb_source_trim_pct,
            self.lb_random_trim_pct,
            self.phost_incast_ms,
            self.ndp_incast_ms,
            100.0 * self.phost_perm_util,
            100.0 * self.ndp_perm_util
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["claim", "value"]);
        t.row([
            "uplink trim %, sender-chosen paths".to_string(),
            format!("{:.4}", self.lb_source_trim_pct),
        ]);
        t.row([
            "uplink trim %, switch-random ECMP".to_string(),
            format!("{:.4}", self.lb_random_trim_pct),
        ]);
        t.row([
            "perm util, sender-chosen".to_string(),
            format!("{:.3}", self.lb_source_util),
        ]);
        t.row([
            "perm util, switch-random".to_string(),
            format!("{:.3}", self.lb_random_util),
        ]);
        for (n, u) in &self.scaling {
            t.row([format!("perm util @ {n} hosts"), format!("{:.3}", u)]);
        }
        t.row([
            "pHost big incast (ms)".to_string(),
            format!("{:.1}", self.phost_incast_ms),
        ]);
        t.row([
            "NDP big incast (ms)".to_string(),
            format!("{:.1}", self.ndp_incast_ms),
        ]);
        t.row([
            "pHost perm util".to_string(),
            format!("{:.3}", self.phost_perm_util),
        ]);
        t.row([
            "NDP perm util".to_string(),
            format!("{:.3}", self.ndp_perm_util),
        ]);
        for (p, u) in &self.side_effect_utils {
            t.row([
                format!("perm util beside incast, {}", p.label()),
                format!("{:.3}", u),
            ]);
        }
        write!(f, "Inline results (§3.1.1, §6.1.1, §6.2)\n{}", t.render())
    }
}

/// Registry entry.
pub struct Inline;

impl crate::registry::Experiment for Inline {
    fn id(&self) -> &'static str {
        "inline"
    }
    fn title(&self) -> &'static str {
        "Inline (non-figure) claims: §3.1.1 LB, §6.1.1 side effects, §6.2 scaling/pHost"
    }
    fn run(
        &self,
        scale: Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("lb_source_trim_pct", Json::num(self.lb_source_trim_pct)),
            ("lb_random_trim_pct", Json::num(self.lb_random_trim_pct)),
            ("lb_source_util", Json::num(self.lb_source_util)),
            ("lb_random_util", Json::num(self.lb_random_util)),
            (
                "scaling",
                Json::arr(self.scaling.iter().map(|&(hosts, util)| {
                    Json::obj([
                        ("hosts", Json::num(hosts as f64)),
                        ("utilization", Json::num(util)),
                    ])
                })),
            ),
            ("phost_incast_ms", Json::num(self.phost_incast_ms)),
            ("ndp_incast_ms", Json::num(self.ndp_incast_ms)),
            ("phost_perm_util", Json::num(self.phost_perm_util)),
            ("ndp_perm_util", Json::num(self.ndp_perm_util)),
            (
                "side_effect_utils",
                Json::arr(self.side_effect_utils.iter().map(|&(p, util)| {
                    Json::obj([
                        ("proto", Json::str(p.label())),
                        ("utilization", Json::num(util)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_claims_hold_qualitatively() {
        let rep = run(Scale::Quick);
        // Sender-chosen paths trim less on the uplinks than random ECMP.
        assert!(
            rep.lb_source_trim_pct <= rep.lb_random_trim_pct,
            "source {:.4}% vs random {:.4}%",
            rep.lb_source_trim_pct,
            rep.lb_random_trim_pct
        );
        // Utilization declines gently with size but stays high.
        for (n, u) in &rep.scaling {
            assert!(*u > 0.85, "util at {n} hosts = {u:.3}");
        }
        // pHost: never faster on the incast, clearly lower permutation
        // utilization (we reproduce the paper's ~70% vs ~95%). Our pHost
        // shares the well-paced host token pacer, so it is substantially
        // *stronger* than the paper's port and the 10x incast gap does not
        // reproduce — see EXPERIMENTS.md.
        assert!(
            rep.phost_incast_ms >= 0.98 * rep.ndp_incast_ms,
            "pHost {:.1}ms vs NDP {:.1}ms",
            rep.phost_incast_ms,
            rep.ndp_incast_ms
        );
        assert!(
            rep.phost_perm_util < rep.ndp_perm_util - 0.05,
            "pHost util {:.3} vs NDP {:.3}",
            rep.phost_perm_util,
            rep.ndp_perm_util
        );
        // Side effects: NDP keeps high utilization; DCQCN collapses below
        // DCTCP (PFC pause cascades).
        let get = |p: Proto| {
            rep.side_effect_utils
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, u)| *u)
                .unwrap()
        };
        assert!(get(Proto::Ndp) > 0.8);
        assert!(get(Proto::Dcqcn) < get(Proto::Ndp));
    }
}
