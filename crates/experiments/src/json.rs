//! Hand-rolled JSON: a tiny value tree, writer and parser.
//!
//! The build environment has no crates.io (so no serde); this module is
//! the machine-readable surface behind `Report::to_json` and the `ndp`
//! CLI's `--json` flag. The writer emits standard JSON (non-finite floats
//! become `null`); the parser is the minimal inverse used by tests and by
//! `ndp --json` consumers that want to re-load results.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number; NaN/±inf have no JSON representation and become `null`.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => {
                // Rust's f64 Display is shortest-roundtrip and (for finite
                // values) valid JSON; integers print without a fraction.
                write!(out, "{x}").expect("write to String")
            }
            // Non-finite floats have no JSON representation; guard here as
            // well as in `num()` so directly-constructed Num values can
            // never emit an invalid `NaN`/`inf` token.
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to String"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Minimal but complete for everything the writer
/// emits (and ordinary hand-written JSON); duplicate object keys are kept
/// in order, `get` returns the first.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go (valid UTF-8 input:
            // multi-byte sequences never contain '"' or '\\').
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                None => return Err("unterminated string".to_string()),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Route through `Json::num`: an overflowing literal (1e999) parses
        // to infinity, which must become Null or render() would emit the
        // non-JSON token `inf`.
        text.parse::<f64>()
            .map(Json::num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let doc = Json::obj([
            ("id", Json::str("fig14")),
            ("utilization", Json::num(0.923)),
            ("incomplete", Json::num(0.0)),
            ("nan_becomes_null", Json::num(f64::NAN)),
            ("flags", Json::arr([Json::Bool(true), Json::Bool(false)])),
            (
                "rows",
                Json::arr([Json::obj([
                    ("proto", Json::str("NDP \"quoted\" \\ tab\t")),
                    ("gbps", Json::num(-9.5e-3)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back.get("id").and_then(Json::as_str), Some("fig14"));
        assert_eq!(back.get("utilization").and_then(Json::as_f64), Some(0.923));
        assert_eq!(back.get("nan_becomes_null"), Some(&Json::Null));
        let rows = back.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(
            rows[0].get("proto").and_then(Json::as_str),
            Some("NDP \"quoted\" \\ tab\t")
        );
        assert_eq!(rows[0].get("gbps").and_then(Json::as_f64), Some(-9.5e-3));
        // Full fidelity: re-render equals the original text.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parser_accepts_ordinary_json() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , null ] , \"b\" : \"x\\u0041\" } ").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("xA"));
        assert_eq!(v.get("a").and_then(Json::as_arr).unwrap().len(), 3);
    }

    #[test]
    fn directly_constructed_non_finite_nums_render_as_null() {
        let v = Json::arr([
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
            Json::Num(1.5),
        ]);
        assert_eq!(v.render(), "[null,null,1.5]");
    }

    #[test]
    fn overflowing_literals_stay_renderable() {
        let v = parse("{\"x\":1e999,\"y\":-1e999}").unwrap();
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("y"), Some(&Json::Null));
        assert!(parse(&v.render()).is_ok());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
