//! One runnable experiment per table/figure of the paper.
//!
//! Every module exposes `run(scale) -> Report` plus a unit struct
//! implementing [`registry::Experiment`]; reports implement
//! [`registry::Report`] (`Display` prints the same rows/series the paper's
//! figure shows, `headline()` summarizes the qualitative claim,
//! `to_json()` is the machine-readable payload). The single `ndp` binary
//! drives the registry:
//!
//! ```sh
//! cargo run --release -p ndp-experiments --bin ndp -- list
//! cargo run --release -p ndp-experiments --bin ndp -- run fig14 --scale paper --json
//! ```
//!
//! `Scale::Quick` shrinks topologies and durations for CI and Criterion;
//! `Scale::Paper` uses the paper's parameters. Protocol dispatch is the
//! [`transport`] registry (`Proto` keys resolving to
//! [`ndp_transport::Transport`] objects); fabric dispatch is the [`topo`]
//! registry (names resolving to buildable [`topo::TopoSpec`]s behind
//! `ndp run <id> --topo <name>` / `NDP_TOPO`).

pub mod failure_matrix;
pub mod harness;
pub mod json;
pub mod openloop;
pub mod quick;
pub mod registry;
pub mod rpc;
pub mod sweep;
pub mod topo;
pub mod topo_matrix;
pub mod transport;

pub mod fig02_cp_collapse;
pub mod fig04_latency_cdf;
pub mod fig08_rpc_latency;
pub mod fig09_testbed_incast;
pub mod fig10_prioritization;
pub mod fig11_iw_throughput;
pub mod fig12_pull_spacing;
pub mod fig13_pull_jitter_incast;
pub mod fig14_permutation;
pub mod fig15_short_flow_fct;
pub mod fig16_incast_scaling;
pub mod fig17_iw_buffer_sweep;
pub mod fig19_collateral;
pub mod fig20_large_incast;
pub mod fig21_sender_limited;
pub mod fig22_failure;
pub mod fig23_oversubscribed;
pub mod inline_results;

pub use harness::{Proto, Scale};
pub use registry::{Experiment, Report};
pub use sweep::SweepSpec;
pub use topo::{find_topo, topo_from_env, TopoEntry, TopoSpec, TOPOLOGIES};
pub use transport::{Transport, TRANSPORTS};
