//! One runnable experiment per table/figure of the paper.
//!
//! Every module exposes `run(scale) -> Report` where the report's
//! `Display` prints the same rows/series the paper's figure shows, plus a
//! `headline()` summarizing the qualitative claim under test. Binaries in
//! `src/bin/` are thin wrappers (`cargo run --release -p ndp-experiments
//! --bin fig14_permutation`). `Scale::quick()` shrinks topologies and
//! durations for CI and Criterion; `Scale::paper()` uses the paper's
//! parameters.

pub mod harness;
pub mod quick;
pub mod sweep;

pub mod fig02_cp_collapse;
pub mod fig04_latency_cdf;
pub mod fig08_rpc_latency;
pub mod fig09_testbed_incast;
pub mod fig10_prioritization;
pub mod fig11_iw_throughput;
pub mod fig12_pull_spacing;
pub mod fig13_pull_jitter_incast;
pub mod fig14_permutation;
pub mod fig15_short_flow_fct;
pub mod fig16_incast_scaling;
pub mod fig17_iw_buffer_sweep;
pub mod fig19_collateral;
pub mod fig20_large_incast;
pub mod fig21_sender_limited;
pub mod fig22_failure;
pub mod fig23_oversubscribed;
pub mod inline_results;

pub use harness::{Proto, Scale};
pub use sweep::SweepSpec;
