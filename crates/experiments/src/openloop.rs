//! Open-loop dynamic traffic: Poisson flow arrivals drawn from an
//! empirical size distribution, swept over offered load, reported as FCT
//! slowdown per flow-size bin — the standard "slowdown vs. load" axis the
//! low-latency-DC literature compares transports on.
//!
//! # Pipeline
//!
//! [`ndp_workloads::DynamicWorkload`] turns (hosts × [`ArrivalProcess`] ×
//! [`EmpiricalCdf`]) into a time-ordered stream of `(start, src, dst,
//! bytes)` events. The [`Spawner`] component walks that stream lazily,
//! *inside* simulated time: at each flow's arrival instant it constructs
//! the flow's [`FlowSpec`] and attaches its endpoints through the
//! engine's deferred-op queue — so flow starts interleave with packet
//! events exactly as an application would issue them, and a flow costs
//! nothing before it arrives. When a flow's receiver reports completion,
//! the Spawner records its slowdown sample and detaches both endpoints
//! via [`crate::transport::Transport::detach`], freeing their state
//! immediately. Live state — host endpoint maps, pull-queue entries,
//! spawner bookkeeping — is therefore O(flows in flight), not O(flows
//! ever offered), which is what makes long measure windows at high load
//! affordable.
//!
//! # Windows
//!
//! A run has three phases: `warmup` (arrivals happen but are not
//! measured, letting queues reach steady state), `measure` (arrivals are
//! measured), and `drain` (no new arrivals; in-flight measured flows may
//! still complete). The runner steps the world in chunks, streaming
//! completed flows into [`SlowdownBins`] after each chunk, and the drain
//! phase ends as soon as the live-flow gauge hits zero — `drain` is a
//! cap, not a fixed horizon. Each measured flow's FCT is taken against
//! its own start time and normalized by [`Topology::ideal_fct`] — the
//! topology's own unloaded-network lower bound, computed from its
//! per-hop link speeds — to give its slowdown.
//!
//! The whole pipeline is topology-neutral: the [`Spawner`] and runner
//! hold `Arc<dyn Topology>`/[`crate::topo::TopoSpec`] and the default
//! fabric comes from the [`crate::topo`] registry, so the same sweep
//! runs on any registered shape via `ndp run <id> --topo <name>`.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ndp_metrics::{SlowdownBins, Table, SLOWDOWN_BIN_LABELS};
use ndp_net::packet::{FlowId, HostId, Packet};
use ndp_net::{CompletionSink, Host};
use ndp_sim::{Component, ComponentId, Ctx, Event, EventKindCounts, Time, World};
use ndp_topology::Topology;
use ndp_workloads::{ArrivalProcess, DynamicWorkload, EmpiricalCdf, FlowEvent};

use crate::harness::{FlowSpec, Proto, Scale};
use crate::sweep::{sweep_openloop, OpenLoopPoint, SweepSpec};
use crate::topo::{registered, TopoEntry, TopoSpec};

/// Which embedded flow-size distribution a load sweep draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistKind {
    WebSearch,
    DataMining,
}

impl DistKind {
    pub fn cdf(self) -> EmpiricalCdf {
        match self {
            DistKind::WebSearch => EmpiricalCdf::websearch(),
            DistKind::DataMining => EmpiricalCdf::datamining(),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DistKind::WebSearch => "websearch",
            DistKind::DataMining => "datamining",
        }
    }
}

/// The spawner's self-wake token. Completion wakes carry the flow id, and
/// flow ids start at 1 and count up, so `u64::MAX` can never collide.
const SPAWN_TICK: u64 = u64::MAX;

/// One in-flight flow's bookkeeping, dropped the instant it completes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LiveFlow {
    pub(crate) start: Time,
    pub(crate) bytes: u64,
    pub(crate) src: HostId,
    pub(crate) dst: HostId,
    /// Did the flow arrive inside the measurement window?
    pub(crate) measured: bool,
}

/// A finished flow's slowdown sample, buffered until the runner's next
/// streaming drain.
#[derive(Clone, Copy, Debug)]
pub struct CompletedFlow {
    /// Arrival instant — phase-windowed reports (the failure matrix)
    /// attribute each sample to the phase its flow *started* in.
    pub start: Time,
    pub bytes: u64,
    pub slowdown: f64,
    pub measured: bool,
}

/// Drives the whole flow lifecycle inside simulated time.
///
/// The spawner owns the (lazy) arrival stream. Riding a single self-wake
/// chain, it attaches each flow via a deferred world op *at its arrival
/// instant* — endpoints for a flow that hasn't arrived yet simply don't
/// exist. Each flow's `FlowSpec.notify` points back at the spawner, so on
/// completion it books the slowdown sample and defers a
/// [`crate::transport::Transport::detach`] that frees both endpoints.
pub struct Spawner {
    proto: Proto,
    topo: Arc<dyn Topology>,
    arrivals: Box<dyn Iterator<Item = FlowEvent> + Send>,
    /// Next arrival, pulled from the stream but not yet due.
    pending: Option<FlowEvent>,
    next_flow: FlowId,
    warmup: Time,
    live: HashMap<FlowId, LiveFlow>,
    /// Completed-flow samples since the runner's last drain.
    pub completed: Vec<CompletedFlow>,
    /// Flows attached so far (every arrival offered gets attached).
    pub started: u64,
    /// Arrivals that fell inside the measurement window.
    pub measured_arrivals: usize,
    /// High-water mark of concurrently live flows.
    pub peak_live: usize,
    /// Optional telemetry span sink: when set, every detached flow's
    /// harvest is folded into a [`ndp_telemetry::FlowSpan`]. `None` (the
    /// default) records nothing and costs nothing.
    spans: Option<ndp_telemetry::SpanLog>,
    /// Optional live-flow gauge published for the telemetry probe.
    live_gauge: Option<Arc<AtomicU64>>,
}

impl Spawner {
    /// Install a spawner over an arrival stream and arm its first wake-up.
    /// `arrivals` must be time-ordered (the workload iterator yields it
    /// that way).
    pub fn install_into(
        world: &mut World<Packet>,
        proto: Proto,
        topo: Arc<dyn Topology>,
        arrivals: impl Iterator<Item = FlowEvent> + Send + 'static,
        warmup: Time,
    ) -> ComponentId {
        let mut arrivals: Box<dyn Iterator<Item = FlowEvent> + Send> = Box::new(arrivals);
        let pending = arrivals.next();
        let first = pending.as_ref().map(|ev| Time::from_ps(ev.start_ps));
        let id = world.add(Spawner {
            proto,
            topo,
            arrivals,
            pending,
            next_flow: 1,
            warmup,
            live: HashMap::new(),
            completed: Vec::new(),
            started: 0,
            measured_arrivals: 0,
            peak_live: 0,
            spans: None,
            live_gauge: None,
        });
        if let Some(at) = first {
            world.post_wake(at, id, SPAWN_TICK);
        }
        id
    }

    /// Flows currently in flight.
    pub fn live_flows(&self) -> usize {
        self.live.len()
    }

    /// Record a [`ndp_telemetry::FlowSpan`] for every flow this spawner
    /// detaches. Telemetry-only; the spawner's event behaviour is
    /// identical with or without a sink.
    pub fn set_span_log(&mut self, log: ndp_telemetry::SpanLog) {
        self.spans = Some(log);
    }

    /// Publish the live-flow count into `gauge` after every change, for
    /// the telemetry probe's world samples.
    pub fn set_live_gauge(&mut self, gauge: Arc<AtomicU64>) {
        gauge.store(self.live.len() as u64, Ordering::Relaxed);
        self.live_gauge = Some(gauge);
    }

    fn publish_live(&self) {
        if let Some(g) = &self.live_gauge {
            g.store(self.live.len() as u64, Ordering::Relaxed);
        }
    }

    /// Take every still-live flow — the stragglers a runner detaches when
    /// its drain cap expires.
    pub(crate) fn drain_live(&mut self) -> Vec<(FlowId, LiveFlow)> {
        let out = self.live.drain().collect();
        self.publish_live();
        out
    }

    /// Attach one arrival (now due) through the deferred-op path.
    fn spawn(&mut self, ev: FlowEvent, ctx: &mut Ctx<'_, Packet>) {
        let flow = self.next_flow;
        self.next_flow += 1;
        let start = ctx.now();
        debug_assert_eq!(start.as_ps(), ev.start_ps, "spawn wake drifted");
        let measured = start >= self.warmup;
        self.started += 1;
        if measured {
            self.measured_arrivals += 1;
        }
        self.live.insert(
            flow,
            LiveFlow {
                start,
                bytes: ev.bytes,
                src: ev.src,
                dst: ev.dst,
                measured,
            },
        );
        self.peak_live = self.peak_live.max(self.live.len());
        self.publish_live();
        let mut spec = FlowSpec::new(flow, ev.src, ev.dst, ev.bytes);
        spec.start = start;
        spec.notify = Some((ctx.self_id(), flow));
        let proto = self.proto;
        let src = (self.topo.host(ev.src), ev.src);
        let dst = (self.topo.host(ev.dst), ev.dst);
        let n_paths = self.topo.n_paths(ev.src, ev.dst);
        let mtu = self.topo.mtu();
        ctx.defer(move |w| {
            crate::harness::attach_generic(w, proto, &spec, src, dst, n_paths, mtu);
        });
    }

    /// A flow's receiver reported completion: book the sample, free the
    /// endpoints.
    fn finish(&mut self, flow: FlowId, ctx: &mut Ctx<'_, Packet>) {
        let Some(meta) = self.live.remove(&flow) else {
            return; // duplicate notify — already retired
        };
        self.publish_live();
        let fct = ctx.now() - meta.start;
        let ideal = self.topo.ideal_fct(meta.src, meta.dst, meta.bytes);
        let slowdown = fct.as_ps() as f64 / ideal.as_ps() as f64;
        self.completed.push(CompletedFlow {
            start: meta.start,
            bytes: meta.bytes,
            slowdown,
            measured: meta.measured,
        });
        let proto = self.proto;
        let src = self.topo.host(meta.src);
        let dst = self.topo.host(meta.dst);
        let spans = self.spans.clone();
        ctx.defer(move |w| {
            let harvest = proto.transport().detach(w, src, dst, flow);
            if let Some(log) = spans {
                let mut span =
                    ndp_telemetry::FlowSpan::open(flow, meta.src, meta.dst, meta.bytes, meta.start);
                span.measured = meta.measured;
                span.slowdown = slowdown;
                span.absorb(&harvest);
                ndp_telemetry::span::push_span(&log, span);
            }
        });
    }
}

impl Component<Packet> for Spawner {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        match ev {
            Event::Wake(SPAWN_TICK) => loop {
                if self.pending.is_none() {
                    self.pending = self.arrivals.next();
                }
                let Some(ev) = self.pending else { break };
                let at = Time::from_ps(ev.start_ps);
                if at > ctx.now() {
                    ctx.wake_at(at, SPAWN_TICK);
                    break;
                }
                self.pending = None;
                self.spawn(ev, ctx);
            },
            Event::Wake(flow) => self.finish(flow, ctx),
            Event::Msg(_) => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One protocol × load point of an open-loop sweep.
pub struct OpenLoopResult {
    pub proto: Proto,
    pub load: f64,
    /// Slowdowns of measured flows that completed, by size bin.
    pub slowdown: SlowdownBins,
    /// Flows whose start fell in the measurement window.
    pub measured: usize,
    /// Measured flows that did not complete within the drain window.
    pub incomplete: usize,
    /// All flows offered (warmup + measured).
    pub offered: usize,
    /// Payload bytes delivered by completed flows, as reported through
    /// the world-level completion sink.
    pub delivered_bytes: u64,
    /// Engine events dispatched (bench fuel).
    pub events_processed: u64,
    /// Per-kind tally of posted events (zero-delay forwards, timed
    /// messages, timer wakes) — the scheduler-lane mix of the run.
    pub event_kinds: EventKindCounts,
    /// High-water mark of concurrently in-flight flows — with lazy attach
    /// and retirement this is ≪ `offered` on any long run.
    pub peak_live_flows: usize,
    /// Arena population before any traffic was attached.
    pub live_components_baseline: usize,
    /// Arena population after the drain (back to baseline when every flow
    /// retired cleanly).
    pub live_components_end: usize,
    /// Arena high-water mark over the whole run.
    pub peak_live_components: usize,
}

/// Run one open-loop point. One-shot entry point (benches, ad-hoc runs):
/// routes through the parallel sweep harness as a single-point grid.
pub fn openloop_run(point: OpenLoopPoint) -> OpenLoopResult {
    sweep_openloop(&SweepSpec::single("openloop", point))
        .pop()
        .expect("single-point sweep")
}

/// The simulation behind one [`OpenLoopPoint`]: builds its own seeded
/// world, so concurrent sweep executions are independent and
/// bit-reproducible regardless of `NDP_THREADS`.
pub(crate) fn openloop_world_run(point: &OpenLoopPoint) -> OpenLoopResult {
    let mut world: World<Packet> = World::new(point.seed);
    let topo: Arc<dyn Topology> = Arc::from(point.topo.build(&mut world, point.proto.fabric()));
    let n = topo.n_hosts();
    // Totals-only: the runner consumes the sink's delivered-bytes
    // accounting, while per-flow samples come from the Spawner — no
    // per-record buffer to churn.
    let sink = world.add(CompletionSink::totals_only());
    for h in 0..n {
        world
            .get_mut::<Host>(topo.host(h as HostId))
            .set_completion_sink(sink);
    }
    let live_components_baseline = world.live_components();
    let sizes = point.dist.cdf();
    let process = ArrivalProcess::poisson_for_load(
        point.load,
        topo.host_link_speed().as_bps(),
        sizes.mean_size(),
    );
    let arrivals_end = point.warmup + point.measure;
    // The arrival stream is a function of (seed, load, dist) only — every
    // protocol at the same point sees the identical flow sequence, so
    // comparisons are paired, not merely distributionally matched. The
    // Spawner consumes it lazily, one flow per arrival instant.
    let workload =
        DynamicWorkload::new(n, process, sizes, point.seed ^ 0xD15C, arrivals_end.as_ps());
    let sp = Spawner::install_into(
        &mut world,
        point.proto,
        topo.clone(),
        workload,
        point.warmup,
    );

    // Step the world in chunks, streaming each chunk's completed flows
    // into the bins and freeing the sink's record buffer, so no
    // O(total arrivals) structure survives the run. `drain` caps the tail;
    // the run actually ends when the live-flow gauge reaches zero.
    let cap = arrivals_end + point.drain;
    let chunk = Time::from_ps((point.measure.as_ps() / 8).max(Time::from_ms(1).as_ps()));
    let mut slowdown = SlowdownBins::new();
    let mut done = false;
    let mut target = Time::ZERO;
    while !done {
        // `run_until` leaves `now()` at the last processed event, which
        // can sit *before* the chunk boundary when a chunk is eventless
        // (sparse arrivals on a 2-host fabric) — so the boundary grid
        // must advance monotonically on its own, not off `now()`.
        target = (target.max(world.now()) + chunk).min(cap);
        done = target == cap;
        world.run_until(target);
        let batch = std::mem::take(&mut world.get_mut::<Spawner>(sp).completed);
        for c in &batch {
            if c.measured {
                slowdown.add(c.bytes, c.slowdown);
            }
        }
        if world.now() >= arrivals_end && world.get::<Spawner>(sp).live_flows() == 0 {
            done = true;
        }
        // Scheduler buckets never shrink mid-run (capacity reuse keeps
        // refills allocation-free); releasing burst capacity at chunk
        // boundaries keeps a long sweep point from holding its peak-burst
        // memory through the whole measure + drain tail.
        world.shrink_idle();
    }
    let (completed_flows, delivered_bytes) = {
        let s = world.get::<CompletionSink>(sink);
        (s.total_flows, s.total_bytes)
    };

    // Flows still live at the cap are the incomplete ones; detach them so
    // the world drains back to its pre-traffic component population.
    let (stragglers, offered, measured, peak_live_flows) = {
        let s = world.get_mut::<Spawner>(sp);
        let stragglers: Vec<(FlowId, LiveFlow)> = s.live.drain().collect();
        (
            stragglers,
            s.started as usize,
            s.measured_arrivals,
            s.peak_live,
        )
    };
    debug_assert_eq!(
        completed_flows as usize + stragglers.len(),
        offered,
        "sink reports must account for every non-straggler flow"
    );
    let mut incomplete = 0usize;
    for (flow, meta) in stragglers {
        if meta.measured {
            incomplete += 1;
        }
        point
            .proto
            .transport()
            .detach(&mut world, topo.host(meta.src), topo.host(meta.dst), flow);
    }
    world.retire(sp);
    OpenLoopResult {
        proto: point.proto,
        load: point.load,
        slowdown,
        measured,
        incomplete,
        offered,
        delivered_bytes,
        events_processed: world.events_processed(),
        event_kinds: world.event_kind_counts(),
        peak_live_flows,
        live_components_baseline,
        live_components_end: world.live_components(),
        peak_live_components: world.peak_live_components(),
    }
}

/// The protocols every load sweep contends: NDP against the best-known
/// sender-driven (DCTCP) and receiver-driven (pHost) baselines.
pub const SWEEP_PROTOS: &[Proto] = &[Proto::Ndp, Proto::Dctcp, Proto::PHost];

fn windows(dist: DistKind, scale: Scale) -> (Time, Time, Time) {
    match (dist, scale) {
        (DistKind::WebSearch, Scale::Paper) => {
            (Time::from_ms(5), Time::from_ms(50), Time::from_ms(40))
        }
        (DistKind::WebSearch, Scale::Quick) => {
            (Time::from_ms(2), Time::from_ms(20), Time::from_ms(20))
        }
        // Data-mining flows are ~8x larger on average, so arrivals are 8x
        // sparser at equal load; measure longer to see comparable counts.
        (DistKind::DataMining, Scale::Paper) => {
            (Time::from_ms(5), Time::from_ms(120), Time::from_ms(60))
        }
        (DistKind::DataMining, Scale::Quick) => {
            (Time::from_ms(2), Time::from_ms(60), Time::from_ms(30))
        }
    }
}

/// Build and run a (load × protocol) grid for one distribution/topology.
fn run_grid(
    dist: DistKind,
    topo: TopoSpec,
    loads: &[f64],
    scale: Scale,
    seed: u64,
) -> Vec<OpenLoopResult> {
    let (warmup, measure, drain) = windows(dist, scale);
    let mut points = Vec::with_capacity(loads.len() * SWEEP_PROTOS.len());
    for (li, &load) in loads.iter().enumerate() {
        for &proto in SWEEP_PROTOS {
            points.push(OpenLoopPoint {
                proto,
                topo: topo.clone(),
                dist,
                load,
                // One seed per load point, shared across protocols: every
                // transport replays the identical arrival sequence.
                seed: seed + li as u64,
                warmup,
                measure,
                drain,
            });
        }
    }
    sweep_openloop(&SweepSpec::new("openloop", points))
}

/// A finished load sweep: one row per (protocol, load).
pub struct LoadSweepReport {
    pub dist: DistKind,
    pub oversub: bool,
    /// `Some(name)` when a `--topo`/`NDP_TOPO` override replaced the
    /// sweep's default fabric (shown in the rendered header and recorded
    /// in the CLI document envelope).
    pub topo_override: Option<&'static str>,
    pub loads: Vec<f64>,
    pub rows: Vec<OpenLoopResult>,
}

fn fmt_or_dash(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "-".into()
    }
}

impl LoadSweepReport {
    fn run(
        dist: DistKind,
        oversub: bool,
        scale: Scale,
        seed: u64,
        topo: Option<&'static TopoEntry>,
    ) -> LoadSweepReport {
        // Full-bisection fabrics sweep load up to 80 % of the NIC; the
        // 4:1 oversubscribed fabric saturates its ToR uplinks near
        // ~28 % NIC load (uniform destinations), so its sweep stays
        // below that knee.
        let loads: Vec<f64> = match (oversub, scale) {
            (false, Scale::Paper) => (1..=8).map(|i| i as f64 / 10.0).collect(),
            (false, Scale::Quick) => vec![0.1, 0.3, 0.5],
            (true, Scale::Paper) => vec![0.05, 0.10, 0.15, 0.20, 0.25],
            (true, Scale::Quick) => vec![0.05, 0.10, 0.20],
        };
        // Default fabrics come from the topology registry: the canonical
        // full-bisection shape, or the Figure-23 4:1 variant.
        let default = registered(if oversub { "oversubscribed" } else { "fattree" });
        let spec = topo.unwrap_or(default).spec(scale);
        let topo_override = topo.map(|e| e.name);
        let rows = run_grid(dist, spec, &loads, scale, seed);
        LoadSweepReport {
            dist,
            oversub,
            topo_override,
            loads,
            rows,
        }
    }

    /// Overall p99 slowdown for (proto, load), NaN when nothing completed
    /// (the shared nearest-rank helper in `ndp_metrics::percentile`).
    pub fn p99(&self, proto: Proto, load: f64) -> f64 {
        self.rows
            .iter()
            .find(|r| r.proto == proto && r.load == load)
            .map(|r| r.slowdown.overall().percentile_or_nan(0.99))
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        let &top = self.loads.last().expect("at least one load point");
        let per_proto: Vec<String> = SWEEP_PROTOS
            .iter()
            .map(|&p| format!("{} {}", p.label(), fmt_or_dash(self.p99(p, top), 1)))
            .collect();
        format!(
            "{}{}{} @{:.0}% load: p99 FCT slowdown {}",
            self.dist.label(),
            if self.oversub { " (4:1 oversub)" } else { "" },
            self.topo_override
                .map(|t| format!(" on {t}"))
                .unwrap_or_default(),
            top * 100.0,
            per_proto.join(", ")
        )
    }
}

impl std::fmt::Display for LoadSweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header: Vec<String> = vec![
            "protocol".into(),
            "load".into(),
            "flows".into(),
            "incompl".into(),
        ];
        for label in SLOWDOWN_BIN_LABELS {
            header.push(format!("{label} p50/p99"));
        }
        header.push("all p50/p99".into());
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut row = vec![
                r.proto.label().to_string(),
                format!("{:.0}%", r.load * 100.0),
                r.measured.to_string(),
                r.incomplete.to_string(),
            ];
            for i in 0..r.slowdown.n_bins() {
                row.push(format!(
                    "{}/{}",
                    fmt_or_dash(r.slowdown.percentile(i, 0.50), 1),
                    fmt_or_dash(r.slowdown.percentile(i, 0.99), 1)
                ));
            }
            let all = r.slowdown.overall();
            row.push(if all.is_empty() {
                "-/-".into()
            } else {
                format!("{:.1}/{:.1}", all.percentile(0.50), all.percentile(0.99))
            });
            t.row(row);
        }
        write!(
            f,
            "Open-loop {} load sweep{}{} — FCT slowdown by flow size\n{}",
            self.dist.label(),
            if self.oversub {
                " (4:1 oversubscribed fabric)"
            } else {
                ""
            },
            self.topo_override
                .map(|t| format!(" on {t}"))
                .unwrap_or_default(),
            t.render()
        )
    }
}

impl crate::registry::Report for LoadSweepReport {
    fn headline(&self) -> String {
        self.headline()
    }

    fn run_stats(&self) -> crate::registry::RunStats {
        crate::registry::RunStats {
            events_processed: Some(self.rows.iter().map(|r| r.events_processed).sum()),
            event_kinds: Some(self.rows.iter().map(|r| r.event_kinds).sum()),
            peak_live_components: self
                .rows
                .iter()
                .map(|r| r.peak_live_components as u64)
                .max(),
            peak_live_flows: self.rows.iter().map(|r| r.peak_live_flows as u64).max(),
            ..Default::default()
        }
    }

    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let bin_stats = |r: &OpenLoopResult| {
            Json::arr((0..r.slowdown.n_bins()).map(|i| {
                Json::obj([
                    ("bin", Json::str(SLOWDOWN_BIN_LABELS[i])),
                    ("n", Json::num(r.slowdown.bin(i).len() as f64)),
                    ("p50", Json::num(r.slowdown.percentile(i, 0.50))),
                    ("p99", Json::num(r.slowdown.percentile(i, 0.99))),
                ])
            }))
        };
        Json::obj([
            ("dist", Json::str(self.dist.label())),
            ("oversubscribed", Json::Bool(self.oversub)),
            ("loads", Json::arr(self.loads.iter().map(|&l| Json::num(l)))),
            (
                "bins",
                Json::arr(SLOWDOWN_BIN_LABELS.iter().map(|&l| Json::str(l))),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    let all = r.slowdown.overall();
                    let (p50, p99) = if all.is_empty() {
                        (f64::NAN, f64::NAN)
                    } else {
                        (all.percentile(0.50), all.percentile(0.99))
                    };
                    Json::obj([
                        ("proto", Json::str(r.proto.label())),
                        ("load", Json::num(r.load)),
                        ("measured", Json::num(r.measured as f64)),
                        ("incomplete", Json::num(r.incomplete as f64)),
                        ("offered", Json::num(r.offered as f64)),
                        (
                            "overall",
                            Json::obj([
                                ("n", Json::num(all.len() as f64)),
                                ("p50", Json::num(p50)),
                                ("p99", Json::num(p99)),
                            ]),
                        ),
                        ("bins", bin_stats(r)),
                    ])
                })),
            ),
        ])
    }
}

/// Registry entries.
pub struct LoadWebsearch;
pub struct LoadDatamining;
pub struct OversubLoad;

impl crate::registry::Experiment for LoadWebsearch {
    fn id(&self) -> &'static str {
        "load_websearch"
    }
    fn title(&self) -> &'static str {
        "FCT slowdown vs. offered load, web-search flow sizes"
    }
    fn description(&self) -> &'static str {
        "Open-loop Poisson arrivals from the DCTCP web-search size CDF; \
         NDP vs DCTCP vs pHost, p50/p99 slowdown per size bin per load"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(LoadSweepReport::run(
            DistKind::WebSearch,
            false,
            scale,
            0xA100,
            topo,
        ))
    }
}

impl crate::registry::Experiment for LoadDatamining {
    fn id(&self) -> &'static str {
        "load_datamining"
    }
    fn title(&self) -> &'static str {
        "FCT slowdown vs. offered load, data-mining flow sizes"
    }
    fn description(&self) -> &'static str {
        "Open-loop Poisson arrivals from the VL2 data-mining size CDF \
         (half single-packet, ~13 MB mean); NDP vs DCTCP vs pHost slowdown"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(LoadSweepReport::run(
            DistKind::DataMining,
            false,
            scale,
            0xB200,
            topo,
        ))
    }
}

impl crate::registry::Experiment for OversubLoad {
    fn id(&self) -> &'static str {
        "oversub_load"
    }
    fn title(&self) -> &'static str {
        "FCT slowdown vs. load on a 4:1 oversubscribed fabric"
    }
    fn description(&self) -> &'static str {
        "Web-search load sweep on the Figure-23 style 4:1 oversubscribed \
         fabric: slowdown under scarce core capacity, NDP vs DCTCP vs pHost"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(LoadSweepReport::run(
            DistKind::WebSearch,
            true,
            scale,
            0xC300,
            topo,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_point(proto: Proto, load: f64, seed: u64) -> OpenLoopPoint {
        OpenLoopPoint {
            proto,
            topo: registered("fattree").spec(Scale::Quick),
            dist: DistKind::WebSearch,
            load,
            seed,
            warmup: Time::from_ms(1),
            measure: Time::from_ms(8),
            drain: Time::from_ms(15),
        }
    }

    #[test]
    fn ndp_openloop_measures_flows_with_sane_slowdowns() {
        let r = openloop_world_run(&quick_point(Proto::Ndp, 0.4, 5));
        assert!(r.measured > 10, "only {} measured flows", r.measured);
        assert!(r.offered >= r.measured);
        let done = r.slowdown.len();
        assert!(done > 0, "no measured flow completed");
        assert_eq!(done + r.incomplete, r.measured);
        // ideal_fct is a lower bound, so every slowdown is >= 1 (allow
        // float rounding slack).
        assert!(
            r.slowdown.overall().min() >= 0.99,
            "slowdown below ideal: {}",
            r.slowdown.overall().min()
        );
        // NDP at 40% load on a full-bisection fabric stays close to ideal
        // at the median.
        let p50 = r.slowdown.overall().percentile(0.5);
        assert!(p50 < 4.0, "NDP median slowdown {p50:.2}");
        // The per-kind tally accounts for at least every dispatched event
        // (posts at the cap may go undispatched, never the reverse), and a
        // packet run exercises all three scheduler lanes.
        assert!(r.event_kinds.total() >= r.events_processed);
        assert!(r.event_kinds.forward > 0, "no zero-delay handoffs?");
        assert!(r.event_kinds.timed_msg > 0, "no timed messages?");
        assert!(r.event_kinds.wake > 0, "no timer wakes?");
    }

    #[test]
    fn openloop_is_deterministic_across_threads_and_runs() {
        let points = vec![
            quick_point(Proto::Ndp, 0.3, 9),
            quick_point(Proto::Dctcp, 0.3, 9),
        ];
        let spec = SweepSpec::new("det", points);
        let fingerprint = |rs: &[OpenLoopResult]| -> Vec<(usize, usize, u64, u64)> {
            rs.iter()
                .map(|r| {
                    let all = r.slowdown.overall();
                    let (p50, p99) = if all.is_empty() {
                        (0, 0)
                    } else {
                        (
                            all.percentile(0.5).to_bits(),
                            all.percentile(0.99).to_bits(),
                        )
                    };
                    (r.measured, r.incomplete, p50, p99)
                })
                .collect()
        };
        let serial = fingerprint(&spec.run_with_threads(1, openloop_world_run));
        let threaded = fingerprint(&spec.run_with_threads(4, openloop_world_run));
        let again = fingerprint(&spec.run_with_threads(4, openloop_world_run));
        assert_eq!(serial, threaded, "thread count changed results");
        assert_eq!(threaded, again, "repeated runs diverged");
    }

    #[test]
    fn same_seed_gives_identical_arrivals_across_protocols() {
        // Paired comparison contract: at one (seed, load, dist) point the
        // offered flow count is protocol-independent.
        let a = openloop_world_run(&quick_point(Proto::Ndp, 0.3, 3));
        let b = openloop_world_run(&quick_point(Proto::Dctcp, 0.3, 3));
        let c = openloop_world_run(&quick_point(Proto::PHost, 0.3, 3));
        assert_eq!(a.offered, b.offered);
        assert_eq!(b.offered, c.offered);
        assert_eq!(a.measured, b.measured);
    }

    #[test]
    fn spawner_attaches_at_arrival_and_retires_on_completion() {
        let mut w: World<Packet> = World::new(1);
        let topo: Arc<dyn Topology> = Arc::from(
            registered("fattree")
                .spec(Scale::Quick)
                .build(&mut w, Proto::Ndp.fabric()),
        );
        let baseline = w.live_components();
        let start = Time::from_us(50);
        let arrival = FlowEvent {
            start_ps: start.as_ps(),
            src: 0,
            dst: 15,
            bytes: 90_000,
        };
        let sp = Spawner::install_into(
            &mut w,
            Proto::Ndp,
            topo.clone(),
            std::iter::once(arrival),
            Time::ZERO,
        );
        // Before the arrival instant nothing exists for the flow.
        w.run_until(Time::from_us(49));
        assert_eq!(w.get::<Host>(topo.host(0)).n_endpoints(), 0);
        assert_eq!(w.get::<Spawner>(sp).started, 0);
        w.run_until(Time::from_ms(20));
        let s = w.get::<Spawner>(sp);
        assert_eq!(s.started, 1);
        assert_eq!(s.live_flows(), 0, "completed flow must leave the live set");
        assert_eq!(s.peak_live, 1);
        assert_eq!(s.completed.len(), 1);
        let fct_over_ideal = s.completed[0].slowdown;
        // Unloaded network: the flow runs at ideal speed, give ~200 us of
        // slack over the ~78 us ideal.
        let ideal = topo.ideal_fct(0, 15, 90_000);
        let bound = (ideal + Time::from_us(200)).as_ps() as f64 / ideal.as_ps() as f64;
        assert!(fct_over_ideal >= 0.99, "slowdown {fct_over_ideal}");
        assert!(fct_over_ideal < bound, "unloaded slowdown {fct_over_ideal}");
        // Both endpoints were detached the instant the flow finished.
        assert_eq!(w.get::<Host>(topo.host(0)).n_endpoints(), 0);
        assert_eq!(w.get::<Host>(topo.host(15)).n_endpoints(), 0);
        // Retiring the spawner returns the arena to its pre-traffic state.
        w.retire(sp);
        assert_eq!(w.live_components(), baseline);
    }

    #[test]
    fn openloop_runs_on_every_registered_topology() {
        // The pipeline is fabric-agnostic: the same point measures flows
        // and books sane slowdowns on every registered shape.
        for entry in crate::topo::TOPOLOGIES {
            let mut point = quick_point(Proto::Ndp, 0.2, 11);
            point.topo = entry.spec(Scale::Quick);
            let r = openloop_world_run(&point);
            assert!(r.measured > 0, "{}: no measured flows", entry.name);
            assert!(
                !r.slowdown.is_empty(),
                "{}: no measured flow completed",
                entry.name
            );
            // ideal_fct is computed from the topology's own per-hop
            // speeds, so it stays a true lower bound even on the
            // oversubscribed shapes.
            assert!(
                r.slowdown.overall().min() >= 0.99,
                "{}: slowdown below ideal: {}",
                entry.name,
                r.slowdown.overall().min()
            );
            assert_eq!(
                r.live_components_end, r.live_components_baseline,
                "{}: arena must drain to baseline",
                entry.name
            );
        }
    }

    #[test]
    fn openloop_live_state_returns_to_baseline_and_peak_is_bounded() {
        let r = openloop_world_run(&quick_point(Proto::Ndp, 0.4, 5));
        assert!(r.offered > 20, "want a non-trivial run, got {}", r.offered);
        // Everything the traffic attached was freed again; only the
        // stragglers' detach (if any) happened post-run.
        assert_eq!(
            r.live_components_end, r.live_components_baseline,
            "arena must drain back to the pre-traffic baseline"
        );
        // Lazy attach keeps the in-flight population far below the total
        // offered load, and the arena never grows with arrivals at all
        // (endpoints live inside hosts).
        assert!(
            r.peak_live_flows < r.offered,
            "peak {} vs offered {}",
            r.peak_live_flows,
            r.offered
        );
        assert_eq!(
            r.peak_live_components,
            r.live_components_baseline + 1,
            "only the spawner joins the arena during traffic"
        );
        // The world-level sink accounted for the completed flows' payload.
        assert!(
            r.delivered_bytes > 0,
            "completion sink must report delivered bytes"
        );
    }
}
