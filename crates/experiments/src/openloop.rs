//! Open-loop dynamic traffic: Poisson flow arrivals drawn from an
//! empirical size distribution, swept over offered load, reported as FCT
//! slowdown per flow-size bin — the standard "slowdown vs. load" axis the
//! low-latency-DC literature compares transports on.
//!
//! # Pipeline
//!
//! [`ndp_workloads::DynamicWorkload`] turns (hosts × [`ArrivalProcess`] ×
//! [`EmpiricalCdf`]) into a time-ordered stream of `(start, src, dst,
//! bytes)` events. Every flow is attached up front with the
//! `start = Time::MAX` sentinel (endpoints registered, nothing scheduled),
//! and a [`Spawner`] component walks the start schedule *inside* simulated
//! time, waking each flow's endpoints at its arrival instant — so flow
//! starts interleave with packet events exactly as an application would
//! issue them, not as a t=0 thundering herd.
//!
//! # Windows
//!
//! A run has three phases: `warmup` (arrivals happen but are not
//! measured, letting queues reach steady state), `measure` (arrivals are
//! measured), and `drain` (no new arrivals; in-flight measured flows may
//! still complete). Each measured flow's FCT is taken against its own
//! start time and normalized by [`ideal_fct`] — the unloaded-network
//! lower bound — to give its slowdown.

use std::any::Any;

use ndp_metrics::{SlowdownBins, Table, SLOWDOWN_BIN_LABELS};
use ndp_net::packet::{FlowId, HostId, Packet, HEADER_BYTES};
use ndp_sim::{Component, ComponentId, Ctx, Event, Time, World};
use ndp_topology::{FatTree, FatTreeCfg};
use ndp_workloads::{ArrivalProcess, DynamicWorkload, EmpiricalCdf};

use crate::harness::{attach_on_fattree, completion_time, FlowSpec, Proto, Scale};
use crate::sweep::{sweep_openloop, OpenLoopPoint, SweepSpec};

/// Which embedded flow-size distribution a load sweep draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistKind {
    WebSearch,
    DataMining,
}

impl DistKind {
    pub fn cdf(self) -> EmpiricalCdf {
        match self {
            DistKind::WebSearch => EmpiricalCdf::websearch(),
            DistKind::DataMining => EmpiricalCdf::datamining(),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DistKind::WebSearch => "websearch",
            DistKind::DataMining => "datamining",
        }
    }
}

/// The spawner's self-wake token. Hosts never receive it: flow-start
/// tokens are `flow << 8` and flow ids start at 1.
const SPAWN_TICK: u64 = u64::MAX;

/// Starts flows at their scheduled arrival instants.
///
/// Holds the `(start, src host, dst host, flow)` schedule sorted by start
/// time and rides a single self-wake chain through it; at each due entry
/// it wakes both endpoints with the flow's start token (token 0), exactly
/// what `Transport::attach` would have scheduled for a concrete start.
/// Waking the destination too is what pHost needs to arm its receiver
/// token timeout; for every other transport the receiver's `on_start` is
/// a no-op passive open.
pub struct Spawner {
    schedule: Vec<(Time, ComponentId, ComponentId, FlowId)>,
    next: usize,
    /// Flows started so far (diagnostics / tests).
    pub started: u64,
}

impl Spawner {
    /// Build a spawner and arm its first wake-up. `schedule` must be
    /// sorted by start time (the workload iterator yields it that way).
    pub fn install_into(
        world: &mut World<Packet>,
        schedule: Vec<(Time, ComponentId, ComponentId, FlowId)>,
    ) -> ComponentId {
        debug_assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "spawner schedule must be sorted by start time"
        );
        let first = schedule.first().map(|&(at, ..)| at);
        let id = world.add(Spawner {
            schedule,
            next: 0,
            started: 0,
        });
        if let Some(at) = first {
            world.post_wake(at, id, SPAWN_TICK);
        }
        id
    }
}

impl Component<Packet> for Spawner {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        if !matches!(ev, Event::Wake(SPAWN_TICK)) {
            return;
        }
        while let Some(&(at, src, dst, flow)) = self.schedule.get(self.next) {
            if at > ctx.now() {
                ctx.wake_at(at, SPAWN_TICK);
                break;
            }
            ctx.wake_other(src, Time::ZERO, flow << 8);
            ctx.wake_other(dst, Time::ZERO, flow << 8);
            self.next += 1;
            self.started += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Ideal (unloaded-network) completion time of a `bytes` flow from `src`
/// to `dst`: the first packet store-and-forwards across every link, the
/// rest pipeline behind it at line rate. A true lower bound in this
/// equal-speed store-and-forward fabric, so slowdowns are ≥ 1.
pub fn ideal_fct(ft: &FatTree, src: HostId, dst: HostId, bytes: u64) -> Time {
    let per = (ft.cfg.mtu - HEADER_BYTES) as u64;
    let pkts = bytes.div_ceil(per);
    let wire = bytes + pkts * HEADER_BYTES as u64;
    let first = bytes.min(per) + HEADER_BYTES as u64;
    let hops = ft.n_hops(src, dst) as u64;
    ft.cfg.link_speed.tx_time(hops * first + (wire - first))
        + Time::from_ps(ft.cfg.link_delay.as_ps() * hops)
}

/// One protocol × load point of an open-loop sweep.
pub struct OpenLoopResult {
    pub proto: Proto,
    pub load: f64,
    /// Slowdowns of measured flows that completed, by size bin.
    pub slowdown: SlowdownBins,
    /// Flows whose start fell in the measurement window.
    pub measured: usize,
    /// Measured flows that did not complete within the drain window.
    pub incomplete: usize,
    /// All flows offered (warmup + measured).
    pub offered: usize,
    /// Engine events dispatched (bench fuel).
    pub events_processed: u64,
}

/// Run one open-loop point. One-shot entry point (benches, ad-hoc runs):
/// routes through the parallel sweep harness as a single-point grid.
pub fn openloop_run(point: OpenLoopPoint) -> OpenLoopResult {
    sweep_openloop(&SweepSpec::single("openloop", point))
        .pop()
        .expect("single-point sweep")
}

/// The simulation behind one [`OpenLoopPoint`]: builds its own seeded
/// world, so concurrent sweep executions are independent and
/// bit-reproducible regardless of `NDP_THREADS`.
pub(crate) fn openloop_world_run(point: &OpenLoopPoint) -> OpenLoopResult {
    let cfg = point.cfg.clone().with_fabric(point.proto.fabric());
    let mut world: World<Packet> = World::new(point.seed);
    let ft = FatTree::build(&mut world, cfg);
    let n = ft.n_hosts();
    let sizes = point.dist.cdf();
    let process =
        ArrivalProcess::poisson_for_load(point.load, ft.cfg.link_speed.as_bps(), sizes.mean_size());
    let arrivals_end = point.warmup + point.measure;
    // The arrival stream is a function of (seed, load, dist) only — every
    // protocol at the same point sees the identical flow sequence, so
    // comparisons are paired, not merely distributionally matched.
    let workload =
        DynamicWorkload::new(n, process, sizes, point.seed ^ 0xD15C, arrivals_end.as_ps());
    let mut flows: Vec<(FlowId, Time, u32, u32, u64)> = Vec::new();
    let mut schedule: Vec<(Time, ComponentId, ComponentId, FlowId)> = Vec::new();
    for (i, ev) in workload.enumerate() {
        let flow = i as FlowId + 1;
        let mut spec = FlowSpec::new(flow, ev.src, ev.dst, ev.bytes);
        // Endpoints only; the Spawner owns the start schedule.
        spec.start = Time::MAX;
        attach_on_fattree(&mut world, &ft, point.proto, &spec);
        let start = Time::from_ps(ev.start_ps);
        schedule.push((
            start,
            ft.hosts[ev.src as usize],
            ft.hosts[ev.dst as usize],
            flow,
        ));
        flows.push((flow, start, ev.src, ev.dst, ev.bytes));
    }
    let offered = flows.len();
    Spawner::install_into(&mut world, schedule);
    world.run_until(arrivals_end + point.drain);

    let mut slowdown = SlowdownBins::new();
    let mut measured = 0usize;
    let mut incomplete = 0usize;
    for &(flow, start, src, dst, bytes) in &flows {
        if start < point.warmup {
            continue;
        }
        measured += 1;
        match completion_time(&world, ft.hosts[dst as usize], flow, point.proto) {
            Some(done) => {
                let ideal = ideal_fct(&ft, src, dst, bytes);
                slowdown.add(bytes, (done - start).as_ps() as f64 / ideal.as_ps() as f64);
            }
            None => incomplete += 1,
        }
    }
    OpenLoopResult {
        proto: point.proto,
        load: point.load,
        slowdown,
        measured,
        incomplete,
        offered,
        events_processed: world.events_processed(),
    }
}

/// The protocols every load sweep contends: NDP against the best-known
/// sender-driven (DCTCP) and receiver-driven (pHost) baselines.
pub const SWEEP_PROTOS: &[Proto] = &[Proto::Ndp, Proto::Dctcp, Proto::PHost];

fn windows(dist: DistKind, scale: Scale) -> (Time, Time, Time) {
    match (dist, scale) {
        (DistKind::WebSearch, Scale::Paper) => {
            (Time::from_ms(5), Time::from_ms(50), Time::from_ms(40))
        }
        (DistKind::WebSearch, Scale::Quick) => {
            (Time::from_ms(2), Time::from_ms(20), Time::from_ms(20))
        }
        // Data-mining flows are ~8x larger on average, so arrivals are 8x
        // sparser at equal load; measure longer to see comparable counts.
        (DistKind::DataMining, Scale::Paper) => {
            (Time::from_ms(5), Time::from_ms(120), Time::from_ms(60))
        }
        (DistKind::DataMining, Scale::Quick) => {
            (Time::from_ms(2), Time::from_ms(60), Time::from_ms(30))
        }
    }
}

/// Build and run a (load × protocol) grid for one distribution/topology.
fn run_grid(
    dist: DistKind,
    cfg: FatTreeCfg,
    loads: &[f64],
    scale: Scale,
    seed: u64,
) -> Vec<OpenLoopResult> {
    let (warmup, measure, drain) = windows(dist, scale);
    let mut points = Vec::with_capacity(loads.len() * SWEEP_PROTOS.len());
    for (li, &load) in loads.iter().enumerate() {
        for &proto in SWEEP_PROTOS {
            points.push(OpenLoopPoint {
                proto,
                cfg: cfg.clone(),
                dist,
                load,
                // One seed per load point, shared across protocols: every
                // transport replays the identical arrival sequence.
                seed: seed + li as u64,
                warmup,
                measure,
                drain,
            });
        }
    }
    sweep_openloop(&SweepSpec::new("openloop", points))
}

/// A finished load sweep: one row per (protocol, load).
pub struct LoadSweepReport {
    pub dist: DistKind,
    pub oversub: bool,
    pub loads: Vec<f64>,
    pub rows: Vec<OpenLoopResult>,
}

fn fmt_or_dash(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "-".into()
    }
}

impl LoadSweepReport {
    fn run(dist: DistKind, oversub: bool, scale: Scale, seed: u64) -> LoadSweepReport {
        let (cfg, loads): (FatTreeCfg, Vec<f64>) = match (oversub, scale) {
            // Full-bisection fabrics sweep load up to 80 % of the NIC; the
            // 4:1 oversubscribed fabric saturates its ToR uplinks near
            // ~28 % NIC load (uniform destinations), so its sweep stays
            // below that knee.
            (false, Scale::Paper) => (
                FatTreeCfg::new(8),
                (1..=8).map(|i| i as f64 / 10.0).collect(),
            ),
            (false, Scale::Quick) => (FatTreeCfg::new(4), vec![0.1, 0.3, 0.5]),
            (true, Scale::Paper) => (
                FatTreeCfg::new(8).with_hosts_per_tor(16),
                vec![0.05, 0.10, 0.15, 0.20, 0.25],
            ),
            (true, Scale::Quick) => (
                FatTreeCfg::new(4).with_hosts_per_tor(8),
                vec![0.05, 0.10, 0.20],
            ),
        };
        let rows = run_grid(dist, cfg, &loads, scale, seed);
        LoadSweepReport {
            dist,
            oversub,
            loads,
            rows,
        }
    }

    /// Overall p99 slowdown for (proto, load), NaN when nothing completed.
    pub fn p99(&self, proto: Proto, load: f64) -> f64 {
        self.rows
            .iter()
            .find(|r| r.proto == proto && r.load == load)
            .map(|r| {
                if r.slowdown.is_empty() {
                    f64::NAN
                } else {
                    r.slowdown.overall().percentile(0.99)
                }
            })
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        let &top = self.loads.last().expect("at least one load point");
        let per_proto: Vec<String> = SWEEP_PROTOS
            .iter()
            .map(|&p| format!("{} {}", p.label(), fmt_or_dash(self.p99(p, top), 1)))
            .collect();
        format!(
            "{}{} @{:.0}% load: p99 FCT slowdown {}",
            self.dist.label(),
            if self.oversub { " (4:1 oversub)" } else { "" },
            top * 100.0,
            per_proto.join(", ")
        )
    }
}

impl std::fmt::Display for LoadSweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header: Vec<String> = vec![
            "protocol".into(),
            "load".into(),
            "flows".into(),
            "incompl".into(),
        ];
        for label in SLOWDOWN_BIN_LABELS {
            header.push(format!("{label} p50/p99"));
        }
        header.push("all p50/p99".into());
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut row = vec![
                r.proto.label().to_string(),
                format!("{:.0}%", r.load * 100.0),
                r.measured.to_string(),
                r.incomplete.to_string(),
            ];
            for i in 0..r.slowdown.n_bins() {
                row.push(format!(
                    "{}/{}",
                    fmt_or_dash(r.slowdown.percentile(i, 0.50), 1),
                    fmt_or_dash(r.slowdown.percentile(i, 0.99), 1)
                ));
            }
            let all = r.slowdown.overall();
            row.push(if all.is_empty() {
                "-/-".into()
            } else {
                format!("{:.1}/{:.1}", all.percentile(0.50), all.percentile(0.99))
            });
            t.row(row);
        }
        write!(
            f,
            "Open-loop {} load sweep{} — FCT slowdown by flow size\n{}",
            self.dist.label(),
            if self.oversub {
                " (4:1 oversubscribed fabric)"
            } else {
                ""
            },
            t.render()
        )
    }
}

impl crate::registry::Report for LoadSweepReport {
    fn headline(&self) -> String {
        self.headline()
    }

    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let bin_stats = |r: &OpenLoopResult| {
            Json::arr((0..r.slowdown.n_bins()).map(|i| {
                Json::obj([
                    ("bin", Json::str(SLOWDOWN_BIN_LABELS[i])),
                    ("n", Json::num(r.slowdown.bin(i).len() as f64)),
                    ("p50", Json::num(r.slowdown.percentile(i, 0.50))),
                    ("p99", Json::num(r.slowdown.percentile(i, 0.99))),
                ])
            }))
        };
        Json::obj([
            ("dist", Json::str(self.dist.label())),
            ("oversubscribed", Json::Bool(self.oversub)),
            ("loads", Json::arr(self.loads.iter().map(|&l| Json::num(l)))),
            (
                "bins",
                Json::arr(SLOWDOWN_BIN_LABELS.iter().map(|&l| Json::str(l))),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    let all = r.slowdown.overall();
                    let (p50, p99) = if all.is_empty() {
                        (f64::NAN, f64::NAN)
                    } else {
                        (all.percentile(0.50), all.percentile(0.99))
                    };
                    Json::obj([
                        ("proto", Json::str(r.proto.label())),
                        ("load", Json::num(r.load)),
                        ("measured", Json::num(r.measured as f64)),
                        ("incomplete", Json::num(r.incomplete as f64)),
                        ("offered", Json::num(r.offered as f64)),
                        (
                            "overall",
                            Json::obj([
                                ("n", Json::num(all.len() as f64)),
                                ("p50", Json::num(p50)),
                                ("p99", Json::num(p99)),
                            ]),
                        ),
                        ("bins", bin_stats(r)),
                    ])
                })),
            ),
        ])
    }
}

/// Registry entries.
pub struct LoadWebsearch;
pub struct LoadDatamining;
pub struct OversubLoad;

impl crate::registry::Experiment for LoadWebsearch {
    fn id(&self) -> &'static str {
        "load_websearch"
    }
    fn title(&self) -> &'static str {
        "FCT slowdown vs. offered load, web-search flow sizes"
    }
    fn description(&self) -> &'static str {
        "Open-loop Poisson arrivals from the DCTCP web-search size CDF; \
         NDP vs DCTCP vs pHost, p50/p99 slowdown per size bin per load"
    }
    fn run(&self, scale: Scale) -> Box<dyn crate::registry::Report> {
        Box::new(LoadSweepReport::run(
            DistKind::WebSearch,
            false,
            scale,
            0xA100,
        ))
    }
}

impl crate::registry::Experiment for LoadDatamining {
    fn id(&self) -> &'static str {
        "load_datamining"
    }
    fn title(&self) -> &'static str {
        "FCT slowdown vs. offered load, data-mining flow sizes"
    }
    fn description(&self) -> &'static str {
        "Open-loop Poisson arrivals from the VL2 data-mining size CDF \
         (half single-packet, ~13 MB mean); NDP vs DCTCP vs pHost slowdown"
    }
    fn run(&self, scale: Scale) -> Box<dyn crate::registry::Report> {
        Box::new(LoadSweepReport::run(
            DistKind::DataMining,
            false,
            scale,
            0xB200,
        ))
    }
}

impl crate::registry::Experiment for OversubLoad {
    fn id(&self) -> &'static str {
        "oversub_load"
    }
    fn title(&self) -> &'static str {
        "FCT slowdown vs. load on a 4:1 oversubscribed fabric"
    }
    fn description(&self) -> &'static str {
        "Web-search load sweep on the Figure-23 style 4:1 oversubscribed \
         FatTree: slowdown under scarce core capacity, NDP vs DCTCP vs pHost"
    }
    fn run(&self, scale: Scale) -> Box<dyn crate::registry::Report> {
        Box::new(LoadSweepReport::run(
            DistKind::WebSearch,
            true,
            scale,
            0xC300,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_point(proto: Proto, load: f64, seed: u64) -> OpenLoopPoint {
        OpenLoopPoint {
            proto,
            cfg: FatTreeCfg::new(4),
            dist: DistKind::WebSearch,
            load,
            seed,
            warmup: Time::from_ms(1),
            measure: Time::from_ms(8),
            drain: Time::from_ms(15),
        }
    }

    #[test]
    fn ndp_openloop_measures_flows_with_sane_slowdowns() {
        let r = openloop_world_run(&quick_point(Proto::Ndp, 0.4, 5));
        assert!(r.measured > 10, "only {} measured flows", r.measured);
        assert!(r.offered >= r.measured);
        let done = r.slowdown.len();
        assert!(done > 0, "no measured flow completed");
        assert_eq!(done + r.incomplete, r.measured);
        // ideal_fct is a lower bound, so every slowdown is >= 1 (allow
        // float rounding slack).
        assert!(
            r.slowdown.overall().min() >= 0.99,
            "slowdown below ideal: {}",
            r.slowdown.overall().min()
        );
        // NDP at 40% load on a full-bisection fabric stays close to ideal
        // at the median.
        let p50 = r.slowdown.overall().percentile(0.5);
        assert!(p50 < 4.0, "NDP median slowdown {p50:.2}");
    }

    #[test]
    fn openloop_is_deterministic_across_threads_and_runs() {
        let points = vec![
            quick_point(Proto::Ndp, 0.3, 9),
            quick_point(Proto::Dctcp, 0.3, 9),
        ];
        let spec = SweepSpec::new("det", points);
        let fingerprint = |rs: &[OpenLoopResult]| -> Vec<(usize, usize, u64, u64)> {
            rs.iter()
                .map(|r| {
                    let all = r.slowdown.overall();
                    let (p50, p99) = if all.is_empty() {
                        (0, 0)
                    } else {
                        (
                            all.percentile(0.5).to_bits(),
                            all.percentile(0.99).to_bits(),
                        )
                    };
                    (r.measured, r.incomplete, p50, p99)
                })
                .collect()
        };
        let serial = fingerprint(&spec.run_with_threads(1, openloop_world_run));
        let threaded = fingerprint(&spec.run_with_threads(4, openloop_world_run));
        let again = fingerprint(&spec.run_with_threads(4, openloop_world_run));
        assert_eq!(serial, threaded, "thread count changed results");
        assert_eq!(threaded, again, "repeated runs diverged");
    }

    #[test]
    fn same_seed_gives_identical_arrivals_across_protocols() {
        // Paired comparison contract: at one (seed, load, dist) point the
        // offered flow count is protocol-independent.
        let a = openloop_world_run(&quick_point(Proto::Ndp, 0.3, 3));
        let b = openloop_world_run(&quick_point(Proto::Dctcp, 0.3, 3));
        let c = openloop_world_run(&quick_point(Proto::PHost, 0.3, 3));
        assert_eq!(a.offered, b.offered);
        assert_eq!(b.offered, c.offered);
        assert_eq!(a.measured, b.measured);
    }

    #[test]
    fn ideal_fct_matches_unloaded_one_way_latency() {
        // Cross-pod single full packet on the k=4 defaults: 6 links of
        // 7.2 us serialization + 1 us propagation each (see the topology
        // one-way latency test).
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        let bytes = (9000 - HEADER_BYTES) as u64;
        assert_eq!(
            ideal_fct(&ft, 0, 15, bytes),
            Time::from_ns(6 * 7_200) + Time::from_us(6)
        );
        // Two packets: one extra line-rate serialization behind the first.
        assert_eq!(
            ideal_fct(&ft, 0, 15, 2 * bytes),
            Time::from_ns(7 * 7_200) + Time::from_us(6)
        );
        // Same-ToR flows only cross 2 links.
        assert_eq!(
            ideal_fct(&ft, 0, 1, bytes),
            Time::from_ns(2 * 7_200) + Time::from_us(2)
        );
    }

    #[test]
    fn spawner_starts_flows_at_their_scheduled_times() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        let mut spec = FlowSpec::new(1, 0, 15, 90_000);
        spec.start = Time::MAX;
        attach_on_fattree(&mut w, &ft, Proto::Ndp, &spec);
        let start = Time::from_us(50);
        let sp = Spawner::install_into(&mut w, vec![(start, ft.hosts[0], ft.hosts[15], 1)]);
        w.run_until(Time::from_ms(20));
        assert_eq!(w.get::<Spawner>(sp).started, 1);
        let done = completion_time(&w, ft.hosts[15], 1, Proto::Ndp).expect("flow completed");
        assert!(done > start, "completed at {done} before start {start}");
        let fct = done - start;
        let ideal = ideal_fct(&ft, 0, 15, 90_000);
        assert!(fct >= ideal, "fct {fct} below ideal {ideal}");
        assert!(
            fct < ideal + Time::from_us(200),
            "unloaded fct {fct} far above ideal {ideal}"
        );
    }
}
