//! Tiny entry points used by the facade crate's examples and doctests.

use ndp_core::{attach_flow, NdpFlowCfg};
use ndp_net::host::HostLatency;
use ndp_net::packet::Packet;
use ndp_sim::{Speed, Time, World};
use ndp_topology::{BackToBack, QueueSpec};

/// Outcome of a simple two-host NDP transfer.
pub struct TransferReport {
    pub bytes: u64,
    pub fct: Time,
    pub goodput_gbps: f64,
    pub retransmissions: u64,
}

/// Transfer `bytes` between two back-to-back 10 Gb/s hosts over NDP and
/// report goodput — the crate's "hello world".
pub fn two_host_transfer(bytes: u64) -> TransferReport {
    let mut world: World<Packet> = World::new(7);
    let b2b = BackToBack::build(
        &mut world,
        Speed::gbps(10),
        Time::from_us(1),
        9000,
        QueueSpec::ndp_default(),
        HostLatency::default(),
    );
    let cfg = NdpFlowCfg {
        n_paths: 1,
        ..NdpFlowCfg::new(bytes)
    };
    attach_flow(
        &mut world,
        1,
        (b2b.hosts[0], 0),
        (b2b.hosts[1], 1),
        cfg,
        Time::ZERO,
    );
    world.run_until(Time::from_secs(10));
    let tx = ndp_core::flow::sender_stats(&world, b2b.hosts[0], 1);
    let fct = tx.fct().expect("transfer must complete");
    TransferReport {
        bytes,
        fct,
        goodput_gbps: bytes as f64 * 8.0 / fct.as_secs() / 1e9,
        retransmissions: tx.retransmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_hits_line_rate() {
        let r = two_host_transfer(10_000_000);
        assert!(r.goodput_gbps > 9.0, "goodput {:.2}", r.goodput_gbps);
        assert_eq!(r.retransmissions, 0);
    }
}
