//! Tiny entry points used by the facade crate's examples and doctests.

use ndp_core::{attach_flow, NdpFlowCfg};
use ndp_net::host::HostLatency;
use ndp_net::packet::Packet;
use ndp_sim::{Speed, Time, World};
use ndp_topology::{BackToBack, QueueSpec};

/// Outcome of a simple two-host NDP transfer.
pub struct TransferReport {
    pub bytes: u64,
    pub fct: Time,
    pub goodput_gbps: f64,
    pub retransmissions: u64,
}

/// Transfer `bytes` between two back-to-back 10 Gb/s hosts over NDP and
/// report goodput — the crate's "hello world".
pub fn two_host_transfer(bytes: u64) -> TransferReport {
    let mut world: World<Packet> = World::new(7);
    let b2b = BackToBack::build(
        &mut world,
        Speed::gbps(10),
        Time::from_us(1),
        9000,
        QueueSpec::ndp_default(),
        HostLatency::default(),
    );
    let cfg = NdpFlowCfg {
        n_paths: 1,
        ..NdpFlowCfg::new(bytes)
    };
    attach_flow(
        &mut world,
        1,
        (b2b.hosts[0], 0),
        (b2b.hosts[1], 1),
        cfg,
        Time::ZERO,
    );
    world.run_until(Time::from_secs(10));
    let tx = ndp_core::flow::sender_stats(&world, b2b.hosts[0], 1);
    let fct = tx.fct().expect("transfer must complete");
    TransferReport {
        bytes,
        fct,
        goodput_gbps: bytes as f64 * 8.0 / fct.as_secs() / 1e9,
        retransmissions: tx.retransmissions,
    }
}

impl TransferReport {
    pub fn headline(&self) -> String {
        format!(
            "{} MB over back-to-back 10G NDP: FCT {:.2} ms, goodput {:.2} Gb/s, {} rtx",
            self.bytes / 1_000_000,
            self.fct.as_ms(),
            self.goodput_gbps,
            self.retransmissions
        )
    }
}

impl std::fmt::Display for TransferReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Quickstart — two-host NDP transfer")?;
        writeln!(f, "  bytes:       {}", self.bytes)?;
        writeln!(f, "  fct:         {:.3} ms", self.fct.as_ms())?;
        writeln!(f, "  goodput:     {:.2} Gb/s", self.goodput_gbps)?;
        write!(f, "  rtx:         {}", self.retransmissions)
    }
}

/// Registry entry: the crate's hello-world as a runnable experiment.
pub struct Quickstart;

impl crate::registry::Experiment for Quickstart {
    fn id(&self) -> &'static str {
        "quickstart"
    }
    fn title(&self) -> &'static str {
        "Two-host NDP transfer hello-world (sanity check)"
    }
    fn run(
        &self,
        scale: crate::harness::Scale,
        _topo: Option<&'static crate::topo::TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        let bytes = match scale {
            crate::harness::Scale::Paper => 100_000_000,
            crate::harness::Scale::Quick => 10_000_000,
        };
        Box::new(two_host_transfer(bytes))
    }
}

impl crate::registry::Report for TransferReport {
    fn headline(&self) -> String {
        self.headline()
    }
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("bytes", Json::num(self.bytes as f64)),
            ("fct_ms", Json::num(self.fct.as_ms())),
            ("goodput_gbps", Json::num(self.goodput_gbps)),
            ("retransmissions", Json::num(self.retransmissions as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_hits_line_rate() {
        let r = two_host_transfer(10_000_000);
        assert!(r.goodput_gbps > 9.0, "goodput {:.2}", r.goodput_gbps);
        assert_eq!(r.retransmissions, 0);
    }
}
