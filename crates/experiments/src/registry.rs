//! The experiment registry: every figure/table of the paper is one
//! self-registering [`Experiment`] returning a machine-readable
//! [`Report`], and the single `ndp` CLI drives them all.
//!
//! Adding a scenario is one module exposing a unit struct that implements
//! [`Experiment`], plus one line in [`EXPERIMENTS`] — no new binary, no
//! harness edits. `ndp list` / `ndp run <id>` pick it up automatically.

use crate::harness::Scale;
use crate::json::Json;
use crate::topo::TopoEntry;

/// Run observability an experiment can expose alongside its data: engine
/// fuel burned and the live-state gauges of the flow-lifecycle machinery.
/// `None` fields render as JSON `null` — not every experiment tracks them.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Engine events dispatched, summed over every world the run built.
    pub events_processed: Option<u64>,
    /// Per-kind tally of posted events (forwards / timed messages / timer
    /// wakes), summed over every world the run built.
    pub event_kinds: Option<ndp_sim::EventKindCounts>,
    /// Highest arena population any world reached.
    pub peak_live_components: Option<u64>,
    /// Highest in-flight flow count any world reached.
    pub peak_live_flows: Option<u64>,
    /// Fabric-chaos events applied (link/switch down/up/degrade), summed
    /// over every world the run built. `None` when no chaos ran.
    pub link_events_applied: Option<u64>,
    /// Packets steered off dead ports onto live equivalents by the
    /// switches' reroute path.
    pub reroutes: Option<u64>,
    /// Measured flows that never completed within the drain window.
    pub stuck_flows: Option<u64>,
    /// Packets lost to down links (buffered packets flushed at the
    /// failure instant, the packet on the wire, and arrivals while down
    /// that could not be bounced), summed over every queue.
    pub dropped_down: Option<u64>,
}

/// What every experiment returns: human-readable (`Display` prints the
/// paper's rows/series, `headline` compresses the qualitative claim) and
/// machine-readable (`to_json`).
pub trait Report: std::fmt::Display {
    /// One-line summary of the quantitative claim under test.
    fn headline(&self) -> String;

    /// The figure's data as a JSON value (rendered by [`Json::render`]).
    fn to_json(&self) -> Json;

    /// Run observability for the CLI envelope (events processed, live
    /// gauges). Defaults to all-unknown.
    fn run_stats(&self) -> RunStats {
        RunStats::default()
    }
}

/// One runnable experiment (a paper figure, table or inline claim).
pub trait Experiment: Sync {
    /// Short stable identifier (`fig14`, `inline`, ...) used by
    /// `ndp run <id>`.
    fn id(&self) -> &'static str;

    /// Human-readable one-liner for `ndp list`.
    fn title(&self) -> &'static str;

    /// One-line description of what the experiment measures and its main
    /// knobs, printed by `ndp list`. Defaults to the title; experiments
    /// with non-obvious parameter grids override it.
    fn description(&self) -> &'static str {
        self.title()
    }

    /// Does this experiment accept a topology override? Topology-neutral
    /// experiments (the load sweeps, the permutation matrix, the
    /// transport × topology matrix) run on any registered fabric;
    /// fixed-shape figures (the testbed replicas, back-to-back
    /// calibrations) ignore overrides and return `false` here so the CLI
    /// can reject an explicit `--topo` instead of silently no-opping.
    fn supports_topo(&self) -> bool {
        false
    }

    /// Run at `scale`, optionally on an overridden topology from the
    /// [`crate::topo::TOPOLOGIES`] registry (`None` = the experiment's
    /// default fabric; ignored when [`Experiment::supports_topo`] is
    /// false).
    fn run(&self, scale: Scale, topo: Option<&'static TopoEntry>) -> Box<dyn Report>;
}

/// Every registered experiment, in presentation order. One line per
/// experiment; the impl lives in the figure's own module.
pub static EXPERIMENTS: &[&dyn Experiment] = &[
    &crate::fig02_cp_collapse::Fig02,
    &crate::fig04_latency_cdf::Fig04,
    &crate::fig08_rpc_latency::Fig08,
    &crate::fig09_testbed_incast::Fig09,
    &crate::fig10_prioritization::Fig10,
    &crate::fig10_prioritization::Fig10Sweep,
    &crate::fig11_iw_throughput::Fig11,
    &crate::fig12_pull_spacing::Fig12,
    &crate::fig13_pull_jitter_incast::Fig13,
    &crate::fig14_permutation::Fig14,
    &crate::fig15_short_flow_fct::Fig15,
    &crate::fig16_incast_scaling::Fig16,
    &crate::fig17_iw_buffer_sweep::Fig17,
    &crate::fig19_collateral::Fig19,
    &crate::fig20_large_incast::Fig20,
    &crate::fig21_sender_limited::Fig21,
    &crate::fig22_failure::Fig22,
    &crate::fig23_oversubscribed::Fig23,
    &crate::openloop::LoadWebsearch,
    &crate::openloop::LoadDatamining,
    &crate::openloop::OversubLoad,
    &crate::topo_matrix::TopoMatrix,
    &crate::failure_matrix::FailureMatrix,
    &crate::rpc::RpcSweep,
    &crate::rpc::RpcTenantMix,
    &crate::inline_results::Inline,
    &crate::quick::Quickstart,
];

/// All experiments in registration order.
pub fn all() -> &'static [&'static dyn Experiment] {
    EXPERIMENTS
}

/// Look an experiment up by id (exact match).
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    EXPERIMENTS.iter().copied().find(|e| e.id() == id)
}

/// Percentile summary of a CDF as `[{"p":0.5,"v":...},...]`; an empty CDF
/// becomes an empty array (not NaNs).
pub fn cdf_json(c: &ndp_metrics::Cdf, ps: &[f64]) -> Json {
    if c.is_empty() {
        return Json::Arr(Vec::new());
    }
    Json::arr(
        ps.iter()
            .map(|&p| Json::obj([("p", Json::num(p)), ("v", Json::num(c.percentile(p)))])),
    )
}

/// The percentile grid used by default for CDF-shaped figures.
pub const CDF_POINTS: &[f64] = &[0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];

/// The full machine-readable document for one run: id/title/scale/topo
/// envelope around the report's headline and data, plus the `run` block
/// with wall-clock and the report's [`RunStats`] (nulls where untracked).
/// `topo` is the resolved `--topo`/`NDP_TOPO` override (`null` when the
/// experiment ran on its own default fabric) — without it, archived
/// documents from different fabrics would be indistinguishable.
pub fn document(
    exp: &dyn Experiment,
    scale: Scale,
    topo: Option<&'static TopoEntry>,
    report: &dyn Report,
    wall_ms: f64,
) -> Json {
    document_with_telemetry(exp, scale, topo, report, wall_ms, None)
}

/// [`document`] with an optional `telemetry` block (the `--trace`
/// session summary). `None` renders as `"telemetry": null`, so the
/// envelope schema is stable whether or not a trace was captured.
pub fn document_with_telemetry(
    exp: &dyn Experiment,
    scale: Scale,
    topo: Option<&'static TopoEntry>,
    report: &dyn Report,
    wall_ms: f64,
    telemetry: Option<Json>,
) -> Json {
    let stats = report.run_stats();
    let opt = |v: Option<u64>| v.map_or(Json::Null, |x| Json::num(x as f64));
    // Wall-clock throughput, derivable only when the run tracked its event
    // count (and actually took time).
    let events_per_sec = match stats.events_processed {
        Some(ev) if wall_ms > 0.0 => Json::num(ev as f64 / (wall_ms / 1e3)),
        _ => Json::Null,
    };
    let event_kinds = stats.event_kinds.map_or(Json::Null, |k| {
        Json::obj([
            ("forward", Json::num(k.forward as f64)),
            ("timed_msg", Json::num(k.timed_msg as f64)),
            ("wake", Json::num(k.wake as f64)),
        ])
    });
    Json::obj([
        ("id", Json::str(exp.id())),
        ("title", Json::str(exp.title())),
        ("scale", Json::str(scale.name())),
        ("topo", topo.map_or(Json::Null, |t| Json::str(t.name))),
        ("headline", Json::str(report.headline())),
        (
            "run",
            Json::obj([
                ("wall_ms", Json::num(wall_ms)),
                ("events_processed", opt(stats.events_processed)),
                ("events_per_sec", events_per_sec),
                ("event_kinds", event_kinds),
                ("peak_live_components", opt(stats.peak_live_components)),
                ("peak_live_flows", opt(stats.peak_live_flows)),
                ("link_events_applied", opt(stats.link_events_applied)),
                ("reroutes", opt(stats.reroutes)),
                ("stuck_flows", opt(stats.stuck_flows)),
                ("dropped_down", opt(stats.dropped_down)),
            ]),
        ),
        ("telemetry", telemetry.unwrap_or(Json::Null)),
        ("data", report.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_seven_experiments_with_unique_ids() {
        assert_eq!(EXPERIMENTS.len(), 27);
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate experiment ids: {ids:?}");
        for e in EXPERIMENTS {
            assert!(!e.title().is_empty(), "{} has no title", e.id());
            assert!(!e.description().is_empty(), "{} has no description", e.id());
            assert_eq!(find(e.id()).map(|f| f.id()), Some(e.id()));
        }
    }

    #[test]
    fn openloop_experiments_are_registered_with_rich_descriptions() {
        for id in ["load_websearch", "load_datamining", "oversub_load"] {
            let e = find(id).unwrap_or_else(|| panic!("{id} not registered"));
            // The load sweeps describe their grid beyond the bare title.
            assert_ne!(e.description(), e.title(), "{id} needs a description");
            assert!(
                e.description().contains("NDP"),
                "{id} description should name the contending protocols"
            );
        }
    }

    #[test]
    fn topology_neutral_experiments_accept_topo_overrides() {
        for id in [
            "fig14",
            "load_websearch",
            "load_datamining",
            "oversub_load",
            "topo_matrix",
            "failure_matrix",
            "rpc_sweep",
            "rpc_tenant_mix",
        ] {
            let e = find(id).unwrap_or_else(|| panic!("{id} not registered"));
            assert!(e.supports_topo(), "{id} should accept --topo");
        }
        // Fixed-shape figures reject overrides so the CLI can error.
        for id in ["fig09", "fig11", "fig21"] {
            assert!(!find(id).unwrap().supports_topo(), "{id} is fixed-shape");
        }
    }

    #[test]
    fn quick_report_json_round_trips_through_parser() {
        // fig21 is the cheapest multi-flow figure: one 15 ms world.
        let exp = find("fig21").expect("fig21 registered");
        let report = exp.run(Scale::Quick, None);
        let doc = document(exp, Scale::Quick, None, report.as_ref(), 12.5);
        let text = doc.render();
        let back = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(back.get("id").and_then(Json::as_str), Some("fig21"));
        assert_eq!(back.get("scale").and_then(Json::as_str), Some("quick"));
        // No override ran: the envelope records the default fabric as null.
        assert_eq!(back.get("topo"), Some(&Json::Null));
        // The run envelope is always present; untracked gauges are null.
        let run = back.get("run").expect("run envelope");
        assert_eq!(run.get("wall_ms").and_then(Json::as_f64), Some(12.5));
        assert_eq!(run.get("events_processed"), Some(&Json::Null));
        // Derived throughput and the per-kind split are null exactly when
        // the report didn't track its event counts.
        assert_eq!(run.get("events_per_sec"), Some(&Json::Null));
        assert_eq!(run.get("event_kinds"), Some(&Json::Null));
        assert_eq!(
            back.get("headline").and_then(Json::as_str),
            Some(report.headline().as_str())
        );
        // The data payload survives untouched.
        assert_eq!(back.get("data"), Some(&report.to_json()));
        assert_eq!(back.render(), text);
    }
}
