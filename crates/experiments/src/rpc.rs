//! The RPC serving subsystem: fan-out/fan-in request trees graded by
//! end-to-end request latency, not per-flow FCT.
//!
//! # Driver
//!
//! [`RpcDriver`] is the request-tree counterpart of the open-loop
//! [`crate::openloop::Spawner`]: one self-wake chain walks the merged
//! request stream of an [`RpcWorkload`] inside simulated time. At each
//! request's arrival instant it attaches *all* shard legs through the
//! engine's deferred-op path (the response path is a natural N:1 incast
//! onto the client ToR); each leg's `FlowSpec.notify` points back at the
//! driver, so fan-in completion is tracked exactly — a request is done
//! when its *last* flow is done, optionally after a sequential upstream
//! response flow. Completions feed per-tenant request-latency digests
//! ([`ndp_metrics::TenantDigest`]): p50/p99/p999 with sample-size
//! confidence gates, SLO attainment against the tenant deadline, and
//! straggler attribution. Closed-loop tenants are self-clocked: each
//! completion asks the workload for the chain's next request.
//!
//! # Experiments
//!
//! * `rpc_sweep` — request latency vs. client load × fan-out degree on a
//!   leaf-spine fabric, NDP vs DCTCP vs pHost. The paper's §5 serving
//!   claim in request terms: fan-in trees are exactly where trimming
//!   beats drop-tail loss recovery, because one timed-out straggler leg
//!   blows the whole request deadline.
//! * `rpc_tenant_mix` — a web-search RPC tenant, a data-mining bulk
//!   tenant and a bursty background tenant sharing one fabric; per-tenant
//!   SLO attainment in the mix vs. each tenant alone quantifies
//!   cross-tenant interference per protocol.
//!
//! Both are `--topo`-neutral: tenant arrival rates are declared as
//! *loads* ([`ArrivalSpec`]) and resolved against the built topology's
//! host count and NIC speed, so the same experiment runs on any
//! registered fabric. With `--trace`, request spans (and the
//! `FlowSpan.request` back-links on their legs) surface the fan-out trees
//! in the NDJSON/Perfetto exports.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ndp_metrics::{Table, TenantDigest};
use ndp_net::packet::{FlowId, HostId, Packet};
use ndp_net::{CompletionSink, Host};
use ndp_sim::{Component, ComponentId, Ctx, Event, EventKindCounts, SchedulerKind, Time, World};
use ndp_topology::Topology;
use ndp_workloads::{
    ArrivalProcess, EmpiricalCdf, FlowLeg, RpcProfile, RpcRequest, RpcWorkload, TenantMix,
    TreeShape,
};

use crate::harness::{FlowSpec, Proto, Scale};
use crate::openloop::SWEEP_PROTOS;
use crate::sweep::SweepSpec;
use crate::topo::{registered, TopoEntry, TopoSpec};

/// The driver's self-wake token. Completion wakes carry the flow id, and
/// flow ids start at 1 and count up, so `u64::MAX` can never collide.
const SPAWN_TICK: u64 = u64::MAX;

/// Pluggable flow-attach hook: how the driver turns a due [`FlowSpec`]
/// into live endpoints. `None` uses the standard
/// [`crate::harness::attach_generic`] path; the Figure 8 port substitutes
/// its handshake-variant TCP attach here.
pub type AttachFn = Arc<dyn Fn(&mut World<Packet>, &FlowSpec) + Send + Sync>;

/// Which flow of a request tree a live flow is.
#[derive(Clone, Copy, Debug)]
enum LegRef {
    /// Parallel shard leg `i`.
    Leg(u32),
    /// The sequential follow-up flow.
    Response,
}

/// One in-flight flow's bookkeeping, keyed by flow id.
#[derive(Clone, Copy, Debug)]
struct FlowRef {
    req: u64,
    leg: LegRef,
    src: HostId,
    dst: HostId,
    bytes: u64,
    start: Time,
}

/// One in-flight request tree, dropped the instant its last flow is done.
#[derive(Clone, Debug)]
struct LiveRequest {
    tenant: u32,
    seq: u64,
    client: HostId,
    start: Time,
    measured: bool,
    /// Shard legs still in flight; the fan-in completes at zero.
    legs_left: usize,
    fanout: u32,
    max_leg_bytes: u64,
    /// Index and size of the last shard leg to finish (the straggler).
    last_leg: u32,
    last_leg_bytes: u64,
    /// Deferred sequential stage, taken when the fan-in completes.
    response: Option<FlowLeg>,
}

/// A finished request's sample, buffered until the runner's next
/// streaming drain.
#[derive(Clone, Copy, Debug)]
pub struct CompletedRequest {
    pub tenant: u32,
    pub seq: u64,
    pub start: Time,
    /// End-to-end: request arrival to last-flow completion.
    pub latency: Time,
    pub straggler_leg: u32,
    pub straggler_was_largest: bool,
    pub measured: bool,
}

/// Closed-loop follow-ups waiting for their think-time instant, ordered
/// like the workload's open-loop merge: `(time, tenant, seq)`.
struct QueuedRequest(RpcRequest);

impl PartialEq for QueuedRequest {
    fn eq(&self, other: &QueuedRequest) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QueuedRequest {}
impl PartialOrd for QueuedRequest {
    fn partial_cmp(&self, other: &QueuedRequest) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedRequest {
    fn cmp(&self, other: &QueuedRequest) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}
impl QueuedRequest {
    fn key(&self) -> (u64, u32, u64) {
        (self.0.start_ps, self.0.tenant, self.0.seq)
    }
}

/// What the fan-in bookkeeping decided a finished flow triggers.
enum AfterFlow {
    Nothing,
    Response(u64, FlowLeg),
    Complete(u64),
}

/// Still-live flows and requests handed back by [`RpcDriver::drain_live`]
/// when a runner's drain cap expires.
type DrainedLive = (Vec<(FlowId, FlowRef)>, Vec<(u64, LiveRequest)>);

/// Drives request trees through their whole lifecycle inside simulated
/// time — the [`crate::openloop::Spawner`] pattern lifted from flows to
/// requests. Live state is O(requests in flight), never O(requests ever
/// offered): legs attach lazily at the request's arrival instant and both
/// endpoints detach the moment each leg completes.
pub struct RpcDriver {
    proto: Proto,
    topo: Arc<dyn Topology>,
    workload: RpcWorkload,
    /// Next open-loop arrival, pulled from the stream but not yet due.
    pending_open: Option<RpcRequest>,
    /// Closed-loop follow-ups not yet due.
    pending_closed: BinaryHeap<Reverse<QueuedRequest>>,
    next_flow: FlowId,
    next_req: u64,
    warmup: Time,
    live: HashMap<u64, LiveRequest>,
    flows: HashMap<FlowId, FlowRef>,
    /// Completed-request samples since the runner's last drain.
    pub completed: Vec<CompletedRequest>,
    /// Requests spawned so far.
    pub started: u64,
    /// Requests that arrived inside the measurement window.
    pub measured_arrivals: usize,
    /// Per-tenant measured arrivals — each tenant digest's `offered`.
    pub measured_per_tenant: Vec<u64>,
    pub peak_live_requests: usize,
    pub peak_live_flows: usize,
    /// Attach override; `None` = the generic per-protocol path.
    attach: Option<AttachFn>,
    spans: Option<ndp_telemetry::SpanLog>,
    requests_log: Option<ndp_telemetry::RequestLog>,
    live_gauge: Option<Arc<AtomicU64>>,
}

impl RpcDriver {
    /// Install a driver over a request workload and arm its first wake.
    /// Seeds every closed-loop tenant's initial chains, then pulls the
    /// open-loop stream lazily.
    pub fn install_into(
        world: &mut World<Packet>,
        proto: Proto,
        topo: Arc<dyn Topology>,
        mut workload: RpcWorkload,
        warmup: Time,
    ) -> ComponentId {
        let mut pending_closed = BinaryHeap::new();
        for req in workload.initial_closed_loop() {
            pending_closed.push(Reverse(QueuedRequest(req)));
        }
        let pending_open = workload.next();
        let first_open = pending_open.as_ref().map(|r| r.start_ps);
        let first_closed = pending_closed.peek().map(|Reverse(q)| q.0.start_ps);
        let first = match (first_open, first_closed) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let id = world.add(RpcDriver {
            proto,
            topo,
            workload,
            pending_open,
            pending_closed,
            next_flow: 1,
            next_req: 0,
            warmup,
            live: HashMap::new(),
            flows: HashMap::new(),
            completed: Vec::new(),
            started: 0,
            measured_arrivals: 0,
            measured_per_tenant: Vec::new(),
            peak_live_requests: 0,
            peak_live_flows: 0,
            attach: None,
            spans: None,
            requests_log: None,
            live_gauge: None,
        });
        if let Some(at) = first {
            world.post_wake(Time::from_ps(at), id, SPAWN_TICK);
        }
        id
    }

    /// Flows currently in flight (across all live requests).
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Requests currently in flight.
    pub fn live_requests(&self) -> usize {
        self.live.len()
    }

    /// Replace the generic attach path (the Figure 8 handshake variants).
    pub fn set_attach(&mut self, attach: AttachFn) {
        self.attach = Some(attach);
    }

    /// Record a [`ndp_telemetry::FlowSpan`] (tagged with its request id)
    /// for every leg this driver detaches.
    pub fn set_span_log(&mut self, log: ndp_telemetry::SpanLog) {
        self.spans = Some(log);
    }

    /// Record a [`ndp_telemetry::RequestSpan`] for every completed
    /// request.
    pub fn set_request_log(&mut self, log: ndp_telemetry::RequestLog) {
        self.requests_log = Some(log);
    }

    /// Publish the live-flow count into `gauge` after every change, for
    /// the telemetry probe's world samples.
    pub fn set_live_gauge(&mut self, gauge: Arc<AtomicU64>) {
        gauge.store(self.flows.len() as u64, Ordering::Relaxed);
        self.live_gauge = Some(gauge);
    }

    fn publish_live(&self) {
        if let Some(g) = &self.live_gauge {
            g.store(self.flows.len() as u64, Ordering::Relaxed);
        }
    }

    /// The next due request across both streams, or the instant to sleep
    /// until. Ties are broken `(time, tenant, seq)` exactly like the
    /// workload's own merge.
    fn pop_due(&mut self, now: Time) -> Result<Option<RpcRequest>, Time> {
        let open_key = self
            .pending_open
            .as_ref()
            .map(|r| (r.start_ps, r.tenant, r.seq));
        let closed_key = self.pending_closed.peek().map(|Reverse(q)| q.key());
        let take_open = match (open_key, closed_key) {
            (None, None) => return Ok(None),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(o), Some(c)) => o < c,
        };
        let at = if take_open {
            open_key.unwrap().0
        } else {
            closed_key.unwrap().0
        };
        if Time::from_ps(at) > now {
            return Err(Time::from_ps(at));
        }
        Ok(Some(if take_open {
            let req = self.pending_open.take().unwrap();
            self.pending_open = self.workload.next();
            req
        } else {
            self.pending_closed.pop().unwrap().0 .0
        }))
    }

    /// Start one request: book the tree, attach every shard leg.
    fn spawn(&mut self, req: RpcRequest, ctx: &mut Ctx<'_, Packet>) {
        let rid = self.next_req;
        self.next_req += 1;
        let start = ctx.now();
        debug_assert_eq!(start.as_ps(), req.start_ps, "spawn wake drifted");
        let measured = start >= self.warmup;
        self.started += 1;
        if measured {
            self.measured_arrivals += 1;
            let t = req.tenant as usize;
            if self.measured_per_tenant.len() <= t {
                self.measured_per_tenant.resize(t + 1, 0);
            }
            self.measured_per_tenant[t] += 1;
        }
        self.live.insert(
            rid,
            LiveRequest {
                tenant: req.tenant,
                seq: req.seq,
                client: req.client,
                start,
                measured,
                legs_left: req.legs.len(),
                fanout: req.legs.len() as u32,
                max_leg_bytes: req.legs.iter().map(|l| l.bytes).max().unwrap_or(0),
                last_leg: 0,
                last_leg_bytes: 0,
                response: req.response,
            },
        );
        self.peak_live_requests = self.peak_live_requests.max(self.live.len());
        for (i, leg) in req.legs.iter().enumerate() {
            self.start_flow(rid, LegRef::Leg(i as u32), *leg, ctx);
        }
    }

    /// Attach one flow of a request through the deferred-op path.
    fn start_flow(&mut self, rid: u64, leg: LegRef, fl: FlowLeg, ctx: &mut Ctx<'_, Packet>) {
        let flow = self.next_flow;
        self.next_flow += 1;
        let start = ctx.now();
        self.flows.insert(
            flow,
            FlowRef {
                req: rid,
                leg,
                src: fl.src,
                dst: fl.dst,
                bytes: fl.bytes,
                start,
            },
        );
        self.peak_live_flows = self.peak_live_flows.max(self.flows.len());
        self.publish_live();
        let mut spec = FlowSpec::new(flow, fl.src, fl.dst, fl.bytes);
        spec.start = start;
        spec.notify = Some((ctx.self_id(), flow));
        // A request only completes when *every* leg does, so arm the
        // transport's stall-recovery net (NDP: the lost-PULL liveness
        // timer) — one stuck leg would otherwise wedge the whole request.
        spec.liveness = true;
        match &self.attach {
            Some(f) => {
                let f = Arc::clone(f);
                ctx.defer(move |w| f(w, &spec));
            }
            None => {
                let proto = self.proto;
                let src = (self.topo.host(fl.src), fl.src);
                let dst = (self.topo.host(fl.dst), fl.dst);
                let n_paths = self.topo.n_paths(fl.src, fl.dst);
                let mtu = self.topo.mtu();
                ctx.defer(move |w| {
                    crate::harness::attach_generic(w, proto, &spec, src, dst, n_paths, mtu);
                });
            }
        }
    }

    /// One of a request's flows completed: detach it, advance the fan-in.
    fn finish(&mut self, flow: FlowId, ctx: &mut Ctx<'_, Packet>) {
        let Some(fr) = self.flows.remove(&flow) else {
            return; // duplicate notify — already retired
        };
        self.publish_live();
        let measured = self.live.get(&fr.req).is_some_and(|r| r.measured);
        let proto = self.proto;
        let src = self.topo.host(fr.src);
        let dst = self.topo.host(fr.dst);
        let ideal = self.topo.ideal_fct(fr.src, fr.dst, fr.bytes);
        let slowdown = (ctx.now() - fr.start).as_ps() as f64 / ideal.as_ps() as f64;
        let spans = self.spans.clone();
        ctx.defer(move |w| {
            let harvest = proto.transport().detach(w, src, dst, flow);
            if let Some(log) = spans {
                let mut span =
                    ndp_telemetry::FlowSpan::open(flow, fr.src, fr.dst, fr.bytes, fr.start);
                span.request = Some(fr.req);
                span.measured = measured;
                span.slowdown = slowdown;
                span.absorb(&harvest);
                ndp_telemetry::span::push_span(&log, span);
            }
        });
        let after = {
            let Some(lr) = self.live.get_mut(&fr.req) else {
                return;
            };
            match fr.leg {
                LegRef::Leg(i) => {
                    lr.legs_left -= 1;
                    lr.last_leg = i;
                    lr.last_leg_bytes = fr.bytes;
                    if lr.legs_left > 0 {
                        AfterFlow::Nothing
                    } else {
                        // Fan-in complete: the sequential stage, if any.
                        match lr.response.take() {
                            Some(rsp) => AfterFlow::Response(fr.req, rsp),
                            None => AfterFlow::Complete(fr.req),
                        }
                    }
                }
                LegRef::Response => AfterFlow::Complete(fr.req),
            }
        };
        match after {
            AfterFlow::Nothing => {}
            AfterFlow::Response(rid, rsp) => self.start_flow(rid, LegRef::Response, rsp, ctx),
            AfterFlow::Complete(rid) => self.complete(rid, ctx),
        }
    }

    /// A request's last flow is done: book its end-to-end latency and, for
    /// closed-loop tenants, queue the chain's next request.
    fn complete(&mut self, rid: u64, ctx: &mut Ctx<'_, Packet>) {
        let Some(lr) = self.live.remove(&rid) else {
            return;
        };
        let now = ctx.now();
        let latency = now - lr.start;
        self.completed.push(CompletedRequest {
            tenant: lr.tenant,
            seq: lr.seq,
            start: lr.start,
            latency,
            straggler_leg: lr.last_leg,
            straggler_was_largest: lr.last_leg_bytes == lr.max_leg_bytes,
            measured: lr.measured,
        });
        if let Some(log) = &self.requests_log {
            ndp_telemetry::span::push_request(
                log,
                ndp_telemetry::RequestSpan {
                    request: rid,
                    tenant: lr.tenant,
                    seq: lr.seq,
                    client: lr.client,
                    fanout: lr.fanout,
                    arrival: lr.start,
                    completion: Some(now),
                    straggler_leg: lr.last_leg,
                    measured: lr.measured,
                    slo_met: latency.as_ps() <= self.workload.slo_ps(lr.tenant),
                },
            );
        }
        if let Some(next) = self.workload.on_complete(lr.tenant, now.as_ps()) {
            let at = Time::from_ps(next.start_ps);
            self.pending_closed.push(Reverse(QueuedRequest(next)));
            ctx.wake_at(at, SPAWN_TICK);
        }
    }

    /// Take every still-live flow and request — the stragglers a runner
    /// detaches when its drain cap expires.
    fn drain_live(&mut self) -> DrainedLive {
        let flows = self.flows.drain().collect();
        let reqs = self.live.drain().collect();
        self.publish_live();
        (flows, reqs)
    }
}

impl Component<Packet> for RpcDriver {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        match ev {
            Event::Wake(SPAWN_TICK) => loop {
                match self.pop_due(ctx.now()) {
                    Ok(Some(req)) => self.spawn(req, ctx),
                    Ok(None) => break,
                    Err(at) => {
                        ctx.wake_at(at, SPAWN_TICK);
                        break;
                    }
                }
            },
            Event::Wake(flow) => self.finish(flow, ctx),
            Event::Msg(_) => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// How a tenant's request arrivals are declared — loads, not rates, so a
/// point is `--topo`-neutral. Resolved against the built fabric's NIC
/// speed and host count by [`resolve_mix`].
#[derive(Clone, Debug)]
pub enum ArrivalSpec {
    /// Poisson at the rate that offers this fraction of the average
    /// client NIC on the fan-in path
    /// (see [`RpcProfile::rate_for_client_load`]).
    Load(f64),
    /// Diurnal-burst arrivals swinging between two such loads: `base`
    /// for `1 - burst_frac` of each period, `peak` for the rest.
    DiurnalLoad {
        base: f64,
        peak: f64,
        period: Time,
        burst_frac: f64,
    },
    /// Closed-loop think time: the tenant keeps `width` request chains
    /// outstanding, each following its previous completion by a
    /// log-uniform gap around the median.
    Closed { median_gap: Time, width: usize },
}

/// One tenant of an RPC experiment, declaratively.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    pub name: &'static str,
    pub shape: TreeShape,
    pub fanout: usize,
    pub leg_sizes: EmpiricalCdf,
    pub response_sizes: Option<EmpiricalCdf>,
    pub arrivals: ArrivalSpec,
    /// End-to-end deadline the tenant's SLO attainment is graded against.
    pub slo: Time,
}

/// Resolve declarative tenant specs into an [`TenantMix`] for the built
/// topology: loads become Poisson rates on this fabric's NIC speed and
/// host count.
pub fn resolve_mix(tenants: &[TenantSpec], topo: &dyn Topology) -> TenantMix {
    let link_bps = topo.host_link_speed().as_bps();
    let n = topo.n_hosts();
    let profiles = tenants
        .iter()
        .map(|t| {
            let mut p = RpcProfile {
                name: t.name,
                shape: t.shape,
                fanout: t.fanout,
                leg_sizes: t.leg_sizes.clone(),
                response_sizes: t.response_sizes.clone(),
                arrivals: ArrivalProcess::ClosedLoop { median_gap_ps: 1 },
                closed_loop_width: 1,
                slo_ps: t.slo.as_ps(),
                clients: None,
            };
            let (arrivals, width) = match t.arrivals {
                ArrivalSpec::Load(load) => (
                    ArrivalProcess::Poisson {
                        rate_hz: p.rate_for_client_load(load, link_bps, n),
                    },
                    1,
                ),
                ArrivalSpec::DiurnalLoad {
                    base,
                    peak,
                    period,
                    burst_frac,
                } => (
                    ArrivalProcess::diurnal_burst(
                        p.rate_for_client_load(base, link_bps, n),
                        p.rate_for_client_load(peak, link_bps, n),
                        period.as_ps(),
                        burst_frac,
                    ),
                    1,
                ),
                ArrivalSpec::Closed { median_gap, width } => (
                    ArrivalProcess::ClosedLoop {
                        median_gap_ps: median_gap.as_ps(),
                    },
                    width,
                ),
            };
            p.arrivals = arrivals;
            p.closed_loop_width = width;
            p
        })
        .collect();
    TenantMix::new(profiles)
}

/// One RPC simulation point.
#[derive(Clone)]
pub struct RpcPoint {
    pub proto: Proto,
    pub topo: TopoSpec,
    pub tenants: Vec<TenantSpec>,
    pub seed: u64,
    pub warmup: Time,
    pub measure: Time,
    pub drain: Time,
    /// Scheduler override for determinism A/B tests; `None` = default.
    pub sched: Option<SchedulerKind>,
    /// Telemetry point key suffix (distinguishes grid cells).
    pub key: String,
}

/// Per-tenant results of one point, fully summarised (percentiles
/// resolved through the sample-size confidence gate — `None` means the
/// sample cannot support the estimate and reports print `null`).
#[derive(Clone, Debug)]
pub struct TenantSummary {
    pub name: &'static str,
    pub slo_us: f64,
    /// Requests that arrived inside the measurement window.
    pub offered: u64,
    pub completed: u64,
    pub incomplete: u64,
    pub mean_us: Option<f64>,
    pub p50_us: Option<f64>,
    pub p99_us: Option<f64>,
    pub p999_us: Option<f64>,
    pub slo_attainment: Option<f64>,
    pub straggler_largest_frac: Option<f64>,
    /// Bit-exact digest fingerprint — the determinism witness.
    pub fingerprint: u64,
}

impl TenantSummary {
    fn from_digest(d: &mut TenantDigest) -> TenantSummary {
        TenantSummary {
            name: d.name,
            slo_us: d.slo_us,
            offered: d.offered,
            completed: d.n() as u64,
            incomplete: d.incomplete,
            mean_us: d.mean_us(),
            p50_us: d.latency_us(0.50),
            p99_us: d.latency_us(0.99),
            p999_us: d.latency_us(0.999),
            slo_attainment: d.slo_attainment(),
            straggler_largest_frac: d.straggler_largest_frac(),
            fingerprint: d.fingerprint(),
        }
    }
}

/// One finished RPC point.
pub struct RpcPointResult {
    pub proto: Proto,
    pub tenants: Vec<TenantSummary>,
    /// All requests spawned (warmup + measured).
    pub offered: usize,
    pub measured: usize,
    pub events_processed: u64,
    pub event_kinds: EventKindCounts,
    pub peak_live_flows: usize,
    pub peak_live_requests: usize,
    pub live_components_baseline: usize,
    pub live_components_end: usize,
    pub peak_live_components: usize,
}

/// Run one RPC point in its own seeded world — the request-tree
/// counterpart of [`crate::openloop::openloop_world_run`].
pub fn rpc_world_run(point: &RpcPoint) -> RpcPointResult {
    let mut world: World<Packet> = match point.sched {
        Some(kind) => World::with_scheduler(point.seed, kind),
        None => World::new(point.seed),
    };
    let topo: Arc<dyn Topology> = Arc::from(point.topo.build(&mut world, point.proto.fabric()));
    let n = topo.n_hosts();
    let sink = world.add(CompletionSink::totals_only());
    for h in 0..n {
        world
            .get_mut::<Host>(topo.host(h as HostId))
            .set_completion_sink(sink);
    }
    let live_components_baseline = world.live_components();

    let arrivals_end = point.warmup + point.measure;
    let mix = resolve_mix(&point.tenants, topo.as_ref());
    // The request stream is a function of (seed, tenants) only — every
    // protocol and scheduler at the same point sees the identical request
    // trees, so comparisons are paired.
    let workload = RpcWorkload::new(n, mix, point.seed ^ 0x52BC, arrivals_end.as_ps());
    let names = workload.tenant_names();
    let slos: Vec<u64> = (0..names.len() as u32)
        .map(|t| workload.slo_ps(t))
        .collect();
    let drv = RpcDriver::install_into(
        &mut world,
        point.proto,
        topo.clone(),
        workload,
        point.warmup,
    );

    // Telemetry wiring (opt-in, gated on an active session): request and
    // leg spans from the driver plus a world-gauge probe over the live
    // flow count. With no session none of this exists — the event stream
    // and golden hashes are untouched.
    let tele_cfg = ndp_telemetry::session::active();
    let mut tele_ring = None;
    let mut tele_spans: Option<ndp_telemetry::SpanLog> = None;
    let mut tele_requests: Option<ndp_telemetry::RequestLog> = None;
    let mut probe_id = None;
    if let Some(cfg) = tele_cfg {
        let live_gauge = Arc::new(AtomicU64::new(0));
        if cfg.spans {
            let spans = ndp_telemetry::span::span_log();
            let requests = ndp_telemetry::span::request_log();
            let d = world.get_mut::<RpcDriver>(drv);
            d.set_span_log(spans.clone());
            d.set_request_log(requests.clone());
            tele_spans = Some(spans);
            tele_requests = Some(requests);
        }
        world
            .get_mut::<RpcDriver>(drv)
            .set_live_gauge(Arc::clone(&live_gauge));
        let (pid, ring) = ndp_telemetry::Probe::install_into(
            &mut world,
            ndp_telemetry::ProbeSpec {
                tick: cfg.probe_tick,
                until: arrivals_end,
                capacity: cfg.gauge_capacity,
                queues: Vec::new(),
                switches: Vec::new(),
                live_flows: Some(live_gauge),
            },
        );
        probe_id = Some(pid);
        tele_ring = Some(ring);
    }

    let mut digests: Vec<TenantDigest> = names
        .iter()
        .zip(&slos)
        .map(|(&name, &slo)| TenantDigest::new(name, slo as f64 / 1e6))
        .collect();

    // Chunked stepping, streaming each chunk's completed requests into
    // the digests; the drain cap bounds the tail but the run ends as soon
    // as the last in-flight flow lands.
    let cap = arrivals_end + point.drain;
    let chunk = Time::from_ps((point.measure.as_ps() / 8).max(Time::from_ms(1).as_ps()));
    let mut done = false;
    let mut target = Time::ZERO;
    while !done {
        target = (target.max(world.now()) + chunk).min(cap);
        done = target == cap;
        world.run_until(target);
        let batch = std::mem::take(&mut world.get_mut::<RpcDriver>(drv).completed);
        for c in &batch {
            if c.measured {
                digests[c.tenant as usize].record(
                    c.latency.as_ps() as f64 / 1e6,
                    c.straggler_leg as usize,
                    c.straggler_was_largest,
                );
            }
        }
        if world.now() >= arrivals_end && world.get::<RpcDriver>(drv).live_flows() == 0 {
            done = true;
        }
        world.shrink_idle();
    }

    // Requests still live at the cap are the incomplete ones (graded as
    // SLO misses); detach their flows so the world drains to baseline.
    let (straggler_flows, straggler_reqs, offered, measured, peak_live_flows, peak_live_requests) = {
        let d = world.get_mut::<RpcDriver>(drv);
        for (t, digest) in digests.iter_mut().enumerate() {
            digest.offered = d.measured_per_tenant.get(t).copied().unwrap_or(0);
        }
        let (fl, rq) = d.drain_live();
        (
            fl,
            rq,
            d.started as usize,
            d.measured_arrivals,
            d.peak_live_flows,
            d.peak_live_requests,
        )
    };
    for (flow, fr) in straggler_flows {
        point
            .proto
            .transport()
            .detach(&mut world, topo.host(fr.src), topo.host(fr.dst), flow);
    }
    for (rid, lr) in &straggler_reqs {
        if lr.measured {
            digests[lr.tenant as usize].incomplete += 1;
        }
        if let Some(log) = &tele_requests {
            ndp_telemetry::span::push_request(
                log,
                ndp_telemetry::RequestSpan {
                    request: *rid,
                    tenant: lr.tenant,
                    seq: lr.seq,
                    client: lr.client,
                    fanout: lr.fanout,
                    arrival: lr.start,
                    completion: None,
                    straggler_leg: 0,
                    measured: lr.measured,
                    slo_met: false,
                },
            );
        }
    }
    world.retire(drv);
    if let Some(pid) = probe_id {
        world.retire(pid);
    }

    if tele_cfg.is_some() {
        let (gauges, gauges_evicted) = tele_ring.map_or((Vec::new(), 0), |r| {
            let mut g = match r.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            (g.take(), g.evicted)
        });
        ndp_telemetry::session::submit(ndp_telemetry::PointTelemetry {
            key: format!(
                "{}/{}/{}",
                point.topo.name(),
                point.proto.label(),
                point.key
            ),
            tags: Vec::new(),
            gauges,
            gauges_evicted,
            spans: tele_spans.map_or(Vec::new(), |s| ndp_telemetry::span::take_spans(&s)),
            requests: tele_requests.map_or(Vec::new(), |r| ndp_telemetry::span::take_requests(&r)),
            hops: Vec::new(),
            hops_evicted: 0,
        });
    }

    RpcPointResult {
        proto: point.proto,
        tenants: digests.iter_mut().map(TenantSummary::from_digest).collect(),
        offered,
        measured,
        events_processed: world.events_processed(),
        event_kinds: world.event_kind_counts(),
        peak_live_flows,
        peak_live_requests,
        live_components_baseline,
        live_components_end: world.live_components(),
        peak_live_components: world.peak_live_components(),
    }
}

/// Run an RPC sweep; element `i` of the result matches point `i`.
pub fn sweep_rpc(spec: &SweepSpec<RpcPoint>) -> Vec<RpcPointResult> {
    spec.run(rpc_world_run)
}

// ---------------------------------------------------------------------------
// Shared experiment plumbing
// ---------------------------------------------------------------------------

/// The shard-answer size distribution RPC tenants draw legs from: mice
/// with a modest tail (mean ≈ 9 KB), so quick-scale windows still resolve
/// p999 with thousands of requests.
pub fn rpc_leg_sizes() -> EmpiricalCdf {
    EmpiricalCdf::new(
        "rpc-shard",
        vec![
            (0.0, 1_000.0),
            (0.5, 4_000.0),
            (0.9, 16_000.0),
            (1.0, 64_000.0),
        ],
    )
}

fn fmt_us(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.0}"),
        None => "-".into(),
    }
}

fn fmt_frac(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "-".into(),
    }
}

fn opt_num(v: Option<f64>) -> crate::json::Json {
    crate::json::Json::num(v.unwrap_or(f64::NAN))
}

fn tenant_json(t: &TenantSummary) -> crate::json::Json {
    use crate::json::Json;
    Json::obj([
        ("tenant", Json::str(t.name)),
        ("slo_us", Json::num(t.slo_us)),
        ("offered", Json::num(t.offered as f64)),
        ("completed", Json::num(t.completed as f64)),
        ("incomplete", Json::num(t.incomplete as f64)),
        ("mean_us", opt_num(t.mean_us)),
        ("p50_us", opt_num(t.p50_us)),
        ("p99_us", opt_num(t.p99_us)),
        ("p999_us", opt_num(t.p999_us)),
        ("slo_attainment", opt_num(t.slo_attainment)),
        ("straggler_largest_frac", opt_num(t.straggler_largest_frac)),
    ])
}

fn sum_stats(rows: &[&RpcPointResult]) -> crate::registry::RunStats {
    crate::registry::RunStats {
        events_processed: Some(rows.iter().map(|r| r.events_processed).sum()),
        event_kinds: Some(rows.iter().map(|r| r.event_kinds).sum()),
        peak_live_components: rows.iter().map(|r| r.peak_live_components as u64).max(),
        peak_live_flows: rows.iter().map(|r| r.peak_live_flows as u64).max(),
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// rpc_sweep: load × fan-out × protocol
// ---------------------------------------------------------------------------

struct SweepCell {
    load: f64,
    fanout: usize,
    result: RpcPointResult,
}

/// `rpc_sweep` report: request latency and SLO attainment per
/// (protocol, client load, fan-out degree).
pub struct RpcSweepReport {
    topo_override: Option<&'static str>,
    topo_name: &'static str,
    loads: Vec<f64>,
    fanouts: Vec<usize>,
    rows: Vec<SweepCell>,
}

fn sweep_tenant(load: f64, fanout: usize) -> TenantSpec {
    TenantSpec {
        name: "rpc",
        shape: TreeShape::FanIn,
        fanout,
        leg_sizes: rpc_leg_sizes(),
        response_sizes: None,
        arrivals: ArrivalSpec::Load(load),
        // Fan-in serialization grows with degree; grade each cell against
        // a deadline proportional to its own ideal fan-in time.
        slo: Time::from_us(100 + 25 * fanout as u64),
    }
}

impl RpcSweepReport {
    fn run(scale: Scale, seed: u64, topo: Option<&'static TopoEntry>) -> RpcSweepReport {
        let (loads, fanouts): (Vec<f64>, Vec<usize>) = match scale {
            Scale::Paper => (vec![0.2, 0.4, 0.6], vec![4, 16, 32]),
            Scale::Quick => (vec![0.2, 0.5], vec![4, 8]),
        };
        let (warmup, measure, drain) = match scale {
            Scale::Paper => (Time::from_ms(2), Time::from_ms(40), Time::from_ms(40)),
            Scale::Quick => (Time::from_ms(1), Time::from_ms(10), Time::from_ms(20)),
        };
        let entry = topo.unwrap_or(registered("leafspine"));
        let spec = entry.spec(scale);
        let mut points = Vec::new();
        for (li, &load) in loads.iter().enumerate() {
            for &fanout in &fanouts {
                for &proto in SWEEP_PROTOS {
                    points.push(RpcPoint {
                        proto,
                        topo: spec.clone(),
                        tenants: vec![sweep_tenant(load, fanout)],
                        // One seed per (load, fanout): protocols replay
                        // identical request trees.
                        seed: seed + li as u64 * 37 + fanout as u64,
                        warmup,
                        measure,
                        drain,
                        sched: None,
                        key: format!("load{:02}x{}", (load * 100.0) as u32, fanout),
                    });
                }
            }
        }
        let spec_pts = SweepSpec::new("rpc_sweep", points);
        let results = sweep_rpc(&spec_pts);
        let rows = spec_pts
            .points
            .iter()
            .zip(results)
            .map(|(p, result)| SweepCell {
                load: match p.tenants[0].arrivals {
                    ArrivalSpec::Load(l) => l,
                    _ => unreachable!("sweep tenants are load-driven"),
                },
                fanout: p.tenants[0].fanout,
                result,
            })
            .collect();
        RpcSweepReport {
            topo_override: topo.map(|e| e.name),
            topo_name: entry.name,
            loads,
            fanouts,
            rows,
        }
    }

    fn cell(&self, proto: Proto, load: f64, fanout: usize) -> Option<&TenantSummary> {
        self.rows
            .iter()
            .find(|c| c.result.proto == proto && c.load == load && c.fanout == fanout)
            .map(|c| &c.result.tenants[0])
    }
}

impl std::fmt::Display for RpcSweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "protocol",
            "load",
            "fanout",
            "requests",
            "incompl",
            "p50us",
            "p99us",
            "p999us",
            "SLO",
            "strag=big",
        ]);
        for c in &self.rows {
            let s = &c.result.tenants[0];
            t.row(vec![
                c.result.proto.label().to_string(),
                format!("{:.0}%", c.load * 100.0),
                c.fanout.to_string(),
                s.completed.to_string(),
                s.incomplete.to_string(),
                fmt_us(s.p50_us),
                fmt_us(s.p99_us),
                fmt_us(s.p999_us),
                fmt_frac(s.slo_attainment),
                fmt_frac(s.straggler_largest_frac),
            ]);
        }
        write!(
            f,
            "RPC serving sweep on {} — end-to-end request latency vs. client load and fan-out\n{}",
            self.topo_name,
            t.render()
        )
    }
}

impl crate::registry::Report for RpcSweepReport {
    fn headline(&self) -> String {
        let &load = self.loads.last().expect("loads");
        let &fanout = self.fanouts.last().expect("fanouts");
        let per_proto: Vec<String> = SWEEP_PROTOS
            .iter()
            .map(|&p| {
                let s = self.cell(p, load, fanout);
                format!(
                    "{} {}",
                    p.label(),
                    fmt_us(s.and_then(|s| s.p99_us.or(s.mean_us)))
                )
            })
            .collect();
        format!(
            "rpc fan-out {fanout} @{:.0}% client load: p99 request latency (us) {}",
            load * 100.0,
            per_proto.join(", ")
        )
    }

    fn run_stats(&self) -> crate::registry::RunStats {
        sum_stats(&self.rows.iter().map(|c| &c.result).collect::<Vec<_>>())
    }

    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("topo", Json::str(self.topo_name)),
            (
                "topo_override",
                self.topo_override.map_or(Json::Null, Json::str),
            ),
            ("loads", Json::arr(self.loads.iter().map(|&l| Json::num(l)))),
            (
                "fanouts",
                Json::arr(self.fanouts.iter().map(|&f| Json::num(f as f64))),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|c| {
                    let s = &c.result.tenants[0];
                    Json::obj([
                        ("proto", Json::str(c.result.proto.label())),
                        ("load", Json::num(c.load)),
                        ("fanout", Json::num(c.fanout as f64)),
                        ("summary", tenant_json(s)),
                    ])
                })),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// rpc_tenant_mix: three tenants sharing one fabric, vs each alone
// ---------------------------------------------------------------------------

fn mix_tenants() -> Vec<TenantSpec> {
    vec![
        // Latency-critical serving tier: wide fan-in of shard answers.
        TenantSpec {
            name: "websearch_rpc",
            shape: TreeShape::FanIn,
            fanout: 8,
            leg_sizes: rpc_leg_sizes(),
            response_sizes: Some(EmpiricalCdf::fixed("rpc-upstream", 1460)),
            arrivals: ArrivalSpec::Load(0.35),
            slo: Time::from_us(500),
        },
        // Bulk analytics: few requests, elephant flows, loose deadline.
        TenantSpec {
            name: "datamining_bulk",
            shape: TreeShape::FanIn,
            fanout: 1,
            leg_sizes: EmpiricalCdf::datamining(),
            response_sizes: None,
            arrivals: ArrivalSpec::Load(0.08),
            slo: Time::from_ms(50),
        },
        // Bursty background traffic swinging between quiet and blast.
        TenantSpec {
            name: "background_blast",
            shape: TreeShape::FanIn,
            fanout: 4,
            leg_sizes: EmpiricalCdf::fixed("blast", 8_192),
            response_sizes: None,
            arrivals: ArrivalSpec::DiurnalLoad {
                base: 0.1,
                peak: 0.5,
                period: Time::from_ms(2),
                burst_frac: 0.3,
            },
            slo: Time::from_us(300),
        },
    ]
}

struct MixRow {
    proto: Proto,
    mix: RpcPointResult,
    /// `solo[t]` ran tenant `t` alone on the same fabric and seed.
    solo: Vec<RpcPointResult>,
}

/// `rpc_tenant_mix` report: per-tenant SLO attainment in the shared mix
/// vs. alone, per protocol.
pub struct RpcTenantMixReport {
    topo_override: Option<&'static str>,
    topo_name: &'static str,
    tenants: Vec<&'static str>,
    rows: Vec<MixRow>,
}

impl RpcTenantMixReport {
    fn run(scale: Scale, seed: u64, topo: Option<&'static TopoEntry>) -> RpcTenantMixReport {
        let (warmup, measure, drain) = match scale {
            Scale::Paper => (Time::from_ms(2), Time::from_ms(40), Time::from_ms(60)),
            Scale::Quick => (Time::from_ms(1), Time::from_ms(16), Time::from_ms(30)),
        };
        let entry = topo.unwrap_or(registered("fattree"));
        let spec = entry.spec(scale);
        let tenants = mix_tenants();
        let names: Vec<&'static str> = tenants.iter().map(|t| t.name).collect();
        let mut points = Vec::new();
        for &proto in SWEEP_PROTOS {
            points.push(RpcPoint {
                proto,
                topo: spec.clone(),
                tenants: tenants.clone(),
                seed,
                warmup,
                measure,
                drain,
                sched: None,
                key: "mix".into(),
            });
            for (t, tenant) in tenants.iter().enumerate() {
                points.push(RpcPoint {
                    proto,
                    topo: spec.clone(),
                    tenants: vec![tenant.clone()],
                    // Same seed as the mix run: the solo baseline is the
                    // identical fabric and seed minus the other tenants
                    // (the per-tenant streams are SplitMix-independent,
                    // but the solo world re-subseeds from tenant 0, so
                    // the comparison is distributional, not paired).
                    seed: seed + 1 + t as u64,
                    warmup,
                    measure,
                    drain,
                    sched: None,
                    key: format!("solo-{}", tenant.name),
                });
            }
        }
        let spec_pts = SweepSpec::new("rpc_tenant_mix", points);
        let mut results = sweep_rpc(&spec_pts).into_iter();
        let mut rows = Vec::new();
        for &proto in SWEEP_PROTOS {
            let mix = results.next().expect("mix row");
            let solo: Vec<RpcPointResult> = (0..tenants.len())
                .map(|_| results.next().expect("solo row"))
                .collect();
            debug_assert_eq!(mix.proto, proto);
            rows.push(MixRow { proto, mix, solo });
        }
        RpcTenantMixReport {
            topo_override: topo.map(|e| e.name),
            topo_name: entry.name,
            tenants: names,
            rows,
        }
    }
}

/// p99-latency interference ratio: shared-fabric p99 over alone p99
/// (falls back to means when a tail is unresolvable). > 1 means the mix
/// hurt the tenant.
fn interference(mix: &TenantSummary, solo: &TenantSummary) -> Option<f64> {
    let m = mix.p99_us.or(mix.mean_us)?;
    let s = solo.p99_us.or(solo.mean_us)?;
    (s > 0.0).then_some(m / s)
}

impl std::fmt::Display for RpcTenantMixReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "protocol",
            "tenant",
            "requests",
            "p50us",
            "p99us",
            "p999us",
            "SLO mix",
            "SLO alone",
            "interf",
        ]);
        for row in &self.rows {
            for (i, s) in row.mix.tenants.iter().enumerate() {
                let solo = &row.solo[i].tenants[0];
                t.row(vec![
                    row.proto.label().to_string(),
                    s.name.to_string(),
                    s.completed.to_string(),
                    fmt_us(s.p50_us),
                    fmt_us(s.p99_us),
                    fmt_us(s.p999_us),
                    fmt_frac(s.slo_attainment),
                    fmt_frac(solo.slo_attainment),
                    match interference(s, solo) {
                        Some(r) => format!("{r:.2}x"),
                        None => "-".into(),
                    },
                ]);
            }
        }
        write!(
            f,
            "RPC tenant mix on {} — SLO attainment shared vs. alone\n{}",
            self.topo_name,
            t.render()
        )
    }
}

impl crate::registry::Report for RpcTenantMixReport {
    fn headline(&self) -> String {
        // The serving tenant's SLO attainment under the shared fabric is
        // the claim: NDP holds the deadline where the baselines shed it.
        let per_proto: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{} {}",
                    r.proto.label(),
                    fmt_frac(r.mix.tenants[0].slo_attainment)
                )
            })
            .collect();
        format!(
            "{} SLO attainment in shared mix: {}",
            self.tenants[0],
            per_proto.join(", ")
        )
    }

    fn run_stats(&self) -> crate::registry::RunStats {
        let mut all: Vec<&RpcPointResult> = Vec::new();
        for r in &self.rows {
            all.push(&r.mix);
            all.extend(r.solo.iter());
        }
        sum_stats(&all)
    }

    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("topo", Json::str(self.topo_name)),
            (
                "topo_override",
                self.topo_override.map_or(Json::Null, Json::str),
            ),
            (
                "tenants",
                Json::arr(self.tenants.iter().map(|&t| Json::str(t))),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("proto", Json::str(r.proto.label())),
                        ("mix", Json::arr(r.mix.tenants.iter().map(tenant_json))),
                        (
                            "solo",
                            Json::arr(r.solo.iter().map(|s| tenant_json(&s.tenants[0]))),
                        ),
                        (
                            "interference_p99",
                            Json::arr(
                                r.mix
                                    .tenants
                                    .iter()
                                    .zip(&r.solo)
                                    .map(|(m, s)| opt_num(interference(m, &s.tenants[0]))),
                            ),
                        ),
                    ])
                })),
            ),
        ])
    }
}

/// Registry entries.
pub struct RpcSweep;
pub struct RpcTenantMix;

impl crate::registry::Experiment for RpcSweep {
    fn id(&self) -> &'static str {
        "rpc_sweep"
    }
    fn title(&self) -> &'static str {
        "End-to-end RPC request latency vs. client load and fan-out"
    }
    fn description(&self) -> &'static str {
        "Fan-out/fan-in request trees (N shard answers converging on the \
         client NIC) swept over offered client load and fan-out degree; \
         NDP vs DCTCP vs pHost request p50/p99/p999 and SLO attainment"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(RpcSweepReport::run(scale, 0xE400, topo))
    }
}

impl crate::registry::Experiment for RpcTenantMix {
    fn id(&self) -> &'static str {
        "rpc_tenant_mix"
    }
    fn title(&self) -> &'static str {
        "Multi-tenant RPC mix: per-tenant SLO attainment shared vs. alone"
    }
    fn description(&self) -> &'static str {
        "A web-search RPC tier, a data-mining bulk tenant and a bursty \
         background tenant sharing one fabric; per-tenant request-latency \
         SLO attainment and cross-tenant interference per protocol"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(RpcTenantMixReport::run(scale, 0xF500, topo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_point(proto: Proto, seed: u64) -> RpcPoint {
        RpcPoint {
            proto,
            topo: registered("leafspine").spec(Scale::Quick),
            tenants: vec![sweep_tenant(0.3, 4)],
            seed,
            warmup: Time::from_ms(1),
            measure: Time::from_ms(6),
            drain: Time::from_ms(15),
            sched: None,
            key: "test".into(),
        }
    }

    #[test]
    fn rpc_point_books_request_latencies_and_drains() {
        let r = rpc_world_run(&quick_point(Proto::Ndp, 7));
        let s = &r.tenants[0];
        assert!(s.completed > 100, "only {} completed requests", s.completed);
        assert_eq!(s.offered, s.completed + s.incomplete);
        assert!(s.mean_us.unwrap() > 0.0);
        // A 4-leg fan-in moves >= 4 KB; even unloaded it cannot finish in
        // under a microsecond, and the p50 should sit near the ideal
        // fan-in time (tens of microseconds), far under a millisecond.
        assert!(s.p50_us.unwrap() > 1.0, "p50 {:?}", s.p50_us);
        assert!(s.p50_us.unwrap() < 1_000.0, "p50 {:?}", s.p50_us);
        assert!(r.peak_live_requests >= 1);
        assert!(r.peak_live_flows >= 4, "legs attach in parallel");
        assert_eq!(
            r.live_components_end, r.live_components_baseline,
            "arena must drain to baseline"
        );
    }

    #[test]
    fn request_latency_is_the_fan_in_max_not_the_leg_mean() {
        // Attach a span log directly (no session) and check the fan-in
        // invariant: request latency == max leg completion - arrival.
        let point = quick_point(Proto::Ndp, 11);
        let mut world: World<Packet> = World::new(point.seed);
        let topo: Arc<dyn Topology> = Arc::from(point.topo.build(&mut world, point.proto.fabric()));
        let n = topo.n_hosts();
        let sink = world.add(CompletionSink::totals_only());
        for h in 0..n {
            world
                .get_mut::<Host>(topo.host(h as HostId))
                .set_completion_sink(sink);
        }
        let arrivals_end = point.warmup + point.measure;
        let mix = resolve_mix(&point.tenants, topo.as_ref());
        let workload = RpcWorkload::new(n, mix, point.seed ^ 0x52BC, arrivals_end.as_ps());
        let drv = RpcDriver::install_into(
            &mut world,
            point.proto,
            topo.clone(),
            workload,
            point.warmup,
        );
        let spans = ndp_telemetry::span::span_log();
        let requests = ndp_telemetry::span::request_log();
        {
            let d = world.get_mut::<RpcDriver>(drv);
            d.set_span_log(spans.clone());
            d.set_request_log(requests.clone());
        }
        world.run_until(arrivals_end + point.drain);
        let spans = ndp_telemetry::span::take_spans(&spans);
        let reqs = ndp_telemetry::span::take_requests(&requests);
        assert!(reqs.len() > 50, "want a real sample, got {}", reqs.len());
        assert!(spans.iter().all(|s| s.request.is_some()));
        for r in &reqs {
            let legs: Vec<_> = spans
                .iter()
                .filter(|s| s.request == Some(r.request))
                .collect();
            assert_eq!(legs.len(), r.fanout as usize, "no response flows here");
            let last = legs
                .iter()
                .filter_map(|s| s.completion)
                .max()
                .expect("completed request has completed legs");
            assert_eq!(
                r.completion,
                Some(last),
                "request completes exactly when its slowest leg does"
            );
            assert!(legs.iter().all(|s| s.arrival == r.arrival));
        }
    }

    #[test]
    fn rpc_runs_are_bit_identical_across_threads_and_schedulers() {
        let base = quick_point(Proto::Ndp, 21);
        let mut classic = base.clone();
        classic.sched = Some(SchedulerKind::Classic);
        let mut twotier = base.clone();
        twotier.sched = Some(SchedulerKind::TwoTier);
        let points = vec![base, classic, twotier];
        let spec = SweepSpec::new("det", points);
        let fp = |rs: &[RpcPointResult]| -> Vec<u64> {
            rs.iter().map(|r| r.tenants[0].fingerprint).collect()
        };
        let serial = fp(&spec.run_with_threads(1, rpc_world_run));
        let threaded = fp(&spec.run_with_threads(7, rpc_world_run));
        assert_eq!(serial, threaded, "thread count changed results");
        assert_eq!(
            serial[0], serial[1],
            "Classic scheduler must replay the default exactly"
        );
        assert_eq!(serial[1], serial[2], "schedulers diverged");
    }

    #[test]
    fn protocols_replay_identical_request_trees() {
        let a = rpc_world_run(&quick_point(Proto::Ndp, 3));
        let b = rpc_world_run(&quick_point(Proto::Dctcp, 3));
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.measured, b.measured);
    }

    #[test]
    fn closed_loop_tenant_self_clocks_through_the_driver() {
        let point = RpcPoint {
            proto: Proto::Ndp,
            topo: registered("leafspine").spec(Scale::Quick),
            tenants: vec![TenantSpec {
                name: "pingpong",
                shape: TreeShape::PingPong,
                fanout: 1,
                leg_sizes: EmpiricalCdf::fixed("req", 64),
                response_sizes: Some(EmpiricalCdf::fixed("rsp", 4_096)),
                arrivals: ArrivalSpec::Closed {
                    median_gap: Time::from_us(20),
                    width: 2,
                },
                slo: Time::from_us(500),
            }],
            seed: 5,
            warmup: Time::ZERO,
            measure: Time::from_ms(4),
            drain: Time::from_ms(10),
            sched: None,
            key: "closed".into(),
        };
        let r = rpc_world_run(&point);
        let s = &r.tenants[0];
        // Two chains, each ping-ponging with ~20us think time over a ~10us
        // RTT: the window fits hundreds of requests, and closed-loop flow
        // control keeps the live set at the chain width.
        assert!(
            s.completed > 50,
            "chains stalled: {} completed",
            s.completed
        );
        assert!(r.peak_live_requests <= 2, "width must cap outstanding");
        assert_eq!(r.live_components_end, r.live_components_baseline);
    }

    #[test]
    fn heavy_fan_in_point_drains_completely() {
        // Regression for the lost-PULL stall: this exact point (50% load,
        // fan-out 8) used to leave 47 NDP flows permanently wedged — every
        // packet had NACK feedback, so the stock RTO never re-armed, and
        // the dropped pull meant no event would ever touch the flow again.
        // The driver arms `FlowSpec::liveness`, so every request must now
        // complete within the drain window.
        let mut point = quick_point(Proto::Ndp, 0);
        point.seed = 0xE400 + 37 + 8;
        point.tenants = vec![sweep_tenant(0.5, 8)];
        point.measure = Time::from_ms(10);
        point.drain = Time::from_ms(20);
        let r = rpc_world_run(&point);
        let incomplete: u64 = r.tenants.iter().map(|t| t.incomplete).sum();
        assert_eq!(incomplete, 0, "liveness net must unstick every request");
        assert!(r.tenants[0].completed > 1000, "point should be busy");
        assert_eq!(r.live_components_end, r.live_components_baseline);
    }

    #[test]
    fn mix_solo_reduction_matches_tenant_list() {
        // Smoke the tenant-mix wiring at tiny scale: tenants stay in
        // declared order and every solo row carries its own tenant.
        let tenants = mix_tenants();
        assert_eq!(tenants.len(), 3);
        let names: Vec<_> = tenants.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            vec!["websearch_rpc", "datamining_bulk", "background_blast"]
        );
    }
}
