//! The parallel sweep harness: declarative (protocol × parameter × seed)
//! grids executed across cores.
//!
//! Every figure of the paper is a grid of *independent* simulations — same
//! topology builder, same traffic generator, different protocol, knob or
//! seed. The engine deliberately forbids parallelism *inside* a world (that
//! is what keeps runs bit-reproducible), so the way to paper-scale runs is
//! to run many deterministic worlds side by side. A [`SweepSpec`] names the
//! grid; [`SweepSpec::run`] executes each point in its own `World` on a
//! worker pool and returns results **in grid order**, so a parallel sweep
//! is indistinguishable from the serial loop it replaced — same seeds, same
//! results, different wall-clock.
//!
//! Worker count: `NDP_THREADS` if set, otherwise the machine's available
//! parallelism. `NDP_THREADS=1` forces the serial path (useful for
//! debugging and for A/B-ing the harness itself).

use ndp_sim::Time;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::harness::{IncastResult, PermutationResult, Proto};
use crate::openloop::{DistKind, OpenLoopResult};
use crate::topo::TopoSpec;

/// Number of sweep workers.
pub fn worker_threads() -> usize {
    match std::env::var("NDP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// A declarative sweep: a label (for logs) plus the list of grid points.
///
/// Build points with plain iterators/loops — the spec is just data, which
/// keeps the grid inspectable and its order (and therefore result order)
/// explicit.
#[derive(Clone, Debug)]
pub struct SweepSpec<P> {
    pub label: &'static str,
    pub points: Vec<P>,
}

impl<P: Send + Sync> SweepSpec<P> {
    pub fn new(label: &'static str, points: Vec<P>) -> SweepSpec<P> {
        SweepSpec { label, points }
    }

    /// A single-point "sweep" — how the one-shot entry points
    /// (`permutation_run`, `incast_run`) route through the harness.
    pub fn single(label: &'static str, point: P) -> SweepSpec<P> {
        SweepSpec {
            label,
            points: vec![point],
        }
    }

    /// The cartesian product of two axes (row-major: `a` is the slow axis).
    pub fn grid<A, B>(
        label: &'static str,
        a: &[A],
        b: &[B],
        mk: impl Fn(&A, &B) -> P,
    ) -> SweepSpec<P> {
        let points = a.iter().flat_map(|x| b.iter().map(|y| mk(x, y))).collect();
        SweepSpec { label, points }
    }

    /// Execute `job` on every point, in parallel, returning results in
    /// point order. `job` must be a pure function of its point (every
    /// experiment builds its own seeded `World`, so this holds by
    /// construction throughout the crate).
    pub fn run<R: Send>(&self, job: impl Fn(&P) -> R + Sync) -> Vec<R> {
        run_parallel(&self.points, worker_threads(), job)
    }

    /// [`SweepSpec::run`] with an explicit worker count (the default comes
    /// from `NDP_THREADS` / available parallelism).
    pub fn run_with_threads<R: Send>(
        &self,
        threads: usize,
        job: impl Fn(&P) -> R + Sync,
    ) -> Vec<R> {
        run_parallel(&self.points, threads, job)
    }
}

/// Order-preserving parallel map over independent simulation points.
fn run_parallel<P: Sync, R: Send>(
    points: &[P],
    threads: usize,
    job: impl Fn(&P) -> R + Sync,
) -> Vec<R> {
    let threads = threads.min(points.len());
    if threads <= 1 {
        return points.iter().map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let r = job(point);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished")
        })
        .collect()
}

/// One permutation-matrix simulation: protocol, topology, duration, seed
/// and optional initial-window override.
#[derive(Clone, Debug)]
pub struct PermutationPoint {
    pub proto: Proto,
    pub topo: TopoSpec,
    pub duration: Time,
    pub seed: u64,
    pub iw: Option<u64>,
}

/// Run a permutation sweep; element `i` of the result matches point `i`.
pub fn sweep_permutation(spec: &SweepSpec<PermutationPoint>) -> Vec<PermutationResult> {
    spec.run(crate::harness::permutation_world_run)
}

/// One N:1 incast simulation.
#[derive(Clone, Debug)]
pub struct IncastPoint {
    pub proto: Proto,
    pub topo: TopoSpec,
    pub n_senders: usize,
    pub size: u64,
    pub iw: Option<u64>,
    pub seed: u64,
    pub horizon: Time,
}

/// Run an incast sweep; element `i` of the result matches point `i`.
pub fn sweep_incast(spec: &SweepSpec<IncastPoint>) -> Vec<IncastResult> {
    spec.run(crate::harness::incast_world_run)
}

/// One open-loop dynamic-traffic simulation: protocol, topology, size
/// distribution, offered load (fraction of the host NIC) and the
/// warmup/measure/drain windows.
#[derive(Clone, Debug)]
pub struct OpenLoopPoint {
    pub proto: Proto,
    pub topo: TopoSpec,
    pub dist: DistKind,
    pub load: f64,
    pub seed: u64,
    pub warmup: Time,
    pub measure: Time,
    pub drain: Time,
}

/// Run an open-loop sweep; element `i` of the result matches point `i`.
pub fn sweep_openloop(spec: &SweepSpec<OpenLoopPoint>) -> Vec<OpenLoopResult> {
    spec.run(crate::openloop::openloop_world_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{incast_run, permutation_run};

    #[test]
    fn results_preserve_grid_order() {
        let spec = SweepSpec::new("order", (0u64..32).collect());
        let out = spec.run(|&x| x * 2);
        assert_eq!(out, (0u64..32).map(|x| x * 2).collect::<Vec<_>>());
        // Force the threaded path regardless of this machine's core count.
        let threaded = spec.run_with_threads(4, |&x| x * 2);
        assert_eq!(threaded, out);
    }

    #[test]
    fn grid_is_row_major() {
        let spec = SweepSpec::grid("grid", &[10, 20], &[1, 2, 3], |a, b| a + b);
        assert_eq!(spec.points, vec![11, 12, 13, 21, 22, 23]);
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        // The same permutation grid through the parallel harness and the
        // one-shot entry point must be bit-identical: each point is an
        // independent seeded world.
        let mk = |seed: u64| PermutationPoint {
            proto: Proto::Ndp,
            topo: crate::topo::registered("fattree").spec(crate::harness::Scale::Quick),
            duration: Time::from_ms(2),
            seed,
            iw: Some(30),
        };
        let spec = SweepSpec::new("perm", vec![mk(1), mk(2)]);
        let par = sweep_permutation(&spec);
        for (point, got) in spec.points.iter().zip(&par) {
            let serial = permutation_run(
                point.proto,
                point.topo.clone(),
                point.duration,
                point.seed,
                point.iw,
            );
            assert_eq!(
                got.per_flow_gbps, serial.per_flow_gbps,
                "seed {}",
                point.seed
            );
            assert_eq!(got.utilization, serial.utilization);
        }
    }

    #[test]
    fn parallel_incast_matches_serial_exactly() {
        let point = IncastPoint {
            proto: Proto::Ndp,
            topo: crate::topo::registered("fattree").spec(crate::harness::Scale::Quick),
            n_senders: 6,
            size: 90_000,
            iw: None,
            seed: 5,
            horizon: Time::from_secs(2),
        };
        let spec = SweepSpec::single("incast", point.clone());
        let par = sweep_incast(&spec);
        let serial = incast_run(
            point.proto,
            point.topo.clone(),
            point.n_senders,
            point.size,
            point.iw,
            point.seed,
            point.horizon,
        );
        assert_eq!(par[0].fcts, serial.fcts);
        assert_eq!(par[0].incomplete, serial.incomplete);
    }
}
