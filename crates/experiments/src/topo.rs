//! The topology registry: the scenario half of the evaluation matrix,
//! mirroring the [`crate::transport`] registry exactly.
//!
//! A [`TopoSpec`] is a cloneable, world-independent recipe for one fabric
//! shape: sweep points carry it, and every point's world builds its own
//! fresh instance (`spec.build(&mut world, fabric)`) so parallel sweeps
//! stay bit-reproducible. [`TOPOLOGIES`] maps stable names to
//! scale-aware specs — the table behind `ndp run --topo <name>` and the
//! `NDP_TOPO` default override.
//!
//! Adding a fabric shape to the evaluation is two steps:
//!
//! 1. implement [`ndp_topology::Topology`] next to the new builder (see
//!    `ndp_topology::leafspine` for a template);
//! 2. add one [`TopoEntry`] line to [`TOPOLOGIES`].
//!
//! No harness or figure module needs to change: they all hold
//! `&dyn Topology` (or a [`TopoSpec`]) and never name a concrete fabric.

use std::fmt;
use std::sync::Arc;

use ndp_net::packet::Packet;
use ndp_sim::{Speed, World};
use ndp_topology::{FatTreeCfg, LeafSpineCfg, QueueSpec, Topology, TwoTierCfg};

use crate::harness::Scale;

/// The shared builder closure behind a [`TopoSpec`]: fresh world +
/// fabric service model in, wired topology out.
type BuildFn = dyn Fn(&mut World<Packet>, QueueSpec) -> Box<dyn Topology> + Send + Sync;

/// A buildable description of one fabric shape. Cheap to clone (the
/// builder is shared behind an `Arc`); building wires a fresh instance
/// into the given world with the transport's fabric service model.
#[derive(Clone)]
pub struct TopoSpec {
    name: &'static str,
    n_hosts: usize,
    build: Arc<BuildFn>,
}

impl TopoSpec {
    /// The spec's registry/display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Hosts the built fabric will have (known without building).
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Wire a fresh instance into `world` over the given queue service
    /// model.
    pub fn build(&self, world: &mut World<Packet>, fabric: QueueSpec) -> Box<dyn Topology> {
        (self.build)(world, fabric)
    }

    /// Rename the spec (registry entries label their canonical variants).
    pub fn named(mut self, name: &'static str) -> TopoSpec {
        self.name = name;
        self
    }

    /// A full-bisection (or [`FatTreeCfg::with_hosts_per_tor`]
    /// oversubscribed) three-tier FatTree.
    pub fn fattree(cfg: FatTreeCfg) -> TopoSpec {
        TopoSpec {
            name: "fattree",
            n_hosts: cfg.n_hosts(),
            build: Arc::new(move |w, fabric| {
                Box::new(ndp_topology::FatTree::build(
                    w,
                    cfg.clone().with_fabric(fabric),
                ))
            }),
        }
    }

    /// Like [`TopoSpec::fattree`] but pinning the cfg's own queue service
    /// model: the transport's default fabric is ignored at build time.
    /// For scenarios whose knob *is* the fabric — Figure 17 sweeps NDP
    /// over 6/8/10-packet switch buffers, which the fabric-overriding
    /// spec cannot express.
    pub fn fattree_pinned(cfg: FatTreeCfg) -> TopoSpec {
        TopoSpec {
            name: "fattree",
            n_hosts: cfg.n_hosts(),
            build: Arc::new(move |w, _fabric| {
                Box::new(ndp_topology::FatTree::build(w, cfg.clone()))
            }),
        }
    }

    /// A leaf-spine fabric (spine count / uplink speed per the cfg).
    pub fn leafspine(cfg: LeafSpineCfg) -> TopoSpec {
        TopoSpec {
            name: "leafspine",
            n_hosts: cfg.n_hosts(),
            build: Arc::new(move |w, fabric| {
                Box::new(ndp_topology::LeafSpine::build(
                    w,
                    cfg.clone().with_fabric(fabric),
                ))
            }),
        }
    }

    /// The two-tier testbed replica.
    pub fn twotier(cfg: TwoTierCfg) -> TopoSpec {
        TopoSpec {
            name: "twotier",
            n_hosts: cfg.n_hosts(),
            build: Arc::new(move |w, fabric| {
                Box::new(ndp_topology::TwoTier::build(
                    w,
                    cfg.clone().with_fabric(fabric),
                ))
            }),
        }
    }

    /// Two hosts wired NIC-to-NIC.
    pub fn backtoback() -> TopoSpec {
        TopoSpec {
            name: "backtoback",
            n_hosts: 2,
            build: Arc::new(move |w, fabric| {
                Box::new(ndp_topology::BackToBack::build(
                    w,
                    Speed::gbps(10),
                    ndp_sim::Time::from_us(1),
                    9000,
                    fabric,
                    ndp_net::host::HostLatency::default(),
                ))
            }),
        }
    }

    /// [`TopoSpec::backtoback`] with explicit `Pipe` wiring (the A/B
    /// reference against fused hops).
    pub fn backtoback_unfused() -> TopoSpec {
        TopoSpec {
            name: "backtoback",
            n_hosts: 2,
            build: Arc::new(move |w, fabric| {
                Box::new(ndp_topology::BackToBack::build_unfused(
                    w,
                    Speed::gbps(10),
                    ndp_sim::Time::from_us(1),
                    9000,
                    fabric,
                    ndp_net::host::HostLatency::default(),
                ))
            }),
        }
    }
}

impl fmt::Debug for TopoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TopoSpec({}, {} hosts)", self.name, self.n_hosts)
    }
}

/// One registered topology: a stable name, a one-line description for
/// `ndp list`-style surfaces, and a scale-aware spec constructor.
pub struct TopoEntry {
    pub name: &'static str,
    pub describe: &'static str,
    pub mk: fn(Scale) -> TopoSpec,
}

impl TopoEntry {
    /// The spec at a given scale, carrying this entry's canonical name.
    pub fn spec(&self, scale: Scale) -> TopoSpec {
        (self.mk)(scale)
    }
}

/// Every registered topology. One line per fabric shape; sizes scale with
/// `--scale` like every experiment grid (quick keeps CI bounded, paper
/// matches the evaluation's host counts).
pub static TOPOLOGIES: &[TopoEntry] = &[
    TopoEntry {
        name: "fattree",
        describe: "full-bisection three-tier FatTree (quick k=4/16 hosts, paper k=8/128 hosts)",
        mk: |scale| {
            TopoSpec::fattree(match scale {
                Scale::Paper => FatTreeCfg::new(8),
                Scale::Quick => FatTreeCfg::new(4),
            })
        },
    },
    TopoEntry {
        name: "leafspine",
        describe: "full-bisection two-tier leaf-spine (quick 8x4 hosts/4 spines, paper 16x8/8)",
        mk: |scale| {
            TopoSpec::leafspine(match scale {
                Scale::Paper => LeafSpineCfg::new(16, 8, 8),
                Scale::Quick => LeafSpineCfg::new(8, 4, 4),
            })
        },
    },
    TopoEntry {
        name: "oversubscribed",
        describe: "4:1 oversubscribed FatTree via dense racks (Figure-23 shape)",
        mk: |scale| {
            TopoSpec::fattree(match scale {
                Scale::Paper => FatTreeCfg::new(8).with_hosts_per_tor(16),
                Scale::Quick => FatTreeCfg::new(4).with_hosts_per_tor(8),
            })
            .named("oversubscribed")
        },
    },
    TopoEntry {
        name: "leafspine-oversub",
        describe: "4:1 oversubscribed leaf-spine via 5 Gb/s uplinks (per-hop-speed ideal FCT)",
        mk: |scale| {
            TopoSpec::leafspine(
                match scale {
                    Scale::Paper => LeafSpineCfg::new(8, 16, 8),
                    Scale::Quick => LeafSpineCfg::new(4, 8, 4),
                }
                .with_uplink_speed(Speed::gbps(5)),
            )
            .named("leafspine-oversub")
        },
    },
    TopoEntry {
        name: "testbed",
        describe: "the paper's 8-server two-tier NetFPGA testbed replica",
        mk: |_scale| TopoSpec::twotier(TwoTierCfg::testbed()).named("testbed"),
    },
    TopoEntry {
        name: "backtoback",
        describe: "two hosts wired NIC-to-NIC (calibration shape)",
        mk: |_scale| TopoSpec::backtoback(),
    },
];

/// Look a topology up by name (case-insensitive exact match).
pub fn find_topo(name: &str) -> Option<&'static TopoEntry> {
    let lower = name.to_ascii_lowercase();
    TOPOLOGIES.iter().find(|e| e.name == lower)
}

/// Resolve a registry name that is known to exist (registry defaults).
pub(crate) fn registered(name: &str) -> &'static TopoEntry {
    find_topo(name).unwrap_or_else(|| panic!("topology '{name}' must be registered"))
}

/// Read `NDP_TOPO`, the default-topology override for topology-neutral
/// experiments. Unset (or empty) means no override; anything that is not
/// a registered topology name is a hard error — a typoed
/// `NDP_TOPO=leafspin` must not silently run the default fabric,
/// matching the strict `NDP_SCALE`/`NDP_SCHED` behavior.
pub fn topo_from_env() -> Option<&'static TopoEntry> {
    match std::env::var("NDP_TOPO") {
        Err(_) => None,
        Ok(v) if v.is_empty() => None,
        Ok(v) => Some(find_topo(&v).unwrap_or_else(|| {
            let known: Vec<&str> = TOPOLOGIES.iter().map(|e| e.name).collect();
            panic!("NDP_TOPO must be one of {known:?} (case-insensitive), got '{v}'")
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = TOPOLOGIES.iter().map(|e| e.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate topology names");
        for e in TOPOLOGIES {
            assert!(!e.describe.is_empty(), "{} has no description", e.name);
            assert_eq!(find_topo(e.name).map(|f| f.name), Some(e.name));
            // Case-insensitive like Scale::parse.
            let upper = e.name.to_ascii_uppercase();
            assert_eq!(find_topo(&upper).map(|f| f.name), Some(e.name));
            // The spec's display name matches its registry key.
            assert_eq!(e.spec(Scale::Quick).name(), e.name);
        }
        assert!(find_topo("leafspin").is_none());
    }

    #[test]
    fn every_registered_topology_builds_and_reports_hosts() {
        for e in TOPOLOGIES {
            let spec = e.spec(Scale::Quick);
            let mut w: World<Packet> = World::new(1);
            let topo = spec.build(&mut w, QueueSpec::ndp_default());
            assert_eq!(topo.n_hosts(), spec.n_hosts(), "{}", e.name);
            assert!(topo.n_hosts() >= 2, "{}", e.name);
            assert!(!topo.links().is_empty(), "{}", e.name);
        }
    }

    #[test]
    fn canonical_sizes_match_the_paper_grids() {
        // quick/paper host counts the figures are calibrated against.
        let count = |name: &str, scale: Scale| registered(name).spec(scale).n_hosts();
        assert_eq!(count("fattree", Scale::Quick), 16);
        assert_eq!(count("fattree", Scale::Paper), 128);
        assert_eq!(count("leafspine", Scale::Quick), 32);
        assert_eq!(count("leafspine", Scale::Paper), 128);
        assert_eq!(count("oversubscribed", Scale::Quick), 64);
        assert_eq!(count("oversubscribed", Scale::Paper), 512);
        assert_eq!(count("testbed", Scale::Quick), 8);
        assert_eq!(count("backtoback", Scale::Quick), 2);
    }
}
