//! The transport × topology scenario matrix: the cross-product the whole
//! evaluation API exists for.
//!
//! For every registered fabric shape in the default axis ({fattree,
//! leafspine, oversubscribed}, or just the one named by `--topo`) and
//! every contending protocol ({NDP, DCTCP, pHost}), one report runs three
//! canonical scenarios through the topology-neutral harnesses:
//!
//! * **permutation** — long-running worst-case matrix, per-host goodput
//!   as a fraction of the access line rate;
//! * **incast** — N:1 synchronized responses, last-flow completion;
//! * **open-loop websearch** — Poisson arrivals at a fixed offered load,
//!   FCT slowdown per size bin against the topology's own per-hop-speed
//!   ideal.
//!
//! Every cell is one independent seeded world, so the full matrix fans
//! out across cores through the sweep harness. Adding a topology to
//! [`crate::topo::TOPOLOGIES`] or a transport to
//! [`crate::transport::TRANSPORTS`] grows this report with zero edits
//! here beyond the axis lists.

use ndp_metrics::{Table, SLOWDOWN_BIN_LABELS};
use ndp_sim::Time;

use crate::harness::{Proto, Scale};
use crate::openloop::{DistKind, OpenLoopResult, SWEEP_PROTOS};
use crate::sweep::{
    sweep_incast, sweep_openloop, sweep_permutation, IncastPoint, OpenLoopPoint, SweepSpec,
};
use crate::topo::{registered, TopoEntry};

/// The default topology axis: the full-bisection three-tier fabric, the
/// rack-scale two-tier fabric, and the scarce-core 4:1 variant.
pub const MATRIX_TOPOS: &[&str] = &["fattree", "leafspine", "oversubscribed"];

/// One (topology, protocol) cell of the matrix.
pub struct Cell {
    pub topo: &'static str,
    pub proto: Proto,
    /// Permutation per-host goodput over the access line rate.
    pub perm_utilization: f64,
    /// Actual incast fan-in of this cell: the configured sender count,
    /// capped at the fabric's host count minus the frontend.
    pub incast_senders: usize,
    /// N:1 incast last-flow completion (NaN if nothing finished).
    pub incast_last_ms: f64,
    pub incast_incomplete: usize,
    /// Open-loop websearch point at the matrix load.
    pub openloop: OpenLoopResult,
}

pub struct Report {
    /// Offered load of the open-loop scenario (fraction of the NIC).
    pub load: f64,
    pub cells: Vec<Cell>,
}

pub fn run(scale: Scale, topo: Option<&'static TopoEntry>) -> Report {
    let entries: Vec<&'static TopoEntry> = match topo {
        Some(e) => vec![e],
        None => MATRIX_TOPOS.iter().map(|n| registered(n)).collect(),
    };
    let protos = SWEEP_PROTOS;
    let (perm_duration, incast_senders, incast_size) = match scale {
        Scale::Paper => (Time::from_ms(20), 32, 450_000u64),
        Scale::Quick => (Time::from_ms(5), 8, 90_000),
    };
    // Oversubscribed shapes saturate their uplinks near 25 % NIC load
    // with uniform destinations, so one matrix load must stay comparable
    // across shapes without collapsing the scarce-core ones.
    let load = 0.2;
    let (warmup, measure, drain) = match scale {
        Scale::Paper => (Time::from_ms(5), Time::from_ms(50), Time::from_ms(40)),
        Scale::Quick => (Time::from_ms(2), Time::from_ms(15), Time::from_ms(15)),
    };

    let cells: Vec<(usize, Proto)> = entries
        .iter()
        .enumerate()
        .flat_map(|(ti, _)| protos.iter().map(move |&p| (ti, p)))
        .collect();

    let perm = SweepSpec::new(
        "topo_matrix: permutation",
        cells
            .iter()
            .map(|&(ti, proto)| crate::sweep::PermutationPoint {
                proto,
                topo: entries[ti].spec(scale),
                duration: perm_duration,
                seed: 71,
                iw: None,
            })
            .collect(),
    );
    let incast = SweepSpec::new(
        "topo_matrix: incast",
        cells
            .iter()
            .map(|&(ti, proto)| IncastPoint {
                proto,
                topo: entries[ti].spec(scale),
                n_senders: incast_senders.min(entries[ti].spec(scale).n_hosts() - 1),
                size: incast_size,
                iw: None,
                seed: 72,
                horizon: Time::from_secs(10),
            })
            .collect(),
    );
    let openloop = SweepSpec::new(
        "topo_matrix: openloop websearch",
        cells
            .iter()
            .map(|&(ti, proto)| OpenLoopPoint {
                proto,
                topo: entries[ti].spec(scale),
                dist: DistKind::WebSearch,
                load,
                // One seed per topology, shared across protocols: paired
                // arrival sequences within each fabric column.
                seed: 0xD400 + ti as u64,
                warmup,
                measure,
                drain,
            })
            .collect(),
    );

    let perm_results = sweep_permutation(&perm);
    let incast_results = sweep_incast(&incast);
    let openloop_results = sweep_openloop(&openloop);

    let rows = cells
        .iter()
        .zip(perm_results)
        .zip(incast_results)
        .zip(openloop_results)
        .map(|(((&(ti, proto), p), i), o)| Cell {
            topo: entries[ti].name,
            proto,
            perm_utilization: p.utilization,
            // Small fabrics cap the fan-in; report what actually ran.
            incast_senders: incast_senders.min(entries[ti].spec(scale).n_hosts() - 1),
            incast_last_ms: i.last().map_or(f64::NAN, |t| t.as_ms()),
            incast_incomplete: i.incomplete,
            openloop: o,
        })
        .collect();
    Report { load, cells: rows }
}

fn fmt_or_dash(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "-".into()
    }
}

impl Report {
    /// Overall p99 slowdown of one cell, NaN when nothing completed.
    pub fn p99(&self, topo: &str, proto: Proto) -> f64 {
        self.cells
            .iter()
            .find(|c| c.topo == topo && c.proto == proto)
            .map(|c| {
                if c.openloop.slowdown.is_empty() {
                    f64::NAN
                } else {
                    c.openloop.slowdown.overall().percentile(0.99)
                }
            })
            .unwrap_or(f64::NAN)
    }

    pub fn utilization(&self, topo: &str, proto: Proto) -> f64 {
        self.cells
            .iter()
            .find(|c| c.topo == topo && c.proto == proto)
            .map(|c| c.perm_utilization)
            .unwrap_or(f64::NAN)
    }

    pub fn headline(&self) -> String {
        let topos: Vec<&str> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.topo) {
                    seen.push(c.topo);
                }
            }
            seen
        };
        let per_topo: Vec<String> = topos
            .iter()
            .map(|&t| {
                format!(
                    "{t}: NDP util {:.0}%/p99 {}",
                    100.0 * self.utilization(t, Proto::Ndp),
                    fmt_or_dash(self.p99(t, Proto::Ndp), 1)
                )
            })
            .collect();
        format!(
            "{} topologies x {} protocols @{:.0}% load — {}",
            topos.len(),
            SWEEP_PROTOS.len(),
            self.load * 100.0,
            per_topo.join("; ")
        )
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec![
            "topology".to_string(),
            "protocol".into(),
            "perm util %".into(),
            "incast N:1 (ms)".into(),
            "flows".into(),
            "incompl".into(),
        ];
        for label in SLOWDOWN_BIN_LABELS {
            header.push(format!("{label} p50/p99"));
        }
        header.push("all p50/p99".into());
        let mut t = Table::new(header);
        for c in &self.cells {
            let mut row = vec![
                c.topo.to_string(),
                c.proto.label().to_string(),
                format!("{:.1}", 100.0 * c.perm_utilization),
                format!(
                    "{}:1 {}",
                    c.incast_senders,
                    fmt_or_dash(c.incast_last_ms, 2)
                ),
                c.openloop.measured.to_string(),
                c.openloop.incomplete.to_string(),
            ];
            for i in 0..c.openloop.slowdown.n_bins() {
                row.push(format!(
                    "{}/{}",
                    fmt_or_dash(c.openloop.slowdown.percentile(i, 0.50), 1),
                    fmt_or_dash(c.openloop.slowdown.percentile(i, 0.99), 1)
                ));
            }
            let all = c.openloop.slowdown.overall();
            row.push(if all.is_empty() {
                "-/-".into()
            } else {
                format!("{:.1}/{:.1}", all.percentile(0.50), all.percentile(0.99))
            });
            t.row(row);
        }
        write!(
            f,
            "Transport x topology matrix — permutation, incast and open-loop websearch @{:.0}% load\n{}",
            self.load * 100.0,
            t.render()
        )
    }
}

/// Registry entry.
pub struct TopoMatrix;

impl crate::registry::Experiment for TopoMatrix {
    fn id(&self) -> &'static str {
        "topo_matrix"
    }
    fn title(&self) -> &'static str {
        "Transport x topology matrix (permutation/incast/open-loop per fabric shape)"
    }
    fn description(&self) -> &'static str {
        "Permutation goodput, N:1 incast completion and open-loop websearch \
         slowdown for NDP vs DCTCP vs pHost across {fattree, leafspine, \
         oversubscribed} (or just the fabric named by --topo)"
    }
    fn supports_topo(&self) -> bool {
        true
    }
    fn run(
        &self,
        scale: Scale,
        topo: Option<&'static TopoEntry>,
    ) -> Box<dyn crate::registry::Report> {
        Box::new(run(scale, topo))
    }
}

impl crate::registry::Report for Report {
    fn headline(&self) -> String {
        self.headline()
    }

    fn run_stats(&self) -> crate::registry::RunStats {
        crate::registry::RunStats {
            events_processed: Some(self.cells.iter().map(|c| c.openloop.events_processed).sum()),
            event_kinds: Some(self.cells.iter().map(|c| c.openloop.event_kinds).sum()),
            peak_live_components: self
                .cells
                .iter()
                .map(|c| c.openloop.peak_live_components as u64)
                .max(),
            peak_live_flows: self
                .cells
                .iter()
                .map(|c| c.openloop.peak_live_flows as u64)
                .max(),
            ..Default::default()
        }
    }

    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("load", Json::num(self.load)),
            (
                "bins",
                Json::arr(SLOWDOWN_BIN_LABELS.iter().map(|&l| Json::str(l))),
            ),
            (
                "cells",
                Json::arr(self.cells.iter().map(|c| {
                    let all = c.openloop.slowdown.overall();
                    let (p50, p99) = if all.is_empty() {
                        (f64::NAN, f64::NAN)
                    } else {
                        (all.percentile(0.50), all.percentile(0.99))
                    };
                    Json::obj([
                        ("topo", Json::str(c.topo)),
                        ("proto", Json::str(c.proto.label())),
                        ("perm_utilization", Json::num(c.perm_utilization)),
                        ("incast_senders", Json::num(c.incast_senders as f64)),
                        ("incast_last_ms", Json::num(c.incast_last_ms)),
                        ("incast_incomplete", Json::num(c.incast_incomplete as f64)),
                        ("measured", Json::num(c.openloop.measured as f64)),
                        ("incomplete", Json::num(c.openloop.incomplete as f64)),
                        (
                            "overall",
                            Json::obj([
                                ("n", Json::num(all.len() as f64)),
                                ("p50", Json::num(p50)),
                                ("p99", Json::num(p99)),
                            ]),
                        ),
                        (
                            "slowdown_bins",
                            Json::arr((0..c.openloop.slowdown.n_bins()).map(|i| {
                                Json::obj([
                                    ("bin", Json::str(SLOWDOWN_BIN_LABELS[i])),
                                    ("n", Json::num(c.openloop.slowdown.bin(i).len() as f64)),
                                    ("p50", Json::num(c.openloop.slowdown.percentile(i, 0.50))),
                                    ("p99", Json::num(c.openloop.slowdown.percentile(i, 0.99))),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_topologies_and_protocols_with_populated_cells() {
        let rep = run(Scale::Quick, None);
        assert_eq!(rep.cells.len(), MATRIX_TOPOS.len() * SWEEP_PROTOS.len());
        let topos: std::collections::HashSet<&str> = rep.cells.iter().map(|c| c.topo).collect();
        assert_eq!(topos.len(), 3);
        for c in &rep.cells {
            assert!(
                c.openloop.measured > 0,
                "{}/{}: no measured flows",
                c.topo,
                c.proto.label()
            );
            assert!(
                !c.openloop.slowdown.is_empty(),
                "{}/{}: empty slowdown bins",
                c.topo,
                c.proto.label()
            );
            assert!(
                c.perm_utilization > 0.0,
                "{}/{}: dead permutation",
                c.topo,
                c.proto.label()
            );
        }
        // NDP keeps full-bisection fabrics busy and leads DCTCP's p99 on
        // the scarce-core shape.
        assert!(rep.utilization("fattree", Proto::Ndp) > 0.85);
        assert!(rep.utilization("leafspine", Proto::Ndp) > 0.85);
        assert!(
            rep.utilization("oversubscribed", Proto::Ndp) < rep.utilization("fattree", Proto::Ndp)
        );
    }

    #[test]
    fn single_topology_restriction_populates_one_column() {
        let rep = run(Scale::Quick, Some(crate::topo::registered("leafspine")));
        assert_eq!(rep.cells.len(), SWEEP_PROTOS.len());
        assert!(rep.cells.iter().all(|c| c.topo == "leafspine"));
        assert!(rep.cells.iter().all(|c| c.openloop.measured > 0));
    }
}
