//! The transport registry: `Proto` is a plain registry key; everything a
//! protocol *does* lives behind its [`Transport`] impl next to its
//! sender/receiver.
//!
//! Adding a transport to the evaluation is two steps:
//!
//! 1. implement [`Transport`] next to the new sender/receiver (see
//!    `ndp_baselines::phost` for a template, or `ndp_core::transport` for
//!    a multi-variant one), exposed as a `static`;
//! 2. add a `Proto` variant and one line to [`TRANSPORTS`].
//!
//! No harness or figure module needs to change: they all dispatch through
//! [`Proto::transport`].

pub use ndp_transport::{flow_hash_path, FlowHarvest, FlowSpec, QueueSpec, Transport};

/// The transports under evaluation — registry keys into [`TRANSPORTS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    Ndp,
    /// NDP with §3.2.3 path-penalty disabled (Figure 22's ablation).
    NdpNoPenalty,
    Tcp,
    Dctcp,
    Mptcp,
    Dcqcn,
    PHost,
    /// Unresponsive CBR blast (Figure 2's overload traffic).
    Blast,
}

/// Every registered transport. One line per protocol; variants such as
/// DCTCP or the no-penalty NDP ablation are configured `static` instances
/// of a shared impl, not separate types.
pub static TRANSPORTS: &[(Proto, &dyn Transport)] = &[
    (Proto::Ndp, &ndp_core::NDP),
    (Proto::NdpNoPenalty, &ndp_core::NDP_NO_PENALTY),
    (Proto::Tcp, &ndp_baselines::TCP),
    (Proto::Dctcp, &ndp_baselines::DCTCP),
    (Proto::Mptcp, &ndp_baselines::MPTCP),
    (Proto::Dcqcn, &ndp_baselines::DCQCN),
    (Proto::PHost, &ndp_baselines::PHOST),
    (Proto::Blast, &ndp_baselines::BLAST),
];

impl Proto {
    /// Iterate every registered protocol, in registry order.
    pub fn all() -> impl Iterator<Item = Proto> {
        TRANSPORTS.iter().map(|&(p, _)| p)
    }

    /// Resolve this key to its transport object.
    pub fn transport(self) -> &'static dyn Transport {
        TRANSPORTS
            .iter()
            .find(|&&(p, _)| p == self)
            .map(|&(_, t)| t)
            .expect("every Proto variant is registered in TRANSPORTS")
    }

    pub fn label(self) -> &'static str {
        self.transport().label()
    }

    /// The switch service model this transport runs over.
    pub fn fabric(self) -> QueueSpec {
        self.transport().fabric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_proto_resolves_and_labels_match_seed_behavior() {
        // The registry must reproduce the seed harness's `match proto`
        // tables exactly: label and fabric per protocol.
        let expected: &[(Proto, &str, QueueSpec)] = &[
            (Proto::Ndp, "NDP", QueueSpec::ndp_default()),
            (
                Proto::NdpNoPenalty,
                "NDP (no path penalty)",
                QueueSpec::ndp_default(),
            ),
            (Proto::Tcp, "TCP", QueueSpec::droptail_default()),
            (Proto::Dctcp, "DCTCP", QueueSpec::dctcp_default()),
            (Proto::Mptcp, "MPTCP", QueueSpec::droptail_default()),
            (Proto::Dcqcn, "DCQCN", QueueSpec::dcqcn_default()),
            (Proto::PHost, "pHost", QueueSpec::phost_default()),
            (Proto::Blast, "blast", QueueSpec::ndp_default()),
        ];
        assert_eq!(expected.len(), TRANSPORTS.len());
        for &(proto, label, fabric) in expected {
            assert_eq!(proto.label(), label);
            assert_eq!(proto.fabric(), fabric, "{proto:?} fabric");
        }
    }

    #[test]
    fn registry_keys_are_unique() {
        for (i, &(p, _)) in TRANSPORTS.iter().enumerate() {
            for &(q, _) in &TRANSPORTS[i + 1..] {
                assert!(p != q, "duplicate registry key {p:?}");
            }
        }
    }

    #[test]
    fn all_iterates_the_registry_in_order() {
        let keys: Vec<Proto> = Proto::all().collect();
        assert_eq!(keys.len(), TRANSPORTS.len());
        assert_eq!(keys[0], Proto::Ndp);
    }

    #[test]
    fn every_transport_detaches_and_harvests() {
        use ndp_net::{Host, Packet};
        use ndp_sim::{Time, World};
        use ndp_topology::{FatTree, FatTreeCfg};
        // Every registered protocol must free its endpoint state on detach
        // and hand back the same results the read-only accessors reported.
        for proto in Proto::all() {
            let cfg = FatTreeCfg::new(4).with_fabric(proto.fabric());
            let mut w: World<Packet> = World::new(7);
            let ft = FatTree::build(&mut w, cfg);
            let spec = FlowSpec::new(1, 0, 15, 90_000);
            let t = proto.transport();
            t.attach(
                &mut w,
                &spec,
                (ft.hosts[0], 0),
                (ft.hosts[15], 15),
                ft.n_paths(0, 15),
                ft.cfg.mtu,
            );
            w.run_until(Time::from_ms(50));
            let delivered = t.delivered_bytes(&w, ft.hosts[15], 1);
            let done = t.completion_time(&w, ft.hosts[15], 1);
            if proto == Proto::Blast {
                // CBR blast rounds the size up to whole MTU packets and has
                // no completion handshake.
                assert!(delivered >= 90_000, "blast delivered {delivered}");
            } else {
                assert_eq!(delivered, 90_000, "{proto:?} must deliver the flow");
                assert!(done.is_some(), "{proto:?} must record completion");
            }
            let h = t.detach(&mut w, ft.hosts[0], ft.hosts[15], 1);
            assert_eq!(h.delivered_bytes, delivered, "{proto:?} harvest bytes");
            assert_eq!(h.completion_time, done, "{proto:?} harvest fct");
            assert_eq!(w.get::<Host>(ft.hosts[0]).n_endpoints(), 0, "{proto:?}");
            assert_eq!(w.get::<Host>(ft.hosts[15]).n_endpoints(), 0, "{proto:?}");
            // Detaching again is a harmless no-op with an empty harvest.
            let again = t.detach(&mut w, ft.hosts[0], ft.hosts[15], 1);
            assert_eq!(again, FlowHarvest::default(), "{proto:?} re-detach");
        }
    }
}
