//! Empirical CDFs with percentile queries and row rendering.

/// An empirical distribution built from samples.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    pub fn new() -> Cdf {
        Cdf::default()
    }

    pub fn from_samples<I: IntoIterator<Item = f64>>(it: I) -> Cdf {
        let mut sorted: Vec<f64> = it.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted }
    }

    pub fn add(&mut self, x: f64) {
        let idx = self.sorted.partition_point(|&v| v < x);
        self.sorted.insert(idx, x);
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// p in [0,1]; nearest-rank percentile.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of empty CDF");
        crate::percentile::percentile(&self.sorted, p)
    }

    /// Nearest-rank percentile that yields NaN on an empty CDF instead of
    /// panicking — the "no samples" convention reports render as `-` and
    /// the JSON writer turns into `null`.
    pub fn percentile_or_nan(&self, p: f64) -> f64 {
        crate::percentile::percentile(&self.sorted, p)
    }

    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Fraction of samples ≤ x.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Downsample to at most `n` (value, cumulative-percent) rows for
    /// printing a figure-style CDF curve.
    pub fn rows(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() {
            return vec![];
        }
        let n = n.max(2);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let p = i as f64 / (n - 1) as f64;
            out.push((self.percentile(p.max(0.001)), p * 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let c = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(c.median(), 50.0);
        assert_eq!(c.percentile(0.99), 99.0);
        assert_eq!(c.percentile(1.0), 100.0);
        assert_eq!(c.percentile(0.0), 1.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 100.0);
        assert!((c.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn incremental_add_keeps_order() {
        let mut c = Cdf::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            c.add(x);
        }
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn fraction_below() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_below(2.5), 0.5);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(4.0), 1.0);
    }

    #[test]
    fn rows_are_monotone() {
        let c = Cdf::from_samples((0..1000).map(|i| (i * i) as f64));
        let rows = c.rows(20);
        assert_eq!(rows.len(), 20);
        for w in rows.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        Cdf::new().percentile(0.5);
    }
}
