//! Measurement collectors and figure-style rendering.
//!
//! Everything the evaluation section reports reduces to a handful of
//! shapes: CDFs of latencies/FCTs, ranked per-flow throughput series,
//! utilization percentages, time-bucketed goodput traces and small tables.
//! This crate renders them as aligned text so each experiment binary can
//! print "the same rows/series the paper reports".

pub mod cdf;
pub mod percentile;
pub mod rpc;
pub mod series;
pub mod slowdown;
pub mod table;

pub use cdf::Cdf;
pub use percentile::{percentile, percentile_checked};
pub use rpc::TenantDigest;
pub use series::TimeSeries;
pub use slowdown::{size_bin, SlowdownBins, SLOWDOWN_BIN_EDGES, SLOWDOWN_BIN_LABELS};
pub use table::Table;

/// Jain's fairness index: 1.0 = perfectly fair.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean of the worst (smallest) `frac` of the samples — Figure 2's
/// "worst 10%" metric.
pub fn worst_fraction_mean(xs: &[f64], frac: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = ((v.len() as f64 * frac).ceil() as usize).clamp(1, v.len());
    mean(&v[..n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[1.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
    }

    #[test]
    fn worst_fraction() {
        let xs = [10.0, 1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0, 5.0];
        assert!((worst_fraction_mean(&xs, 0.1) - 1.0).abs() < 1e-12);
        assert!((worst_fraction_mean(&xs, 0.2) - 1.5).abs() < 1e-12);
        assert!((worst_fraction_mean(&xs, 1.0) - 5.5).abs() < 1e-12);
    }
}
