//! The one nearest-rank percentile implementation.
//!
//! Every percentile the repo reports — figure CDFs, slowdown bins, the
//! failure matrix's per-phase p50/p99/p999 — reduces to the same
//! nearest-rank rule over a sorted sample vector. Centralizing it here
//! keeps the empty-sample convention uniform too: an empty sample yields
//! NaN, which renderers print as `-` and the JSON writer emits as `null`.

/// Nearest-rank percentile of an ascending-sorted slice; `p` in [0, 1]
/// (clamped). Empty input yields NaN — the repo-wide "no samples" value.
///
/// The rank rule matches the classic definition: the smallest element
/// such that at least `ceil(n * p)` samples are ≤ it (with `p = 0`
/// mapping to the minimum).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 1.0);
    let idx = ((sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

/// [`percentile`] with a sample-size confidence gate: `None` when the
/// sample cannot resolve `p` at all.
///
/// Nearest-rank on `n` samples pins the `p`-quantile to the maximum
/// whenever `n × (1 − p) < 1` — a p999 over 50 requests silently reports
/// the worst observation, which reads as a tail estimate but is not one.
/// This variant refuses to fabricate: it yields the estimate only when
/// the rank is distinguishable from the max (`n × (1 − p) ≥ 1`; p999
/// needs n ≥ 1000, p99 needs n ≥ 100). `p = 1.0` (the maximum itself) is
/// always well-defined on non-empty input. Report writers surface `None`
/// as JSON `null`, never a fabricated value.
pub fn percentile_checked(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    if p < 1.0 && sorted.len() as f64 * (1.0 - p) < 1.0 {
        return None;
    }
    Some(percentile(sorted, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_nan() {
        assert!(percentile(&[], 0.5).is_nan());
        assert!(percentile(&[], 0.0).is_nan());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile(&[7.0], p), 7.0);
        }
    }

    #[test]
    fn nearest_rank_on_a_ramp() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.999), 100.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn out_of_range_p_clamps() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -1.0), 1.0);
        assert_eq!(percentile(&v, 2.0), 3.0);
    }

    #[test]
    fn p999_needs_a_thousand_samples_to_leave_the_max() {
        let v: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.999), 999.0);
    }

    #[test]
    fn checked_refuses_unresolvable_tails() {
        let small: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        assert_eq!(percentile_checked(&small, 0.5), Some(25.0));
        assert_eq!(percentile_checked(&small, 0.98), Some(49.0));
        assert_eq!(percentile_checked(&small, 0.99), None, "n=50 has no p99");
        assert_eq!(percentile_checked(&small, 0.999), None);
        assert_eq!(
            percentile_checked(&small, 1.0),
            Some(50.0),
            "max always valid"
        );

        let big: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(percentile_checked(&big, 0.999), Some(999.0));
        assert_eq!(
            percentile_checked(&big[..999], 0.999),
            None,
            "n=999 just misses"
        );

        assert_eq!(percentile_checked(&[], 0.5), None);
        assert_eq!(percentile_checked(&[], 1.0), None);
        assert_eq!(
            percentile_checked(&[7.0], 0.5),
            None,
            "one sample, no median"
        );
    }
}
