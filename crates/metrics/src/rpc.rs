//! Request-level latency digests for the RPC serving subsystem.
//!
//! Per-flow FCT slowdowns (the open-loop family) miss what serving
//! stacks actually grade: the end-to-end latency of a *request* whose
//! response is the fan-in of N shard answers — one straggler leg blows
//! the deadline even when per-flow p99 looks healthy. This module books
//! exactly that: per-tenant request-latency percentiles (p50/p99/p999
//! with a sample-size confidence gate — see
//! [`percentile_checked`](crate::percentile::percentile_checked)), SLO
//! attainment against the tenant's deadline, and straggler attribution
//! (which leg finished last, and whether it was the largest).

use crate::percentile::{percentile, percentile_checked};

/// One tenant's request-latency digest.
#[derive(Clone, Debug, Default)]
pub struct TenantDigest {
    pub name: &'static str,
    /// The tenant's latency deadline, microseconds.
    pub slo_us: f64,
    /// Requests generated inside the measurement window.
    pub offered: u64,
    /// Measured requests still unfinished at harvest time.
    pub incomplete: u64,
    /// Completed-request latencies, microseconds (sorted lazily).
    lat_us: Vec<f64>,
    sorted: bool,
    /// Histogram over the index of the last-finishing leg.
    straggler_hist: Vec<u64>,
    /// Completions whose straggler was also the request's largest leg.
    straggler_largest: u64,
}

impl TenantDigest {
    pub fn new(name: &'static str, slo_us: f64) -> TenantDigest {
        TenantDigest {
            name,
            slo_us,
            ..TenantDigest::default()
        }
    }

    /// Book one completed request: end-to-end latency, which leg finished
    /// last, and whether that leg carried the request's largest payload.
    pub fn record(&mut self, latency_us: f64, straggler_leg: usize, straggler_was_largest: bool) {
        self.lat_us.push(latency_us);
        self.sorted = false;
        if self.straggler_hist.len() <= straggler_leg {
            self.straggler_hist.resize(straggler_leg + 1, 0);
        }
        self.straggler_hist[straggler_leg] += 1;
        if straggler_was_largest {
            self.straggler_largest += 1;
        }
    }

    /// Completed requests in the digest.
    pub fn n(&self) -> usize {
        self.lat_us.len()
    }

    fn sorted_lats(&mut self) -> &[f64] {
        if !self.sorted {
            self.lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.sorted = true;
        }
        &self.lat_us
    }

    /// Request-latency percentile in microseconds, `None` when the sample
    /// cannot resolve it (see `percentile_checked`) — reports surface
    /// that as `null`, never a fabricated tail.
    pub fn latency_us(&mut self, p: f64) -> Option<f64> {
        let lats = self.sorted_lats();
        percentile_checked(lats, p)
    }

    /// Unchecked percentile (NaN on empty) for display paths that want
    /// the raw nearest-rank value.
    pub fn latency_us_unchecked(&mut self, p: f64) -> f64 {
        let lats = self.sorted_lats();
        percentile(lats, p)
    }

    /// Mean request latency in microseconds (None when empty).
    pub fn mean_us(&self) -> Option<f64> {
        if self.lat_us.is_empty() {
            return None;
        }
        Some(self.lat_us.iter().sum::<f64>() / self.lat_us.len() as f64)
    }

    /// Fraction of completed requests that met the tenant's deadline;
    /// `None` when no request completed. An unfinished measured request
    /// is a miss: attainment is computed over `completed + incomplete`.
    pub fn slo_attainment(&self) -> Option<f64> {
        let total = self.lat_us.len() as u64 + self.incomplete;
        if total == 0 {
            return None;
        }
        let met = self.lat_us.iter().filter(|&&l| l <= self.slo_us).count();
        Some(met as f64 / total as f64)
    }

    /// Straggler attribution: `(leg index, completions where that leg
    /// finished last)`, zero-padded to the tenant's widest fan-out.
    pub fn straggler_hist(&self) -> &[u64] {
        &self.straggler_hist
    }

    /// Fraction of completions whose straggler was also the largest leg
    /// (`None` when no request completed). Near 1.0 means tails are
    /// size-bound; near `1/fanout` means tails come from fabric luck —
    /// the incast-collapse signature.
    pub fn straggler_largest_frac(&self) -> Option<f64> {
        if self.lat_us.is_empty() {
            return None;
        }
        Some(self.straggler_largest as f64 / self.lat_us.len() as f64)
    }

    /// Fingerprint over the exact latency bit patterns — the determinism
    /// tests' equality witness.
    pub fn fingerprint(&mut self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.offered);
        mix(self.incomplete);
        mix(self.straggler_largest);
        for &c in &self.straggler_hist {
            mix(c);
        }
        for &l in self.sorted_lats() {
            mix(l.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_gate_on_sample_size() {
        let mut d = TenantDigest::new("t", 100.0);
        for i in 0..50 {
            d.record(i as f64, 0, false);
        }
        assert_eq!(d.n(), 50);
        assert_eq!(d.latency_us(0.5), Some(24.0));
        assert_eq!(d.latency_us(0.99), None, "n=50 cannot resolve p99");
        assert_eq!(d.latency_us(0.999), None);
        assert!(
            d.latency_us_unchecked(0.999) == 49.0,
            "unchecked clamps to max"
        );
        for i in 50..2000 {
            d.record(i as f64, 0, false);
        }
        assert_eq!(d.latency_us(0.999), Some(1997.0));
    }

    #[test]
    fn slo_counts_incomplete_requests_as_misses() {
        let mut d = TenantDigest::new("t", 10.0);
        assert_eq!(d.slo_attainment(), None);
        d.record(5.0, 0, false); // met
        d.record(9.0, 1, true); // met
        d.record(11.0, 1, false); // missed
        assert_eq!(d.slo_attainment(), Some(2.0 / 3.0));
        d.incomplete = 1; // a straggling request that never finished
        assert_eq!(d.slo_attainment(), Some(0.5));
        assert_eq!(d.straggler_hist(), &[1, 2]);
        assert_eq!(d.straggler_largest_frac(), Some(1.0 / 3.0));
    }

    #[test]
    fn fingerprint_is_order_insensitive_but_value_sensitive() {
        let mut a = TenantDigest::new("t", 10.0);
        let mut b = TenantDigest::new("t", 10.0);
        a.record(1.0, 0, false);
        a.record(2.0, 1, true);
        b.record(2.0, 1, true);
        b.record(1.0, 0, false);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "booking order must not matter"
        );
        let mut c = TenantDigest::new("t", 10.0);
        c.record(1.0, 0, false);
        c.record(2.5, 1, true);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
