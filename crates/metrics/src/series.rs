//! Time-bucketed counters for goodput-vs-time traces (Figure 19).

use ndp_sim::Time;

/// Accumulates byte counts into fixed-width time buckets and reports each
/// bucket as a rate.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: Time,
    buckets: Vec<u64>,
}

impl TimeSeries {
    pub fn new(bucket: Time) -> TimeSeries {
        assert!(!bucket.is_zero());
        TimeSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    pub fn bucket_width(&self) -> Time {
        self.bucket
    }

    pub fn add(&mut self, at: Time, bytes: u64) {
        let idx = (at.as_ps() / self.bucket.as_ps()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    pub fn total_bytes(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// (bucket start time, rate in Gb/s) for every bucket.
    pub fn rates_gbps(&self) -> Vec<(Time, f64)> {
        let secs = self.bucket.as_secs();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| (self.bucket * i as u64, b as f64 * 8.0 / secs / 1e9))
            .collect()
    }

    /// Peak bucket rate in Gb/s.
    pub fn peak_gbps(&self) -> f64 {
        self.rates_gbps()
            .into_iter()
            .map(|(_, r)| r)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_and_convert() {
        let mut ts = TimeSeries::new(Time::from_ms(1));
        // 1.25 MB in bucket 0 => 10 Gb/s over 1 ms.
        ts.add(Time::from_us(10), 625_000);
        ts.add(Time::from_us(900), 625_000);
        ts.add(Time::from_us(1500), 125_000); // bucket 1 => 1 Gb/s
        let rates = ts.rates_gbps();
        assert_eq!(rates.len(), 2);
        assert!((rates[0].1 - 10.0).abs() < 1e-9);
        assert!((rates[1].1 - 1.0).abs() < 1e-9);
        assert_eq!(ts.total_bytes(), 1_375_000);
        assert!((ts.peak_gbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_buckets_are_zero_filled() {
        let mut ts = TimeSeries::new(Time::from_us(100));
        ts.add(Time::from_us(950), 1);
        assert_eq!(ts.rates_gbps().len(), 10);
        assert_eq!(ts.rates_gbps()[5].1, 0.0);
    }
}
