//! FCT slowdown, binned by flow size.
//!
//! Slowdown = actual flow-completion time ÷ the ideal transfer time the
//! same flow would see alone on an unloaded network — 1.0 is perfect, and
//! the open-loop load sweeps report its p50/p99 per flow-size class
//! (mice suffer queueing, elephants suffer bandwidth sharing; one overall
//! percentile hides which one a transport sacrifices).

use crate::cdf::Cdf;

/// Upper edges (bytes, inclusive) of all but the last size bin. The bins
/// are the literature's usual mice/medium/large/elephant split.
pub const SLOWDOWN_BIN_EDGES: &[u64] = &[10_000, 100_000, 1_000_000];

/// Human-readable labels, index-aligned with [`SlowdownBins::bin`].
pub const SLOWDOWN_BIN_LABELS: &[&str] = &["0-10KB", "10KB-100KB", "100KB-1MB", ">1MB"];

/// Slowdown samples partitioned by flow size, plus the overall CDF.
///
/// Every bin always exists (possibly empty), so reports are
/// shape-stable across loads and protocols — a consumer can rely on
/// seeing all size classes even when a run produced no elephants.
#[derive(Clone, Debug, Default)]
pub struct SlowdownBins {
    bins: Vec<Cdf>,
    all: Cdf,
}

/// Index of the bin a flow of `bytes` falls into.
pub fn size_bin(bytes: u64) -> usize {
    SLOWDOWN_BIN_EDGES
        .iter()
        .position(|&edge| bytes <= edge)
        .unwrap_or(SLOWDOWN_BIN_EDGES.len())
}

impl SlowdownBins {
    pub fn new() -> SlowdownBins {
        SlowdownBins {
            bins: vec![Cdf::new(); SLOWDOWN_BIN_EDGES.len() + 1],
            all: Cdf::new(),
        }
    }

    /// Record one completed flow.
    pub fn add(&mut self, bytes: u64, slowdown: f64) {
        self.bins[size_bin(bytes)].add(slowdown);
        self.all.add(slowdown);
    }

    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// The slowdown CDF of one size bin.
    pub fn bin(&self, i: usize) -> &Cdf {
        &self.bins[i]
    }

    /// The slowdown CDF over all sizes.
    pub fn overall(&self) -> &Cdf {
        &self.all
    }

    /// Percentile of bin `i`, or NaN when the bin is empty (callers
    /// render NaN as `-` / JSON null). Delegates to the shared
    /// nearest-rank helper in [`crate::percentile`].
    pub fn percentile(&self, i: usize, p: f64) -> f64 {
        self.bins[i].percentile_or_nan(p)
    }

    /// Total samples recorded.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_assignment_matches_edges() {
        assert_eq!(size_bin(1), 0);
        assert_eq!(size_bin(10_000), 0);
        assert_eq!(size_bin(10_001), 1);
        assert_eq!(size_bin(100_000), 1);
        assert_eq!(size_bin(999_999), 2);
        assert_eq!(size_bin(1_000_001), 3);
        assert_eq!(size_bin(u64::MAX), 3);
        assert_eq!(SLOWDOWN_BIN_LABELS.len(), SLOWDOWN_BIN_EDGES.len() + 1);
    }

    #[test]
    fn bins_collect_independently_and_overall_sees_all() {
        let mut s = SlowdownBins::new();
        s.add(1_000, 1.0); // bin 0
        s.add(2_000, 3.0); // bin 0
        s.add(50_000, 10.0); // bin 1
        s.add(5_000_000, 2.0); // bin 3
        assert_eq!(s.len(), 4);
        assert_eq!(s.bin(0).len(), 2);
        assert_eq!(s.bin(1).len(), 1);
        assert_eq!(s.bin(2).len(), 0);
        assert_eq!(s.bin(3).len(), 1);
        assert_eq!(s.overall().len(), 4);
        assert_eq!(s.percentile(0, 0.5), 1.0);
        assert_eq!(s.percentile(1, 0.99), 10.0);
    }

    #[test]
    fn empty_bins_report_nan_not_panic() {
        let s = SlowdownBins::new();
        assert!(s.is_empty());
        for i in 0..s.n_bins() {
            assert!(s.percentile(i, 0.5).is_nan());
        }
    }
}
