//! Minimal aligned-text tables for experiment reports.

use std::fmt::Write as _;

/// A simple right-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &width {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {:>w$} ", h, w = width[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "| {:>w$} ", c, w = width[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

/// Format a float with 2 decimal places (common cell helper).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format picoseconds as microseconds with 1 decimal.
pub fn ps_as_us(ps: u64) -> String {
    format!("{:.1}", ps as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["flow", "gbps"]);
        t.row(["A->B", "2.51"]).row(["F->E", "7.55"]);
        let s = t.render();
        assert!(s.contains("| flow | gbps |"));
        assert!(s.contains("| A->B | 2.51 |"));
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines same width"
        );
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
