//! The world-level flow-completion sink.
//!
//! Endpoints used to hold their final statistics until a post-run
//! harvest sweep downcast every endpoint of every host — which forces
//! per-flow state to live as long as the world, O(total arrivals). With a
//! [`CompletionSink`] registered on each host, a finishing endpoint
//! reports `(flow, fct, delivered_bytes)` the instant it completes (via
//! [`crate::host::EndpointCtx::complete`], which routes through the
//! engine's deferred-op queue), so the harness can stream results into
//! its metrics and free the endpoint immediately. Live state then tracks
//! flows *in flight*, not flows ever offered.

use std::any::Any;

use ndp_sim::{Component, Ctx, Event, Time};

use crate::packet::{FlowId, HostId, Packet};

/// One completed flow, as reported by its receiving endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDone {
    pub flow: FlowId,
    /// The reporting (receiver-side) host.
    pub host: HostId,
    /// Absolute completion instant.
    pub completed_at: Time,
    /// Receiver-measured completion time (first arrival → done).
    pub fct: Time,
    pub delivered_bytes: u64,
}

/// Collects [`FlowDone`] records as flows finish. The consumer (an
/// experiment runner) drains [`CompletionSink::take_done`] periodically —
/// between run chunks or after the run — so the buffer holds one drain
/// interval's completions, not the whole campaign's. A consumer that only
/// needs the lifetime totals should build the sink with
/// [`CompletionSink::totals_only`] and skip per-record buffering entirely.
pub struct CompletionSink {
    done: Vec<FlowDone>,
    buffer_records: bool,
    /// Flows reported over the sink's lifetime (not reset by drains).
    pub total_flows: u64,
    /// Payload bytes those flows delivered.
    pub total_bytes: u64,
}

impl Default for CompletionSink {
    fn default() -> CompletionSink {
        CompletionSink::new()
    }
}

impl CompletionSink {
    pub fn new() -> CompletionSink {
        CompletionSink {
            done: Vec::new(),
            buffer_records: true,
            total_flows: 0,
            total_bytes: 0,
        }
    }

    /// A sink that keeps only the lifetime counters — for consumers that
    /// never read individual [`FlowDone`] records, completions cost two
    /// counter bumps instead of a buffered record.
    pub fn totals_only() -> CompletionSink {
        CompletionSink {
            buffer_records: false,
            ..CompletionSink::new()
        }
    }

    /// Record one completion (called from a deferred world op).
    pub fn record(&mut self, rec: FlowDone) {
        self.total_flows += 1;
        self.total_bytes += rec.delivered_bytes;
        if self.buffer_records {
            self.done.push(rec);
        }
    }

    /// Take everything reported since the last drain.
    pub fn take_done(&mut self) -> Vec<FlowDone> {
        std::mem::take(&mut self.done)
    }

    /// Records currently buffered (i.e. not yet drained).
    pub fn pending(&self) -> usize {
        self.done.len()
    }
}

impl Component<Packet> for CompletionSink {
    fn handle(&mut self, _ev: Event<Packet>, _ctx: &mut Ctx<'_, Packet>) {
        // Passive: records arrive through deferred ops, not events.
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_accumulates_and_drains() {
        let mut s = CompletionSink::new();
        let rec = |flow, bytes| FlowDone {
            flow,
            host: 0,
            completed_at: Time::from_us(flow),
            fct: Time::from_us(1),
            delivered_bytes: bytes,
        };
        s.record(rec(1, 100));
        s.record(rec(2, 50));
        assert_eq!(s.pending(), 2);
        let batch = s.take_done();
        assert_eq!(batch.len(), 2);
        assert_eq!(s.pending(), 0);
        s.record(rec(3, 10));
        assert_eq!(s.take_done().len(), 1);
        // Lifetime totals survive drains.
        assert_eq!(s.total_flows, 3);
        assert_eq!(s.total_bytes, 160);
        // Totals-only mode never buffers records.
        let mut t = CompletionSink::totals_only();
        t.record(rec(4, 25));
        t.record(rec(5, 25));
        assert_eq!(t.pending(), 0);
        assert_eq!(t.total_flows, 2);
        assert_eq!(t.total_bytes, 50);
    }
}
