//! The packet flight recorder: an opt-in bounded ring of per-hop records.
//!
//! A [`FlightRecorder`] is shared (behind `Arc<Mutex<..>>`) between the
//! harness that will read it and the [`crate::queue::Queue`]s /
//! [`crate::switch::Switch`]es it observes. Each observed component holds
//! a [`FlightHook`] — the recorder handle plus a small integer tag that
//! identifies *which* queue or switch a record came from (the harness maps
//! tags back to human-readable labels at export time).
//!
//! Determinism and cost contract:
//!
//! * a hook never posts events, draws RNG, or touches simulated time
//!   beyond reading the timestamp it is handed — attaching hooks cannot
//!   perturb a run's golden trace;
//! * components without a hook pay one `Option` branch per hop record
//!   site (`None` in every run that never opted in);
//! * the ring is bounded: once `capacity` records are held the oldest is
//!   evicted and counted, so a long run's memory stays O(capacity).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use ndp_sim::Time;

use crate::packet::{FlowId, HostId, Packet};

/// What happened to a packet at one hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// Arrived at a queue (admission outcome recorded separately).
    Enqueue,
    /// Finished serializing and was handed downstream.
    Dequeue,
    /// Payload cut off (NDP/CP trimming).
    Trim,
    /// Header returned to its sender (§3.2.4 return-to-sender).
    Bounce,
    /// Dropped by admission (full queue).
    Drop,
    /// Lost to a dead link (buffer flush, on-wire loss, down arrival).
    DropDown,
    /// ECN CE mark applied.
    EcnMark,
    /// Steered off a dead port onto a live equivalent by a switch.
    Reroute,
}

impl HopKind {
    /// Stable lowercase name used in NDJSON and Chrome trace output.
    pub fn name(self) -> &'static str {
        match self {
            HopKind::Enqueue => "enqueue",
            HopKind::Dequeue => "dequeue",
            HopKind::Trim => "trim",
            HopKind::Bounce => "bounce",
            HopKind::Drop => "drop",
            HopKind::DropDown => "drop_down",
            HopKind::EcnMark => "ecn_mark",
            HopKind::Reroute => "reroute",
        }
    }
}

/// One structured hop record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    pub at: Time,
    /// Which observed component produced this record (harness-assigned).
    pub tag: u32,
    pub kind: HopKind,
    pub flow: FlowId,
    pub src: HostId,
    pub dst: HostId,
    pub seq: u64,
    /// Wire bytes at the instant of the record (post-trim for trims).
    pub size: u32,
}

/// Record admission filter. Default: keep everything. Restricting by
/// flow/host bounds what a busy victim queue writes into the ring.
#[derive(Clone, Debug, Default)]
pub struct FlightFilter {
    /// Keep only these flows (empty = all flows).
    pub flows: Vec<FlowId>,
    /// Keep only records whose src *or* dst is one of these hosts
    /// (empty = all hosts).
    pub hosts: Vec<HostId>,
}

impl FlightFilter {
    fn admits(&self, r: &HopRecord) -> bool {
        (self.flows.is_empty() || self.flows.contains(&r.flow))
            && (self.hosts.is_empty() || self.hosts.contains(&r.src) || self.hosts.contains(&r.dst))
    }
}

/// The bounded ring itself.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<HopRecord>,
    capacity: usize,
    filter: FlightFilter,
    /// Records pushed out of the ring to make room (reported so a
    /// truncated trace never masquerades as a complete one).
    pub evicted: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            filter: FlightFilter::default(),
            evicted: 0,
        }
    }

    pub fn with_filter(capacity: usize, filter: FlightFilter) -> FlightRecorder {
        let mut r = FlightRecorder::new(capacity);
        r.filter = filter;
        r
    }

    pub fn push(&mut self, r: HopRecord) {
        if !self.filter.admits(&r) {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(r);
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// All held records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &HopRecord> {
        self.ring.iter()
    }

    /// The records touching one flow, oldest first — the "dump the
    /// flight of a stuck flow" query.
    pub fn records_for_flow(&self, flow: FlowId) -> Vec<HopRecord> {
        self.ring
            .iter()
            .filter(|r| r.flow == flow)
            .copied()
            .collect()
    }

    /// Drain every record out, oldest first (harvest at end of run).
    pub fn take(&mut self) -> Vec<HopRecord> {
        self.ring.drain(..).collect()
    }
}

/// The handle a queue or switch holds: shared recorder + its own tag.
#[derive(Clone)]
pub struct FlightHook {
    rec: Arc<Mutex<FlightRecorder>>,
    tag: u32,
}

impl FlightHook {
    pub fn new(rec: Arc<Mutex<FlightRecorder>>, tag: u32) -> FlightHook {
        FlightHook { rec, tag }
    }

    /// Record one hop. Poisoned-lock recovery is deliberate: telemetry
    /// must never turn a panicking test into a deadlocked one.
    pub fn record(&self, kind: HopKind, at: Time, pkt: &Packet) {
        let mut rec = match self.rec.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        rec.push(HopRecord {
            at,
            tag: self.tag,
            kind,
            flow: pkt.flow,
            src: pkt.src,
            dst: pkt.dst,
            seq: u64::from(pkt.seq),
            size: pkt.size,
        });
    }
}

/// `Debug` without dumping the shared ring (printing it while a
/// component holds the lock would deadlock).
impl std::fmt::Debug for FlightHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightHook")
            .field("tag", &self.tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn rec(flow: FlowId, src: HostId) -> HopRecord {
        HopRecord {
            at: Time::from_us(1),
            tag: 0,
            kind: HopKind::Enqueue,
            flow,
            src,
            dst: 9,
            seq: 0,
            size: 1500,
        }
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.push(rec(i, 0));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted, 2);
        let flows: Vec<FlowId> = r.records().map(|h| h.flow).collect();
        assert_eq!(flows, vec![2, 3, 4], "oldest records evicted first");
    }

    #[test]
    fn filter_by_flow_and_host() {
        let mut r = FlightRecorder::with_filter(
            16,
            FlightFilter {
                flows: vec![7],
                hosts: Vec::new(),
            },
        );
        r.push(rec(7, 0));
        r.push(rec(8, 0));
        assert_eq!(r.len(), 1);

        let mut h = FlightRecorder::with_filter(
            16,
            FlightFilter {
                flows: Vec::new(),
                hosts: vec![3],
            },
        );
        h.push(rec(1, 3)); // src matches
        h.push(rec(2, 0)); // dst 9, no match
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn per_flow_dump_preserves_order() {
        let mut r = FlightRecorder::new(16);
        for (i, flow) in [(0u64, 1u64), (1, 2), (2, 1), (3, 1)] {
            let mut h = rec(flow, 0);
            h.seq = i;
            r.push(h);
        }
        let dumped = r.records_for_flow(1);
        let seqs: Vec<u64> = dumped.iter().map(|h| h.seq).collect();
        assert_eq!(seqs, vec![0, 2, 3]);
    }

    #[test]
    fn hook_records_packet_fields() {
        let shared = Arc::new(Mutex::new(FlightRecorder::new(8)));
        let hook = FlightHook::new(shared.clone(), 42);
        let pkt = Packet::data(3, 5, 77, 9, 1500);
        hook.record(HopKind::Trim, Time::from_us(2), &pkt);
        let r = shared.lock().unwrap();
        let h = r.records().next().expect("one record");
        assert_eq!(
            (h.tag, h.kind, h.flow, h.src, h.dst, h.seq),
            (42, HopKind::Trim, 77, 3, 5, 9)
        );
    }
}
