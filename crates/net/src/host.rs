//! End hosts: transport endpoints, the shared NDP pull queue and pacer,
//! and the host latency model used to reproduce the testbed figures.
//!
//! A [`Host`] owns one [`Endpoint`] state machine per flow terminating or
//! originating here. Crucially for NDP, a receiver has **one pull queue
//! shared by all connections** (§3.2): the host, not the connection, paces
//! PULL packets so that the data they elicit arrives at the receiver's link
//! rate, with fair queuing between connections and strict priority for
//! flows the application marked important.
//!
//! The host latency model reproduces the real-world artefacts the paper
//! measures in §5/§6: fixed per-packet processing cost, deep-sleep wake-up
//! latency (the ≈160 µs C-state penalty that dominates Figure 8), and
//! imperfect pull spacing (Figures 12/13).

use std::any::Any;
use std::collections::VecDeque;

use ndp_sim::{Component, ComponentId, Ctx, Event, FxHashMap, Speed, Time};
use rand::Rng;

use crate::packet::{Flags, FlowId, HostId, Packet, PacketKind};

/// Timer token endpoints may use (0 is reserved for flow start).
pub const TOKEN_START: u8 = 0;

const WAKE_PACER: u64 = u64::MAX;
const WAKE_PROC: u64 = u64::MAX - 1;

/// Maximum segment lifetime for the time-wait table (§3.2.2: "under 1 ms").
pub const MSL: Time = Time::from_ms(1);

/// Priority class for the receiver's pull queue (§3.2: fair by default,
/// strict prioritization on request).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PullPriority {
    High = 0,
    Normal = 1,
}

/// A transport state machine bound to one flow on one host.
pub trait Endpoint: Send {
    /// The flow's start trigger fired (scheduled by the harness).
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>);
    /// A packet for this flow arrived (after host processing delays).
    fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>);
    /// A timer set through [`EndpointCtx::timer_in`] fired.
    fn on_timer(&mut self, token: u8, ctx: &mut EndpointCtx<'_, '_>);
    fn as_any(&self) -> &dyn Any;
}

/// Piecewise-linear inverse-CDF for sampling pull-spacing multipliers
/// (Figure 12's measured distribution, reproduced synthetically).
#[derive(Clone, Debug)]
pub struct JitterDist {
    /// (cumulative probability, interval multiplier), sorted by probability.
    points: Vec<(f64, f64)>,
}

impl JitterDist {
    pub fn new(points: Vec<(f64, f64)>) -> JitterDist {
        assert!(points.len() >= 2);
        assert!((points[0].0 - 0.0).abs() < 1e-9 && (points.last().unwrap().0 - 1.0).abs() < 1e-9);
        JitterDist { points }
    }

    /// Synthetic stand-in for the measured 1500 B pull spacing of Fig. 12:
    /// the median matches the 1.2 µs target but there is real variance —
    /// a fifth of gaps are nearly back-to-back, and a small tail stretches
    /// to several times the target.
    pub fn measured_1500b() -> JitterDist {
        JitterDist::new(vec![
            (0.0, 0.25),
            (0.2, 0.55),
            (0.5, 1.0),
            (0.8, 1.35),
            (0.95, 2.2),
            (0.99, 4.0),
            (1.0, 8.0),
        ])
    }

    /// 9000 B packets give the pacer 7.2 µs of slack, so measured spacing is
    /// tight around the target (Fig. 12's right curve).
    pub fn measured_9000b() -> JitterDist {
        JitterDist::new(vec![
            (0.0, 0.9),
            (0.4, 0.98),
            (0.6, 1.02),
            (0.95, 1.1),
            (1.0, 1.4),
        ])
    }

    pub fn sample(&self, rng: &mut rand::rngs::SmallRng) -> f64 {
        let u: f64 = rng.gen();
        let mut prev = self.points[0];
        for &pt in &self.points[1..] {
            if u <= pt.0 {
                let span = pt.0 - prev.0;
                let f = if span <= 0.0 {
                    0.0
                } else {
                    (u - prev.0) / span
                };
                return prev.1 + f * (pt.1 - prev.1);
            }
            prev = pt;
        }
        self.points.last().unwrap().1
    }
}

/// Host-level latency artefacts (all zero for the "perfect" simulator).
#[derive(Clone, Debug)]
pub struct HostLatency {
    /// Per-packet receive processing (stack traversal, copies).
    pub rx_delay: Time,
    /// Per-packet transmit processing.
    pub tx_delay: Time,
    /// Extra wake-up latency paid when the host has been idle longer than
    /// `sleep_after` (models deep C-states; ≈160 µs in the paper).
    pub wake_latency: Time,
    pub sleep_after: Time,
    /// Imperfect pull pacing (multiplies the nominal pull interval).
    pub pull_jitter: Option<JitterDist>,
}

impl Default for HostLatency {
    fn default() -> HostLatency {
        HostLatency {
            rx_delay: Time::ZERO,
            tx_delay: Time::ZERO,
            wake_latency: Time::ZERO,
            sleep_after: Time::MAX,
            pull_jitter: None,
        }
    }
}

impl HostLatency {
    /// A DPDK-style polling host: small constant per-packet cost, no sleep.
    pub fn dpdk() -> HostLatency {
        HostLatency {
            rx_delay: Time::from_us(2),
            tx_delay: Time::from_us(2),
            ..Default::default()
        }
    }

    /// An interrupt-driven kernel stack with deep sleep states enabled
    /// (Fig. 8's default TCP/TFO curves).
    pub fn kernel_deep_sleep() -> HostLatency {
        HostLatency {
            rx_delay: Time::from_us(10),
            tx_delay: Time::from_us(5),
            wake_latency: Time::from_us(160),
            sleep_after: Time::from_us(50),
            pull_jitter: None,
        }
    }

    /// Kernel stack with C-states capped at C1 (Fig. 8's "no sleep" curves).
    pub fn kernel_no_sleep() -> HostLatency {
        HostLatency {
            rx_delay: Time::from_us(10),
            tx_delay: Time::from_us(5),
            ..Default::default()
        }
    }
}

struct FlowPull {
    pending: u32,
    ctr: u64,
    peer: HostId,
    prio: PullPriority,
    in_rr: bool,
    cancelled: bool,
}

/// The single per-host pull queue shared by every connection (§3.2).
#[derive(Default)]
struct PullQueue {
    flows: FxHashMap<FlowId, FlowPull>,
    rr: [VecDeque<FlowId>; 2],
    /// Sum of `pending` over all flows. `has_pending` runs on every data
    /// packet (the pacer re-arm check), so it must not scan the flow map —
    /// with hundreds of live flows that scan dominates the RX path.
    pending_total: u64,
}

impl PullQueue {
    fn request(&mut self, flow: FlowId, peer: HostId, prio: PullPriority) {
        let e = self.flows.entry(flow).or_insert(FlowPull {
            pending: 0,
            ctr: 0,
            peer,
            prio,
            in_rr: false,
            cancelled: false,
        });
        e.cancelled = false;
        e.prio = prio;
        e.pending += 1;
        self.pending_total += 1;
        if !e.in_rr {
            e.in_rr = true;
            self.rr[prio as usize].push_back(flow);
        }
    }

    /// §3.2: when the last packet of a transfer arrives, the receiver
    /// removes any pull packets for that sender from its pull queue.
    fn cancel(&mut self, flow: FlowId) {
        if let Some(e) = self.flows.get_mut(&flow) {
            self.pending_total -= u64::from(e.pending);
            e.pending = 0;
            e.cancelled = true;
        }
    }

    fn has_pending(&self) -> bool {
        self.pending_total > 0
    }

    /// Drop all state for a flow (endpoint retirement), including any
    /// queued round-robin slot — a later flow reusing the id must start
    /// with a clean single slot in its own priority class.
    fn remove(&mut self, flow: FlowId) {
        if let Some(e) = self.flows.remove(&flow) {
            self.pending_total -= u64::from(e.pending);
            if e.in_rr {
                for q in &mut self.rr {
                    q.retain(|&f| f != flow);
                }
            }
        }
    }

    /// Next pull to emit: (flow, peer, counter-value). Round robin within
    /// the highest non-empty priority class.
    fn pop(&mut self) -> Option<(FlowId, HostId, u64)> {
        for class in 0..2 {
            while let Some(flow) = self.rr[class].pop_front() {
                let e = self.flows.get_mut(&flow).expect("rr entry without flow");
                if e.pending == 0 {
                    e.in_rr = false;
                    continue;
                }
                e.pending -= 1;
                self.pending_total -= 1;
                e.ctr += 1;
                let out = (flow, e.peer, e.ctr);
                if e.pending > 0 {
                    self.rr[class].push_back(flow);
                } else {
                    e.in_rr = false;
                }
                return Some(out);
            }
        }
        None
    }
}

/// Book-keeping counters for a host.
#[derive(Clone, Debug, Default)]
pub struct HostStats {
    pub delivered_pkts: u64,
    pub delivered_payload_bytes: u64,
    pub pulls_sent: u64,
    pub unknown_flow_drops: u64,
    pub timewait_rejects: u64,
    /// Timestamps (ps) of pull emissions, recorded when tracing is enabled
    /// (Figure 12 measures inter-pull gaps at the sender).
    pub pull_times: Vec<u64>,
}

/// Everything about a host except its endpoints (split for borrow hygiene).
struct HostCore {
    id: HostId,
    nic: ComponentId,
    link_rate: Speed,
    mtu: u32,
    /// Memoized `link_rate.tx_time(mtu)` — the pull pacer tick. Computed
    /// once at construction (both inputs are fixed for a host's lifetime)
    /// so the per-pull hot path pays no division.
    pull_tick: Time,
    latency: HostLatency,
    pull: PullQueue,
    pacer_armed: bool,
    next_pull_at: Time,
    last_rx: Time,
    trace_pulls: bool,
    time_wait: FxHashMap<FlowId, Time>,
    /// Time-wait entries in expiry order (expiries are monotone: always
    /// `now + MSL`), so the table purges itself in O(1) amortized instead
    /// of growing with every connection ever closed.
    time_wait_order: VecDeque<(FlowId, Time)>,
    /// Optional goodput trace: (bucket width, delivered bytes per bucket).
    rx_trace: Option<(Time, Vec<u64>)>,
    /// World-level [`crate::completion::CompletionSink`], if the harness
    /// registered one; completing endpoints report through it.
    completion_sink: Option<ComponentId>,
    /// Same-tick transmit burst being assembled during one endpoint
    /// dispatch. All packets share the NIC target and `tx_delay`, so the
    /// whole window goes out as one scheduler train instead of one post
    /// per packet — flushed before any other post so the train occupies
    /// exactly the consecutive sequence numbers the individual posts
    /// would have held.
    tx_train: Vec<Packet>,
    pub stats: HostStats,
}

impl HostCore {
    fn pull_interval(&self) -> Time {
        self.pull_tick
    }

    fn emit_pull(&mut self, sim: &mut Ctx<'_, Packet>) {
        let Some((flow, peer, ctr)) = self.pull.pop() else {
            return;
        };
        let mut p = Packet::control(self.id, peer, flow, PacketKind::Pull);
        p.ack = Packet::ack32(ctr);
        // Spray pulls across paths; routers reduce the tag modulo fan-out.
        p.path = sim.rng().gen();
        sim.send(self.nic, p, self.latency.tx_delay);
        self.stats.pulls_sent += 1;
        if self.trace_pulls {
            self.stats.pull_times.push(sim.now().as_ps());
        }
        let base = self.pull_interval();
        let gap = match &self.latency.pull_jitter {
            Some(d) => {
                let m = d.sample(sim.rng());
                Time::from_ps((base.as_ps() as f64 * m) as u64)
            }
            None => base,
        };
        self.next_pull_at = sim.now() + gap;
    }

    fn flush_tx(&mut self, sim: &mut Ctx<'_, Packet>) {
        match self.tx_train.len() {
            0 => {}
            // The dominant case — one data packet per pull — posts plainly
            // and keeps the buffer's capacity, so the steady-state TX path
            // stays allocation-free.
            1 => {
                let pkt = self.tx_train.pop().expect("len checked");
                sim.send(self.nic, pkt, self.latency.tx_delay);
            }
            // A real burst (initial window, retransmission sweep): hand the
            // buffer over as one scheduler train and restage from the
            // scheduler's free list, so steady-state bursts recycle spent
            // train buffers instead of allocating.
            _ => {
                let train = std::mem::replace(&mut self.tx_train, sim.train_buf());
                sim.send_train(self.nic, train, self.latency.tx_delay);
            }
        }
    }

    fn arm_pacer(&mut self, sim: &mut Ctx<'_, Packet>) {
        if self.pacer_armed || !self.pull.has_pending() {
            return;
        }
        self.pacer_armed = true;
        let at = self.next_pull_at.max(sim.now());
        sim.wake_at(at, WAKE_PACER);
    }
}

/// Context handed to endpoints during dispatch.
pub struct EndpointCtx<'a, 'b> {
    sim: &'a mut Ctx<'b, Packet>,
    core: &'a mut HostCore,
    flow: FlowId,
}

impl<'a, 'b> EndpointCtx<'a, 'b> {
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    pub fn rng(&mut self) -> &mut rand::rngs::SmallRng {
        self.sim.rng()
    }

    /// This host's id.
    pub fn host(&self) -> HostId {
        self.core.id
    }

    /// This host's link rate (transports may derive windows from it).
    pub fn link_rate(&self) -> Speed {
        self.core.link_rate
    }

    pub fn mtu(&self) -> u32 {
        self.core.mtu
    }

    /// Transmit a packet through the host NIC. Consecutive sends within
    /// one endpoint callback are coalesced into a single scheduler train
    /// (burst batching); delivery times and order are unchanged.
    pub fn send(&mut self, mut pkt: Packet) {
        if pkt.sent == Time::ZERO {
            pkt.sent = self.sim.now();
        }
        self.core.tx_train.push(pkt);
    }

    /// Arm a flow-local timer; it arrives back via [`Endpoint::on_timer`].
    pub fn timer_in(&mut self, delay: Time, token: u8) {
        debug_assert!(token != TOKEN_START, "token 0 is reserved for start");
        self.core.flush_tx(self.sim);
        self.sim.wake_in(delay, (self.flow << 8) | token as u64);
    }

    /// Queue a PULL towards `peer` for this flow (the host pacer sends it).
    pub fn pull_request(&mut self, peer: HostId, prio: PullPriority) {
        self.core.flush_tx(self.sim);
        self.core.pull.request(self.flow, peer, prio);
        self.core.arm_pacer(self.sim);
    }

    /// Cancel all queued pulls for this flow (§3.2 last-packet behaviour).
    pub fn pull_cancel(&mut self) {
        self.core.pull.cancel(self.flow);
    }

    /// Record goodput delivered to the application on this host.
    pub fn account_delivered(&mut self, payload_bytes: u64) {
        self.core.stats.delivered_payload_bytes += payload_bytes;
        if let Some((bucket, buckets)) = &mut self.core.rx_trace {
            let idx = (self.sim.now().as_ps() / bucket.as_ps()) as usize;
            if buckets.len() <= idx {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] += payload_bytes;
        }
    }

    /// Completion (or other milestone) notification to a harness component.
    pub fn notify(&mut self, target: ComponentId, token: u64) {
        self.core.flush_tx(self.sim);
        self.sim.wake_other(target, Time::ZERO, token);
    }

    /// Report this flow as finished to the world-level
    /// [`crate::completion::CompletionSink`], if the harness registered
    /// one (no-op otherwise). `fct` is the receiver-measured completion
    /// time; the record lands in the sink through the engine's deferred-op
    /// queue, immediately after the current dispatch.
    pub fn complete(&mut self, delivered_bytes: u64, fct: Time) {
        self.core.flush_tx(self.sim);
        let Some(sink) = self.core.completion_sink else {
            return;
        };
        let rec = crate::completion::FlowDone {
            flow: self.flow,
            host: self.core.id,
            completed_at: self.sim.now(),
            fct,
            delivered_bytes,
        };
        self.sim.defer(move |w| {
            w.get_mut::<crate::completion::CompletionSink>(sink)
                .record(rec);
        });
    }

    /// Enter time-wait: reject duplicate connection attempts for one MSL
    /// (§3.2.2 at-most-once semantics).
    pub fn enter_time_wait(&mut self) {
        let now = self.sim.now();
        let until = now + MSL;
        self.core.time_wait.insert(self.flow, until);
        self.core.time_wait_order.push_back((self.flow, until));
        // Opportunistically purge expired entries so the table tracks
        // connections inside the MSL window, not every flow ever closed.
        while let Some(&(flow, exp)) = self.core.time_wait_order.front() {
            if exp > now {
                break;
            }
            self.core.time_wait_order.pop_front();
            // Only drop the map entry if it wasn't refreshed since.
            if self.core.time_wait.get(&flow) == Some(&exp) {
                self.core.time_wait.remove(&flow);
            }
        }
    }
}

/// The host component.
pub struct Host {
    core: HostCore,
    endpoints: FxHashMap<FlowId, Box<dyn Endpoint>>,
    /// Packets waiting out host processing delay (FIFO, fixed delay).
    proc_q: VecDeque<(Time, Packet)>,
}

impl Host {
    pub fn new(id: HostId, nic: ComponentId, link_rate: Speed, mtu: u32) -> Host {
        Host {
            core: HostCore {
                id,
                nic,
                link_rate,
                mtu,
                pull_tick: link_rate.tx_time(mtu as u64),
                latency: HostLatency::default(),
                pull: PullQueue::default(),
                pacer_armed: false,
                next_pull_at: Time::ZERO,
                last_rx: Time::ZERO,
                trace_pulls: false,
                time_wait: FxHashMap::default(),
                time_wait_order: VecDeque::new(),
                rx_trace: None,
                completion_sink: None,
                tx_train: Vec::new(),
                stats: HostStats::default(),
            },
            endpoints: FxHashMap::default(),
            proc_q: VecDeque::new(),
        }
    }

    pub fn with_latency(mut self, latency: HostLatency) -> Host {
        self.core.latency = latency;
        self
    }

    /// Record pull emission timestamps (Fig. 12 analysis).
    pub fn trace_pulls(&mut self, on: bool) {
        self.core.trace_pulls = on;
    }

    /// Record delivered goodput into `bucket`-wide time buckets
    /// (Fig. 19's goodput-vs-time traces).
    pub fn enable_rx_trace(&mut self, bucket: Time) {
        self.core.rx_trace = Some((bucket, Vec::new()));
    }

    /// Harvest the goodput trace: (bucket width, bytes per bucket).
    pub fn rx_trace(&self) -> Option<(Time, &[u64])> {
        self.core.rx_trace.as_ref().map(|(b, v)| (*b, v.as_slice()))
    }

    pub fn id(&self) -> HostId {
        self.core.id
    }

    /// This host's NIC link rate.
    pub fn link_rate(&self) -> Speed {
        self.core.link_rate
    }

    pub fn stats(&self) -> &HostStats {
        &self.core.stats
    }

    /// Route completion reports from this host's endpoints to a
    /// world-level [`crate::completion::CompletionSink`].
    pub fn set_completion_sink(&mut self, sink: ComponentId) {
        self.core.completion_sink = Some(sink);
    }

    pub fn add_endpoint(&mut self, flow: FlowId, ep: Box<dyn Endpoint>) {
        let prev = self.endpoints.insert(flow, ep);
        assert!(prev.is_none(), "flow {flow} already registered on host");
    }

    /// Retire a flow's endpoint: free its state machine and purge its pull
    /// queue entry. Events still in flight for the flow are dropped by the
    /// dispatch miss path (and duplicate SYNs by time-wait), so removal is
    /// safe mid-run. Returns the endpoint for final harvesting.
    pub fn remove_endpoint(&mut self, flow: FlowId) -> Option<Box<dyn Endpoint>> {
        self.core.pull.remove(flow);
        self.endpoints.remove(&flow)
    }

    /// Number of endpoints currently attached (the per-host live-flow
    /// gauge).
    pub fn n_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// Downcast an endpoint for post-run harvesting.
    pub fn endpoint<T: 'static>(&self, flow: FlowId) -> &T {
        self.endpoints
            .get(&flow)
            .unwrap_or_else(|| panic!("no endpoint for flow {flow}"))
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("endpoint for flow {flow} has unexpected type"))
    }

    pub fn flows(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.endpoints.keys().copied()
    }

    fn dispatch<F>(&mut self, flow: FlowId, sim: &mut Ctx<'_, Packet>, f: F)
    where
        F: FnOnce(&mut dyn Endpoint, &mut EndpointCtx<'_, '_>),
    {
        // Split borrow: the endpoint entry and the host core are disjoint
        // fields, so the endpoint stays in the map while it borrows the
        // core (the seed removed and re-inserted it around every dispatch).
        let Host {
            core, endpoints, ..
        } = self;
        let Some(ep) = endpoints.get_mut(&flow) else {
            core.stats.unknown_flow_drops += 1;
            return;
        };
        {
            let mut ctx = EndpointCtx { sim, core, flow };
            f(ep.as_mut(), &mut ctx);
        }
        core.flush_tx(sim);
        core.arm_pacer(sim);
    }

    /// Stage a packet behind the host's modelled processing/wake delay.
    /// Out of line: only latency-modelled hosts (Fig. 8/12 runs) take it.
    #[inline(never)]
    fn rx_delayed(&mut self, pkt: Packet, delay: Time, sim: &mut Ctx<'_, Packet>) {
        let at = sim.now() + delay;
        self.proc_q.push_back((at, pkt));
        sim.wake_at(at, WAKE_PROC);
    }

    fn deliver(&mut self, pkt: Packet, sim: &mut Ctx<'_, Packet>) {
        self.core.stats.delivered_pkts += 1;
        let flow = pkt.flow;
        let Host {
            core, endpoints, ..
        } = self;
        // One map lookup per packet: the hot path goes straight to the
        // endpoint; the miss path handles §3.2.2 time-wait rejection.
        let Some(ep) = endpoints.get_mut(&flow) else {
            if pkt.kind == PacketKind::Data && pkt.flags.has(Flags::SYN) {
                if let Some(&until) = core.time_wait.get(&flow) {
                    if sim.now() < until {
                        core.stats.timewait_rejects += 1;
                        return;
                    }
                }
            }
            core.stats.unknown_flow_drops += 1;
            return;
        };
        {
            let mut ctx = EndpointCtx { sim, core, flow };
            ep.on_packet(pkt, &mut ctx);
        }
        core.flush_tx(sim);
        core.arm_pacer(sim);
    }
}

impl Component<Packet> for Host {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        match ev {
            // The hot arm: packet arrival. The perfect-host model (all
            // latency artefacts zero) delivers straight to the endpoint;
            // modelled rx/wake delays take the out-of-line staging path.
            Event::Msg(pkt) => {
                let lat = &self.core.latency;
                let mut delay = lat.rx_delay;
                if lat.wake_latency > Time::ZERO
                    && ctx.now().saturating_sub(self.core.last_rx) > lat.sleep_after
                {
                    delay += lat.wake_latency;
                }
                self.core.last_rx = ctx.now() + delay;
                if delay.is_zero() {
                    self.deliver(pkt, ctx);
                } else {
                    self.rx_delayed(pkt, delay, ctx);
                }
            }
            Event::Wake(WAKE_PROC) => {
                while let Some(&(at, _)) = self.proc_q.front() {
                    if at > ctx.now() {
                        break;
                    }
                    let (_, pkt) = self.proc_q.pop_front().expect("peeked");
                    self.deliver(pkt, ctx);
                }
            }
            Event::Wake(WAKE_PACER) => {
                self.core.pacer_armed = false;
                if self.core.next_pull_at > ctx.now() {
                    // Rescheduled earlier than allowed; re-arm.
                    self.core.arm_pacer(ctx);
                    return;
                }
                self.core.emit_pull(ctx);
                self.core.arm_pacer(ctx);
            }
            Event::Wake(tok) => {
                let flow = tok >> 8;
                let token = (tok & 0xff) as u8;
                if token == TOKEN_START as u64 as u8 {
                    self.dispatch(flow, ctx, |ep, c| ep.on_start(c));
                } else {
                    self.dispatch(flow, ctx, |ep, c| ep.on_timer(token, c));
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_sim::World;

    struct Probe {
        started: bool,
        pkts: Vec<Packet>,
        timers: Vec<u8>,
        pulls_on_start: u32,
    }
    impl Probe {
        fn new() -> Probe {
            Probe {
                started: false,
                pkts: vec![],
                timers: vec![],
                pulls_on_start: 0,
            }
        }
    }
    impl Endpoint for Probe {
        fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
            self.started = true;
            for _ in 0..self.pulls_on_start {
                ctx.pull_request(9, PullPriority::Normal);
            }
            ctx.timer_in(Time::from_us(5), 42);
        }
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut EndpointCtx<'_, '_>) {
            self.pkts.push(pkt);
        }
        fn on_timer(&mut self, token: u8, _ctx: &mut EndpointCtx<'_, '_>) {
            self.timers.push(token);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    struct NicSink {
        got: Vec<(Time, Packet)>,
    }
    impl Component<Packet> for NicSink {
        fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
            if let Event::Msg(p) = ev {
                self.got.push((ctx.now(), p));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn setup(pulls: u32) -> (World<Packet>, ComponentId, ComponentId) {
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000);
        let mut p = Probe::new();
        p.pulls_on_start = pulls;
        h.add_endpoint(7, Box::new(p));
        let host = w.add(h);
        (w, host, nic)
    }

    #[test]
    fn start_and_timers_reach_endpoint() {
        let (mut w, host, _) = setup(0);
        w.post_wake(Time::from_us(1), host, 7 << 8);
        w.run_until_idle();
        let h = w.get::<Host>(host);
        let p: &Probe = h.endpoint(7);
        assert!(p.started);
        assert_eq!(p.timers, vec![42]);
    }

    #[test]
    fn packets_dispatch_by_flow() {
        let (mut w, host, _) = setup(0);
        w.post(Time::ZERO, host, Packet::data(1, 0, 7, 3, 9000));
        w.post(Time::ZERO, host, Packet::data(1, 0, 999, 0, 9000)); // unknown
        w.run_until_idle();
        let h = w.get::<Host>(host);
        let p: &Probe = h.endpoint(7);
        assert_eq!(p.pkts.len(), 1);
        assert_eq!(h.stats().unknown_flow_drops, 1);
    }

    #[test]
    fn pacer_spaces_pulls_at_link_rate() {
        let (mut w, host, nic) = setup(5);
        w.post_wake(Time::ZERO, host, 7 << 8);
        w.run_until_idle();
        let sink = w.get::<NicSink>(nic);
        let pulls: Vec<Time> = sink
            .got
            .iter()
            .filter(|(_, p)| p.kind == PacketKind::Pull)
            .map(|(t, _)| *t)
            .collect();
        assert_eq!(pulls.len(), 5);
        // 9 KB at 10 Gb/s = 7.2 us between pulls; the first goes immediately.
        assert_eq!(pulls[0], Time::ZERO);
        for i in 1..5 {
            assert_eq!(pulls[i] - pulls[i - 1], Time::from_ns(7_200));
        }
        // Pull counters increment per flow.
        let ctrs: Vec<u32> = sink
            .got
            .iter()
            .filter(|(_, p)| p.kind == PacketKind::Pull)
            .map(|(_, p)| p.ack)
            .collect();
        assert_eq!(ctrs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pull_cancel_discards_pending() {
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        struct CancelProbe;
        impl Endpoint for CancelProbe {
            fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
                for _ in 0..10 {
                    ctx.pull_request(9, PullPriority::Normal);
                }
                ctx.pull_cancel();
            }
            fn on_packet(&mut self, _p: Packet, _c: &mut EndpointCtx<'_, '_>) {}
            fn on_timer(&mut self, _t: u8, _c: &mut EndpointCtx<'_, '_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000);
        h.add_endpoint(7, Box::new(CancelProbe));
        let host = w.add(h);
        w.post_wake(Time::ZERO, host, 7 << 8);
        w.run_until_idle();
        assert_eq!(
            w.get::<NicSink>(nic).got.len(),
            0,
            "cancelled pulls must not be sent"
        );
    }

    #[test]
    fn pull_fair_queuing_round_robins_flows() {
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000);
        let mut a = Probe::new();
        a.pulls_on_start = 3;
        let mut b = Probe::new();
        b.pulls_on_start = 3;
        h.add_endpoint(1, Box::new(a));
        h.add_endpoint(2, Box::new(b));
        let host = w.add(h);
        w.post_wake(Time::ZERO, host, 1 << 8);
        w.post_wake(Time::ZERO, host, 2 << 8);
        w.run_until_idle();
        let flows: Vec<FlowId> = w
            .get::<NicSink>(nic)
            .got
            .iter()
            .filter(|(_, p)| p.kind == PacketKind::Pull)
            .map(|(_, p)| p.flow)
            .collect();
        assert_eq!(
            flows,
            vec![1, 2, 1, 2, 1, 2],
            "pulls must interleave fairly"
        );
    }

    #[test]
    fn high_priority_pulls_preempt_normal_ones() {
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        struct Prio {
            class: PullPriority,
            n: u32,
        }
        impl Endpoint for Prio {
            fn on_start(&mut self, ctx: &mut EndpointCtx<'_, '_>) {
                for _ in 0..self.n {
                    ctx.pull_request(9, self.class);
                }
            }
            fn on_packet(&mut self, _p: Packet, _c: &mut EndpointCtx<'_, '_>) {}
            fn on_timer(&mut self, _t: u8, _c: &mut EndpointCtx<'_, '_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000);
        h.add_endpoint(
            1,
            Box::new(Prio {
                class: PullPriority::Normal,
                n: 3,
            }),
        );
        h.add_endpoint(
            2,
            Box::new(Prio {
                class: PullPriority::High,
                n: 3,
            }),
        );
        let host = w.add(h);
        // Normal flow queues its pulls first...
        w.post_wake(Time::ZERO, host, 1 << 8);
        w.post_wake(Time::from_ns(1), host, 2 << 8);
        w.run_until_idle();
        let flows: Vec<FlowId> = w
            .get::<NicSink>(nic)
            .got
            .iter()
            .filter(|(_, p)| p.kind == PacketKind::Pull)
            .map(|(_, p)| p.flow)
            .collect();
        // The very first pull fires at t=0 before flow 2 exists; after that
        // the high-priority flow drains completely before normal resumes.
        assert_eq!(flows, vec![1, 2, 2, 2, 1, 1]);
    }

    #[test]
    fn deep_sleep_penalty_applies_after_idle() {
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000).with_latency(HostLatency {
            rx_delay: Time::from_us(1),
            wake_latency: Time::from_us(160),
            sleep_after: Time::from_us(50),
            ..Default::default()
        });
        h.add_endpoint(7, Box::new(Probe::new()));
        let host = w.add(h);
        // First packet after a long idle: pays 1 + 160 us.
        w.post(Time::from_ms(1), host, Packet::data(1, 0, 7, 0, 9000));
        // Second packet 10 us later: host is awake, pays only 1 us.
        w.post(
            Time::from_ms(1) + Time::from_us(10),
            host,
            Packet::data(1, 0, 7, 1, 9000),
        );
        w.run_until_idle();
        // Delivery means the endpoint saw the packet. We can't observe the
        // delivery time directly, but the pacer/timer machinery is driven by
        // it; instead assert the deep-sleep path doesn't drop or reorder.
        let h = w.get::<Host>(host);
        let p: &Probe = h.endpoint(7);
        assert_eq!(p.pkts.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(h.stats().delivered_pkts, 2);
    }

    #[test]
    fn remove_endpoint_frees_state_and_skips_stale_pulls() {
        let (mut w, host, nic) = setup(5);
        // Queue five pulls, then retire the flow before the pacer drains
        // them: no pull may be emitted for a removed endpoint.
        w.post_wake(Time::ZERO, host, 7 << 8);
        w.run_until(Time::ZERO); // first pull fires at t=0
        let h = w.get_mut::<Host>(host);
        assert_eq!(h.n_endpoints(), 1);
        let ep = h.remove_endpoint(7);
        assert!(ep.is_some(), "removed endpoint is handed back for harvest");
        assert!(ep.unwrap().as_any().downcast_ref::<Probe>().is_some());
        assert_eq!(h.n_endpoints(), 0);
        assert!(h.remove_endpoint(7).is_none(), "second removal is a no-op");
        w.run_until_idle();
        let pulls = w
            .get::<NicSink>(nic)
            .got
            .iter()
            .filter(|(_, p)| p.kind == PacketKind::Pull)
            .count();
        assert_eq!(pulls, 1, "only the pre-removal pull may go out");
        // The flow's pending timer is dropped by the miss path, not
        // delivered to a ghost.
        assert_eq!(w.get::<Host>(host).stats().unknown_flow_drops, 1);
    }

    #[test]
    fn reattached_flow_id_gets_a_single_clean_rr_slot() {
        // Retire a flow while its round-robin slot is still queued, then
        // reuse the id: the new flow must hold exactly one rr slot (no
        // double pull share from a stale slot).
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000);
        let mut a = Probe::new();
        a.pulls_on_start = 4;
        h.add_endpoint(7, Box::new(a));
        let host = w.add(h);
        w.post_wake(Time::ZERO, host, 7 << 8);
        w.run_until(Time::ZERO); // one pull emitted; rr slot still queued
        let h = w.get_mut::<Host>(host);
        h.remove_endpoint(7);
        let mut a2 = Probe::new();
        a2.pulls_on_start = 3;
        let mut b = Probe::new();
        b.pulls_on_start = 3;
        h.add_endpoint(7, Box::new(a2));
        h.add_endpoint(8, Box::new(b));
        w.post_wake(Time::from_us(1), host, 7 << 8);
        w.post_wake(Time::from_us(1), host, 8 << 8);
        w.run_until_idle();
        let flows: Vec<FlowId> = w
            .get::<NicSink>(nic)
            .got
            .iter()
            .filter(|(_, p)| p.kind == PacketKind::Pull)
            .map(|(_, p)| p.flow)
            .collect();
        // First pull from the retired incarnation, then strict alternation:
        // a stale extra slot for flow 7 would serve it twice per cycle.
        assert_eq!(flows, vec![7, 7, 8, 7, 8, 7, 8]);
    }

    #[test]
    fn completion_reports_reach_the_world_sink() {
        use crate::completion::CompletionSink;
        struct Finisher;
        impl Endpoint for Finisher {
            fn on_start(&mut self, _c: &mut EndpointCtx<'_, '_>) {}
            fn on_packet(&mut self, pkt: Packet, ctx: &mut EndpointCtx<'_, '_>) {
                ctx.complete(pkt.payload as u64, Time::from_us(3));
            }
            fn on_timer(&mut self, _t: u8, _c: &mut EndpointCtx<'_, '_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        let sink = w.add(CompletionSink::new());
        let mut h = Host::new(4, nic, Speed::gbps(10), 9000);
        h.set_completion_sink(sink);
        h.add_endpoint(7, Box::new(Finisher));
        let host = w.add(h);
        w.post(Time::from_us(1), host, Packet::data(1, 4, 7, 0, 9000));
        w.run_until_idle();
        let s = w.get::<CompletionSink>(sink);
        assert_eq!(s.total_flows, 1);
        let recs = w.get_mut::<CompletionSink>(sink).take_done();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].flow, 7);
        assert_eq!(recs[0].host, 4);
        assert_eq!(recs[0].completed_at, Time::from_us(1));
        assert_eq!(recs[0].fct, Time::from_us(3));
    }

    #[test]
    fn timewait_table_purges_expired_entries() {
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        struct Waiter;
        impl Endpoint for Waiter {
            fn on_start(&mut self, _c: &mut EndpointCtx<'_, '_>) {}
            fn on_packet(&mut self, _p: Packet, ctx: &mut EndpointCtx<'_, '_>) {
                ctx.enter_time_wait();
            }
            fn on_timer(&mut self, _t: u8, _c: &mut EndpointCtx<'_, '_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000);
        for f in 1..=20u64 {
            h.add_endpoint(f, Box::new(Waiter));
        }
        let host = w.add(h);
        // Each flow closes 1 ms after the previous: by the time flow k
        // closes, flows < k have been out of time-wait for (k-1) MSLs.
        for f in 1..=20u64 {
            w.post(Time::from_ms(f), host, Packet::data(1, 0, f, 0, 9000));
        }
        w.run_until_idle();
        let core = &w.get::<Host>(host).core;
        assert!(
            core.time_wait.len() <= 2,
            "time-wait table must purge itself, kept {}",
            core.time_wait.len()
        );
    }

    #[test]
    fn timewait_rejects_duplicate_connection() {
        let mut w: World<Packet> = World::new(9);
        let nic = w.add(NicSink { got: vec![] });
        struct Once;
        impl Endpoint for Once {
            fn on_start(&mut self, _c: &mut EndpointCtx<'_, '_>) {}
            fn on_packet(&mut self, _p: Packet, ctx: &mut EndpointCtx<'_, '_>) {
                ctx.enter_time_wait();
            }
            fn on_timer(&mut self, _t: u8, _c: &mut EndpointCtx<'_, '_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut h = Host::new(0, nic, Speed::gbps(10), 9000);
        h.add_endpoint(7, Box::new(Once));
        let host = w.add(h);
        let syn = Packet::data(1, 0, 7, 0, 9000).with_flags(Flags::SYN);
        w.post(Time::ZERO, host, syn);
        w.run_until_idle();
        // Remove the endpoint's flow by simulating a fresh duplicate SYN for
        // the same (now closed) connection id.
        w.get_mut::<Host>(host).endpoints.remove(&7);
        w.post(Time::from_us(10), host, syn);
        w.run_until_idle();
        assert_eq!(w.get::<Host>(host).stats().timewait_rejects, 1);
        // After one MSL the id may be reused.
        w.post(Time::from_ms(3), host, syn);
        w.run_until_idle();
        assert_eq!(w.get::<Host>(host).stats().timewait_rejects, 1);
        assert_eq!(w.get::<Host>(host).stats().unknown_flow_drops, 1);
    }
}
