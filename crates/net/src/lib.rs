//! Network element models: packets, pipes, queues, switches and hosts.
//!
//! Everything here is a [`ndp_sim::Component`] over the message type
//! [`Packet`]. The crate provides every switch service model the paper
//! evaluates:
//!
//! * [`queue::Policy::DropTail`] — classic FIFO, optional ECN marking
//!   (DCTCP / DCQCN fabrics, pHost fabrics);
//! * [`queue::Policy::Ndp`] — the paper's contribution at the switch: two
//!   queues per port (small data queue + priority header queue), packet
//!   trimming on data-queue overflow with a 50 % coin flip between the
//!   arriving packet and the tail of the queue, 10:1 weighted round robin
//!   between header and data queues, and return-to-sender when the header
//!   queue itself overflows (§3.1, §3.2.4);
//! * [`queue::Policy::Cp`] — Cut Payload as originally proposed: a single
//!   FIFO that trims into itself (used for Figure 2's collapse comparison);
//! * [`queue::Policy::Lossless`] — PFC-style pausing with Xoff/Xon
//!   thresholds and pause cascades (the DCQCN fabric).
//!
//! Hosts own transport endpoints (state machines implementing
//! [`host::Endpoint`]) plus the NDP receiver machinery that is shared by all
//! connections terminating at a host: the single pull queue and its pacer.

pub mod completion;
pub mod flight;
pub mod host;
pub mod p4;
pub mod packet;
pub mod pipe;
pub mod queue;
pub mod switch;

pub use completion::{CompletionSink, FlowDone};
pub use flight::{FlightFilter, FlightHook, FlightRecorder, HopKind, HopRecord};
pub use host::{Endpoint, EndpointCtx, Host, HostLatency, PullPriority};
pub use packet::{Flags, FlowId, HostId, Packet, PacketKind, PathTag, HEADER_BYTES};
pub use pipe::Pipe;
pub use queue::{LinkClass, Policy, Queue, QueueStats};
pub use switch::{Router, Switch};
