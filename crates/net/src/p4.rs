//! A structural model of the paper's P4 switch implementation (§4, Fig. 7).
//!
//! The hardware resource counts of the NetFPGA/P4 prototypes cannot be
//! reproduced in software; what *can* be reproduced — and what the paper's
//! §4 actually claims — is that NDP's switch service is simple enough to
//! express as a handful of match-action tables. This module implements
//! exactly the pipeline of Figure 7:
//!
//! * **Directprio**: NDP packets without a data payload go straight to the
//!   priority queue;
//! * **Readregister**: reads the `qs` (queue size) register into packet
//!   metadata, because P4 match-action tables can only match on packet data;
//! * **Setprio**: if `qs` ≤ 12 KB the packet enters the normal queue and
//!   `qs` is increased; otherwise the packet is truncated (the P4
//!   `truncate` primitive) and sent to the priority queue;
//! * **Decrement** (egress): `qs` is decreased when a packet leaves the
//!   normal queue.
//!
//! Unit tests check this pipeline is decision-equivalent to the behavioural
//! [`crate::queue::Policy::Ndp`] switch for the enqueue path it models (the
//! P4 prototype, like the NetFPGA one, omits the random tail-trim — the
//! paper notes a full implementation should add it).

use crate::packet::Packet;

/// Egress priority assigned by the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum P4Queue {
    Normal,
    Priority,
}

/// Outcome of pushing one packet through the ingress pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct P4Verdict {
    pub queue: P4Queue,
    pub truncated: bool,
}

/// The `qs` register plus the buffer-size constant from Figure 7 (12 KB).
pub struct P4Pipeline {
    qs: u64,
    buffer_bytes: u64,
    /// Match-action invocation counters (observability for tests/docs).
    pub directprio_hits: u64,
    pub setprio_hits: u64,
    pub truncate_actions: u64,
}

impl P4Pipeline {
    pub fn new(buffer_bytes: u64) -> P4Pipeline {
        P4Pipeline {
            qs: 0,
            buffer_bytes,
            directprio_hits: 0,
            setprio_hits: 0,
            truncate_actions: 0,
        }
    }

    /// Figure 7 uses a 12 KB normal buffer on the simple switch.
    pub fn paper_default() -> P4Pipeline {
        P4Pipeline::new(12 * 1024)
    }

    /// Current queue-size register value.
    pub fn qs(&self) -> u64 {
        self.qs
    }

    /// Ingress pipeline: Directprio → Readregister → Setprio.
    pub fn ingress(&mut self, pkt: &mut Packet) -> P4Verdict {
        // Directprio table: any NDP packet without a data payload (control
        // packets and already-trimmed headers) matches `*` → Prio=1.
        if pkt.ndp_priority() {
            self.directprio_hits += 1;
            return P4Verdict {
                queue: P4Queue::Priority,
                truncated: false,
            };
        }
        // Readregister table: copy qs into metadata (modelled implicitly —
        // `meta_qs` is what Setprio matches on).
        let meta_qs = self.qs;
        // Setprio table: range match on qs.
        self.setprio_hits += 1;
        if meta_qs + pkt.size as u64 <= self.buffer_bytes {
            self.qs += pkt.size as u64;
            P4Verdict {
                queue: P4Queue::Normal,
                truncated: false,
            }
        } else {
            // Action: Prio=1, NDP.flags=hdr, truncate(data).
            pkt.trim();
            self.truncate_actions += 1;
            P4Verdict {
                queue: P4Queue::Priority,
                truncated: true,
            }
        }
    }

    /// Egress pipeline: the Decrement table runs for packets leaving the
    /// normal queue.
    pub fn egress(&mut self, verdict: P4Verdict, pkt: &Packet) {
        if verdict.queue == P4Queue::Normal {
            self.qs = self.qs.saturating_sub(pkt.size as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Flags, PacketKind};

    fn data(size: u32) -> Packet {
        Packet::data(0, 1, 0, 0, size)
    }

    #[test]
    fn control_packets_hit_directprio() {
        let mut p4 = P4Pipeline::paper_default();
        for kind in [PacketKind::Ack, PacketKind::Nack, PacketKind::Pull] {
            let mut p = Packet::control(0, 1, 0, kind);
            let v = p4.ingress(&mut p);
            assert_eq!(v.queue, P4Queue::Priority);
            assert!(!v.truncated);
        }
        assert_eq!(p4.directprio_hits, 3);
        assert_eq!(p4.qs(), 0, "priority traffic never touches qs");
    }

    #[test]
    fn trimmed_headers_bypass_the_normal_queue() {
        let mut p4 = P4Pipeline::paper_default();
        let mut h = data(9000);
        h.trim();
        let v = p4.ingress(&mut h);
        assert_eq!(v.queue, P4Queue::Priority);
        assert_eq!(p4.qs(), 0);
    }

    #[test]
    fn fills_then_truncates() {
        let mut p4 = P4Pipeline::paper_default();
        // 12 KB buffer fits eight 1500-byte packets.
        for _ in 0..8 {
            let mut p = data(1500);
            let v = p4.ingress(&mut p);
            assert_eq!(v.queue, P4Queue::Normal);
        }
        assert_eq!(p4.qs(), 12_000);
        let mut p = data(1500);
        let v = p4.ingress(&mut p);
        assert!(v.truncated);
        assert_eq!(v.queue, P4Queue::Priority);
        assert!(p.is_trimmed());
        assert!(p.flags.has(Flags::TRIMMED));
        assert_eq!(p.size, crate::packet::HEADER_BYTES);
    }

    #[test]
    fn egress_decrement_reopens_the_buffer() {
        let mut p4 = P4Pipeline::new(9000);
        let mut a = data(9000);
        let va = p4.ingress(&mut a);
        assert_eq!(va.queue, P4Queue::Normal);
        let mut b = data(9000);
        assert!(p4.ingress(&mut b).truncated);
        p4.egress(va, &a);
        assert_eq!(p4.qs(), 0);
        let mut c = data(9000);
        assert_eq!(p4.ingress(&mut c).queue, P4Queue::Normal);
    }

    #[test]
    fn decision_equivalence_with_behavioural_ndp_switch() {
        // Drive the same arrival sequence through the P4 pipeline and a
        // byte-capacity interpretation of the NDP queue enqueue rule with
        // tail-trim randomization disabled; the per-packet
        // enqueue/trim decisions must match. The behavioural model here is
        // a byte-counting mirror of Policy::Ndp's "incoming is trimmed"
        // branch.
        let cap = 12 * 1024u64;
        let mut p4 = P4Pipeline::new(cap);
        let mut model_qs = 0u64;
        let sizes = [9000u32, 1500, 1500, 9000, 64, 1500, 9000, 9000, 1500, 64];
        let mut order = Vec::new();
        for (i, &s) in sizes.iter().cycle().take(100).enumerate() {
            // Occasionally drain, as an egress would.
            if i % 7 == 0 && model_qs >= 1500 {
                model_qs -= 1500;
                p4.egress(
                    P4Verdict {
                        queue: P4Queue::Normal,
                        truncated: false,
                    },
                    &data(1500),
                );
            }
            let mut p = data(s);
            let v = p4.ingress(&mut p);
            let model_trim = if s as u64 + model_qs <= cap {
                model_qs += s as u64;
                false
            } else {
                true
            };
            order.push((v.truncated, model_trim));
        }
        for (i, (p4t, mt)) in order.iter().enumerate() {
            assert_eq!(p4t, mt, "divergence at packet {i}");
        }
    }
}
