//! The on-wire packet model.
//!
//! Packets are small `Copy` structs (no heap allocation on the hot path).
//! A trimmed packet is the same struct with [`Flags::TRIMMED`] set and its
//! wire `size` cut to [`HEADER_BYTES`]; the `payload` field still records
//! how many payload bytes the original carried so receivers can account for
//! goodput precisely.
//!
//! Multipath forwarding uses a [`PathTag`]: in a Clos topology the complete
//! path between two hosts is determined by which uplinks are chosen on the
//! way up, so a single integer (interpreted arithmetically by the switches)
//! replaces a per-packet route vector.

use ndp_sim::Time;

/// Host identifier (index into the topology's host list).
pub type HostId = u32;
/// Globally unique flow/connection identifier.
pub type FlowId = u64;
/// Source-routing tag: selects one of the equal-cost paths between two hosts.
pub type PathTag = u32;

/// Bytes of a trimmed header, and of ACK/NACK/PULL control packets (§3.2.4
/// sizes headers and control packets at 64 bytes).
pub const HEADER_BYTES: u32 = 64;

/// Packet type. `Data` covers full and trimmed data packets (see
/// [`Flags::TRIMMED`]); everything else is a control packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data packet (possibly trimmed to a header by a switch).
    Data,
    /// NDP/TCP acknowledgment. For TCP-family transports `ack` is the
    /// cumulative byte ack; for NDP it acknowledges packet `seq`.
    Ack,
    /// NDP negative acknowledgment: the payload of packet `seq` was trimmed.
    Nack,
    /// NDP pull: `ack` carries the per-connection pull counter.
    Pull,
    /// DCQCN congestion notification packet (sent by the NP back to the RP).
    Cnp,
    /// PFC pause/resume, link-local. `xoff == true` pauses the upstream.
    Pause { xoff: bool },
    /// pHost token/grant (receiver-driven credit without trimming).
    Token,
}

/// Per-packet flag bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Flags(pub u16);

impl Flags {
    /// First-RTT packet: carries connection-establishment state (§3.2.2 —
    /// every packet in the first RTT carries SYN + its sequence offset).
    pub const SYN: Flags = Flags(1 << 0);
    /// Sender has no more data after this packet ("last packet" marking).
    pub const FIN: Flags = Flags(1 << 1);
    /// Payload was trimmed off by a switch.
    pub const TRIMMED: Flags = Flags(1 << 2);
    /// Header was returned to the sender by a switch whose header queue
    /// overflowed (§3.2.4 return-to-sender).
    pub const RTS: Flags = Flags(1 << 3);
    /// ECN Congestion Experienced mark.
    pub const CE: Flags = Flags(1 << 4);
    /// ECN-capable transport.
    pub const ECT: Flags = Flags(1 << 5);
    /// Application-level high priority (receiver pulls these first).
    pub const PRIO: Flags = Flags(1 << 6);
    /// Retransmission (used by statistics, not by switches).
    pub const RTX: Flags = Flags(1 << 7);

    pub fn has(self, f: Flags) -> bool {
        self.0 & f.0 != 0
    }
    #[must_use]
    pub fn with(self, f: Flags) -> Flags {
        Flags(self.0 | f.0)
    }
    #[must_use]
    pub fn without(self, f: Flags) -> Flags {
        Flags(self.0 & !f.0)
    }
}

/// A packet (or control message) traversing the simulated network.
///
/// Layout contract: the whole struct fits one cache line (≤ 64 bytes,
/// statically asserted below). Every hop copies the packet by value, so
/// its footprint is the per-event memory traffic floor — which is why
/// `seq`/`ack` are 32-bit on the wire (checked narrowing via
/// [`Packet::seq32`]/[`Packet::ack32`]) and the bookkeeping fields are
/// packed small.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    pub src: HostId,
    pub dst: HostId,
    pub flow: FlowId,
    pub kind: PacketKind,
    /// Packet sequence number (NDP, pHost) or first byte sequence (TCP).
    pub seq: u32,
    /// Cumulative ACK (TCP), pull counter (NDP PULL), token id (pHost), or
    /// echoed sequence (NDP ACK/NACK carry `seq` directly).
    pub ack: u32,
    /// Bytes on the wire right now (shrinks to `HEADER_BYTES` when trimmed).
    pub size: u32,
    /// Payload bytes this packet stands for (unchanged by trimming).
    pub payload: u32,
    /// Multipath source-routing tag.
    pub path: PathTag,
    /// MPTCP subflow index (0 otherwise).
    pub subflow: u16,
    pub flags: Flags,
    /// Time the packet (or the original it acknowledges) was first sent.
    pub sent: Time,
}

/// One cache line per packet: the event queue, the TX trains and every
/// hop handoff move `Packet` by value, so this bound is hot-path memory
/// bandwidth, not style.
const _: () = assert!(std::mem::size_of::<Packet>() <= 64);

#[cold]
#[inline(never)]
fn seq_overflow(field: &'static str, v: u64) -> ! {
    panic!(
        "{field} {v} overflows the packet's 32-bit wire field \
         (flows are bounded to 2^32 packets / cumulative units; \
         widen Packet::{field} if a workload legitimately needs more)"
    )
}

impl Packet {
    /// Checked narrowing for the 32-bit `seq` wire field. Sequence
    /// bookkeeping upstream is `u64`; this is the single funnel through
    /// which it reaches the wire, so an overflowing flow fails loudly
    /// here instead of wrapping silently mid-simulation.
    #[inline]
    pub fn seq32(v: u64) -> u32 {
        match u32::try_from(v) {
            Ok(s) => s,
            Err(_) => seq_overflow("seq", v),
        }
    }

    /// Checked narrowing for the 32-bit `ack` wire field (cumulative acks,
    /// pull counters, token ids). See [`Packet::seq32`].
    #[inline]
    pub fn ack32(v: u64) -> u32 {
        match u32::try_from(v) {
            Ok(a) => a,
            Err(_) => seq_overflow("ack", v),
        }
    }

    /// A full data packet of `size` wire bytes (including protocol headers).
    pub fn data(src: HostId, dst: HostId, flow: FlowId, seq: u64, size: u32) -> Packet {
        Packet {
            src,
            dst,
            flow,
            kind: PacketKind::Data,
            seq: Packet::seq32(seq),
            ack: 0,
            size,
            payload: size.saturating_sub(HEADER_BYTES),
            path: 0,
            subflow: 0,
            flags: Flags::default(),
            sent: Time::ZERO,
        }
    }

    /// A 64-byte control packet of the given kind.
    pub fn control(src: HostId, dst: HostId, flow: FlowId, kind: PacketKind) -> Packet {
        Packet {
            src,
            dst,
            flow,
            kind,
            seq: 0,
            ack: 0,
            size: HEADER_BYTES,
            payload: 0,
            path: 0,
            subflow: 0,
            flags: Flags::default(),
            sent: Time::ZERO,
        }
    }

    /// True for anything that is not a data packet (trimmed headers are
    /// still `Data` but are treated as control by the NDP switch — see
    /// [`Packet::ndp_priority`]).
    pub fn is_control(&self) -> bool {
        self.kind != PacketKind::Data
    }

    /// Should an NDP switch place this packet in the high-priority queue?
    /// Trimmed headers, ACKs, NACKs and PULLs all go there (§3.1).
    pub fn ndp_priority(&self) -> bool {
        self.is_control() || self.flags.has(Flags::TRIMMED)
    }

    /// Trim the payload off, leaving a header (§3.1). Idempotent.
    pub fn trim(&mut self) {
        self.flags = self.flags.with(Flags::TRIMMED);
        self.size = HEADER_BYTES;
    }

    /// Return-to-sender: swap src/dst and mark, so switches route the header
    /// back to its origin (§3.2.4).
    pub fn bounce_to_sender(&mut self) {
        std::mem::swap(&mut self.src, &mut self.dst);
        self.flags = self.flags.with(Flags::RTS);
    }

    pub fn is_trimmed(&self) -> bool {
        self.flags.has(Flags::TRIMMED)
    }

    pub fn is_rts(&self) -> bool {
        self.flags.has(Flags::RTS)
    }

    #[must_use]
    pub fn with_path(mut self, path: PathTag) -> Packet {
        self.path = path;
        self
    }

    #[must_use]
    pub fn with_flags(mut self, f: Flags) -> Packet {
        self.flags = self.flags.with(f);
        self
    }

    #[must_use]
    pub fn with_sent(mut self, t: Time) -> Packet {
        self.sent = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_set_and_clear() {
        let f = Flags::default().with(Flags::SYN).with(Flags::CE);
        assert!(f.has(Flags::SYN));
        assert!(f.has(Flags::CE));
        assert!(!f.has(Flags::FIN));
        let f = f.without(Flags::SYN);
        assert!(!f.has(Flags::SYN));
        assert!(f.has(Flags::CE));
    }

    #[test]
    fn trim_shrinks_wire_size_but_keeps_payload_accounting() {
        let mut p = Packet::data(1, 2, 77, 5, 9000);
        assert_eq!(p.payload, 9000 - HEADER_BYTES);
        p.trim();
        assert_eq!(p.size, HEADER_BYTES);
        assert_eq!(p.payload, 9000 - HEADER_BYTES);
        assert!(p.is_trimmed());
        assert!(p.ndp_priority());
        // Trimming twice is harmless.
        p.trim();
        assert_eq!(p.size, HEADER_BYTES);
    }

    #[test]
    fn bounce_swaps_endpoints() {
        let mut p = Packet::data(3, 9, 1, 0, 9000);
        p.trim();
        p.bounce_to_sender();
        assert_eq!((p.src, p.dst), (9, 3));
        assert!(p.is_rts());
    }

    #[test]
    fn control_packets_are_priority() {
        for kind in [
            PacketKind::Ack,
            PacketKind::Nack,
            PacketKind::Pull,
            PacketKind::Cnp,
        ] {
            let p = Packet::control(0, 1, 2, kind);
            assert!(p.is_control());
            assert!(p.ndp_priority());
            assert_eq!(p.size, HEADER_BYTES);
        }
        let d = Packet::data(0, 1, 2, 0, 1500);
        assert!(!d.is_control());
        assert!(!d.ndp_priority());
    }

    #[test]
    fn packet_is_small_enough_to_copy() {
        // One cache line; the compile-time assert next to the struct is the
        // real guard, this keeps the bound visible in test output.
        assert!(std::mem::size_of::<Packet>() <= 64);
    }

    #[test]
    fn seq32_and_ack32_round_trip_in_range() {
        assert_eq!(Packet::seq32(0), 0);
        assert_eq!(Packet::seq32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(Packet::ack32(12_345), 12_345);
    }

    #[test]
    #[should_panic(expected = "overflows the packet's 32-bit wire field")]
    fn seq32_overflow_panics_descriptively() {
        let _ = Packet::seq32(u64::from(u32::MAX) + 1);
    }

    #[test]
    #[should_panic(expected = "overflows the packet's 32-bit wire field")]
    fn ack32_overflow_panics_descriptively() {
        let _ = Packet::ack32(1 << 40);
    }
}
