//! The wire: a fixed propagation delay plus optional corruption loss.
//!
//! Serialization happens in the upstream [`crate::queue::Queue`]; a `Pipe`
//! only models propagation, so datacenter-scale latency (hundreds of
//! nanoseconds per hop) stays exact. Corruption injection exercises the
//! retransmission-timeout paths of the transports — per §3.2, with trimming
//! an RTO should only ever fire for corrupted (truly lost) packets.

use std::any::Any;

use ndp_sim::{Component, ComponentId, Ctx, Event, Time};
use rand::Rng;

use crate::packet::Packet;

/// One direction of a link.
pub struct Pipe {
    delay: Time,
    next: ComponentId,
    /// Probability that a traversing packet is corrupted and dropped.
    corrupt_prob: f64,
    pub delivered: u64,
    pub corrupted: u64,
}

impl Pipe {
    pub fn new(delay: Time, next: ComponentId) -> Pipe {
        Pipe {
            delay,
            next,
            corrupt_prob: 0.0,
            delivered: 0,
            corrupted: 0,
        }
    }

    /// Enable fault injection: drop each packet with probability `p`.
    pub fn with_corruption(mut self, p: f64) -> Pipe {
        assert!((0.0..=1.0).contains(&p));
        self.corrupt_prob = p;
        self
    }

    pub fn delay(&self) -> Time {
        self.delay
    }

    /// The component this wire delivers into.
    pub fn next_hop(&self) -> ComponentId {
        self.next
    }
}

impl Component<Packet> for Pipe {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        let Event::Msg(pkt) = ev else { return };
        if self.corrupt_prob > 0.0 && ctx.rng().gen::<f64>() < self.corrupt_prob {
            self.corrupted += 1;
            return;
        }
        self.delivered += 1;
        ctx.send(self.next, pkt, self.delay);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_sim::World;

    struct Sink {
        got: Vec<(Time, u32)>,
    }
    impl Component<Packet> for Sink {
        fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
            if let Event::Msg(p) = ev {
                self.got.push((ctx.now(), p.seq));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn adds_exact_propagation_delay() {
        let mut w: World<Packet> = World::new(7);
        let sink = w.add(Sink { got: vec![] });
        let pipe = w.add(Pipe::new(Time::from_ns(500), sink));
        w.post(Time::from_us(1), pipe, Packet::data(0, 1, 0, 42, 1500));
        w.run_until_idle();
        assert_eq!(w.get::<Sink>(sink).got, vec![(Time::from_ns(1500), 42)]);
    }

    #[test]
    fn corruption_drops_a_fraction() {
        let mut w: World<Packet> = World::new(11);
        let sink = w.add(Sink { got: vec![] });
        let pipe = w.add(Pipe::new(Time::from_ns(500), sink).with_corruption(0.25));
        for i in 0..10_000 {
            w.post(Time::from_ns(i), pipe, Packet::data(0, 1, 0, i, 1500));
        }
        w.run_until_idle();
        let got = w.get::<Sink>(sink).got.len() as f64;
        assert!(
            (got / 10_000.0 - 0.75).abs() < 0.02,
            "delivered fraction {got}"
        );
        let p = w.get::<Pipe>(pipe);
        assert_eq!(p.delivered + p.corrupted, 10_000);
    }

    #[test]
    fn preserves_order_for_same_path() {
        let mut w: World<Packet> = World::new(1);
        let sink = w.add(Sink { got: vec![] });
        let pipe = w.add(Pipe::new(Time::from_us(1), sink));
        for i in 0..50 {
            w.post(Time::from_ns(i * 10), pipe, Packet::data(0, 1, 0, i, 64));
        }
        w.run_until_idle();
        let seqs: Vec<u32> = w.get::<Sink>(sink).got.iter().map(|g| g.1).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }
}
