//! Egress queues: every switch service model evaluated in the paper.
//!
//! A [`Queue`] serializes packets onto a link at a fixed [`Speed`] and then
//! hands them to the link's [`crate::pipe::Pipe`]. The enqueue/dequeue
//! *policy* is what distinguishes the architectures under test:
//!
//! * **DropTail** (+ optional ECN marking) — the fabric for TCP, DCTCP,
//!   MPTCP and pHost.
//! * **Ndp** — §3.1's switch: a short data queue (counted in packets, eight
//!   by default) and a header/control queue sized to the same number of
//!   bytes. Overflowing data packets are *trimmed* to 64-byte headers; with
//!   50 % probability the victim is the arriving packet, otherwise the tail
//!   of the data queue (this breaks the phase effects of Figure 2). The two
//!   queues are served by 10:1 weighted round robin so headers get early
//!   feedback without starving data (avoiding CP's congestion collapse).
//!   When the header queue itself overflows the header is returned to the
//!   sender (§3.2.4) by swapping addresses and re-injecting it into the
//!   switch.
//! * **Cp** — Cut Payload as proposed in [9]: one FIFO, trim into the same
//!   FIFO, no priority, no randomization. Kept as a baseline for Figure 2.
//! * **Lossless** — PFC: when occupancy crosses Xoff the queue pauses every
//!   upstream transmitter that can feed it; transmitters resume at Xon.
//!   Pause frames cascade, reproducing DCQCN's collateral damage. (Real PFC
//!   pauses per ingress buffer; pausing all feeders of the congested switch
//!   is the standard egress-queue simplification and errs on the side of
//!   *more* collateral damage — see DESIGN.md.)

use std::any::Any;
use std::collections::VecDeque;

use ndp_sim::{Component, ComponentId, Ctx, Event, Speed, Time};
use rand::Rng;

use crate::packet::{Packet, PacketKind, HEADER_BYTES};

const TX_DONE: u64 = 1;

/// Where in the topology a queue sits — used for the paper's
/// trim-location statistics (§3.2.4: almost all trims happen at ToR
/// downlinks, almost none on core uplinks when senders load-balance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    HostNic,
    TorUp,
    TorDown,
    AggUp,
    AggDown,
    CoreDown,
    Other,
}

/// Counters harvested by the experiment harness after a run.
#[derive(Clone, Debug, Default)]
pub struct QueueStats {
    pub forwarded_pkts: u64,
    pub forwarded_bytes: u64,
    /// Payload bytes of *untrimmed* data packets forwarded (goodput).
    pub payload_bytes: u64,
    pub trimmed: u64,
    pub bounced: u64,
    pub dropped_data: u64,
    pub dropped_ctrl: u64,
    pub ecn_marked: u64,
    pub xoff_sent: u64,
    pub max_occupancy_bytes: u64,
    /// Packets lost to a down link: buffered packets flushed when the link
    /// failed, the packet on the wire at the failure instant, and arrivals
    /// while down that could not be bounced back to their sender.
    pub dropped_down: u64,
}

/// The queueing discipline of one egress port.
pub enum Policy {
    DropTail {
        q: VecDeque<Packet>,
        cap_bytes: u64,
        bytes: u64,
        /// Mark CE on arriving ECT packets when occupancy exceeds this.
        ecn_thresh_bytes: Option<u64>,
    },
    Ndp {
        data: VecDeque<Packet>,
        hdr: VecDeque<Packet>,
        data_cap_pkts: usize,
        hdr_cap_bytes: u64,
        hdr_bytes: u64,
        /// Bytes in `data` — maintained incrementally so per-packet
        /// occupancy accounting stays O(1).
        data_bytes: u64,
        /// Consecutive header-queue services while data waits (WRR state).
        hdr_run: u32,
        /// WRR ratio: serve up to this many headers per data packet (10).
        wrr_ratio: u32,
        /// Where to re-inject a bounced (return-to-sender) header: the
        /// owning switch. `None` disables RTS (headers are dropped instead,
        /// as in the NetFPGA implementation).
        bounce_to: Option<ComponentId>,
    },
    Cp {
        q: VecDeque<Packet>,
        /// Data packets arriving beyond this occupancy get trimmed.
        trim_thresh_bytes: u64,
        /// Physical buffer bound (threshold + header headroom).
        cap_bytes: u64,
        bytes: u64,
    },
    Lossless {
        q: VecDeque<Packet>,
        cap_bytes: u64,
        bytes: u64,
        xoff_bytes: u64,
        xon_bytes: u64,
        ecn_thresh_bytes: Option<u64>,
        /// Egress queues one hop upstream that we pause/resume.
        upstreams: Vec<ComponentId>,
        xoff_active: bool,
        /// Delay for pause frames to reach the upstream transmitter.
        pause_delay: Time,
    },
}

impl Policy {
    pub fn droptail(cap_bytes: u64) -> Policy {
        Policy::DropTail {
            q: VecDeque::new(),
            cap_bytes,
            bytes: 0,
            ecn_thresh_bytes: None,
        }
    }

    pub fn droptail_ecn(cap_bytes: u64, ecn_thresh_bytes: u64) -> Policy {
        Policy::DropTail {
            q: VecDeque::new(),
            cap_bytes,
            bytes: 0,
            ecn_thresh_bytes: Some(ecn_thresh_bytes),
        }
    }

    /// The NDP switch queue: `data_cap_pkts` full packets plus a header
    /// queue holding the same number of bytes (8 × 9 KB = 72 KB ≈ 1125
    /// headers, the figure §3.2.4 quotes).
    pub fn ndp(data_cap_pkts: usize, mtu: u32) -> Policy {
        Policy::Ndp {
            data: VecDeque::new(),
            hdr: VecDeque::new(),
            data_cap_pkts,
            hdr_cap_bytes: data_cap_pkts as u64 * mtu as u64,
            hdr_bytes: 0,
            data_bytes: 0,
            hdr_run: 0,
            wrr_ratio: 10,
            bounce_to: None,
        }
    }

    /// CP queue: trim when the data region (`trim_thresh_bytes`) is full;
    /// the physical buffer is twice that, leaving room for queued headers
    /// (mirroring the NDP queue's header budget so Figure 2 compares switch
    /// *policies*, not buffer sizes).
    pub fn cp(trim_thresh_bytes: u64) -> Policy {
        Policy::Cp {
            q: VecDeque::new(),
            trim_thresh_bytes,
            cap_bytes: trim_thresh_bytes * 2,
            bytes: 0,
        }
    }

    pub fn lossless(cap_bytes: u64, xoff_bytes: u64, xon_bytes: u64) -> Policy {
        assert!(xon_bytes <= xoff_bytes && xoff_bytes <= cap_bytes);
        Policy::Lossless {
            q: VecDeque::new(),
            cap_bytes,
            bytes: 0,
            xoff_bytes,
            xon_bytes,
            ecn_thresh_bytes: None,
            upstreams: Vec::new(),
            xoff_active: false,
            pause_delay: Time::from_ns(500),
        }
    }

    pub fn lossless_ecn(cap_bytes: u64, xoff: u64, xon: u64, ecn: u64) -> Policy {
        match Policy::lossless(cap_bytes, xoff, xon) {
            Policy::Lossless {
                q,
                cap_bytes,
                bytes,
                xoff_bytes,
                xon_bytes,
                upstreams,
                xoff_active,
                pause_delay,
                ..
            } => Policy::Lossless {
                q,
                cap_bytes,
                bytes,
                xoff_bytes,
                xon_bytes,
                ecn_thresh_bytes: Some(ecn),
                upstreams,
                xoff_active,
                pause_delay,
            },
            _ => unreachable!(),
        }
    }
}

/// One egress port: policy + serializer.
///
/// In *fused* form ([`Queue::fused`]) the queue also models the wire: the
/// TX-done post carries the downstream propagation delay directly, so a
/// packet crossing a hop costs one scheduled event instead of the
/// queue→[`crate::pipe::Pipe`]→next pair. The standalone `Pipe` remains for
/// raw-injection tests and paths without an upstream serializer.
pub struct Queue {
    rate: Speed,
    /// Cached exact picoseconds-per-byte of `rate` (0 when inexact):
    /// turns the per-packet serialization-time division into a multiply
    /// on the TX hot path. Maintained by every `rate` assignment.
    ppb: u64,
    /// Construction-time rate, so a failed or degraded link can renegotiate
    /// back to its original speed on recovery ([`Queue::restore`]).
    nominal: Speed,
    /// Administratively down: nothing serializes, buffered packets were
    /// flushed at the failure instant, and new arrivals are dropped — or,
    /// on an RTS-capable NDP queue, trimmed and returned to their sender so
    /// multipath sources re-spray around the dead link immediately.
    down: bool,
    next: ComponentId,
    class: LinkClass,
    policy: Policy,
    /// Packet currently being serialized (removed from the queue so that
    /// tail-trimming can never touch a packet already on the wire).
    in_service: Option<Packet>,
    /// Number of outstanding Xoff pauses applied to *us* by downstream.
    paused: u32,
    /// Fused-hop propagation delay (ZERO = deliver same-tick, the unfused
    /// behaviour where a separate `Pipe` models the wire).
    wire_delay: Time,
    /// Fused-hop corruption probability (mirrors `Pipe::with_corruption`).
    wire_corrupt_prob: f64,
    pub wire_corrupted: u64,
    pub stats: QueueStats,
    /// Opt-in flight recorder hook (see [`crate::flight`]): `None` — the
    /// default — costs one branch per record site and never posts events.
    flight: Option<crate::flight::FlightHook>,
}

impl Queue {
    pub fn new(rate: Speed, next: ComponentId, class: LinkClass, policy: Policy) -> Queue {
        Queue {
            rate,
            ppb: rate.ps_per_byte_exact(),
            nominal: rate,
            down: false,
            next,
            class,
            policy,
            in_service: None,
            paused: 0,
            wire_delay: Time::ZERO,
            wire_corrupt_prob: 0.0,
            wire_corrupted: 0,
            stats: QueueStats::default(),
            flight: None,
        }
    }

    /// Attach (or detach, with `None`) a flight-recorder hook. Purely
    /// observational: hooks post no events and draw no RNG, so attaching
    /// one cannot change a run's golden trace.
    pub fn set_flight_hook(&mut self, hook: Option<crate::flight::FlightHook>) {
        self.flight = hook;
    }

    /// A queue with the wire folded in: transmitted packets arrive at
    /// `next` after `wire_delay` as a single scheduled event, with no
    /// intermediate `Pipe` dispatch.
    pub fn fused(
        rate: Speed,
        next: ComponentId,
        wire_delay: Time,
        class: LinkClass,
        policy: Policy,
    ) -> Queue {
        let mut q = Queue::new(rate, next, class, policy);
        q.wire_delay = wire_delay;
        q
    }

    /// Enable fault injection on the fused wire: drop each transmitted
    /// packet with probability `p` (the fused analogue of
    /// [`crate::pipe::Pipe::with_corruption`]).
    pub fn with_wire_corruption(mut self, p: f64) -> Queue {
        assert!((0.0..=1.0).contains(&p));
        self.wire_corrupt_prob = p;
        self
    }

    pub fn class(&self) -> LinkClass {
        self.class
    }

    pub fn rate(&self) -> Speed {
        self.rate
    }

    /// Change the link rate (used by failure-injection experiments where a
    /// 10 Gb/s link renegotiates to 1 Gb/s, §3.2.3/Fig 22). A packet already
    /// being serialized finishes at the old rate.
    pub fn set_rate(&mut self, rate: Speed) {
        self.rate = rate;
        self.ppb = rate.ps_per_byte_exact();
    }

    /// The rate this queue was built with — what a recovered link
    /// renegotiates back to.
    pub fn nominal_rate(&self) -> Speed {
        self.nominal
    }

    /// The downstream component transmitted packets are handed to (the
    /// owning switch's neighbour when fused, the link's `Pipe` otherwise).
    pub fn next_hop(&self) -> ComponentId {
        self.next
    }

    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Hard-fail or revive the link. Going down flushes every buffered
    /// packet (the buffer dies with the port) and the packet currently on
    /// the wire is lost at its TX-done instant; while down, arrivals are
    /// dropped or bounced (see [`Queue`] field docs). Coming back up leaves
    /// the rate untouched — use [`Queue::restore`] for full recovery. A
    /// lossless queue that paused its upstreams keeps them paused until the
    /// first packet transits the revived link (the Xon check lives on the
    /// dequeue path), which errs on the side of more collateral damage.
    pub fn set_down(&mut self, down: bool) {
        if down && !self.down {
            while self.pop_next().is_some() {
                self.stats.dropped_down += 1;
            }
        }
        self.down = down;
    }

    /// Full recovery: link up at its construction-time rate.
    pub fn restore(&mut self) {
        self.down = false;
        self.rate = self.nominal;
        self.ppb = self.nominal.ps_per_byte_exact();
    }

    /// Enable return-to-sender on header-queue overflow (NDP software
    /// switch behaviour, §3.2.4).
    pub fn set_bounce_to(&mut self, switch: ComponentId) {
        if let Policy::Ndp { bounce_to, .. } = &mut self.policy {
            *bounce_to = Some(switch);
        } else {
            panic!("bounce_to only applies to NDP queues");
        }
    }

    /// Register the upstream transmitters this (lossless) queue may pause.
    pub fn set_upstreams(&mut self, ups: Vec<ComponentId>) {
        if let Policy::Lossless { upstreams, .. } = &mut self.policy {
            *upstreams = ups;
        } else {
            panic!("upstreams only apply to lossless queues");
        }
    }

    /// Bytes currently waiting (not counting the packet on the wire).
    pub fn occupancy_bytes(&self) -> u64 {
        match &self.policy {
            Policy::DropTail { bytes, .. }
            | Policy::Cp { bytes, .. }
            | Policy::Lossless { bytes, .. } => *bytes,
            Policy::Ndp {
                data_bytes,
                hdr_bytes,
                ..
            } => data_bytes + hdr_bytes,
        }
    }

    pub fn queued_packets(&self) -> usize {
        match &self.policy {
            Policy::DropTail { q, .. } | Policy::Cp { q, .. } | Policy::Lossless { q, .. } => {
                q.len()
            }
            Policy::Ndp { data, hdr, .. } => data.len() + hdr.len(),
        }
    }

    /// Track the high-water occupancy. Enqueue arms pass the occupancy
    /// they just computed, so the hot path never re-matches the policy.
    #[inline]
    fn note_occupancy(&mut self, occ: u64) {
        if occ > self.stats.max_occupancy_bytes {
            self.stats.max_occupancy_bytes = occ;
        }
    }

    /// Pick the next packet to serialize according to the policy.
    fn pop_next(&mut self) -> Option<Packet> {
        match &mut self.policy {
            Policy::DropTail { q, bytes, .. }
            | Policy::Cp { q, bytes, .. }
            | Policy::Lossless { q, bytes, .. } => {
                let p = q.pop_front()?;
                *bytes -= p.size as u64;
                Some(p)
            }
            Policy::Ndp {
                data,
                hdr,
                hdr_bytes,
                data_bytes,
                hdr_run,
                wrr_ratio,
                ..
            } => {
                // Weighted round robin, headers preferred: serve the header
                // queue unless we've already served `wrr_ratio` headers in a
                // row while data was waiting.
                let serve_hdr = if hdr.is_empty() {
                    false
                } else if data.is_empty() {
                    true
                } else {
                    *hdr_run < *wrr_ratio
                };
                if serve_hdr {
                    let p = hdr.pop_front().expect("hdr non-empty");
                    *hdr_bytes -= p.size as u64;
                    if !data.is_empty() {
                        *hdr_run += 1;
                    }
                    Some(p)
                } else {
                    let p = data.pop_front()?;
                    *data_bytes -= p.size as u64;
                    *hdr_run = 0;
                    Some(p)
                }
            }
        }
    }

    /// Down-link admission: data packets on an RTS-capable NDP queue are
    /// trimmed and returned to their sender (the same §3.2.4 mechanism as a
    /// header-queue overflow, so the source's path penalty reacts at RTT
    /// timescales); everything else is dropped.
    #[inline(never)]
    fn drop_or_bounce_down(&mut self, pkt: Packet, ctx: &mut Ctx<'_, Packet>) {
        if let Policy::Ndp {
            bounce_to: Some(sw),
            ..
        } = &self.policy
        {
            if pkt.kind == PacketKind::Data && !pkt.is_rts() {
                let sw = *sw;
                let mut b = pkt;
                if !b.is_trimmed() {
                    b.trim();
                    self.stats.trimmed += 1;
                    if let Some(h) = &self.flight {
                        h.record(crate::flight::HopKind::Trim, ctx.now(), &b);
                    }
                }
                b.bounce_to_sender();
                self.stats.bounced += 1;
                if let Some(h) = &self.flight {
                    h.record(crate::flight::HopKind::Bounce, ctx.now(), &b);
                }
                ctx.forward(sw, b);
                return;
            }
        }
        self.stats.dropped_down += 1;
        if let Some(h) = &self.flight {
            h.record(crate::flight::HopKind::DropDown, ctx.now(), &pkt);
        }
    }

    /// PFC pause/resume bookkeeping — link-local control, rare by design;
    /// kept out of line so the per-packet dispatch body stays compact.
    #[inline(never)]
    fn on_pause(&mut self, xoff: bool, ctx: &mut Ctx<'_, Packet>) {
        if xoff {
            self.paused += 1;
        } else {
            debug_assert!(self.paused > 0, "resume without pause");
            self.paused = self.paused.saturating_sub(1);
            self.start_tx_if_possible(ctx);
        }
    }

    fn start_tx_if_possible(&mut self, ctx: &mut Ctx<'_, Packet>) {
        if self.in_service.is_some() || self.paused > 0 || self.down {
            return;
        }
        if let Some(pkt) = self.pop_next() {
            // Exact-rate links (all standard speeds) serialize with one
            // multiply; the division only runs for renegotiated oddballs.
            let t = if self.ppb != 0 {
                Time::from_ps(pkt.size as u64 * self.ppb)
            } else {
                self.rate.tx_time(pkt.size as u64)
            };
            self.in_service = Some(pkt);
            ctx.wake_in(t, TX_DONE);
        }
    }

    fn enqueue(&mut self, mut pkt: Packet, ctx: &mut Ctx<'_, Packet>) {
        if let Some(h) = &self.flight {
            h.record(crate::flight::HopKind::Enqueue, ctx.now(), &pkt);
        }
        if self.down {
            self.drop_or_bounce_down(pkt, ctx);
            return;
        }
        let occ = match &mut self.policy {
            Policy::DropTail {
                q,
                cap_bytes,
                bytes,
                ecn_thresh_bytes,
            } => {
                if *bytes + pkt.size as u64 > *cap_bytes {
                    if pkt.is_control() {
                        self.stats.dropped_ctrl += 1;
                    } else {
                        self.stats.dropped_data += 1;
                    }
                    if let Some(h) = &self.flight {
                        h.record(crate::flight::HopKind::Drop, ctx.now(), &pkt);
                    }
                    return;
                }
                if let Some(k) = ecn_thresh_bytes {
                    if *bytes > *k && pkt.flags.has(crate::packet::Flags::ECT) {
                        pkt.flags = pkt.flags.with(crate::packet::Flags::CE);
                        self.stats.ecn_marked += 1;
                        if let Some(h) = &self.flight {
                            h.record(crate::flight::HopKind::EcnMark, ctx.now(), &pkt);
                        }
                    }
                }
                *bytes += pkt.size as u64;
                q.push_back(pkt);
                *bytes
            }
            Policy::Cp {
                q,
                trim_thresh_bytes,
                cap_bytes,
                bytes,
            } => {
                if pkt.kind == PacketKind::Data
                    && !pkt.is_trimmed()
                    && *bytes + pkt.size as u64 > *trim_thresh_bytes
                {
                    pkt.trim();
                    self.stats.trimmed += 1;
                    if let Some(h) = &self.flight {
                        h.record(crate::flight::HopKind::Trim, ctx.now(), &pkt);
                    }
                }
                if *bytes + pkt.size as u64 > *cap_bytes {
                    if pkt.is_control() {
                        self.stats.dropped_ctrl += 1;
                    } else {
                        self.stats.dropped_data += 1;
                    }
                    if let Some(h) = &self.flight {
                        h.record(crate::flight::HopKind::Drop, ctx.now(), &pkt);
                    }
                    return;
                }
                *bytes += pkt.size as u64;
                q.push_back(pkt);
                *bytes
            }
            Policy::Ndp {
                data,
                hdr,
                data_cap_pkts,
                hdr_cap_bytes,
                hdr_bytes,
                data_bytes,
                bounce_to,
                ..
            } => {
                let mut to_hdr: Option<Packet> = None;
                if pkt.ndp_priority() {
                    to_hdr = Some(pkt);
                } else if data.len() < *data_cap_pkts {
                    *data_bytes += pkt.size as u64;
                    data.push_back(pkt);
                } else {
                    // Data queue full: trim. Decide with 50% probability
                    // whether the victim is the arriving packet or the one
                    // at the tail of the data queue (§3.1, breaks phase
                    // effects).
                    let trim_incoming = ctx.rng().gen::<bool>();
                    let mut victim = if trim_incoming {
                        pkt
                    } else {
                        let tail = data.pop_back().expect("data queue full implies non-empty");
                        *data_bytes = *data_bytes - tail.size as u64 + pkt.size as u64;
                        data.push_back(pkt);
                        tail
                    };
                    victim.trim();
                    self.stats.trimmed += 1;
                    if let Some(h) = &self.flight {
                        h.record(crate::flight::HopKind::Trim, ctx.now(), &victim);
                    }
                    to_hdr = Some(victim);
                }
                if let Some(h) = to_hdr {
                    if *hdr_bytes + h.size as u64 <= *hdr_cap_bytes {
                        *hdr_bytes += h.size as u64;
                        hdr.push_back(h);
                    } else if let (Some(sw), true, false) =
                        (*bounce_to, h.kind == PacketKind::Data, h.is_rts())
                    {
                        // Header queue overflow: return the header to its
                        // sender by re-injecting it into the switch with
                        // src/dst swapped (§3.2.4). Only data headers are
                        // bounced, and only once.
                        let mut b = h;
                        b.bounce_to_sender();
                        self.stats.bounced += 1;
                        if let Some(fh) = &self.flight {
                            fh.record(crate::flight::HopKind::Bounce, ctx.now(), &b);
                        }
                        ctx.forward(sw, b);
                    } else {
                        if h.is_control() {
                            self.stats.dropped_ctrl += 1;
                        } else {
                            self.stats.dropped_data += 1;
                        }
                        if let Some(fh) = &self.flight {
                            fh.record(crate::flight::HopKind::Drop, ctx.now(), &h);
                        }
                    }
                }
                *data_bytes + *hdr_bytes
            }
            Policy::Lossless {
                q,
                cap_bytes,
                bytes,
                xoff_bytes,
                ecn_thresh_bytes,
                upstreams,
                xoff_active,
                pause_delay,
                ..
            } => {
                if *bytes + pkt.size as u64 > *cap_bytes {
                    // With correctly-sized skid buffers this cannot happen;
                    // counted so tests can assert losslessness.
                    self.stats.dropped_data += 1;
                    if let Some(h) = &self.flight {
                        h.record(crate::flight::HopKind::Drop, ctx.now(), &pkt);
                    }
                    return;
                }
                if let Some(k) = ecn_thresh_bytes {
                    if *bytes > *k && pkt.flags.has(crate::packet::Flags::ECT) {
                        pkt.flags = pkt.flags.with(crate::packet::Flags::CE);
                        self.stats.ecn_marked += 1;
                        if let Some(h) = &self.flight {
                            h.record(crate::flight::HopKind::EcnMark, ctx.now(), &pkt);
                        }
                    }
                }
                *bytes += pkt.size as u64;
                q.push_back(pkt);
                if *bytes > *xoff_bytes && !*xoff_active {
                    *xoff_active = true;
                    self.stats.xoff_sent += 1;
                    let d = *pause_delay;
                    for &up in upstreams.iter() {
                        let pause = Packet::control(0, 0, 0, PacketKind::Pause { xoff: true });
                        ctx.send(up, pause, d);
                    }
                }
                *bytes
            }
        };
        self.note_occupancy(occ);
        self.start_tx_if_possible(ctx);
    }

    /// Hand a transmitted packet to the downstream component. The corrupt
    /// check runs first and with the same draw condition as `Pipe`'s, so a
    /// fused hop consumes the RNG stream exactly like the queue+pipe pair
    /// it replaces (no draw at all when corruption is disabled).
    fn deliver_downstream(&mut self, pkt: Packet, ctx: &mut Ctx<'_, Packet>) {
        if self.wire_corrupt_prob > 0.0 && ctx.rng().gen::<f64>() < self.wire_corrupt_prob {
            self.wire_corrupted += 1;
            return;
        }
        if self.wire_delay.is_zero() {
            ctx.forward(self.next, pkt);
        } else {
            ctx.send(self.next, pkt, self.wire_delay);
        }
    }

    fn after_dequeue(&mut self, ctx: &mut Ctx<'_, Packet>) {
        if let Policy::Lossless {
            bytes,
            xon_bytes,
            upstreams,
            xoff_active,
            pause_delay,
            ..
        } = &mut self.policy
        {
            if *xoff_active && *bytes <= *xon_bytes {
                *xoff_active = false;
                let d = *pause_delay;
                for &up in upstreams.iter() {
                    let resume = Packet::control(0, 0, 0, PacketKind::Pause { xoff: false });
                    ctx.send(up, resume, d);
                }
            }
        }
    }
}

impl Component<Packet> for Queue {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        match ev {
            // The hot arm: a forwarded packet entering the queue. Pause
            // frames are rare link-local control; they take the cold path.
            Event::Msg(pkt) => {
                if let PacketKind::Pause { xoff } = pkt.kind {
                    return self.on_pause(xoff, ctx);
                }
                self.enqueue(pkt, ctx);
            }
            Event::Wake(TX_DONE) => {
                let pkt = self
                    .in_service
                    .take()
                    .expect("TX_DONE without packet in service");
                if self.down {
                    // The wire died while this packet was on it.
                    self.stats.dropped_down += 1;
                    if let Some(h) = &self.flight {
                        h.record(crate::flight::HopKind::DropDown, ctx.now(), &pkt);
                    }
                    return;
                }
                self.stats.forwarded_pkts += 1;
                self.stats.forwarded_bytes += pkt.size as u64;
                if pkt.kind == PacketKind::Data && !pkt.is_trimmed() {
                    self.stats.payload_bytes += pkt.payload as u64;
                }
                if let Some(h) = &self.flight {
                    h.record(crate::flight::HopKind::Dequeue, ctx.now(), &pkt);
                }
                self.deliver_downstream(pkt, ctx);
                self.after_dequeue(ctx);
                self.start_tx_if_possible(ctx);
            }
            Event::Wake(t) => unknown_wake(t),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Out-of-line panic for an unrecognized wake token, keeping the dispatch
/// loop's hot body free of format machinery.
#[cold]
#[inline(never)]
fn unknown_wake(t: u64) -> ! {
    panic!("unknown queue wake token {t}")
}

/// Convenience: size of a trimmed header on the wire.
pub const TRIMMED_BYTES: u32 = HEADER_BYTES;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Flags;
    use ndp_sim::World;

    struct Sink {
        got: Vec<Packet>,
        times: Vec<Time>,
    }
    impl Sink {
        fn new() -> Sink {
            Sink {
                got: vec![],
                times: vec![],
            }
        }
    }
    impl Component<Packet> for Sink {
        fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
            if let Event::Msg(p) = ev {
                self.got.push(p);
                self.times.push(ctx.now());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn world_with_queue(policy: Policy) -> (World<Packet>, ComponentId, ComponentId) {
        let mut w: World<Packet> = World::new(5);
        let sink = w.add(Sink::new());
        let q = w.add(Queue::new(Speed::gbps(10), sink, LinkClass::Other, policy));
        (w, q, sink)
    }

    #[test]
    fn droptail_serializes_back_to_back() {
        let (mut w, q, sink) = world_with_queue(Policy::droptail(100 * 9000));
        for i in 0..3 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        // 9 KB at 10 Gb/s = 7.2 us each, back to back.
        assert_eq!(
            s.times,
            vec![
                Time::from_ns(7_200),
                Time::from_ns(14_400),
                Time::from_ns(21_600)
            ]
        );
    }

    #[test]
    fn droptail_drops_when_full() {
        let (mut w, q, sink) = world_with_queue(Policy::droptail(8 * 9000));
        for i in 0..20 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        // One enters service immediately, 8 queue; the rest drop.
        assert_eq!(w.get::<Sink>(sink).got.len(), 9);
        assert_eq!(w.get::<Queue>(q).stats.dropped_data, 11);
    }

    #[test]
    fn ecn_marks_ect_packets_over_threshold() {
        let (mut w, q, sink) = world_with_queue(Policy::droptail_ecn(200 * 9000, 3 * 9000));
        for i in 0..10 {
            let p = Packet::data(0, 1, 0, i, 9000).with_flags(Flags::ECT);
            w.post(Time::ZERO, q, p);
        }
        w.run_until_idle();
        let marked = w
            .get::<Sink>(sink)
            .got
            .iter()
            .filter(|p| p.flags.has(Flags::CE))
            .count();
        // First packet goes into service, next 4 enqueue below/at threshold
        // boundary; occupancy exceeds 3 pkts from the 5th queued packet on.
        assert!(marked >= 5, "marked {marked}");
        assert_eq!(w.get::<Queue>(q).stats.ecn_marked as usize, marked);
    }

    #[test]
    fn non_ect_packets_never_marked() {
        let (mut w, q, sink) = world_with_queue(Policy::droptail_ecn(200 * 9000, 9000));
        for i in 0..10 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        assert!(w
            .get::<Sink>(sink)
            .got
            .iter()
            .all(|p| !p.flags.has(Flags::CE)));
    }

    #[test]
    fn ndp_trims_on_overflow_and_prioritizes_headers() {
        let (mut w, q, sink) = world_with_queue(Policy::ndp(8, 9000));
        // 1 in service + 8 queued + 4 trimmed.
        for i in 0..13 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        assert_eq!(s.got.len(), 13, "metadata must be lossless");
        let trimmed: Vec<_> = s.got.iter().filter(|p| p.is_trimmed()).collect();
        assert_eq!(trimmed.len(), 4);
        assert_eq!(w.get::<Queue>(q).stats.trimmed, 4);
        // Headers are prioritized: after the in-service packet, the trimmed
        // headers leave before the remaining full packets.
        let first_after_service = &s.got[1];
        assert!(
            first_after_service.is_trimmed(),
            "header should jump the data queue"
        );
    }

    #[test]
    fn ndp_tail_trim_probability_is_about_half() {
        // Fill the data queue, then send many more; about half the trims
        // should hit the arriving packet (seq >= 9) and half the tail.
        let (mut w, q, sink) = world_with_queue(Policy::ndp(8, 9000));
        let n = 2000;
        for i in 0..n {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        // The 9 packets that escape untrimmed (1 in service + 8 buffered):
        // with coin flips, some should be high seq numbers (tail trimming
        // replaced older tails), i.e. the untrimmed set is not simply 0..9.
        let untrimmed: Vec<u32> = s
            .got
            .iter()
            .filter(|p| !p.is_trimmed())
            .map(|p| p.seq)
            .collect();
        assert_eq!(untrimmed.len(), 9);
        assert!(
            untrimmed.iter().any(|&q| q >= 9),
            "tail-trim randomization should let later arrivals displace queued tails: {untrimmed:?}"
        );
    }

    #[test]
    fn ndp_wrr_bounds_header_bandwidth() {
        // Saturate both queues and check the dequeue pattern: at most 10
        // headers between data packets.
        let (mut w, q, sink) = world_with_queue(Policy::ndp(8, 9000));
        for i in 0..500 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        // The WRR bound applies while data is actually waiting: once the
        // data queue empties only headers remain, so measure runs up to the
        // last data departure.
        let last_data = s.got.iter().rposition(|p| !p.is_trimmed()).unwrap();
        let mut run = 0u32;
        let mut max_run = 0u32;
        for p in &s.got[..=last_data] {
            if p.is_trimmed() {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run <= 10, "header run {max_run} exceeds WRR ratio");
        assert!(
            max_run >= 9,
            "WRR should allow long header runs under load: {max_run}"
        );
    }

    #[test]
    fn ndp_control_packets_join_header_queue() {
        let (mut w, q, sink) = world_with_queue(Policy::ndp(8, 9000));
        for i in 0..9 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        let mut ack = Packet::control(1, 0, 0, PacketKind::Ack);
        ack.seq = 99;
        w.post(Time::from_ns(100), q, ack);
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        // The ACK overtakes the 8 queued data packets (but not the one
        // already on the wire).
        assert_eq!(s.got[1].kind, PacketKind::Ack);
    }

    #[test]
    fn ndp_header_overflow_bounces_to_switch() {
        // A tiny header queue via tiny mtu scaling: data_cap 2 , mtu 9000
        // gives hdr cap 18000 bytes = 281 headers; instead use direct
        // construction for a 2-header cap.
        let mut w: World<Packet> = World::new(5);
        let sink = w.add(Sink::new());
        let swid = w.add(Sink::new()); // stands in for the switch
        let mut qq = Queue::new(
            Speed::gbps(10),
            sink,
            LinkClass::TorDown,
            Policy::Ndp {
                data: VecDeque::new(),
                hdr: VecDeque::new(),
                data_cap_pkts: 2,
                hdr_cap_bytes: 2 * HEADER_BYTES as u64,
                hdr_bytes: 0,
                data_bytes: 0,
                hdr_run: 0,
                wrr_ratio: 10,
                bounce_to: None,
            },
        );
        qq.set_bounce_to(swid);
        let q = w.add(qq);
        for i in 0..10 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        let bounced = &w.get::<Sink>(swid).got;
        assert!(!bounced.is_empty(), "expected return-to-sender traffic");
        for b in bounced {
            assert!(b.is_rts());
            assert!(b.is_trimmed());
            assert_eq!((b.src, b.dst), (1, 0), "addresses must be swapped");
        }
        let st = &w.get::<Queue>(q).stats;
        assert_eq!(st.bounced as usize, bounced.len());
        // Nothing silently lost: forwarded + bounced == 10 eventually.
        assert_eq!(w.get::<Sink>(sink).got.len() + bounced.len(), 10);
    }

    #[test]
    fn cp_trims_into_same_fifo_without_priority() {
        let (mut w, q, sink) = world_with_queue(Policy::cp(8 * 9000));
        for i in 0..13 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        assert_eq!(s.got.len(), 13);
        // CP is FIFO: trimmed headers exit *after* all queued full packets.
        let first_trim_pos = s.got.iter().position(|p| p.is_trimmed()).unwrap();
        assert!(first_trim_pos >= 8, "CP must not give headers priority");
    }

    #[test]
    fn lossless_pauses_upstream_and_resumes() {
        // upstream queue -> pipe -> downstream lossless queue -> sink
        let mut w: World<Packet> = World::new(5);
        let sink = w.add(Sink::new());
        // Downstream drains at 1 Gb/s (slow), upstream feeds at 10 Gb/s.
        let down = w.add(Queue::new(
            Speed::gbps(1),
            sink,
            LinkClass::Other,
            Policy::lossless(40 * 9000, 10 * 9000, 5 * 9000),
        ));
        let pipe = w.add(crate::pipe::Pipe::new(Time::from_ns(500), down));
        let up = w.add(Queue::new(
            Speed::gbps(10),
            pipe,
            LinkClass::Other,
            Policy::droptail(1000 * 9000),
        ));
        w.get_mut::<Queue>(down).set_upstreams(vec![up]);
        for i in 0..100 {
            w.post(Time::ZERO, up, Packet::data(0, 1, 0, i, 9000));
        }
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        assert_eq!(s.got.len(), 100, "lossless fabric must not drop");
        let d = w.get::<Queue>(down);
        assert_eq!(d.stats.dropped_data, 0);
        assert!(d.stats.xoff_sent >= 1, "expected at least one pause event");
        assert!(
            d.stats.max_occupancy_bytes <= 40 * 9000,
            "occupancy bounded by capacity"
        );
    }

    #[test]
    fn paused_queue_does_not_transmit() {
        let mut w: World<Packet> = World::new(5);
        let sink = w.add(Sink::new());
        let q = w.add(Queue::new(
            Speed::gbps(10),
            sink,
            LinkClass::Other,
            Policy::droptail(100 * 9000),
        ));
        w.post(
            Time::ZERO,
            q,
            Packet::control(0, 0, 0, PacketKind::Pause { xoff: true }),
        );
        w.post(Time::from_ns(1), q, Packet::data(0, 1, 0, 0, 9000));
        w.post(
            Time::from_us(100),
            q,
            Packet::control(0, 0, 0, PacketKind::Pause { xoff: false }),
        );
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        assert_eq!(s.got.len(), 1);
        // Released only after the resume at t=100us, plus 7.2us tx.
        assert_eq!(s.times[0], Time::from_us(100) + Time::from_ns(7_200));
    }

    #[test]
    fn fused_hop_matches_queue_plus_pipe_timing() {
        let delay = Time::from_us(1);
        // Reference: queue -> pipe -> sink.
        let mut wa: World<Packet> = World::new(5);
        let sink_a = wa.add(Sink::new());
        let pipe = wa.add(crate::pipe::Pipe::new(delay, sink_a));
        let qa = wa.add(Queue::new(
            Speed::gbps(10),
            pipe,
            LinkClass::Other,
            Policy::droptail(100 * 9000),
        ));
        // Fused: queue carries the wire delay itself.
        let mut wb: World<Packet> = World::new(5);
        let sink_b = wb.add(Sink::new());
        let qb = wb.add(Queue::fused(
            Speed::gbps(10),
            sink_b,
            delay,
            LinkClass::Other,
            Policy::droptail(100 * 9000),
        ));
        for i in 0..5 {
            wa.post(Time::ZERO, qa, Packet::data(0, 1, 0, i, 9000));
            wb.post(Time::ZERO, qb, Packet::data(0, 1, 0, i, 9000));
        }
        wa.run_until_idle();
        wb.run_until_idle();
        let sa = wa.get::<Sink>(sink_a);
        let sb = wb.get::<Sink>(sink_b);
        assert_eq!(sa.times, sb.times, "fused hop must preserve arrival times");
        let seqs_a: Vec<u32> = sa.got.iter().map(|p| p.seq).collect();
        let seqs_b: Vec<u32> = sb.got.iter().map(|p| p.seq).collect();
        assert_eq!(seqs_a, seqs_b, "fused hop must preserve arrival order");
        // Fused run dispatched fewer events (no pipe hops).
        assert!(wb.events_processed() < wa.events_processed());
    }

    #[test]
    fn fused_corruption_matches_pipe_corruption_exactly() {
        // Same seed, same draw condition and order => the fused wire must
        // corrupt the exact same packets as a trailing Pipe would.
        let delay = Time::from_ns(500);
        let p = 0.25;
        let mut wa: World<Packet> = World::new(11);
        let sink_a = wa.add(Sink::new());
        let pipe = wa.add(crate::pipe::Pipe::new(delay, sink_a).with_corruption(p));
        let qa = wa.add(Queue::new(
            Speed::gbps(10),
            pipe,
            LinkClass::Other,
            Policy::droptail(10_000 * 9000),
        ));
        let mut wb: World<Packet> = World::new(11);
        let sink_b = wb.add(Sink::new());
        let qb = wb.add(
            Queue::fused(
                Speed::gbps(10),
                sink_b,
                delay,
                LinkClass::Other,
                Policy::droptail(10_000 * 9000),
            )
            .with_wire_corruption(p),
        );
        for i in 0..2_000 {
            wa.post(Time::from_ns(i), qa, Packet::data(0, 1, 0, i, 1500));
            wb.post(Time::from_ns(i), qb, Packet::data(0, 1, 0, i, 1500));
        }
        wa.run_until_idle();
        wb.run_until_idle();
        let sa = wa.get::<Sink>(sink_a);
        let sb = wb.get::<Sink>(sink_b);
        let seqs_a: Vec<u32> = sa.got.iter().map(|p| p.seq).collect();
        let seqs_b: Vec<u32> = sb.got.iter().map(|p| p.seq).collect();
        assert_eq!(seqs_a, seqs_b, "same survivors in the same order");
        assert_eq!(sa.times, sb.times);
        assert_eq!(
            wa.get::<crate::pipe::Pipe>(pipe).corrupted,
            wb.get::<Queue>(qb).wire_corrupted
        );
        assert!(wb.get::<Queue>(qb).wire_corrupted > 0);
    }

    #[test]
    fn down_link_loses_buffered_and_in_flight_packets() {
        let (mut w, q, sink) = world_with_queue(Policy::droptail(100 * 9000));
        for i in 0..3 {
            w.post(Time::ZERO, q, Packet::data(0, 1, 0, i, 9000));
        }
        // At 10us: #0 delivered (7.2us), #1 on the wire, #2 buffered.
        w.run_until(Time::from_us(10));
        w.get_mut::<Queue>(q).set_down(true);
        assert_eq!(w.get::<Queue>(q).stats.dropped_down, 1, "buffer flushed");
        // A packet arriving while down is dropped, not queued.
        w.post(Time::from_us(11), q, Packet::data(0, 1, 0, 9, 9000));
        w.run_until_idle();
        let qq = w.get::<Queue>(q);
        assert_eq!(qq.stats.dropped_down, 3, "wire victim + arrival counted");
        assert_eq!(qq.queued_packets(), 0);
        assert_eq!(w.get::<Sink>(sink).got.len(), 1, "only #0 survived");
    }

    #[test]
    fn restored_link_comes_back_at_nominal_rate() {
        let (mut w, q, sink) = world_with_queue(Policy::droptail(100 * 9000));
        {
            let qq = w.get_mut::<Queue>(q);
            qq.set_rate(Speed::gbps(1)); // degraded...
            qq.set_down(true); // ...then hard down...
            qq.restore(); // ...then recovered.
            assert!(!qq.is_down());
            assert_eq!(qq.rate(), qq.nominal_rate());
        }
        w.post(Time::ZERO, q, Packet::data(0, 1, 0, 0, 9000));
        w.run_until_idle();
        // 9 KB at the nominal 10 Gb/s again, not the degraded 1 Gb/s.
        assert_eq!(w.get::<Sink>(sink).times, vec![Time::from_ns(7_200)]);
    }

    #[test]
    fn down_ndp_queue_bounces_data_and_drops_control() {
        let mut w: World<Packet> = World::new(5);
        let sink = w.add(Sink::new());
        let swid = w.add(Sink::new()); // stands in for the owning switch
        let mut qq = Queue::new(
            Speed::gbps(10),
            sink,
            LinkClass::TorDown,
            Policy::ndp(8, 9000),
        );
        qq.set_bounce_to(swid);
        qq.set_down(true);
        let q = w.add(qq);
        w.post(Time::ZERO, q, Packet::data(3, 7, 1, 0, 9000));
        w.post(Time::ZERO, q, Packet::control(3, 7, 1, PacketKind::Ack));
        w.run_until_idle();
        let bounced = &w.get::<Sink>(swid).got;
        assert_eq!(bounced.len(), 1, "data comes back as an RTS header");
        assert!(bounced[0].is_rts() && bounced[0].is_trimmed());
        assert_eq!((bounced[0].src, bounced[0].dst), (7, 3));
        let st = &w.get::<Queue>(q).stats;
        assert_eq!(st.dropped_down, 1, "the ACK is gone");
        assert!(
            w.get::<Sink>(sink).got.is_empty(),
            "nothing crosses a dead link"
        );
    }

    #[test]
    fn rate_change_applies_to_next_packet() {
        let mut w: World<Packet> = World::new(5);
        let sink = w.add(Sink::new());
        let q = w.add(Queue::new(
            Speed::gbps(10),
            sink,
            LinkClass::Other,
            Policy::droptail(100 * 9000),
        ));
        w.post(Time::ZERO, q, Packet::data(0, 1, 0, 0, 9000));
        w.run_until_idle();
        w.get_mut::<Queue>(q).set_rate(Speed::gbps(1));
        w.post(Time::from_ms(1), q, Packet::data(0, 1, 0, 1, 9000));
        w.run_until_idle();
        let s = w.get::<Sink>(sink);
        assert_eq!(s.times[1] - Time::from_ms(1), Time::from_us(72));
    }
}
