//! A switch: an L2 forwarding decision plus per-port egress queues.
//!
//! Switches are deliberately thin — all buffering lives in the
//! [`crate::queue::Queue`] components — matching the paper's NetFPGA design
//! (Figure 6: input arbiter → L2 switching logic → NDP logic → output
//! queues). Routing policy is injected via [`Router`] so topology crates can
//! supply FatTree arithmetic without this crate depending on them.

use std::any::Any;

use ndp_sim::{Component, ComponentId, Ctx, Event};
use rand::rngs::SmallRng;

use crate::packet::Packet;

/// A forwarding decision: which output port a packet leaves on.
///
/// Implementations exist per topology (see `ndp-topology`). `rng` supports
/// per-packet random ECMP modes (the paper's "switches randomly choose the
/// next hop" baseline in §3.1.1).
pub trait Router: Send {
    fn route(&self, pkt: &Packet, rng: &mut SmallRng) -> usize;
}

/// A blanket impl so simple closures can act as routers in tests.
impl<F> Router for F
where
    F: Fn(&Packet, &mut SmallRng) -> usize + Send,
{
    fn route(&self, pkt: &Packet, rng: &mut SmallRng) -> usize {
        self(pkt, rng)
    }
}

/// The switch component.
pub struct Switch {
    ports: Vec<ComponentId>,
    router: Box<dyn Router>,
    pub rx_pkts: u64,
}

impl Switch {
    pub fn new(ports: Vec<ComponentId>, router: Box<dyn Router>) -> Switch {
        Switch {
            ports,
            router,
            rx_pkts: 0,
        }
    }

    pub fn ports(&self) -> &[ComponentId] {
        &self.ports
    }
}

impl Component<Packet> for Switch {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        let Event::Msg(pkt) = ev else { return };
        self.rx_pkts += 1;
        let port = self.router.route(&pkt, ctx.rng());
        debug_assert!(port < self.ports.len(), "router chose invalid port {port}");
        ctx.forward(self.ports[port], pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_sim::{Time, World};

    struct Sink {
        got: u64,
    }
    impl Component<Packet> for Sink {
        fn handle(&mut self, ev: Event<Packet>, _ctx: &mut Ctx<'_, Packet>) {
            if let Event::Msg(_) = ev {
                self.got += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn routes_by_destination() {
        let mut w: World<Packet> = World::new(3);
        let a = w.add(Sink { got: 0 });
        let b = w.add(Sink { got: 0 });
        let sw = w.add(Switch::new(
            vec![a, b],
            Box::new(|p: &Packet, _: &mut SmallRng| p.dst as usize % 2),
        ));
        for i in 0..10u32 {
            let pkt = Packet::data(0, i, 0, 0, 1500);
            w.post(Time::ZERO, sw, pkt);
        }
        w.run_until_idle();
        assert_eq!(w.get::<Sink>(a).got, 5);
        assert_eq!(w.get::<Sink>(b).got, 5);
        assert_eq!(w.get::<Switch>(sw).rx_pkts, 10);
    }

    #[test]
    fn random_router_uses_world_rng_deterministically() {
        fn run(seed: u64) -> (u64, u64) {
            let mut w: World<Packet> = World::new(seed);
            let a = w.add(Sink { got: 0 });
            let b = w.add(Sink { got: 0 });
            let sw = w.add(Switch::new(
                vec![a, b],
                Box::new(|_: &Packet, rng: &mut SmallRng| {
                    use rand::Rng;
                    rng.gen_range(0..2)
                }),
            ));
            for _ in 0..100 {
                w.post(Time::ZERO, sw, Packet::data(0, 1, 0, 0, 1500));
            }
            w.run_until_idle();
            (w.get::<Sink>(a).got, w.get::<Sink>(b).got)
        }
        assert_eq!(run(17), run(17));
        let (a, b) = run(17);
        assert_eq!(a + b, 100);
        assert!(a > 20 && b > 20, "roughly balanced: {a}/{b}");
    }
}
