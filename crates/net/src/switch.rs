//! A switch: an L2 forwarding decision plus per-port egress queues.
//!
//! Switches are deliberately thin — all buffering lives in the
//! [`crate::queue::Queue`] components — matching the paper's NetFPGA design
//! (Figure 6: input arbiter → L2 switching logic → NDP logic → output
//! queues). Routing policy is injected via [`Router`] so topology crates can
//! supply FatTree arithmetic without this crate depending on them.

use std::any::Any;

use ndp_sim::{Component, ComponentId, Ctx, Event};
use rand::rngs::SmallRng;

use crate::packet::Packet;

/// A forwarding decision: which output port a packet leaves on.
///
/// Implementations exist per topology (see `ndp-topology`). `rng` supports
/// per-packet random ECMP modes (the paper's "switches randomly choose the
/// next hop" baseline in §3.1.1).
pub trait Router: Send {
    fn route(&self, pkt: &Packet, rng: &mut SmallRng) -> usize;

    /// The chosen port's link is down (see `up`, the live-mask over the
    /// switch's ports): pick an equivalent live port that still delivers,
    /// or `None` when the dead port was the only way (a downlink in a tree
    /// fabric). Implementations must be deterministic and draw no RNG —
    /// reroute happens on the hot path only while links are actually down,
    /// and must not perturb the RNG stream of healthy runs.
    fn reroute(&self, _pkt: &Packet, _chosen: usize, _up: &[bool]) -> Option<usize> {
        None
    }
}

/// A blanket impl so simple closures can act as routers in tests.
impl<F> Router for F
where
    F: Fn(&Packet, &mut SmallRng) -> usize + Send,
{
    fn route(&self, pkt: &Packet, rng: &mut SmallRng) -> usize {
        self(pkt, rng)
    }
}

/// The switch component.
pub struct Switch {
    ports: Vec<ComponentId>,
    /// Live-mask over `ports`, maintained by the fabric-chaos layer. A
    /// masked port is one whose egress link is down; the router is asked to
    /// [`Router::reroute`] around it.
    port_up: Vec<bool>,
    /// Fast guard: true iff any entry of `port_up` is false. Keeps the
    /// healthy hot path to a single predictable branch.
    any_down: bool,
    router: Box<dyn Router>,
    pub rx_pkts: u64,
    /// Packets steered off a dead port onto a live equivalent.
    pub rerouted: u64,
    /// Opt-in flight recorder hook (see [`crate::flight`]): records each
    /// reroute. `None` by default; purely observational.
    flight: Option<crate::flight::FlightHook>,
}

impl Switch {
    pub fn new(ports: Vec<ComponentId>, router: Box<dyn Router>) -> Switch {
        let port_up = vec![true; ports.len()];
        Switch {
            ports,
            port_up,
            any_down: false,
            router,
            rx_pkts: 0,
            rerouted: 0,
            flight: None,
        }
    }

    /// Attach (or detach, with `None`) a flight-recorder hook. Hooks post
    /// no events and draw no RNG, so they cannot change a golden trace.
    pub fn set_flight_hook(&mut self, hook: Option<crate::flight::FlightHook>) {
        self.flight = hook;
    }

    pub fn ports(&self) -> &[ComponentId] {
        &self.ports
    }

    /// Mark one egress port live or dead. Dead ports are avoided where the
    /// router knows an equivalent; traffic with no alternative still
    /// forwards into the dead link's queue, which drops or bounces it.
    pub fn set_port_up(&mut self, port: usize, up: bool) {
        self.port_up[port] = up;
        self.any_down = self.port_up.iter().any(|&u| !u);
    }

    pub fn port_is_up(&self, port: usize) -> bool {
        self.port_up[port]
    }
}

impl Component<Packet> for Switch {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        let Event::Msg(pkt) = ev else { return };
        self.rx_pkts += 1;
        let mut port = self.router.route(&pkt, ctx.rng());
        debug_assert!(port < self.ports.len(), "router chose invalid port {port}");
        if self.any_down && !self.port_up[port] {
            if let Some(alt) = self.router.reroute(&pkt, port, &self.port_up) {
                debug_assert!(alt < self.ports.len() && self.port_up[alt]);
                self.rerouted += 1;
                if let Some(h) = &self.flight {
                    h.record(crate::flight::HopKind::Reroute, ctx.now(), &pkt);
                }
                port = alt;
            }
        }
        ctx.forward(self.ports[port], pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_sim::{Time, World};

    struct Sink {
        got: u64,
    }
    impl Component<Packet> for Sink {
        fn handle(&mut self, ev: Event<Packet>, _ctx: &mut Ctx<'_, Packet>) {
            if let Event::Msg(_) = ev {
                self.got += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn routes_by_destination() {
        let mut w: World<Packet> = World::new(3);
        let a = w.add(Sink { got: 0 });
        let b = w.add(Sink { got: 0 });
        let sw = w.add(Switch::new(
            vec![a, b],
            Box::new(|p: &Packet, _: &mut SmallRng| p.dst as usize % 2),
        ));
        for i in 0..10u32 {
            let pkt = Packet::data(0, i, 0, 0, 1500);
            w.post(Time::ZERO, sw, pkt);
        }
        w.run_until_idle();
        assert_eq!(w.get::<Sink>(a).got, 5);
        assert_eq!(w.get::<Sink>(b).got, 5);
        assert_eq!(w.get::<Switch>(sw).rx_pkts, 10);
    }

    #[test]
    fn dead_port_reroutes_when_router_knows_an_alternative() {
        struct TwoUplinks;
        impl Router for TwoUplinks {
            fn route(&self, _: &Packet, _: &mut SmallRng) -> usize {
                0
            }
            fn reroute(&self, _: &Packet, chosen: usize, up: &[bool]) -> Option<usize> {
                (0..up.len())
                    .map(|i| (chosen + 1 + i) % up.len())
                    .find(|&p| up[p])
            }
        }
        let mut w: World<Packet> = World::new(3);
        let a = w.add(Sink { got: 0 });
        let b = w.add(Sink { got: 0 });
        let sw = w.add(Switch::new(vec![a, b], Box::new(TwoUplinks)));
        w.post(Time::ZERO, sw, Packet::data(0, 1, 0, 0, 1500));
        w.run_until(Time::from_ns(1));
        w.get_mut::<Switch>(sw).set_port_up(0, false);
        w.post(Time::from_ns(2), sw, Packet::data(0, 1, 0, 1, 1500));
        w.run_until(Time::from_ns(3));
        w.get_mut::<Switch>(sw).set_port_up(0, true);
        w.post(Time::from_ns(4), sw, Packet::data(0, 1, 0, 2, 1500));
        w.run_until_idle();
        assert_eq!(w.get::<Sink>(a).got, 2, "healthy traffic uses port 0");
        assert_eq!(w.get::<Sink>(b).got, 1, "masked-window packet detoured");
        assert_eq!(w.get::<Switch>(sw).rerouted, 1);
    }

    #[test]
    fn dead_port_without_alternative_still_forwards_into_it() {
        // Closure routers have no reroute knowledge: the packet must keep
        // heading for the dead port's queue (which drops or bounces it) —
        // the switch itself never silently eats packets.
        let mut w: World<Packet> = World::new(3);
        let a = w.add(Sink { got: 0 });
        let b = w.add(Sink { got: 0 });
        let sw = w.add(Switch::new(
            vec![a, b],
            Box::new(|_: &Packet, _: &mut SmallRng| 0usize),
        ));
        w.get_mut::<Switch>(sw).set_port_up(0, false);
        w.post(Time::ZERO, sw, Packet::data(0, 1, 0, 0, 1500));
        w.run_until_idle();
        assert_eq!(w.get::<Sink>(a).got, 1);
        assert_eq!(w.get::<Switch>(sw).rerouted, 0);
    }

    #[test]
    fn random_router_uses_world_rng_deterministically() {
        fn run(seed: u64) -> (u64, u64) {
            let mut w: World<Packet> = World::new(seed);
            let a = w.add(Sink { got: 0 });
            let b = w.add(Sink { got: 0 });
            let sw = w.add(Switch::new(
                vec![a, b],
                Box::new(|_: &Packet, rng: &mut SmallRng| {
                    use rand::Rng;
                    rng.gen_range(0..2)
                }),
            ));
            for _ in 0..100 {
                w.post(Time::ZERO, sw, Packet::data(0, 1, 0, 0, 1500));
            }
            w.run_until_idle();
            (w.get::<Sink>(a).got, w.get::<Sink>(b).got)
        }
        assert_eq!(run(17), run(17));
        let (a, b) = run(17);
        assert_eq!(a + b, 100);
        assert!(a > 20 && b > 20, "roughly balanced: {a}/{b}");
    }
}
