//! A tiny non-cryptographic hasher for hot-path lookup tables.
//!
//! The per-packet maps in the net layer (flow id → endpoint, flow id →
//! pull-queue slot) are keyed by small integers we generate ourselves, so
//! SipHash's DoS resistance buys nothing and its per-lookup cost is pure
//! overhead on the hottest dispatch path. This is the multiply-rotate mix
//! popularized by rustc's FxHasher — one `rotate_left` and one `wrapping_mul`
//! per word — hand-rolled here because the simulator vendors no external
//! crates.
//!
//! Determinism note: the std default hasher is already randomly seeded per
//! process, so nothing in the simulator may depend on map iteration order;
//! swapping the hasher cannot change observable behaviour (the determinism
//! tests run with both).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over native words. Not cryptographic; only for
/// tables keyed by trusted, internally-generated ids.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the tail-padded chunks; keys here are small
        // integers so this loop body runs at most once or twice.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` with the fast hasher — drop-in for integer-keyed hot tables.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fast hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_spread() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        // Deterministic across calls (no per-instance seeding).
        assert_eq!(h(42), h(42));
        // Sequential small keys don't collide in the low bits that a
        // power-of-two table actually indexes with.
        let low: Vec<u64> = (0..64).map(|v| h(v) & 0xfff).collect();
        let mut dedup = low.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() > 60, "low-bit collisions: {low:?}");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(1 << 40, "big");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&(1 << 40)), Some(&"big"));
        assert_eq!(m.len(), 2);
    }
}
