//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate under the whole NDP reproduction: a
//! picosecond-resolution clock, a binary-heap scheduler with a monotone
//! tie-breaker (so runs are bit-reproducible for a given seed), and a
//! component arena with message-passing dispatch.
//!
//! The design follows the event-driven philosophy of stacks like smoltcp:
//! no async runtime, no threads inside a world, no unsafe — just a heap of
//! timestamped events and plain state machines. Parallelism (when needed by
//! the experiment harness) happens *across* independent worlds, never inside
//! one.
//!
//! # Example
//!
//! ```
//! use ndp_sim::{Component, Ctx, Event, Time, World};
//!
//! struct Echo { heard: u64 }
//! impl Component<u64> for Echo {
//!     fn handle(&mut self, ev: Event<u64>, _ctx: &mut Ctx<'_, u64>) {
//!         if let Event::Msg(v) = ev { self.heard += v; }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut world = World::new(42);
//! let id = world.add(Echo { heard: 0 });
//! world.post(Time::from_us(1), id, 7u64);
//! world.run_until_idle();
//! assert_eq!(world.get::<Echo>(id).heard, 7);
//! ```

pub mod fxhash;
pub mod time;
pub mod world;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use time::{Speed, Time};
pub use world::{
    set_default_lanes, set_default_scheduler, Component, ComponentId, Ctx, Event, EventKindCounts,
    SchedulerKind, World, WorldOp,
};
