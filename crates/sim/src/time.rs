//! Simulation time and link speed.
//!
//! Time is measured in integer **picoseconds**, like htsim. At common
//! datacenter link speeds the serialization time of a byte is an exact
//! integer number of picoseconds (10 Gb/s = 100 ps/bit = 800 ps/byte), so
//! every event timestamp in the reproduction is exact — there is no
//! floating-point drift anywhere in the hot path.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);
    /// One picosecond.
    pub const PS: Time = Time(1);
    /// One nanosecond.
    pub const NS: Time = Time(1_000);
    /// One microsecond.
    pub const US: Time = Time(1_000_000);
    /// One millisecond.
    pub const MS: Time = Time(1_000_000_000);
    /// One second.
    pub const SEC: Time = Time(1_000_000_000_000);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000_000)
    }

    pub const fn as_ps(self) -> u64 {
        self.0
    }
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero if `b > a`.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}
impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}
impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}
impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}
impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}
impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0")
        } else if ps.is_multiple_of(1_000_000_000_000) {
            write!(f, "{}s", ps / 1_000_000_000_000)
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{}us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{}ns", ps / 1_000)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// A link speed in bits per second.
///
/// [`Speed::tx_time`] converts a byte count into an exact serialization
/// duration using 128-bit intermediate arithmetic, so non-round speeds
/// (e.g. a failed link renegotiated to 2.5 Gb/s) are still exact to the
/// picosecond.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Speed(pub u64);

impl Speed {
    pub const fn bps(bits_per_sec: u64) -> Speed {
        Speed(bits_per_sec)
    }
    pub const fn gbps(g: u64) -> Speed {
        Speed(g * 1_000_000_000)
    }
    pub const fn mbps(m: u64) -> Speed {
        Speed(m * 1_000_000)
    }

    pub const fn as_bps(self) -> u64 {
        self.0
    }
    pub fn as_gbps(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Serialization time for `bytes` at this speed.
    /// Exact picoseconds-per-byte for this rate, or 0 when the rate does
    /// not divide a byte-picosecond evenly. Every standard rate (any whole
    /// Mb/s) is exact, so hot paths can cache this once at wiring time and
    /// replace the per-packet division in [`Speed::tx_time`] with one
    /// multiply: `tx_time(bytes) == Time::from_ps(bytes * ppb)` whenever
    /// the returned value is non-zero.
    pub const fn ps_per_byte_exact(self) -> u64 {
        if self.0 > 0 && 8_000_000_000_000 % self.0 == 0 {
            8_000_000_000_000 / self.0
        } else {
            0
        }
    }

    pub fn tx_time(self, bytes: u64) -> Time {
        debug_assert!(self.0 > 0, "zero link speed");
        // This runs once per packet per hop (every TX start), so the wide
        // division matters: for packet-sized operands the product fits u64
        // and one native `div` replaces the u128 `__udivti3` call. Both
        // branches compute the identical integer quotient.
        if bytes <= u64::MAX / 8_000_000_000_000 {
            Time((bytes * 8_000_000_000_000) / self.0)
        } else {
            let bits = bytes as u128 * 8;
            Time(((bits * 1_000_000_000_000u128) / self.0 as u128) as u64)
        }
    }

    /// How many bytes this link transfers in `t` (rounding down).
    pub fn bytes_in(self, t: Time) -> u64 {
        ((self.0 as u128 * t.0 as u128) / (8 * 1_000_000_000_000u128)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gbps_serialization_is_exact() {
        // The paper: a 9 KB jumbogram takes 7.2 us to serialize at 10 Gb/s.
        assert_eq!(Speed::gbps(10).tx_time(9000), Time::from_ns(7_200));
        // A 64-byte trimmed header takes 51.2 ns.
        assert_eq!(Speed::gbps(10).tx_time(64), Time::from_ps(51_200));
        // A 1500-byte MTU packet takes 1.2 us.
        assert_eq!(Speed::gbps(10).tx_time(1500), Time::from_ns(1_200));
    }

    #[test]
    fn one_gbps_serialization() {
        assert_eq!(Speed::gbps(1).tx_time(9000), Time::from_us(72));
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let s = Speed::gbps(10);
        for bytes in [1u64, 64, 1500, 9000, 123_456] {
            assert_eq!(s.bytes_in(s.tx_time(bytes)), bytes);
        }
    }

    #[test]
    fn time_arithmetic_and_display() {
        let t = Time::from_us(3) + Time::from_ns(500);
        assert_eq!(t.as_ps(), 3_500 * 1_000);
        assert_eq!(format!("{}", Time::from_us(7)), "7us");
        assert_eq!(format!("{}", Time::from_ms(1)), "1ms");
        assert_eq!(format!("{}", Time::ZERO), "0");
        assert_eq!(
            Time::from_us(1).saturating_sub(Time::from_ms(1)),
            Time::ZERO
        );
    }

    #[test]
    fn time_ordering() {
        assert!(Time::from_ns(999) < Time::US);
        assert_eq!(Time::from_us(1_000), Time::MS);
        assert_eq!(Time::from_ms(1_000), Time::SEC);
    }

    #[test]
    fn speed_sum_and_min_max() {
        assert_eq!(Time::from_us(1).max(Time::from_us(2)), Time::from_us(2));
        assert_eq!(Time::from_us(1).min(Time::from_us(2)), Time::from_us(1));
        let total: Time = [Time::US, Time::US, Time::NS].into_iter().sum();
        assert_eq!(total, Time::from_ns(2001));
    }

    #[test]
    fn odd_speed_uses_wide_arithmetic() {
        // 2.5 Gb/s: 1 byte = 3.2 ns
        assert_eq!(Speed::mbps(2500).tx_time(1), Time::from_ps(3200));
        // Large transfers don't overflow.
        let t = Speed::gbps(400).tx_time(100_000_000_000);
        assert_eq!(t, Time::from_secs(2));
    }
}
