//! The component arena and event scheduler.
//!
//! A [`World`] owns every network element (queue, pipe, switch, host) as a
//! boxed [`Component`]. Components never hold references to each other; they
//! interact only by posting timestamped events through the [`Ctx`] handed to
//! them during dispatch. Events at equal timestamps are delivered in posting
//! order (a monotone sequence number breaks ties), which makes every run
//! bit-reproducible for a given seed.
//!
//! # Scheduling
//!
//! Two scheduler implementations share that ordering contract:
//!
//! * [`SchedulerKind::TwoTier`] (default) — the hot path. Zero-delay
//!   handoffs (`Ctx::forward`, the queue→pipe→switch→host chains that
//!   dominate event counts) go to a plain FIFO "fast lane" and never touch
//!   an ordered structure; short-delay timers (serialization, propagation,
//!   pacing) go into a 1024-slot timing wheel; far-future timers
//!   (retransmission timeouts and the like) overflow into a binary heap and
//!   migrate into the wheel as its window slides forward.
//! * [`SchedulerKind::Classic`] — the seed's single binary heap, kept as
//!   the reference implementation. The golden-trace tests assert both
//!   schedulers produce bit-identical event orderings, and the engine bench
//!   measures the speedup of one over the other.
//!
//! Why the fast lane preserves ordering: sequence numbers are assigned in
//! posting order, the clock only reaches an instant `t` after every event
//! scheduled *for* `t` from earlier instants is already in the wheel, and
//! every event posted *at* `t` for `t` lands behind them in the FIFO. So
//! draining "due wheel batch, then fast lane" is exactly ascending
//! `(time, seq)` order — what the classic heap produces.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::time::Time;

/// Handle to a component in its world's arena: a slot index plus the
/// slot's generation at allocation time.
///
/// Slots are reclaimed when components are [retired](World::retire) and
/// handed out again by a free list; the generation disambiguates the slot's
/// successive occupants, so an event (or a saved id) addressed to a retired
/// component can never reach the slot's new tenant — dispatch drops stale
/// events, `try_get` returns `None`, and `get`/`get_mut` panic loudly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId {
    idx: u32,
    gen: u32,
}

impl ComponentId {
    /// Placeholder for "not wired yet" tables (never dispatchable: no slot
    /// ever carries this generation at `u32::MAX`).
    pub const DANGLING: ComponentId = ComponentId {
        idx: u32::MAX,
        gen: u32::MAX,
    };

    /// The slot index (stable for the component's lifetime; reused after
    /// retirement, which is what the generation guards against).
    pub fn index(self) -> u32 {
        self.idx
    }

    /// The allocation generation of this handle's slot.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.gen == 0 {
            write!(f, "{}", self.idx)
        } else {
            write!(f, "{}v{}", self.idx, self.gen)
        }
    }
}

/// What a component receives when dispatched.
#[derive(Debug)]
pub enum Event<M> {
    /// A message (for the network crates: a packet) from another component.
    Msg(M),
    /// A timer the component set for itself; the token disambiguates
    /// multiple concurrent timers.
    Wake(u64),
}

/// A simulation actor: a queue, pipe, switch, or host.
///
/// `as_any`/`as_any_mut` enable post-run harvesting of statistics by
/// downcasting — the experiment harness reads results out of components
/// after `run_until` returns, so components never need shared ownership of
/// metric sinks.
pub trait Component<M>: Send {
    fn handle(&mut self, ev: Event<M>, ctx: &mut Ctx<'_, M>);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

struct Scheduled<M> {
    at: Time,
    seq: u64,
    to: ComponentId,
    payload: Payload<M>,
}

/// What a [`Scheduled`] entry carries: a single event, or a same-instant
/// train of messages coalesced into one scheduler entry ([`Ctx::send_train`]).
/// Components never see the train form — dispatch expands it into
/// consecutive [`Event::Msg`] deliveries, each counted and traced exactly as
/// if it had been posted individually, so a train is indistinguishable from
/// the back-to-back posts it replaces (same trace hash, same event count).
enum Payload<M> {
    One(Event<M>),
    Train(Vec<M>),
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which event-queue implementation a [`World`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Timing wheel + overflow heap + zero-delay fast lane (default).
    TwoTier,
    /// The seed's single binary heap — reference implementation.
    Classic,
}

impl SchedulerKind {
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::TwoTier => "two-tier",
            SchedulerKind::Classic => "classic",
        }
    }

    /// Parse a scheduler name as accepted by `NDP_SCHED`.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "two-tier" => Some(SchedulerKind::TwoTier),
            "classic" => Some(SchedulerKind::Classic),
            _ => None,
        }
    }
}

/// Process-wide default for new worlds: 0 = unset, 1 = two-tier,
/// 2 = classic. Overridable via `NDP_SCHED=classic|two-tier` or
/// [`set_default_scheduler`] (used by benches to A/B the engines without
/// threading a parameter through every harness entry point).
static DEFAULT_SCHED: AtomicU8 = AtomicU8::new(0);

/// Set the scheduler used by subsequently created worlds.
pub fn set_default_scheduler(kind: SchedulerKind) {
    let v = match kind {
        SchedulerKind::TwoTier => 1,
        SchedulerKind::Classic => 2,
    };
    DEFAULT_SCHED.store(v, Ordering::Relaxed);
}

fn default_scheduler() -> SchedulerKind {
    match DEFAULT_SCHED.load(Ordering::Relaxed) {
        1 => SchedulerKind::TwoTier,
        2 => SchedulerKind::Classic,
        _ => {
            let kind = match std::env::var("NDP_SCHED").as_deref() {
                Err(_) | Ok("") => SchedulerKind::TwoTier,
                // A typo here would silently invalidate an A/B comparison;
                // refuse to run, matching NDP_SCALE's strictness.
                Ok(v) => SchedulerKind::parse(v).unwrap_or_else(|| {
                    panic!("NDP_SCHED must be 'classic' or 'two-tier', got '{v}'")
                }),
            };
            set_default_scheduler(kind);
            kind
        }
    }
}

/// Process-wide default for the two-tier scheduler's delay lanes:
/// 0 = unset, 1 = on, 2 = off. Overridable via `NDP_LANES=on|off` or
/// [`set_default_lanes`]. Lanes are a pure scheduling optimization — the
/// golden traces and the lane A/B proptests pin that flipping this cannot
/// change any run's results, only its speed.
static DEFAULT_LANES: AtomicU8 = AtomicU8::new(0);

/// Set whether subsequently created two-tier worlds register delay lanes.
pub fn set_default_lanes(enabled: bool) {
    DEFAULT_LANES.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

fn default_lanes() -> bool {
    match DEFAULT_LANES.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let enabled = match std::env::var("NDP_LANES").as_deref() {
                Err(_) | Ok("") | Ok("on") | Ok("1") => true,
                Ok("off") | Ok("0") => false,
                Ok(v) => panic!("NDP_LANES must be 'on' or 'off', got '{v}'"),
            };
            set_default_lanes(enabled);
            enabled
        }
    }
}

/// Out-of-line panic for events addressed to a vacated (reserved or
/// never-installed) slot, keeping the dispatch loop's hot body small.
#[cold]
#[inline(never)]
fn missing_component(id: ComponentId) -> ! {
    panic!("event for missing component {id}")
}

/// Timing-wheel geometry: 1024 slots of 2^16 ps (≈65.5 ns) cover a window
/// of ≈67 µs — serialization times, propagation delays and pull pacing all
/// land in the wheel; millisecond-scale retransmission timers overflow to
/// the heap. Both are powers of two so slot math is shifts and masks.
const GRAN_SHIFT: u32 = 16;
const SLOTS: usize = 1024;
const SLOT_MASK: u64 = SLOTS as u64 - 1;

/// Per-exact-delay FIFO lanes. A workload posts the overwhelming majority
/// of its timed events at a handful of distinct delays (wire latency,
/// tx_time quanta, pacer spacing, the RTO); since the clock is monotone,
/// posts of `now + D` for a fixed `D` arrive in ascending `(at, seq)`
/// order, so each such delay can ride a plain FIFO that is pre-sorted by
/// construction — no slot hashing, no occupancy scan, no refill.
const MAX_LANES: usize = 16;
/// Delays above this (10 ms, in ps) never get a lane: they are RTO-scale
/// one-offs or `Time::MAX`-style sentinels, not hot-path quanta.
const LANE_MAX_DELAY_PS: u64 = 10_000_000_000;
/// Recently-missed delays remembered for promotion: a delay becomes a lane
/// on its *second* sighting, so one-shot delays (jittered pacer re-arms,
/// odd-sized last packets) never pin one of the [`MAX_LANES`] lane slots.
const LANE_CANDIDATES: usize = 8;

struct TwoTier<M> {
    /// Events due at the current instant, drained before everything else
    /// (ascending `seq`; extracted from the wheel as one batch).
    due: VecDeque<Scheduled<M>>,
    /// Zero-delay posts made *at* the current instant (FIFO == seq order;
    /// all seqs here are larger than anything in `due`).
    fast: VecDeque<Scheduled<M>>,
    /// One rotation's worth of future events, bucketed by slot.
    wheel: Vec<Vec<Scheduled<M>>>,
    /// Earliest timestamp in each bucket (`Time::MAX` when empty), kept
    /// exact on every push/extract so refills never rescan a bucket to
    /// find their batch instant.
    min_at: Vec<Time>,
    /// Occupancy bitmap over the wheel slots (bit i == slot i non-empty):
    /// sliding to the next busy slot is a couple of word scans instead of
    /// up to a rotation of per-bucket emptiness probes.
    occ: [u64; SLOTS / 64],
    wheel_len: usize,
    /// Time (ps) at which the cursor slot starts; the wheel window is
    /// `[wheel_start, wheel_start + SLOTS << GRAN_SHIFT)`.
    wheel_start: u64,
    cursor: usize,
    /// Events beyond the wheel window, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<Scheduled<M>>>,
    /// Per-exact-delay FIFO lanes (registered on a delay's second sighting,
    /// at most [`MAX_LANES`]). Each lane is sorted by `(at, seq)` by
    /// construction — see [`TwoTier::push_timed`]. The lane *keys* live in
    /// the two packed side arrays below so the per-post scan and the
    /// per-refill min scan touch a couple of cache lines instead of
    /// pointer-chasing into every queue's heap buffer.
    lanes: Vec<VecDeque<Scheduled<M>>>,
    /// `lane_delays[i]` is lane i's exact delay (ps); slots past
    /// `lanes.len()` are unregistered.
    lane_delays: [u64; MAX_LANES],
    /// `lane_fronts[i]` caches lane i's front timestamp (`u64::MAX` when
    /// the lane is empty), maintained on every lane push and pop. The
    /// refill's earliest-instant scan reads only this array.
    lane_fronts: [u64; MAX_LANES],
    /// Ring of recently-missed lane-eligible delays (promotion candidates).
    lane_cand: [u64; LANE_CANDIDATES],
    lane_cand_idx: usize,
    /// Lane registration on/off (`NDP_LANES` / [`set_default_lanes`]); the
    /// A/B contract is that flipping this cannot change any run's results.
    lanes_enabled: bool,
}

impl<M> TwoTier<M> {
    fn new(lanes_enabled: bool) -> TwoTier<M> {
        TwoTier {
            // Seeded at the shrink_idle floor: the first burst grows from a
            // warm base instead of doubling up from an empty buffer.
            due: VecDeque::with_capacity(32),
            fast: VecDeque::with_capacity(32),
            wheel: (0..SLOTS).map(|_| Vec::new()).collect(),
            min_at: vec![Time::MAX; SLOTS],
            occ: [0; SLOTS / 64],
            wheel_len: 0,
            wheel_start: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            lanes: Vec::new(),
            lane_delays: [u64::MAX; MAX_LANES],
            lane_fronts: [u64::MAX; MAX_LANES],
            lane_cand: [u64::MAX; LANE_CANDIDATES],
            lane_cand_idx: 0,
            lanes_enabled,
        }
    }

    #[inline]
    fn mark_occupied(occ: &mut [u64; SLOTS / 64], idx: usize) {
        occ[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// Distance (in slots) from the window base to the first occupied
    /// slot. Caller guarantees `wheel_len > 0`, so the scan terminates.
    #[inline]
    fn first_occupied_ahead(&self, base: u64) -> u64 {
        let start = (base & SLOT_MASK) as usize;
        let mut w = start >> 6;
        let mut word = self.occ[w] & (u64::MAX << (start & 63));
        while word == 0 {
            w = (w + 1) % (SLOTS / 64);
            word = self.occ[w];
        }
        let idx = (w << 6) + word.trailing_zeros() as usize;
        (idx.wrapping_sub(start) & SLOT_MASK as usize) as u64
    }

    /// Is slot number `slot_num` within one rotation of the window base?
    /// Slot-difference form: safe against u64 overflow even for events at
    /// `Time::MAX` (events are never posted before the window, so the
    /// difference is well-defined).
    #[inline]
    fn in_window(&self, slot_num: u64) -> bool {
        debug_assert!(slot_num >= self.wheel_start >> GRAN_SHIFT);
        slot_num - (self.wheel_start >> GRAN_SHIFT) < SLOTS as u64
    }

    #[inline]
    fn push_timed(&mut self, now: Time, s: Scheduled<M>) {
        if self.lanes_enabled {
            let delay = s.at.as_ps() - now.as_ps();
            let n = self.lanes.len();
            // Packed key scan: all registered delays fit in two cache
            // lines, so the common hit never touches a queue it won't use.
            for i in 0..n {
                if self.lane_delays[i] == delay {
                    let q = &mut self.lanes[i];
                    // Monotone clock + fixed delay + monotone seq: the lane
                    // stays sorted by `(at, seq)` with plain appends.
                    debug_assert!(q.back().is_none_or(|b| (b.at, b.seq) < (s.at, s.seq)));
                    if q.is_empty() {
                        self.lane_fronts[i] = s.at.as_ps();
                    }
                    q.push_back(s);
                    return;
                }
            }
            if delay <= LANE_MAX_DELAY_PS && n < MAX_LANES {
                if self.lane_cand.contains(&delay) {
                    // Second sighting: promote to a lane.
                    self.lane_delays[n] = delay;
                    self.lane_fronts[n] = s.at.as_ps();
                    let mut q = VecDeque::with_capacity(32);
                    q.push_back(s);
                    self.lanes.push(q);
                    return;
                }
                self.lane_cand[self.lane_cand_idx] = delay;
                self.lane_cand_idx = (self.lane_cand_idx + 1) % LANE_CANDIDATES;
            }
        }
        let slot_num = s.at.as_ps() >> GRAN_SHIFT;
        if self.in_window(slot_num) {
            let idx = (slot_num & SLOT_MASK) as usize;
            let m = &mut self.min_at[idx];
            if s.at < *m {
                *m = s.at;
            }
            Self::mark_occupied(&mut self.occ, idx);
            self.wheel[idx].push(s);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(s));
        }
    }

    /// Advance the window so the cursor slot contains `slot_num`, pulling
    /// any overflow events the slide uncovered into the wheel. The
    /// invariant after every commit: the overflow heap only holds events at
    /// or beyond the wheel window's end.
    fn commit_cursor(&mut self, slot_num: u64) {
        self.wheel_start = slot_num << GRAN_SHIFT;
        self.cursor = (slot_num & SLOT_MASK) as usize;
        while let Some(Reverse(top)) = self.overflow.peek() {
            let top_slot = top.at.as_ps() >> GRAN_SHIFT;
            if !self.in_window(top_slot) {
                break;
            }
            let Reverse(s) = self.overflow.pop().expect("peeked");
            let idx = (top_slot & SLOT_MASK) as usize;
            let m = &mut self.min_at[idx];
            if s.at < *m {
                *m = s.at;
            }
            Self::mark_occupied(&mut self.occ, idx);
            self.wheel[idx].push(s);
            self.wheel_len += 1;
        }
    }

    /// Advance to the earliest timed batch, if it is due by `horizon`:
    /// return its first event and stage the rest (if any) in `due`.
    /// Leaves all state untouched when the next event lies beyond the
    /// horizon, so interrupted runs can resume consistently.
    ///
    /// With lanes on, the earliest instant is the minimum over the packed
    /// lane-front cache and the wheel/overflow tier. The winning tier
    /// serves the whole batch at that instant: lane runs are pre-sorted by
    /// seq, the wheel path is the pre-lane engine unchanged, and an exact
    /// tie merges every same-instant run by seq (two tied lanes — the
    /// dominant shape — via [`TwoTier::merge_two_lanes`], anything wider
    /// via [`TwoTier::merge_tied_batch`]) — so dispatch order stays
    /// exactly ascending `(time, seq)`.
    fn refill_pop(&mut self, horizon: Time) -> Option<Scheduled<M>> {
        // Earliest lane front, and how many lanes tie at that instant.
        // Reads only the packed front-timestamp cache — empty lanes carry
        // `u64::MAX`, which can never win (nothing is ever scheduled at
        // `Time::MAX` through a ≤10 ms lane delay).
        let mut t_lane_ps = u64::MAX;
        let mut lane_first = usize::MAX;
        let mut lane_second = usize::MAX;
        let mut lane_ties = 0u32;
        for (i, &f) in self.lane_fronts[..self.lanes.len()].iter().enumerate() {
            if f < t_lane_ps {
                t_lane_ps = f;
                lane_first = i;
                lane_second = usize::MAX;
                lane_ties = 1;
            } else if f == t_lane_ps {
                if lane_ties == 1 {
                    lane_second = i;
                }
                lane_ties += 1;
            }
        }
        let t_lane = Time::from_ps(t_lane_ps);
        let have_lane = lane_first != usize::MAX;

        // Earliest wheel/overflow instant, computed *without* committing
        // the cursor: a losing or beyond-horizon wheel stays untouched.
        let mut t_wheel = Time::MAX;
        let mut slot_num = 0u64;
        let mut have_wheel = false;
        if self.wheel_len == 0 {
            if let Some(Reverse(top)) = self.overflow.peek() {
                // Teleport target: the heap top is the earliest timed event
                // outside the lanes, so it is also the earliest in the
                // cursor slot it lands in — no scan.
                t_wheel = top.at;
                slot_num = top.at.as_ps() >> GRAN_SHIFT;
                have_wheel = true;
            }
        } else {
            // Slide target: the occupancy bitmap hands us the next busy
            // slot, and the bucket-min cache its batch instant — no bucket
            // scan. The overflow heap cannot beat this: after every commit
            // it only holds events at or beyond the window's end.
            let base = self.wheel_start >> GRAN_SHIFT;
            let ahead = self.first_occupied_ahead(base);
            slot_num = base + ahead;
            t_wheel = self.min_at[(slot_num & SLOT_MASK) as usize];
            have_wheel = true;
        }

        if !have_lane && !have_wheel {
            return None;
        }
        let t_min = t_lane.min(t_wheel);
        if t_min > horizon {
            return None;
        }

        if have_lane && t_lane <= t_wheel {
            if t_lane < t_wheel {
                if lane_ties == 1 {
                    // The hot lane path: one lane owns the earliest instant
                    // outright. Its front is the next event; the rest of a
                    // same-instant run (ascending seq by construction) is
                    // staged in `due` so nothing posted *at* this instant
                    // can jump ahead of it.
                    let lane = &mut self.lanes[lane_first];
                    let s = lane.pop_front();
                    while lane.front().is_some_and(|f| f.at == t_lane) {
                        let e = lane.pop_front().expect("peeked");
                        self.due.push_back(e);
                    }
                    self.lane_fronts[lane_first] = lane.front().map_or(u64::MAX, |f| f.at.as_ps());
                    return s;
                }
                if lane_ties == 2 {
                    return self.merge_two_lanes(t_lane, lane_first, lane_second);
                }
            }
            // Three or more lanes — or lanes and the wheel — tie.
            return self.merge_tied_batch(t_min, have_wheel && t_wheel == t_min, slot_num);
        }

        // Wheel-only service: the pre-lane engine, unchanged.
        // The commit can only pull overflow events into slots beyond
        // the *old* window's end — never into the cursor slot (a slot
        // number congruent to it mod SLOTS would lie outside the new
        // window) — so `t_min` stays the cursor's minimum.
        self.commit_cursor(slot_num);
        let cursor = self.cursor;
        let bucket = &mut self.wheel[cursor];
        debug_assert_eq!(
            bucket.iter().map(|s| s.at).min(),
            Some(t_min),
            "bucket-min cache desynced from cursor bucket"
        );
        debug_assert!(t_min <= horizon);
        if bucket.len() == 1 {
            // Singleton bucket — the common case for spread-out timers:
            // hand the event straight out, skipping the batch extraction
            // and the `due` round-trip entirely.
            let s = bucket.pop();
            self.wheel_len -= 1;
            self.min_at[cursor] = Time::MAX;
            self.clear_occupied(cursor);
            return s;
        }
        // Extract the batch at the earliest instant in the cursor slot.
        // Bucket insertion order guarantees ascending seq within one
        // timestamp (see commit_cursor's invariant + monotone windows), so
        // `extract_if`'s stable drain hands us the batch already ordered.
        // The same pass recomputes the min of what stays behind.
        let mut rest_min = Time::MAX;
        let before = bucket.len();
        self.due.extend(bucket.extract_if(.., |s| {
            if s.at == t_min {
                true
            } else {
                if s.at < rest_min {
                    rest_min = s.at;
                }
                false
            }
        }));
        let bucket_len = self.wheel[cursor].len();
        self.wheel_len -= before - bucket_len;
        self.min_at[cursor] = rest_min;
        if bucket_len == 0 {
            self.clear_occupied(cursor);
        }
        debug_assert!(self
            .due
            .iter()
            .zip(self.due.iter().skip(1))
            .all(|(a, b)| a.seq < b.seq));
        self.due.pop_front()
    }

    /// Serve an instant owned by exactly two lanes — the dominant tie
    /// shape by far (two hot delays landing on one instant; the wheel is
    /// involved in well under 0.1% of ties). Each lane's same-instant run
    /// ascends in seq, so a two-pointer merge restores the exact global
    /// posting order without the generic path's full lane rescan and sort.
    fn merge_two_lanes(&mut self, t: Time, a: usize, b: usize) -> Option<Scheduled<M>> {
        debug_assert!(self.due.is_empty());
        debug_assert!(a < b);
        let (la, lb) = self.lanes.split_at_mut(b);
        let (qa, qb) = (&mut la[a], &mut lb[0]);
        loop {
            let pick_a = match (qa.front(), qb.front()) {
                (Some(x), Some(y)) if x.at == t && y.at == t => x.seq < y.seq,
                (Some(x), _) if x.at == t => true,
                (_, Some(y)) if y.at == t => false,
                _ => break,
            };
            let e = if pick_a {
                qa.pop_front()
            } else {
                qb.pop_front()
            };
            self.due.push_back(e.expect("peeked"));
        }
        self.lane_fronts[a] = qa.front().map_or(u64::MAX, |f| f.at.as_ps());
        self.lane_fronts[b] = qb.front().map_or(u64::MAX, |f| f.at.as_ps());
        debug_assert!(self.due.len() >= 2, "a two-lane tie has two events");
        debug_assert!(self
            .due
            .iter()
            .zip(self.due.iter().skip(1))
            .all(|(x, y)| x.seq < y.seq));
        self.due.pop_front()
    }

    /// Serve an instant `t` owned by several sources at once: the full
    /// wheel batch at `t` (if `wheel_at_t`) plus every lane's same-instant
    /// run. Each source contributes an ascending-seq run, so sorting the
    /// merged batch by seq restores the exact global posting order. Cold:
    /// pure two-lane ties — the overwhelming bulk of collisions — are
    /// peeled off by [`TwoTier::merge_two_lanes`] before this runs, and
    /// what remains (wheel involvement, 3+ lanes) is rare with tiny
    /// batches, so a sort beats a k-way merge here.
    #[inline(never)]
    fn merge_tied_batch(
        &mut self,
        t: Time,
        wheel_at_t: bool,
        slot_num: u64,
    ) -> Option<Scheduled<M>> {
        debug_assert!(self.due.is_empty());
        if wheel_at_t {
            self.commit_cursor(slot_num);
            let cursor = self.cursor;
            let bucket = &mut self.wheel[cursor];
            let mut rest_min = Time::MAX;
            let before = bucket.len();
            self.due.extend(bucket.extract_if(.., |s| {
                if s.at == t {
                    true
                } else {
                    if s.at < rest_min {
                        rest_min = s.at;
                    }
                    false
                }
            }));
            let bucket_len = self.wheel[cursor].len();
            self.wheel_len -= before - bucket_len;
            self.min_at[cursor] = rest_min;
            if bucket_len == 0 {
                self.clear_occupied(cursor);
            }
        }
        for i in 0..self.lanes.len() {
            if self.lane_fronts[i] != t.as_ps() {
                continue;
            }
            let q = &mut self.lanes[i];
            while q.front().is_some_and(|f| f.at == t) {
                let e = q.pop_front().expect("peeked");
                self.due.push_back(e);
            }
            self.lane_fronts[i] = q.front().map_or(u64::MAX, |f| f.at.as_ps());
        }
        self.due.make_contiguous().sort_unstable_by_key(|s| s.seq);
        debug_assert!(self.due.iter().all(|s| s.at == t));
        self.due.pop_front()
    }

    fn pop_due(&mut self, horizon: Time) -> Option<Scheduled<M>> {
        if let Some(s) = self.due.pop_front() {
            return Some(s);
        }
        if let Some(front) = self.fast.front() {
            if front.at <= horizon {
                return self.fast.pop_front();
            }
            return None;
        }
        self.refill_pop(horizon)
    }

    fn is_empty(&self) -> bool {
        self.due.is_empty()
            && self.fast.is_empty()
            && self.wheel_len == 0
            && self.overflow.is_empty()
            && self.lanes.iter().all(|q| q.is_empty())
    }

    /// Release burst-sized capacity held since the last traffic peak.
    ///
    /// During a run the wheel buckets and the `due`/`fast` lanes deliberately
    /// never shrink — `extract_if` drains a bucket in place and the next
    /// rotation reuses its allocation, which is what keeps steady-state
    /// refills allocation-free. The flip side is that one incast burst pins
    /// its high-water allocation for the rest of the process, which matters
    /// for long sweep campaigns running many worlds. Called between sweep
    /// points (see `World::shrink_idle`), this trims everything back to a
    /// small per-structure floor while keeping pending events intact.
    fn shrink_idle(&mut self) {
        // Floor keeps the common steady-state capacity so the next burst
        // doesn't start from zero.
        const KEEP: usize = 32;
        self.due.shrink_to(KEEP);
        self.fast.shrink_to(KEEP);
        for bucket in &mut self.wheel {
            if bucket.capacity() > KEEP {
                bucket.shrink_to(KEEP.max(bucket.len()));
            }
        }
        if self.overflow.capacity() > KEEP {
            self.overflow.shrink_to(KEEP.max(self.overflow.len()));
        }
        // Delay lanes keep their registration (the hot delays of the next
        // sweep point are usually the same) but release burst capacity.
        for q in &mut self.lanes {
            q.shrink_to(KEEP.max(q.len()));
        }
    }
}

/// Per-kind tally of posted events (see [`World::event_kind_counts`]).
///
/// The forward/timed split mirrors the two-tier scheduler's lanes: zero
/// delay (`forward`) is the dominant packet-handoff class that rides the
/// FIFO fast lane; positive-delay messages (`timed_msg`, wire arrivals and
/// serialization completions) and timer wakes (`wake`) go through the wheel.
/// Train posts count one per carried message, matching `events_processed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventKindCounts {
    /// Zero-delay message handoffs (`Ctx::forward` / same-instant sends).
    pub forward: u64,
    /// Messages posted with a positive delay (wire arrivals, TX completions).
    pub timed_msg: u64,
    /// Timer wakes (pacers, retransmission timeouts, TX-done wakes).
    pub wake: u64,
}

impl EventKindCounts {
    pub fn total(self) -> u64 {
        self.forward + self.timed_msg + self.wake
    }
}

impl std::ops::Add for EventKindCounts {
    type Output = EventKindCounts;
    fn add(self, rhs: EventKindCounts) -> EventKindCounts {
        EventKindCounts {
            forward: self.forward + rhs.forward,
            timed_msg: self.timed_msg + rhs.timed_msg,
            wake: self.wake + rhs.wake,
        }
    }
}

impl std::iter::Sum for EventKindCounts {
    fn sum<I: Iterator<Item = EventKindCounts>>(iter: I) -> EventKindCounts {
        iter.fold(EventKindCounts::default(), |a, b| a + b)
    }
}

/// The event queue: sequence numbering + one of the two scheduler
/// implementations.
struct EventQueue<M> {
    /// Monotone posting counter; doubles as the equal-timestamp
    /// tie-breaker.
    seq: u64,
    /// Messages carried by trains beyond the first, so
    /// `events_posted = seq + train_extra` keeps counting individual events.
    train_extra: u64,
    kinds: EventKindCounts,
    /// Free list of spent train buffers: dispatch drains a train in place
    /// and returns the vector here, [`Ctx::train_buf`] hands it back out,
    /// so steady-state burst flushes are allocation-free.
    train_pool: Vec<Vec<M>>,
    imp: QueueImpl<M>,
}

/// Bound on pooled train buffers — enough for the deepest burst fan-out
/// observed in the workloads while keeping idle retention small.
const TRAIN_POOL_CAP: usize = 32;

// One queue per world, so the variant size gap (the wheel's inline
// occupancy bitmap) costs nothing — boxing it would put a pointer chase
// on every scheduler touch instead.
#[allow(clippy::large_enum_variant)]
enum QueueImpl<M> {
    TwoTier(TwoTier<M>),
    Classic(BinaryHeap<Reverse<Scheduled<M>>>),
}

impl<M> EventQueue<M> {
    fn new(kind: SchedulerKind, lanes: bool) -> EventQueue<M> {
        let imp = match kind {
            SchedulerKind::TwoTier => QueueImpl::TwoTier(TwoTier::new(lanes)),
            SchedulerKind::Classic => QueueImpl::Classic(BinaryHeap::new()),
        };
        EventQueue {
            seq: 0,
            train_extra: 0,
            kinds: EventKindCounts::default(),
            train_pool: Vec::new(),
            imp,
        }
    }

    /// Hand out a pooled (empty, capacity-bearing) train buffer.
    #[inline]
    fn take_train_buf(&mut self) -> Vec<M> {
        self.train_pool.pop().unwrap_or_default()
    }

    /// Return a spent train buffer to the pool.
    #[inline]
    fn recycle_train(&mut self, mut buf: Vec<M>) {
        if self.train_pool.len() < TRAIN_POOL_CAP {
            buf.clear();
            self.train_pool.push(buf);
        }
    }

    fn kind(&self) -> SchedulerKind {
        match self.imp {
            QueueImpl::TwoTier(_) => SchedulerKind::TwoTier,
            QueueImpl::Classic(_) => SchedulerKind::Classic,
        }
    }

    #[inline]
    fn post(&mut self, now: Time, at: Time, to: ComponentId, ev: Event<M>) {
        debug_assert!(at >= now, "cannot schedule in the past");
        match &ev {
            Event::Wake(_) => self.kinds.wake += 1,
            Event::Msg(_) if at <= now => self.kinds.forward += 1,
            Event::Msg(_) => self.kinds.timed_msg += 1,
        }
        self.seq += 1;
        let s = Scheduled {
            at,
            seq: self.seq,
            to,
            payload: Payload::One(ev),
        };
        self.push_scheduled(now, s);
    }

    /// Post a same-instant message train as one scheduler entry. The train
    /// occupies a single `(at, seq)` position, so it dispatches exactly
    /// where the first of the equivalent back-to-back posts would have —
    /// and since those posts would have held consecutive seqs (they come
    /// from a single handler invocation with nothing posted in between),
    /// expanding the train in order reproduces the reference delivery
    /// sequence bit-for-bit.
    fn post_train(&mut self, now: Time, at: Time, to: ComponentId, mut msgs: Vec<M>) {
        match msgs.len() {
            0 => return self.recycle_train(msgs),
            // A one-element train is posted as a plain message so the
            // degenerate case stays byte-identical to an unbatched post.
            1 => {
                let m = msgs.pop().expect("len checked");
                self.recycle_train(msgs);
                return self.post(now, at, to, Event::Msg(m));
            }
            _ => {}
        }
        debug_assert!(at >= now, "cannot schedule in the past");
        let n = msgs.len() as u64;
        if at <= now {
            self.kinds.forward += n;
        } else {
            self.kinds.timed_msg += n;
        }
        self.train_extra += n - 1;
        self.seq += 1;
        let s = Scheduled {
            at,
            seq: self.seq,
            to,
            payload: Payload::Train(msgs),
        };
        self.push_scheduled(now, s);
    }

    #[inline(always)]
    fn push_scheduled(&mut self, now: Time, s: Scheduled<M>) {
        match &mut self.imp {
            QueueImpl::TwoTier(t) => {
                if s.at <= now {
                    // Zero-delay fast lane: the dominant event class
                    // (queue→switch→host handoffs) skips the wheel and
                    // heap entirely.
                    t.fast.push_back(s);
                } else {
                    t.push_timed(now, s);
                }
            }
            QueueImpl::Classic(h) => h.push(Reverse(s)),
        }
    }

    #[inline]
    fn pop_due(&mut self, horizon: Time) -> Option<Scheduled<M>> {
        match &mut self.imp {
            QueueImpl::TwoTier(t) => t.pop_due(horizon),
            QueueImpl::Classic(h) => {
                if h.peek().is_some_and(|Reverse(top)| top.at <= horizon) {
                    h.pop().map(|Reverse(s)| s)
                } else {
                    None
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        match &self.imp {
            QueueImpl::TwoTier(t) => t.is_empty(),
            QueueImpl::Classic(h) => h.is_empty(),
        }
    }

    fn shrink_idle(&mut self) {
        self.train_pool = Vec::new();
        match &mut self.imp {
            QueueImpl::TwoTier(t) => t.shrink_idle(),
            QueueImpl::Classic(h) => {
                if h.capacity() > 32 {
                    h.shrink_to(32);
                }
            }
        }
    }
}

/// A deferred structural mutation of the world, requested from inside a
/// dispatch (where only a [`Ctx`] is available) and executed with full
/// `&mut World` access immediately after the current component's handler
/// returns — see [`Ctx::defer`].
pub type WorldOp<M> = Box<dyn FnOnce(&mut World<M>) + Send>;

/// Dispatch context: the only way a component can affect the world.
pub struct Ctx<'a, M> {
    now: Time,
    self_id: ComponentId,
    queue: &'a mut EventQueue<M>,
    rng: &'a mut SmallRng,
    deferred: &'a mut Vec<WorldOp<M>>,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently being dispatched.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Deterministic world RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Deliver `msg` to component `to` after `delay` (zero-delay handoff is
    /// the normal way to "call" a neighbouring component).
    pub fn send(&mut self, to: ComponentId, msg: M, delay: Time) {
        self.post_at(self.now + delay, to, Event::Msg(msg));
    }

    /// Deliver `msg` to `to` immediately. Under the two-tier scheduler this
    /// is a FIFO append — no ordered structure is touched — while still
    /// preserving deterministic `(time, seq)` ordering.
    pub fn forward(&mut self, to: ComponentId, msg: M) {
        self.send(to, msg, Time::ZERO);
    }

    /// Deliver a burst of messages to `to` after `delay` as **one**
    /// scheduler entry (burst transmission batching). Every message is
    /// still dispatched, counted and traced individually, in order, at the
    /// same instant — the train is exactly equivalent to calling
    /// [`Ctx::send`] once per message back-to-back, but costs a single
    /// wheel/heap insertion instead of one per message.
    ///
    /// Exactness caveat: the equivalence holds only when the replaced
    /// individual posts would have been consecutive — i.e. the caller emits
    /// the whole train within one handler invocation without posting
    /// anything else in between. Callers that interleave other posts must
    /// flush the train first (see the host's TX train buffering).
    pub fn send_train(&mut self, to: ComponentId, msgs: Vec<M>, delay: Time) {
        self.queue.post_train(self.now, self.now + delay, to, msgs);
    }

    /// An empty train buffer from the scheduler's free list (or a fresh
    /// `Vec` when the pool is dry). Buffers handed to [`Ctx::send_train`]
    /// return to the pool after dispatch, so a component that refills its
    /// TX staging from here makes steady-state burst flushes alloc-free.
    pub fn train_buf(&mut self) -> Vec<M> {
        self.queue.take_train_buf()
    }

    /// Set a timer on the current component.
    pub fn wake_in(&mut self, delay: Time, token: u64) {
        self.post_at(self.now + delay, self.self_id, Event::Wake(token));
    }

    /// Set a timer on the current component at an absolute time.
    pub fn wake_at(&mut self, at: Time, token: u64) {
        debug_assert!(at >= self.now, "cannot schedule in the past");
        self.post_at(at, self.self_id, Event::Wake(token));
    }

    /// Wake a *different* component (used by harness-level triggers, e.g. an
    /// application starting a flow on another host).
    pub fn wake_other(&mut self, to: ComponentId, delay: Time, token: u64) {
        self.post_at(self.now + delay, to, Event::Wake(token));
    }

    fn post_at(&mut self, at: Time, to: ComponentId, ev: Event<M>) {
        self.queue.post(self.now, at, to, ev);
    }

    /// Request a structural world mutation (attach or retire component
    /// subgraphs, install endpoints, ...) that cannot be expressed through
    /// the event queue. The op runs with `&mut World` as soon as the
    /// current handler returns, before the next event is dispatched, so
    /// ordering stays deterministic. Ops queued by an op run in the same
    /// drain, at the same instant.
    pub fn defer(&mut self, op: impl FnOnce(&mut World<M>) + Send + 'static) {
        self.deferred.push(Box::new(op));
    }
}

/// Running FNV-1a hash over the dispatched event trace; pinned by the
/// golden-trace determinism tests.
#[derive(Clone, Copy, Debug)]
struct TraceHash {
    hash: u64,
    len: u64,
}

impl TraceHash {
    fn new() -> TraceHash {
        TraceHash {
            hash: 0xcbf2_9ce4_8422_2325,
            len: 0,
        }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        let mut h = self.hash;
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.hash = h;
    }

    fn record<M>(&mut self, at: Time, to: ComponentId, ev: &Event<M>) {
        self.mix(at.as_ps());
        let kind = match ev {
            Event::Msg(_) => 0u64,
            Event::Wake(tok) => 1 | (tok << 1),
        };
        // The slot index alone keeps the hash identical to the pre-
        // retirement format for worlds that never recycle a slot (all the
        // pinned golden traces).
        self.mix((to.idx as u64) << 32 | (kind & 0xFFFF_FFFF));
        self.len += 1;
    }
}

/// One arena slot: its current generation plus occupancy state.
enum Slot<M> {
    /// Reclaimed; queued on the free list for reuse.
    Free,
    /// Id handed out by [`World::reserve`], component not yet installed.
    Reserved,
    Occupied(Box<dyn Component<M>>),
}

struct SlotEntry<M> {
    gen: u32,
    state: Slot<M>,
}

/// The simulation world: component arena + event queue + clock + RNG.
///
/// The arena is a free-list slab: [`World::retire`] reclaims a slot and
/// bumps its generation, so live state tracks *current* components, not
/// everything ever attached. [`World::live_components`] /
/// [`World::peak_live_components`] gauge that population.
pub struct World<M> {
    slots: Vec<SlotEntry<M>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    stale_dropped: u64,
    deferred: Vec<WorldOp<M>>,
    queue: EventQueue<M>,
    now: Time,
    rng: SmallRng,
    events_processed: u64,
    trace: Option<TraceHash>,
}

impl<M: 'static> World<M> {
    /// A world on the process-default scheduler (two-tier unless overridden
    /// via `NDP_SCHED` or [`set_default_scheduler`]).
    pub fn new(seed: u64) -> World<M> {
        World::with_scheduler(seed, default_scheduler())
    }

    /// A world on an explicit scheduler implementation, with the
    /// delay-lane optimization governed by the process default
    /// (`NDP_LANES` / [`set_default_lanes`]).
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> World<M> {
        World::with_scheduler_lanes(seed, kind, default_lanes())
    }

    /// A world on an explicit scheduler implementation with delay lanes
    /// explicitly on or off — the constructor the lane-equivalence tests
    /// use to compare both configurations deterministically. `lanes` only
    /// affects [`SchedulerKind::TwoTier`]; the classic heap ignores it.
    pub fn with_scheduler_lanes(seed: u64, kind: SchedulerKind, lanes: bool) -> World<M> {
        World {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            stale_dropped: 0,
            deferred: Vec::new(),
            queue: EventQueue::new(kind, lanes),
            now: Time::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            events_processed: 0,
            trace: None,
        }
    }

    /// Which scheduler this world runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Start hashing the `(time, component, kind)` trace of every
    /// dispatched event (used by the golden-trace determinism tests).
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceHash::new());
    }

    /// The `(hash, length)` of the dispatched-event trace so far.
    /// Panics if tracing was never enabled.
    pub fn trace_hash(&self) -> (u64, u64) {
        let t = self.trace.as_ref().expect("enable_trace() was not called");
        (t.hash, t.len)
    }

    /// Allocate a slot (reusing a retired one when available) and return
    /// its id at the slot's current generation.
    fn alloc(&mut self, state: Slot<M>) -> ComponentId {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        if let Some(idx) = self.free.pop() {
            let entry = &mut self.slots[idx as usize];
            debug_assert!(matches!(entry.state, Slot::Free));
            entry.state = state;
            ComponentId {
                idx,
                gen: entry.gen,
            }
        } else {
            self.slots.push(SlotEntry { gen: 0, state });
            ComponentId {
                idx: (self.slots.len() - 1) as u32,
                gen: 0,
            }
        }
    }

    /// Register a component, returning its id.
    pub fn add<C: Component<M> + 'static>(&mut self, c: C) -> ComponentId {
        self.alloc(Slot::Occupied(Box::new(c)))
    }

    /// Reserve a slot to break wiring cycles: get the id now, install later.
    pub fn reserve(&mut self) -> ComponentId {
        self.alloc(Slot::Reserved)
    }

    /// Install a component into a reserved slot.
    pub fn install<C: Component<M> + 'static>(&mut self, id: ComponentId, c: C) {
        let entry = &mut self.slots[id.idx as usize];
        assert!(entry.gen == id.gen, "slot {id} was retired");
        assert!(
            matches!(entry.state, Slot::Reserved),
            "slot {id} already installed"
        );
        entry.state = Slot::Occupied(Box::new(c));
    }

    /// Retire a component: drop its state, reclaim the slot for reuse and
    /// bump the slot generation so any event still in flight to `id` (or
    /// any stale copy of the handle) can never reach the slot's next
    /// occupant. Idempotent: retiring an already-retired id is a no-op
    /// returning `false`.
    pub fn retire(&mut self, id: ComponentId) -> bool {
        let Some(entry) = self.slots.get_mut(id.idx as usize) else {
            return false;
        };
        if entry.gen != id.gen || matches!(entry.state, Slot::Free) {
            return false;
        }
        entry.state = Slot::Free;
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
        true
    }

    /// Components currently attached (occupied + reserved slots) — the
    /// live-state gauge the retirement machinery keeps O(concurrent).
    pub fn live_components(&self) -> usize {
        self.live
    }

    /// High-water mark of [`World::live_components`].
    pub fn peak_live_components(&self) -> usize {
        self.peak_live
    }

    /// Events that arrived for a retired slot and were dropped at dispatch.
    pub fn stale_events_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// Post a message to a component at an absolute time (harness-level).
    pub fn post(&mut self, at: Time, to: ComponentId, msg: M) {
        self.queue.post(self.now, at, to, Event::Msg(msg));
    }

    /// Post a wake token to a component at an absolute time (harness-level).
    pub fn post_wake(&mut self, at: Time, to: ComponentId, token: u64) {
        self.queue.post(self.now, at, to, Event::Wake(token));
    }

    /// Post a same-instant message train to a component at an absolute time
    /// as one scheduler entry (harness-level [`Ctx::send_train`]).
    pub fn post_train(&mut self, at: Time, to: ComponentId, msgs: Vec<M>) {
        self.queue.post_train(self.now, at, to, msgs);
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total events posted so far (train posts count one per message).
    pub fn events_posted(&self) -> u64 {
        self.queue.seq + self.queue.train_extra
    }

    /// Per-kind tally of every event posted so far: zero-delay forwards,
    /// positive-delay messages and timer wakes.
    pub fn event_kind_counts(&self) -> EventKindCounts {
        self.queue.kinds
    }

    /// Release burst-sized scheduler capacity accumulated since the last
    /// traffic peak, keeping all pending events. The wheel buckets and the
    /// due/fast lanes intentionally never shrink during a run (capacity
    /// reuse is what keeps refills allocation-free); call this between
    /// sweep points so a long campaign doesn't hold peak-burst memory.
    pub fn shrink_idle(&mut self) {
        self.queue.shrink_idle();
    }

    /// Run until the event queue empties or `horizon` passes.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        let start = self.events_processed;
        while let Some(sched) = self.queue.pop_due(horizon) {
            debug_assert!(sched.at >= self.now, "time went backwards");
            self.now = sched.at;
            match sched.payload {
                Payload::One(ev) => self.dispatch_one(sched.to, ev),
                // A coalesced train: expand into consecutive deliveries at
                // this instant. Per-element generation checks and deferred
                // drains keep this bit-identical to the individual posts it
                // replaces (a component retired mid-train drops the rest as
                // stale, exactly as separate events would have).
                Payload::Train(mut msgs) => {
                    for m in msgs.drain(..) {
                        self.dispatch_one(sched.to, Event::Msg(m));
                    }
                    self.queue.recycle_train(msgs);
                }
            }
        }
        // Advance the clock to the horizon only if we drained everything
        // before it; otherwise the clock stays at the last dispatched event.
        if self.queue.is_empty() && horizon != Time::MAX {
            self.now = self.now.max(horizon);
        }
        self.events_processed - start
    }

    /// Deliver one event to one component at the current instant — the
    /// shared hot path of [`World::run_until`] for single events and
    /// expanded train elements. `inline(always)`: this is the old loop body
    /// factored out for the train arm, and it must stay merged into both
    /// call sites — an outlined call would move the (large) `Event` by
    /// value once more per dispatched event.
    #[inline(always)]
    fn dispatch_one(&mut self, to: ComponentId, ev: Event<M>) {
        let entry = &mut self.slots[to.idx as usize];
        if entry.gen != to.gen {
            // Stale event to a retired slot: the generation check is
            // what makes retirement safe — the slot's next occupant
            // never sees its predecessor's traffic.
            self.stale_dropped += 1;
            return;
        }
        self.events_processed += 1;
        if let Some(tr) = &mut self.trace {
            tr.record(self.now, to, &ev);
        }
        // Split borrow: the component slot and the event queue / RNG are
        // disjoint fields, so dispatch hands out a `Ctx` without
        // vacating the slot (the seed's take/re-insert dance is gone).
        let Slot::Occupied(comp) = &mut entry.state else {
            missing_component(to)
        };
        let mut ctx = Ctx {
            now: self.now,
            self_id: to,
            queue: &mut self.queue,
            rng: &mut self.rng,
            deferred: &mut self.deferred,
        };
        comp.handle(ev, &mut ctx);
        if !self.deferred.is_empty() {
            self.drain_deferred();
        }
    }

    /// Drain deferred world ops before the next dispatch: attach / retire
    /// requests made mid-handler run here, with full `&mut World`, at the
    /// current instant. Ops an op defers run in the same drain. Out of
    /// line: the dispatch loop only pays a length check per event.
    #[inline(never)]
    fn drain_deferred(&mut self) {
        while !self.deferred.is_empty() {
            let ops = std::mem::take(&mut self.deferred);
            for op in ops {
                op(self);
            }
        }
    }

    /// Run until no events remain.
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }

    /// Immutable access to a component, downcast to its concrete type.
    ///
    /// Panics if the id is invalid, retired, or the type does not match —
    /// all are harness bugs, not recoverable conditions.
    pub fn get<C: 'static>(&self, id: ComponentId) -> &C {
        let entry = &self.slots[id.idx as usize];
        assert!(entry.gen == id.gen, "component {id} was retired");
        let Slot::Occupied(c) = &entry.state else {
            panic!("component {id} vacated")
        };
        c.as_any()
            .downcast_ref::<C>()
            .unwrap_or_else(|| panic!("component {id} has unexpected type"))
    }

    /// Mutable access to a component, downcast to its concrete type.
    pub fn get_mut<C: 'static>(&mut self, id: ComponentId) -> &mut C {
        let entry = &mut self.slots[id.idx as usize];
        assert!(entry.gen == id.gen, "component {id} was retired");
        let Slot::Occupied(c) = &mut entry.state else {
            panic!("component {id} vacated")
        };
        c.as_any_mut()
            .downcast_mut::<C>()
            .unwrap_or_else(|| panic!("component {id} has unexpected type"))
    }

    /// Try to view a component as `C`: `None` for retired/stale ids,
    /// reserved slots and type mismatches.
    pub fn try_get<C: 'static>(&self, id: ComponentId) -> Option<&C> {
        let entry = self.slots.get(id.idx as usize)?;
        if entry.gen != id.gen {
            return None;
        }
        match &entry.state {
            Slot::Occupied(c) => c.as_any().downcast_ref::<C>(),
            _ => None,
        }
    }

    /// Number of live (non-retired) components.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over live component ids, at their current generations (for
    /// post-run stat sweeps).
    pub fn ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, e)| {
            (!matches!(e.state, Slot::Free)).then_some(ComponentId {
                idx: i as u32,
                gen: e.gen,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds() -> [SchedulerKind; 2] {
        [SchedulerKind::TwoTier, SchedulerKind::Classic]
    }

    struct Counter {
        ticks: u64,
        msgs: Vec<(u64, u32)>,
    }
    impl Component<u32> for Counter {
        fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            match ev {
                Event::Msg(m) => self.msgs.push((ctx.now().as_ps(), m)),
                Event::Wake(_) => self.ticks += 1,
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn counter() -> Counter {
        Counter {
            ticks: 0,
            msgs: Vec::new(),
        }
    }

    #[test]
    fn delivers_in_time_order() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            w.post(Time::from_us(5), id, 5);
            w.post(Time::from_us(1), id, 1);
            w.post(Time::from_us(3), id, 3);
            w.run_until_idle();
            let c = w.get::<Counter>(id);
            assert_eq!(
                c.msgs.iter().map(|m| m.1).collect::<Vec<_>>(),
                vec![1, 3, 5]
            );
        }
    }

    #[test]
    fn equal_timestamps_preserve_posting_order() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            for i in 0..100 {
                w.post(Time::from_us(7), id, i);
            }
            w.run_until_idle();
            let c = w.get::<Counter>(id);
            assert_eq!(
                c.msgs.iter().map(|m| m.1).collect::<Vec<_>>(),
                (0..100).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn horizon_stops_dispatch_but_keeps_events() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            w.post(Time::from_us(1), id, 1);
            w.post(Time::from_ms(1), id, 2);
            w.run_until(Time::from_us(10));
            assert_eq!(w.get::<Counter>(id).msgs.len(), 1);
            w.run_until_idle();
            assert_eq!(w.get::<Counter>(id).msgs.len(), 2);
        }
    }

    #[test]
    fn posts_straddling_an_interrupted_run_stay_ordered() {
        // Regression guard for the window bookkeeping: a run stopped at a
        // horizon far before the next (overflow-resident) event must not
        // let later posts into the gap get reordered.
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            w.post(Time::from_ms(5), id, 99); // far future: overflow tier
            w.run_until(Time::from_us(10));
            assert_eq!(w.get::<Counter>(id).msgs.len(), 0);
            // Posted after the interrupted run, due before the overflow one.
            w.post(Time::from_us(20), id, 1);
            w.post(Time::from_ms(1), id, 2);
            w.run_until_idle();
            let got: Vec<u32> = w.get::<Counter>(id).msgs.iter().map(|m| m.1).collect();
            assert_eq!(got, vec![1, 2, 99]);
        }
    }

    #[test]
    fn wheel_window_wraps_across_many_rotations() {
        // Events spaced ~1 window apart force repeated slides/teleports.
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            let window_ps = (SLOTS as u64) << GRAN_SHIFT;
            for i in 0..50u64 {
                w.post(Time::from_ps(i * window_ps * 3 / 2 + 7), id, i as u32);
            }
            w.run_until_idle();
            let got: Vec<u32> = w.get::<Counter>(id).msgs.iter().map(|m| m.1).collect();
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn events_near_time_max_are_dispatched() {
        // The in-tree "start later via trigger" pattern posts at Time::MAX;
        // slot arithmetic must not overflow near u64::MAX (regression).
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            w.post(Time::from_us(1), id, 1);
            w.post(Time::MAX, id, 3);
            w.post(Time::from_ps(u64::MAX - 5), id, 2);
            w.run_until_idle();
            let got: Vec<u32> = w.get::<Counter>(id).msgs.iter().map(|m| m.1).collect();
            assert_eq!(got, vec![1, 2, 3]);
            assert_eq!(w.now(), Time::MAX);
        }
    }

    struct PingPong {
        peer: ComponentId,
        left: u32,
        bounces: u32,
    }
    impl Component<u32> for PingPong {
        fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            if let Event::Msg(v) = ev {
                self.bounces += 1;
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send(self.peer, v + 1, Time::from_ns(100));
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn components_message_each_other() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let a = w.reserve();
            let b = w.add(PingPong {
                peer: a,
                left: 10,
                bounces: 0,
            });
            w.install(
                a,
                PingPong {
                    peer: b,
                    left: 10,
                    bounces: 0,
                },
            );
            w.post(Time::ZERO, a, 0);
            w.run_until_idle();
            let total = w.get::<PingPong>(a).bounces + w.get::<PingPong>(b).bounces;
            assert_eq!(total, 21); // initial + 20 bounces
            assert_eq!(w.now(), Time::from_ns(2000));
        }
    }

    struct SelfTimer {
        fired: Vec<u64>,
    }
    impl Component<u32> for SelfTimer {
        fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            match ev {
                Event::Msg(_) => {
                    ctx.wake_in(Time::from_us(2), 7);
                    ctx.wake_at(Time::from_us(1), 9);
                }
                Event::Wake(tok) => self.fired.push(tok),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_order() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(SelfTimer { fired: vec![] });
            w.post(Time::ZERO, id, 0);
            w.run_until_idle();
            assert_eq!(w.get::<SelfTimer>(id).fired, vec![9, 7]);
        }
    }

    struct ZeroDelayChain {
        next: Option<ComponentId>,
        got: Vec<u32>,
    }
    impl Component<u32> for ZeroDelayChain {
        fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            if let Event::Msg(v) = ev {
                self.got.push(v);
                if let Some(n) = self.next {
                    ctx.forward(n, v + 1);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn fast_lane_interleaves_with_timed_events_in_seq_order() {
        // Two timed events at the same instant; the first spawns a
        // zero-delay chain. The second timed event (earlier seq) must still
        // beat the chained zero-delay messages (later seqs).
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let c = w.reserve();
            let b = w.add(ZeroDelayChain {
                next: Some(c),
                got: vec![],
            });
            w.install(
                c,
                ZeroDelayChain {
                    next: None,
                    got: vec![],
                },
            );
            let log = w.add(counter());
            // seq order at t=1us: msg->b (chains to c), msg->log.
            w.post(Time::from_us(1), b, 10);
            w.post(Time::from_us(1), log, 77);
            w.run_until_idle();
            // log must be dispatched before the chained message reaches c.
            let log_time = w.get::<Counter>(log).msgs[0].0;
            assert_eq!(log_time, Time::from_us(1).as_ps());
            assert_eq!(w.get::<ZeroDelayChain>(c).got, vec![11]);
            assert_eq!(w.events_processed(), 3);
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64, kind: SchedulerKind) -> Vec<(u64, u32)> {
            let mut w: World<u32> = World::with_scheduler(seed, kind);
            let id = w.add(counter());
            // Use the rng through a component to make sure rng state is part
            // of the reproducibility contract.
            struct R {
                target: ComponentId,
                n: u32,
            }
            impl Component<u32> for R {
                fn handle(&mut self, _ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
                    use rand::Rng;
                    for _ in 0..self.n {
                        let d: u64 = ctx.rng().gen_range(0..1000);
                        let v: u32 = ctx.rng().gen_range(0..100);
                        ctx.send(self.target, v, Time::from_ns(d));
                    }
                }
                fn as_any(&self) -> &dyn Any {
                    self
                }
                fn as_any_mut(&mut self) -> &mut dyn Any {
                    self
                }
            }
            let r = w.add(R { target: id, n: 50 });
            w.post_wake(Time::ZERO, r, 0);
            w.run_until_idle();
            w.get::<Counter>(id).msgs.clone()
        }
        for kind in both_kinds() {
            assert_eq!(trace(99, kind), trace(99, kind));
            assert_ne!(trace(99, kind), trace(100, kind));
        }
        // And across schedulers: identical seed, identical delivery order.
        assert_eq!(
            trace(99, SchedulerKind::TwoTier),
            trace(99, SchedulerKind::Classic)
        );
    }

    #[test]
    fn schedulers_agree_on_trace_hash() {
        fn run(kind: SchedulerKind) -> (u64, u64) {
            let mut w: World<u32> = World::with_scheduler(42, kind);
            w.enable_trace();
            let a = w.reserve();
            let b = w.add(PingPong {
                peer: a,
                left: 40,
                bounces: 0,
            });
            w.install(
                a,
                PingPong {
                    peer: b,
                    left: 40,
                    bounces: 0,
                },
            );
            let t = w.add(SelfTimer { fired: vec![] });
            w.post(Time::ZERO, a, 0);
            w.post(Time::from_ns(150), t, 0);
            // Overflow tier; a Wake, because SelfTimer's Msg handler arms
            // absolute timers that would lie 2 ms in the past here.
            w.post_wake(Time::from_ms(2), t, 1);
            w.run_until_idle();
            w.trace_hash()
        }
        let (h1, n1) = run(SchedulerKind::TwoTier);
        let (h2, n2) = run(SchedulerKind::Classic);
        assert_eq!(n1, n2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn run_returns_event_count() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            for i in 0..10 {
                w.post(Time::from_us(i), id, i as u32);
            }
            assert_eq!(w.run_until(Time::from_us(4)), 5);
            assert_eq!(w.run_until_idle(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn downcast_mismatch_panics() {
        let mut w: World<u32> = World::new(1);
        let id = w.add(counter());
        let _ = w.get::<SelfTimer>(id);
    }

    #[test]
    fn retire_reclaims_slot_and_bumps_generation() {
        let mut w: World<u32> = World::with_scheduler(1, SchedulerKind::TwoTier);
        let a = w.add(counter());
        let b = w.add(counter());
        assert_eq!(w.live_components(), 2);
        assert!(w.retire(a));
        assert!(!w.retire(a), "second retire is a no-op");
        assert_eq!(w.live_components(), 1);
        // The next add reuses a's slot under a fresh generation.
        let c = w.add(counter());
        assert_eq!(c.index(), a.index());
        assert_ne!(c.generation(), a.generation());
        assert_eq!(w.live_components(), 2);
        assert_eq!(w.peak_live_components(), 2);
        // Stale handles are dead: try_get misses, ids() yields only live.
        assert!(w.try_get::<Counter>(a).is_none());
        assert!(w.try_get::<Counter>(c).is_some());
        let ids: Vec<ComponentId> = w.ids().collect();
        assert_eq!(ids, vec![c, b]);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn stale_event_never_reaches_recycled_slot() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let victim = w.add(counter());
            // An event is in flight to `victim` when it is retired...
            w.post(Time::from_us(10), victim, 99);
            w.retire(victim);
            // ...and its slot is immediately recycled.
            let tenant = w.add(counter());
            assert_eq!(tenant.index(), victim.index());
            w.post(Time::from_us(20), tenant, 7);
            w.run_until_idle();
            let c = w.get::<Counter>(tenant);
            assert_eq!(
                c.msgs.iter().map(|m| m.1).collect::<Vec<_>>(),
                vec![7],
                "the stale event must not leak to the new occupant"
            );
            assert_eq!(w.stale_events_dropped(), 1);
            assert_eq!(w.events_processed(), 1);
        }
    }

    struct Retirer {
        target: ComponentId,
        spawn_replacement: bool,
    }
    impl Component<u32> for Retirer {
        fn handle(&mut self, _ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            let target = self.target;
            let spawn = self.spawn_replacement;
            ctx.defer(move |w| {
                w.retire(target);
                if spawn {
                    let id = w.add(Counter {
                        ticks: 0,
                        msgs: Vec::new(),
                    });
                    // Deferred ops can post into the world they mutate.
                    w.post(w.now(), id, 1);
                }
            });
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn train_matches_individual_posts_exactly() {
        // A coalesced train must be indistinguishable from the back-to-back
        // posts it replaces: same delivery order, same event count, same
        // trace hash — on both schedulers, for both the zero-delay and the
        // timed form.
        for kind in both_kinds() {
            for delay in [Time::ZERO, Time::from_us(3)] {
                let run = |train: bool| {
                    let mut w: World<u32> = World::with_scheduler(5, kind);
                    w.enable_trace();
                    let id = w.add(counter());
                    let at = Time::from_us(1) + delay;
                    w.post(Time::from_us(1), id, 100); // unrelated earlier event
                    if train {
                        w.post_train(at, id, vec![1, 2, 3, 4]);
                    } else {
                        for v in [1, 2, 3, 4] {
                            w.post(at, id, v);
                        }
                    }
                    w.post(at, id, 200); // later seq, same instant: after the train
                    w.run_until_idle();
                    let msgs = w.get::<Counter>(id).msgs.clone();
                    (
                        msgs,
                        w.events_processed(),
                        w.events_posted(),
                        w.trace_hash(),
                    )
                };
                assert_eq!(run(false), run(true), "kind {kind:?} delay {delay:?}");
                let (msgs, processed, posted, _) = run(true);
                assert_eq!(
                    msgs.iter().map(|m| m.1).collect::<Vec<_>>(),
                    vec![100, 1, 2, 3, 4, 200]
                );
                assert_eq!(processed, 6);
                assert_eq!(posted, 6);
            }
        }
    }

    #[test]
    fn empty_and_singleton_trains_degenerate_cleanly() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            w.post_train(Time::from_us(1), id, vec![]);
            w.post_train(Time::from_us(1), id, vec![9]);
            w.run_until_idle();
            assert_eq!(w.get::<Counter>(id).msgs, vec![(1_000_000, 9)]);
            assert_eq!(w.events_posted(), 1);
        }
    }

    #[test]
    fn train_elements_to_a_retired_slot_drop_as_stale() {
        // A component that retires itself (via a deferred op) on its first
        // message must not see the rest of the train.
        struct SelfRetire {
            got: u32,
        }
        impl Component<u32> for SelfRetire {
            fn handle(&mut self, _ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
                self.got += 1;
                let me = ctx.self_id();
                ctx.defer(move |w| {
                    w.retire(me);
                });
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(SelfRetire { got: 0 });
            w.post_train(Time::from_us(1), id, vec![1, 2, 3]);
            w.run_until_idle();
            assert_eq!(w.events_processed(), 1);
            assert_eq!(w.stale_events_dropped(), 2);
        }
    }

    #[test]
    fn event_kind_counters_track_posts() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            w.post(Time::from_us(1), id, 0); // timed msg (now == 0 < at)
            w.post_wake(Time::from_us(2), id, 7); // wake
            w.post(Time::ZERO, id, 1); // at == now: forward lane
            w.post_train(Time::from_us(3), id, vec![1, 2, 3]); // 3 timed msgs
            w.run_until_idle();
            let k = w.event_kind_counts();
            assert_eq!(k.forward, 1);
            assert_eq!(k.timed_msg, 4);
            assert_eq!(k.wake, 1);
            assert_eq!(k.total(), 6);
            assert_eq!(w.events_posted(), 6);
        }
    }

    #[test]
    fn shrink_idle_preserves_pending_events() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            // A burst well past the shrink floor, spread over the wheel,
            // the overflow tier and the fast lane.
            for i in 0..500u64 {
                w.post(Time::from_ns(10 + i * 70), id, i as u32);
            }
            w.post(Time::from_ms(50), id, 9999);
            w.run_until(Time::from_ns(10 + 120 * 70));
            w.shrink_idle();
            w.run_until_idle();
            let got: Vec<u32> = w.get::<Counter>(id).msgs.iter().map(|m| m.1).collect();
            let mut want: Vec<u32> = (0..500).collect();
            want.push(9999);
            assert_eq!(got, want, "shrinking mid-run must not drop or reorder");
        }
    }

    #[test]
    fn hot_delays_get_promoted_to_lanes_on_second_sighting() {
        let mut w: World<u32> = World::with_scheduler_lanes(1, SchedulerKind::TwoTier, true);
        let id = w.add(counter());
        // Ten posts at one delay: the first is a candidate sighting (and
        // lands in the wheel), the second promotes the lane, the rest ride it.
        for i in 0..10 {
            w.post(Time::from_ns(100), id, i);
        }
        {
            let QueueImpl::TwoTier(t) = &w.queue.imp else {
                panic!("two-tier world")
            };
            assert_eq!(t.lanes.len(), 1);
            assert_eq!(t.lane_delays[0], Time::from_ns(100).as_ps());
            assert_eq!(t.lanes[0].len(), 9, "first sighting stays in the wheel");
            assert_eq!(
                t.lane_fronts[0],
                Time::from_ns(100).as_ps(),
                "front cache must track the lane head"
            );
            assert_eq!(t.wheel_len, 1);
        }
        // The wheel event and the lane run tie at one instant: the merge
        // must still deliver in exact posting order.
        w.run_until_idle();
        let got: Vec<u32> = w.get::<Counter>(id).msgs.iter().map(|m| m.1).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn one_shot_and_oversized_delays_never_pin_lanes() {
        let mut w: World<u32> = World::with_scheduler_lanes(1, SchedulerKind::TwoTier, true);
        let id = w.add(counter());
        // Distinct delays seen once each: candidates only, no lanes.
        for i in 1..20u64 {
            w.post(Time::from_ns(i * 97), id, i as u32);
        }
        // RTO-scale and sentinel delays are lane-ineligible even repeated.
        for _ in 0..4 {
            w.post(Time::from_ms(50), id, 777);
            w.post(Time::MAX, id, 888);
        }
        {
            let QueueImpl::TwoTier(t) = &w.queue.imp else {
                panic!("two-tier world")
            };
            assert!(t.lanes.is_empty(), "no delay repeated within the ring");
        }
        w.run_until_idle();
        assert_eq!(w.get::<Counter>(id).msgs.len(), 27);
    }

    #[test]
    fn lanes_toggle_is_results_invisible() {
        // The A/B contract: lanes on, lanes off and the classic heap must
        // produce byte-identical deliveries, trace hashes and counters on a
        // workload mixing hot repeated delays, one-shots, same-instant
        // collisions, trains, zero-delay chains, overflow-tier timers,
        // interrupted runs and mid-run shrinks.
        type RunResult = (Vec<(u64, u32)>, Vec<u32>, (u64, u64), u64);
        fn run(kind: SchedulerKind, lanes: bool) -> RunResult {
            let mut w: World<u32> = World::with_scheduler_lanes(7, kind, lanes);
            w.enable_trace();
            let id = w.add(counter());
            let chain = w.add(ZeroDelayChain {
                next: Some(id),
                got: vec![],
            });
            let delays = [100u64, 100, 250, 100, 250, 65_536, 100, 777, 250, 100];
            let mut v = 0u32;
            for round in 0..6u64 {
                let base = Time::from_ns(round * 300);
                w.run_until(base); // advance `now` so delays repeat per round
                for &d in &delays {
                    w.post(base + Time::from_ns(d), id, v);
                    v += 1;
                }
                // Same-instant collision between a laned delay and a train.
                w.post_train(base + Time::from_ns(100), id, vec![v, v + 1, v + 2]);
                v += 3;
                w.post(base + Time::from_ns(100), chain, v); // fast-lane chain
                v += 1;
                w.post(base + Time::from_ms(3), id, v); // overflow tier
                v += 1;
                w.shrink_idle();
            }
            w.run_until_idle();
            (
                w.get::<Counter>(id).msgs.clone(),
                w.get::<ZeroDelayChain>(chain).got.clone(),
                w.trace_hash(),
                w.events_processed(),
            )
        }
        let reference = run(SchedulerKind::Classic, true);
        assert_eq!(run(SchedulerKind::TwoTier, true), reference);
        assert_eq!(run(SchedulerKind::TwoTier, false), reference);
    }

    #[test]
    fn train_pool_recycles_dispatched_buffers() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let id = w.add(counter());
            w.post_train(Time::from_us(1), id, Vec::with_capacity(8));
            w.post_train(Time::from_us(1), id, vec![1, 2, 3]);
            w.run_until_idle();
            // Both the empty train's vec and the dispatched one came back.
            assert_eq!(w.queue.train_pool.len(), 2);
            let buf = w.queue.take_train_buf();
            assert!(buf.is_empty(), "pooled buffers are handed out empty");
            assert!(buf.capacity() >= 3, "pooled buffers keep their capacity");
            w.queue.recycle_train(buf);
            w.shrink_idle();
            assert!(
                w.queue.train_pool.is_empty(),
                "shrink_idle releases the train pool"
            );
        }
    }

    #[test]
    fn deferred_ops_retire_and_attach_mid_run() {
        for kind in both_kinds() {
            let mut w: World<u32> = World::with_scheduler(1, kind);
            let victim = w.add(counter());
            let r = w.add(Retirer {
                target: victim,
                spawn_replacement: true,
            });
            // The victim has a timer due after its retirement instant.
            w.post(Time::from_us(9), victim, 5);
            w.post_wake(Time::from_us(1), r, 0);
            w.run_until_idle();
            assert_eq!(w.live_components(), 2, "victim gone, replacement live");
            assert_eq!(w.stale_events_dropped(), 1);
            // The replacement reused the victim's slot and got its message.
            let replacement = w
                .ids()
                .find(|&id| id.index() == victim.index())
                .expect("slot reused");
            assert_ne!(replacement, victim);
            assert_eq!(w.get::<Counter>(replacement).msgs, vec![(1_000_000, 1)]);
        }
    }
}
