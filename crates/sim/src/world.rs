//! The component arena and event scheduler.
//!
//! A [`World`] owns every network element (queue, pipe, switch, host) as a
//! boxed [`Component`]. Components never hold references to each other; they
//! interact only by posting timestamped events through the [`Ctx`] handed to
//! them during dispatch. Events at equal timestamps are delivered in posting
//! order (a monotone sequence number breaks ties), which makes every run
//! bit-reproducible for a given seed.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::time::Time;

/// Index of a component in its world's arena.
pub type ComponentId = u32;

/// What a component receives when dispatched.
#[derive(Debug)]
pub enum Event<M> {
    /// A message (for the network crates: a packet) from another component.
    Msg(M),
    /// A timer the component set for itself; the token disambiguates
    /// multiple concurrent timers.
    Wake(u64),
}

/// A simulation actor: a queue, pipe, switch, or host.
///
/// `as_any`/`as_any_mut` enable post-run harvesting of statistics by
/// downcasting — the experiment harness reads results out of components
/// after `run_until` returns, so components never need shared ownership of
/// metric sinks.
pub trait Component<M>: Send {
    fn handle(&mut self, ev: Event<M>, ctx: &mut Ctx<'_, M>);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

struct Scheduled<M> {
    at: Time,
    seq: u64,
    to: ComponentId,
    ev: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Dispatch context: the only way a component can affect the world.
pub struct Ctx<'a, M> {
    now: Time,
    self_id: ComponentId,
    seq: &'a mut u64,
    heap: &'a mut BinaryHeap<Reverse<Scheduled<M>>>,
    rng: &'a mut SmallRng,
    events_posted: &'a mut u64,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently being dispatched.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Deterministic world RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Deliver `msg` to component `to` after `delay` (zero-delay handoff is
    /// the normal way to "call" a neighbouring component).
    pub fn send(&mut self, to: ComponentId, msg: M, delay: Time) {
        self.post_at(self.now + delay, to, Event::Msg(msg));
    }

    /// Deliver `msg` to `to` immediately (still via the heap, preserving
    /// deterministic ordering).
    pub fn forward(&mut self, to: ComponentId, msg: M) {
        self.send(to, msg, Time::ZERO);
    }

    /// Set a timer on the current component.
    pub fn wake_in(&mut self, delay: Time, token: u64) {
        self.post_at(self.now + delay, self.self_id, Event::Wake(token));
    }

    /// Set a timer on the current component at an absolute time.
    pub fn wake_at(&mut self, at: Time, token: u64) {
        debug_assert!(at >= self.now, "cannot schedule in the past");
        self.post_at(at, self.self_id, Event::Wake(token));
    }

    /// Wake a *different* component (used by harness-level triggers, e.g. an
    /// application starting a flow on another host).
    pub fn wake_other(&mut self, to: ComponentId, delay: Time, token: u64) {
        self.post_at(self.now + delay, to, Event::Wake(token));
    }

    fn post_at(&mut self, at: Time, to: ComponentId, ev: Event<M>) {
        *self.seq += 1;
        *self.events_posted += 1;
        self.heap.push(Reverse(Scheduled { at, seq: *self.seq, to, ev }));
    }
}

/// The simulation world: component arena + event heap + clock + RNG.
pub struct World<M> {
    components: Vec<Option<Box<dyn Component<M>>>>,
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    now: Time,
    seq: u64,
    rng: SmallRng,
    events_processed: u64,
    events_posted: u64,
}

impl<M: 'static> World<M> {
    pub fn new(seed: u64) -> World<M> {
        World {
            components: Vec::new(),
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            rng: SmallRng::seed_from_u64(seed),
            events_processed: 0,
            events_posted: 0,
        }
    }

    /// Register a component, returning its id.
    pub fn add<C: Component<M> + 'static>(&mut self, c: C) -> ComponentId {
        self.components.push(Some(Box::new(c)));
        (self.components.len() - 1) as ComponentId
    }

    /// Reserve a slot to break wiring cycles: get the id now, install later.
    pub fn reserve(&mut self) -> ComponentId {
        self.components.push(None);
        (self.components.len() - 1) as ComponentId
    }

    /// Install a component into a reserved slot.
    pub fn install<C: Component<M> + 'static>(&mut self, id: ComponentId, c: C) {
        let slot = &mut self.components[id as usize];
        assert!(slot.is_none(), "slot {id} already installed");
        *slot = Some(Box::new(c));
    }

    /// Post a message to a component at an absolute time (harness-level).
    pub fn post(&mut self, at: Time, to: ComponentId, msg: M) {
        self.seq += 1;
        self.events_posted += 1;
        self.heap.push(Reverse(Scheduled { at, seq: self.seq, to, ev: Event::Msg(msg) }));
    }

    /// Post a wake token to a component at an absolute time (harness-level).
    pub fn post_wake(&mut self, at: Time, to: ComponentId, token: u64) {
        self.seq += 1;
        self.events_posted += 1;
        self.heap.push(Reverse(Scheduled { at, seq: self.seq, to, ev: Event::Wake(token) }));
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Run until the event heap empties or `horizon` passes.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        let start = self.events_processed;
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.at > horizon {
                break;
            }
            let Reverse(sched) = self.heap.pop().expect("peeked");
            debug_assert!(sched.at >= self.now, "time went backwards");
            self.now = sched.at;
            self.events_processed += 1;
            let idx = sched.to as usize;
            let mut comp = self.components[idx]
                .take()
                .unwrap_or_else(|| panic!("event for missing component {idx}"));
            let mut ctx = Ctx {
                now: self.now,
                self_id: sched.to,
                seq: &mut self.seq,
                heap: &mut self.heap,
                rng: &mut self.rng,
                events_posted: &mut self.events_posted,
            };
            comp.handle(sched.ev, &mut ctx);
            self.components[idx] = Some(comp);
        }
        // Advance the clock to the horizon only if we drained everything
        // before it; otherwise the clock stays at the last dispatched event.
        if self.heap.is_empty() && horizon != Time::MAX {
            self.now = self.now.max(horizon);
        }
        self.events_processed - start
    }

    /// Run until no events remain.
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }

    /// Immutable access to a component, downcast to its concrete type.
    ///
    /// Panics if the id is invalid or the type does not match — both are
    /// harness bugs, not recoverable conditions.
    pub fn get<C: 'static>(&self, id: ComponentId) -> &C {
        self.components[id as usize]
            .as_ref()
            .expect("component vacated")
            .as_any()
            .downcast_ref::<C>()
            .unwrap_or_else(|| panic!("component {id} has unexpected type"))
    }

    /// Mutable access to a component, downcast to its concrete type.
    pub fn get_mut<C: 'static>(&mut self, id: ComponentId) -> &mut C {
        self.components[id as usize]
            .as_mut()
            .expect("component vacated")
            .as_any_mut()
            .downcast_mut::<C>()
            .unwrap_or_else(|| panic!("component {id} has unexpected type"))
    }

    /// Try to view a component as `C`, returning `None` on type mismatch.
    pub fn try_get<C: 'static>(&self, id: ComponentId) -> Option<&C> {
        self.components
            .get(id as usize)?
            .as_ref()?
            .as_any()
            .downcast_ref::<C>()
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterate over component ids (for post-run stat sweeps).
    pub fn ids(&self) -> impl Iterator<Item = ComponentId> {
        (0..self.components.len() as ComponentId).into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        ticks: u64,
        msgs: Vec<(u64, u32)>,
    }
    impl Component<u32> for Counter {
        fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            match ev {
                Event::Msg(m) => self.msgs.push((ctx.now().as_ps(), m)),
                Event::Wake(_) => self.ticks += 1,
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn counter() -> Counter {
        Counter { ticks: 0, msgs: Vec::new() }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut w: World<u32> = World::new(1);
        let id = w.add(counter());
        w.post(Time::from_us(5), id, 5);
        w.post(Time::from_us(1), id, 1);
        w.post(Time::from_us(3), id, 3);
        w.run_until_idle();
        let c = w.get::<Counter>(id);
        assert_eq!(c.msgs.iter().map(|m| m.1).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn equal_timestamps_preserve_posting_order() {
        let mut w: World<u32> = World::new(1);
        let id = w.add(counter());
        for i in 0..100 {
            w.post(Time::from_us(7), id, i);
        }
        w.run_until_idle();
        let c = w.get::<Counter>(id);
        assert_eq!(c.msgs.iter().map(|m| m.1).collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_stops_dispatch_but_keeps_events() {
        let mut w: World<u32> = World::new(1);
        let id = w.add(counter());
        w.post(Time::from_us(1), id, 1);
        w.post(Time::from_ms(1), id, 2);
        w.run_until(Time::from_us(10));
        assert_eq!(w.get::<Counter>(id).msgs.len(), 1);
        w.run_until_idle();
        assert_eq!(w.get::<Counter>(id).msgs.len(), 2);
    }

    struct PingPong {
        peer: ComponentId,
        left: u32,
        bounces: u32,
    }
    impl Component<u32> for PingPong {
        fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            if let Event::Msg(v) = ev {
                self.bounces += 1;
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send(self.peer, v + 1, Time::from_ns(100));
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn components_message_each_other() {
        let mut w: World<u32> = World::new(1);
        let a = w.reserve();
        let b = w.add(PingPong { peer: a, left: 10, bounces: 0 });
        w.install(a, PingPong { peer: b, left: 10, bounces: 0 });
        w.post(Time::ZERO, a, 0);
        w.run_until_idle();
        let total = w.get::<PingPong>(a).bounces + w.get::<PingPong>(b).bounces;
        assert_eq!(total, 21); // initial + 20 bounces
        assert_eq!(w.now(), Time::from_ns(2000));
    }

    struct SelfTimer {
        fired: Vec<u64>,
    }
    impl Component<u32> for SelfTimer {
        fn handle(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            match ev {
                Event::Msg(_) => {
                    ctx.wake_in(Time::from_us(2), 7);
                    ctx.wake_at(Time::from_us(1), 9);
                }
                Event::Wake(tok) => self.fired.push(tok),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut w: World<u32> = World::new(1);
        let id = w.add(SelfTimer { fired: vec![] });
        w.post(Time::ZERO, id, 0);
        w.run_until_idle();
        assert_eq!(w.get::<SelfTimer>(id).fired, vec![9, 7]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64) -> Vec<(u64, u32)> {
            let mut w: World<u32> = World::new(seed);
            let id = w.add(counter());
            // Use the rng through a component to make sure rng state is part
            // of the reproducibility contract.
            struct R {
                target: ComponentId,
                n: u32,
            }
            impl Component<u32> for R {
                fn handle(&mut self, _ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
                    use rand::Rng;
                    for _ in 0..self.n {
                        let d: u64 = ctx.rng().gen_range(0..1000);
                        let v: u32 = ctx.rng().gen_range(0..100);
                        ctx.send(self.target, v, Time::from_ns(d));
                    }
                }
                fn as_any(&self) -> &dyn Any {
                    self
                }
                fn as_any_mut(&mut self) -> &mut dyn Any {
                    self
                }
            }
            let r = w.add(R { target: id, n: 50 });
            w.post_wake(Time::ZERO, r, 0);
            w.run_until_idle();
            w.get::<Counter>(id).msgs.clone()
        }
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn run_returns_event_count() {
        let mut w: World<u32> = World::new(1);
        let id = w.add(counter());
        for i in 0..10 {
            w.post(Time::from_us(i), id, i as u32);
        }
        assert_eq!(w.run_until(Time::from_us(4)), 5);
        assert_eq!(w.run_until_idle(), 5);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn downcast_mismatch_panics() {
        let mut w: World<u32> = World::new(1);
        let id = w.add(counter());
        let _ = w.get::<SelfTimer>(id);
    }
}
