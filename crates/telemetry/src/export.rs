//! Deterministic serialisation of collected telemetry.
//!
//! Two formats, both hand-formatted so the bytes are a pure function of
//! the collected data (no map iteration order, no float locale):
//!
//! * **NDJSON** — one object per line. Every line carries `"type"`
//!   (`point` | `gauge` | `span` | `request` | `hop`) and `"point"` (the
//!   sweep-point key). Timestamps are integer picoseconds (`*_ps`), which
//!   keeps the bytes identical across platforms and thread counts.
//! * **Chrome trace-event JSON** — loadable in Perfetto / `chrome://
//!   tracing`. Each sweep point becomes a process; queues and switches
//!   become counter tracks, completed flow spans become `X` slices on a
//!   per-flow track, hops and stuck spans become instants. RPC requests
//!   become `X` slices on their own track band, and their leg flows carry
//!   a `request` arg, so a fan-out tree reads as one request slice with N
//!   leg slices nested under the same id.

use crate::probe::Gauge;
use crate::session::PointTelemetry;
use crate::span::{FlowSpan, RequestSpan};
use ndp_net::flight::HopRecord;

/// Chrome-trace track offset for request slices, so request lanes never
/// collide with per-flow lanes (flow ids count up from 1).
const REQUEST_TID_BASE: u64 = 1 << 32;

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_ps(t: Option<ndp_sim::Time>) -> String {
    match t {
        Some(t) => t.as_ps().to_string(),
        None => "null".into(),
    }
}

fn opt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn tag_label(tags: &[String], tag: u32) -> String {
    tags.get(tag as usize)
        .map_or_else(|| format!("tag{tag}"), |s| esc(s))
}

fn push_gauge_line(out: &mut String, key: &str, tags: &[String], g: &Gauge) {
    match *g {
        Gauge::Queue {
            at,
            tag,
            occ_bytes,
            occ_pkts,
            forwarded,
            trimmed,
            bounced,
            dropped,
            dropped_down,
            ecn_marked,
        } => out.push_str(&format!(
            "{{\"type\":\"gauge\",\"point\":\"{key}\",\"gauge\":\"queue\",\"at_ps\":{},\
             \"target\":\"{}\",\"occ_bytes\":{occ_bytes},\"occ_pkts\":{occ_pkts},\
             \"forwarded\":{forwarded},\"trimmed\":{trimmed},\"bounced\":{bounced},\
             \"dropped\":{dropped},\"dropped_down\":{dropped_down},\"ecn_marked\":{ecn_marked}}}\n",
            at.as_ps(),
            tag_label(tags, tag),
        )),
        Gauge::Switch {
            at,
            tag,
            rx_pkts,
            rerouted,
        } => out.push_str(&format!(
            "{{\"type\":\"gauge\",\"point\":\"{key}\",\"gauge\":\"switch\",\"at_ps\":{},\
             \"target\":\"{}\",\"rx_pkts\":{rx_pkts},\"rerouted\":{rerouted}}}\n",
            at.as_ps(),
            tag_label(tags, tag),
        )),
        Gauge::World {
            at,
            live_components,
            live_flows,
            events,
        } => out.push_str(&format!(
            "{{\"type\":\"gauge\",\"point\":\"{key}\",\"gauge\":\"world\",\"at_ps\":{},\
             \"live_components\":{live_components},\"live_flows\":{live_flows},\
             \"events\":{events}}}\n",
            at.as_ps(),
        )),
    }
}

fn push_span_line(out: &mut String, key: &str, s: &FlowSpan) {
    out.push_str(&format!(
        "{{\"type\":\"span\",\"point\":\"{key}\",\"flow\":{},\"src\":{},\"dst\":{},\
         \"request\":{},\"bytes\":{},\"arrival_ps\":{},\"first_data_ps\":{},\
         \"completion_ps\":{},\
         \"slowdown\":{},\"measured\":{},\"stuck\":{},\"retransmissions\":{},\
         \"timeouts\":{},\"trimmed_headers\":{},\"rts_events\":{}}}\n",
        s.flow,
        s.src,
        s.dst,
        s.request.map_or_else(|| "null".into(), |r| r.to_string()),
        s.bytes,
        s.arrival.as_ps(),
        opt_ps(s.first_data),
        opt_ps(s.completion),
        opt_f64(s.slowdown),
        s.measured,
        s.stuck,
        s.retransmissions,
        s.timeouts,
        s.trimmed_headers,
        s.rts_events,
    ));
}

fn push_request_line(out: &mut String, key: &str, r: &RequestSpan) {
    out.push_str(&format!(
        "{{\"type\":\"request\",\"point\":\"{key}\",\"request\":{},\"tenant\":{},\
         \"seq\":{},\"client\":{},\"fanout\":{},\"arrival_ps\":{},\"completion_ps\":{},\
         \"latency_ps\":{},\"straggler_leg\":{},\"measured\":{},\"slo_met\":{}}}\n",
        r.request,
        r.tenant,
        r.seq,
        r.client,
        r.fanout,
        r.arrival.as_ps(),
        opt_ps(r.completion),
        opt_ps(r.latency()),
        r.straggler_leg,
        r.measured,
        r.slo_met,
    ));
}

fn push_hop_line(out: &mut String, key: &str, tags: &[String], h: &HopRecord) {
    out.push_str(&format!(
        "{{\"type\":\"hop\",\"point\":\"{key}\",\"at_ps\":{},\"target\":\"{}\",\
         \"kind\":\"{}\",\"flow\":{},\"src\":{},\"dst\":{},\"seq\":{},\"size\":{}}}\n",
        h.at.as_ps(),
        tag_label(tags, h.tag),
        h.kind.name(),
        h.flow,
        h.src,
        h.dst,
        h.seq,
        h.size,
    ));
}

/// Serialise all points as NDJSON. Line order: per point (already
/// key-sorted by [`crate::session::end`]) a `point` header line, then
/// gauges, spans, requests, hops in recorded order.
pub fn write_ndjson(points: &[PointTelemetry]) -> String {
    let mut out = String::new();
    for p in points {
        let key = esc(&p.key);
        let tags: Vec<String> = p.tags.iter().map(|t| format!("\"{}\"", esc(t))).collect();
        out.push_str(&format!(
            "{{\"type\":\"point\",\"point\":\"{key}\",\"tags\":[{}],\"gauges\":{},\
             \"spans\":{},\"requests\":{},\"hops\":{},\"gauges_evicted\":{},\
             \"hops_evicted\":{}}}\n",
            tags.join(","),
            p.gauges.len(),
            p.spans.len(),
            p.requests.len(),
            p.hops.len(),
            p.gauges_evicted,
            p.hops_evicted,
        ));
        for g in &p.gauges {
            push_gauge_line(&mut out, &key, &p.tags, g);
        }
        for s in &p.spans {
            push_span_line(&mut out, &key, s);
        }
        for r in &p.requests {
            push_request_line(&mut out, &key, r);
        }
        for h in &p.hops {
            push_hop_line(&mut out, &key, &p.tags, h);
        }
    }
    out
}

/// Picoseconds → microseconds with six fractional digits, as a string.
/// Integer math throughout so the bytes are platform-independent.
fn us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn chrome_event(out: &mut Vec<String>, body: String) {
    out.push(format!("{{{body}}}"));
}

/// Serialise all points as a Chrome trace-event JSON document.
pub fn write_chrome_trace(points: &[PointTelemetry]) -> String {
    let mut ev: Vec<String> = Vec::new();
    for (pid, p) in points.iter().enumerate() {
        let key = esc(&p.key);
        chrome_event(
            &mut ev,
            format!(
                "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{key}\"}}"
            ),
        );
        for g in &p.gauges {
            match *g {
                Gauge::Queue {
                    at, tag, occ_bytes, ..
                } => chrome_event(
                    &mut ev,
                    format!(
                        "\"ph\":\"C\",\"name\":\"queue {}\",\"pid\":{pid},\"ts\":{},\
                         \"args\":{{\"occ_bytes\":{occ_bytes}}}",
                        tag_label(&p.tags, tag),
                        us(at.as_ps()),
                    ),
                ),
                Gauge::Switch {
                    at, tag, rerouted, ..
                } => chrome_event(
                    &mut ev,
                    format!(
                        "\"ph\":\"C\",\"name\":\"reroutes {}\",\"pid\":{pid},\"ts\":{},\
                         \"args\":{{\"rerouted\":{rerouted}}}",
                        tag_label(&p.tags, tag),
                        us(at.as_ps()),
                    ),
                ),
                Gauge::World { at, live_flows, .. } => chrome_event(
                    &mut ev,
                    format!(
                        "\"ph\":\"C\",\"name\":\"live_flows\",\"pid\":{pid},\"ts\":{},\
                         \"args\":{{\"live_flows\":{live_flows}}}",
                        us(at.as_ps()),
                    ),
                ),
            }
        }
        for s in &p.spans {
            let req_arg = s
                .request
                .map_or(String::new(), |r| format!(",\"request\":{r}"));
            match s.completion {
                Some(done) => chrome_event(
                    &mut ev,
                    format!(
                        "\"ph\":\"X\",\"cat\":\"flow\",\"name\":\"flow {}\",\"pid\":{pid},\
                         \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"bytes\":{},\
                         \"slowdown\":{},\"retransmissions\":{},\"trimmed_headers\":{}{req_arg}}}",
                        s.flow,
                        s.flow,
                        us(s.arrival.as_ps()),
                        us(done.as_ps().saturating_sub(s.arrival.as_ps())),
                        s.bytes,
                        opt_f64(s.slowdown),
                        s.retransmissions,
                        s.trimmed_headers,
                    ),
                ),
                None => chrome_event(
                    &mut ev,
                    format!(
                        "\"ph\":\"i\",\"s\":\"p\",\"cat\":\"flow\",\"name\":\"stuck flow {}\",\
                         \"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{{\"bytes\":{}}}",
                        s.flow,
                        s.flow,
                        us(s.arrival.as_ps()),
                        s.bytes,
                    ),
                ),
            }
        }
        for r in &p.requests {
            match r.completion {
                Some(done) => chrome_event(
                    &mut ev,
                    format!(
                        "\"ph\":\"X\",\"cat\":\"request\",\"name\":\"t{} req {}\",\"pid\":{pid},\
                         \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"request\":{},\
                         \"fanout\":{},\"client\":{},\"straggler_leg\":{},\"slo_met\":{}}}",
                        r.tenant,
                        r.seq,
                        REQUEST_TID_BASE + r.request,
                        us(r.arrival.as_ps()),
                        us(done.as_ps().saturating_sub(r.arrival.as_ps())),
                        r.request,
                        r.fanout,
                        r.client,
                        r.straggler_leg,
                        r.slo_met,
                    ),
                ),
                None => chrome_event(
                    &mut ev,
                    format!(
                        "\"ph\":\"i\",\"s\":\"p\",\"cat\":\"request\",\
                         \"name\":\"stuck t{} req {}\",\"pid\":{pid},\"tid\":{},\"ts\":{},\
                         \"args\":{{\"request\":{},\"fanout\":{}}}",
                        r.tenant,
                        r.seq,
                        REQUEST_TID_BASE + r.request,
                        us(r.arrival.as_ps()),
                        r.request,
                        r.fanout,
                    ),
                ),
            }
        }
        for h in &p.hops {
            chrome_event(
                &mut ev,
                format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"cat\":\"hop\",\"name\":\"{}\",\"pid\":{pid},\
                     \"tid\":{},\"ts\":{},\"args\":{{\"target\":\"{}\",\"seq\":{},\
                     \"size\":{}}}",
                    h.kind.name(),
                    h.flow,
                    us(h.at.as_ps()),
                    tag_label(&p.tags, h.tag),
                    h.seq,
                    h.size,
                ),
            );
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}\n",
        ev.join(",")
    )
}

/// Headline numbers for the `run --json` envelope.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySummary {
    pub points: usize,
    pub gauge_records: u64,
    pub span_records: u64,
    pub request_records: u64,
    pub hop_records: u64,
    pub gauges_evicted: u64,
    pub hops_evicted: u64,
    /// Max sampled queue occupancy across all points.
    pub peak_queue_bytes: u64,
    /// Largest arrival → first-data gap across all spans.
    pub max_span_gap_ps: u64,
    pub stuck_spans: u64,
    pub stuck_requests: u64,
}

pub fn summarize(points: &[PointTelemetry]) -> TelemetrySummary {
    let mut s = TelemetrySummary {
        points: points.len(),
        ..Default::default()
    };
    for p in points {
        s.gauge_records += p.gauges.len() as u64;
        s.span_records += p.spans.len() as u64;
        s.request_records += p.requests.len() as u64;
        s.hop_records += p.hops.len() as u64;
        s.gauges_evicted += p.gauges_evicted;
        s.hops_evicted += p.hops_evicted;
        for g in &p.gauges {
            if let Gauge::Queue { occ_bytes, .. } = *g {
                s.peak_queue_bytes = s.peak_queue_bytes.max(occ_bytes);
            }
        }
        for sp in &p.spans {
            if let Some(gap) = sp.gap() {
                s.max_span_gap_ps = s.max_span_gap_ps.max(gap.as_ps());
            }
            if sp.stuck {
                s.stuck_spans += 1;
            }
        }
        for r in &p.requests {
            if r.completion.is_none() {
                s.stuck_requests += 1;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_net::flight::{HopKind, HopRecord};
    use ndp_sim::Time;

    fn sample_point() -> PointTelemetry {
        let mut span = FlowSpan::open(3, 0, 5, 9000, Time::from_us(2));
        span.first_data = Some(Time::from_us(9));
        span.completion = Some(Time::from_us(12));
        span.slowdown = 1.5;
        span.measured = true;
        span.request = Some(11);
        let mut stuck = FlowSpan::open(4, 1, 6, 9000, Time::from_us(3));
        stuck.stuck = true;
        let request = crate::span::RequestSpan {
            request: 11,
            tenant: 0,
            seq: 7,
            client: 5,
            fanout: 2,
            arrival: Time::from_us(2),
            completion: Some(Time::from_us(12)),
            straggler_leg: 1,
            measured: true,
            slo_met: true,
        };
        PointTelemetry {
            key: "fattree/ndp".into(),
            tags: vec!["core_down[0][0]".into()],
            gauges: vec![Gauge::Queue {
                at: Time::from_us(1),
                tag: 0,
                occ_bytes: 18000,
                occ_pkts: 2,
                forwarded: 7,
                trimmed: 1,
                bounced: 0,
                dropped: 0,
                dropped_down: 2,
                ecn_marked: 0,
            }],
            gauges_evicted: 0,
            spans: vec![span, stuck],
            requests: vec![request],
            hops: vec![HopRecord {
                at: Time::from_us(4),
                tag: 0,
                kind: HopKind::Trim,
                flow: 3,
                src: 0,
                dst: 5,
                seq: 1,
                size: 64,
            }],
            hops_evicted: 0,
        }
    }

    #[test]
    fn ndjson_lines_have_type_and_point() {
        let nd = write_ndjson(&[sample_point()]);
        let lines: Vec<&str> = nd.lines().collect();
        // 1 point + 1 gauge + 2 spans + 1 request + 1 hop.
        assert_eq!(lines.len(), 6);
        for l in &lines {
            assert!(l.starts_with("{\"type\":\""), "line {l}");
            assert!(l.contains("\"point\":\"fattree/ndp\""), "line {l}");
            assert!(l.ends_with('}'), "line {l}");
        }
        assert!(lines[1].contains("\"dropped_down\":2"));
        assert!(lines[2].contains("\"slowdown\":1.5"));
        assert!(lines[2].contains("\"request\":11"), "leg links its tree");
        assert!(lines[3].contains("\"request\":null"));
        assert!(lines[3].contains("\"slowdown\":null"));
        assert!(lines[4].contains("\"type\":\"request\""));
        assert!(lines[4].contains("\"latency_ps\":10000000"), "10 us tree");
        assert!(lines[4].contains("\"slo_met\":true"));
        assert!(lines[5].contains("\"kind\":\"trim\""));
    }

    #[test]
    fn chrome_trace_wraps_trace_events() {
        let tr = write_chrome_trace(&[sample_point()]);
        assert!(tr.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(tr.contains("\"ph\":\"C\""));
        assert!(tr.contains("\"ph\":\"X\""));
        assert!(tr.contains("\"stuck flow 4\""));
        assert!(tr.contains("\"ts\":2.000000"));
        assert!(tr.contains("\"cat\":\"request\""));
        assert!(tr.contains("\"t0 req 7\""));
        assert!(
            tr.contains(&format!("\"tid\":{}", REQUEST_TID_BASE + 11)),
            "request slices live on their own track band"
        );
    }

    #[test]
    fn summary_finds_peaks_and_stuck() {
        let s = summarize(&[sample_point()]);
        assert_eq!(s.points, 1);
        assert_eq!(s.gauge_records, 1);
        assert_eq!(s.span_records, 2);
        assert_eq!(s.request_records, 1);
        assert_eq!(s.hop_records, 1);
        assert_eq!(s.peak_queue_bytes, 18000);
        assert_eq!(s.max_span_gap_ps, Time::from_us(7).as_ps());
        assert_eq!(s.stuck_spans, 1);
        assert_eq!(s.stuck_requests, 0);
    }

    #[test]
    fn exported_bytes_are_reproducible() {
        let a = write_ndjson(&[sample_point()]);
        let b = write_ndjson(&[sample_point()]);
        assert_eq!(a, b);
        assert_eq!(
            write_chrome_trace(&[sample_point()]),
            write_chrome_trace(&[sample_point()])
        );
    }

    #[test]
    fn escapes_hostile_labels() {
        let mut p = sample_point();
        p.key = "bad\"key\\\n".into();
        let nd = write_ndjson(&[p]);
        assert!(nd.contains("bad\\\"key\\\\\\n"));
    }
}
