//! In-simulation telemetry for the NDP reproduction.
//!
//! Three observability primitives, all opt-in and all deterministic:
//!
//! * **Sampling probe** ([`probe::Probe`]) — a component that walks
//!   simulated time on a fixed tick and snapshots per-queue, per-switch
//!   and whole-world gauges into a bounded ring.
//! * **Per-flow spans** ([`span::FlowSpan`]) — arrival → first-data →
//!   completion timestamps plus retransmit/trim/timeout tallies,
//!   harvested when a flow detaches.
//! * **Packet flight recorder** ([`ndp_net::flight`]) — structured hop
//!   records (enqueue/dequeue/trim/bounce/reroute/drop) captured by
//!   hooks inside queues and switches.
//!
//! A process-wide [`session`] collects one [`session::PointTelemetry`]
//! per experiment point (possibly produced on worker threads) and sorts
//! them by key, so the [`export`] byte streams are identical regardless
//! of `NDP_THREADS` or scheduler choice.
//!
//! **Zero-cost when off**: nothing here posts events or draws RNG, and
//! every hook is an `Option` that defaults to `None`, so golden-trace
//! hashes and the BENCH perf gate are unaffected unless a session is
//! explicitly begun.

pub mod export;
pub mod probe;
pub mod session;
pub mod span;

pub use export::{summarize, write_chrome_trace, write_ndjson, TelemetrySummary};
pub use probe::{Gauge, Probe, ProbeSpec, SampleRing};
pub use session::{PointTelemetry, TelemetryConfig};
pub use span::{FlowSpan, RequestLog, RequestSpan, SpanLog};
