//! The sampling probe: a component that snapshots gauges on a tick.
//!
//! Like the open-loop `Spawner` and the chaos `ChaosController`, the
//! probe is a self-wake-chain component: it posts one wake to itself,
//! samples via [`ndp_sim::Ctx::defer`] (so it reads a quiescent world,
//! never a half-applied event), and re-arms until its horizon. Samples
//! land in a bounded [`SampleRing`]; when full, the oldest samples are
//! evicted and counted, so memory stays flat on long runs.
//!
//! Determinism: the probe draws no RNG and its wakes are ordinary
//! events, so a probed run is bit-reproducible; an unprobed run is
//! untouched because no probe exists.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ndp_net::packet::Packet;
use ndp_net::queue::Queue;
use ndp_net::switch::Switch;
use ndp_sim::{Component, ComponentId, Ctx, Event, Time, World};

/// Wake token for probe ticks (the probe owns its whole token space).
const PROBE_TICK: u64 = u64::MAX;

/// One sampled observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Snapshot of one egress queue.
    Queue {
        at: Time,
        /// Index into the point's tag table (resolves to a link label).
        tag: u32,
        occ_bytes: u64,
        occ_pkts: usize,
        forwarded: u64,
        trimmed: u64,
        bounced: u64,
        dropped: u64,
        dropped_down: u64,
        ecn_marked: u64,
    },
    /// Snapshot of one switch.
    Switch {
        at: Time,
        tag: u32,
        rx_pkts: u64,
        rerouted: u64,
    },
    /// Whole-world snapshot.
    World {
        at: Time,
        live_components: usize,
        live_flows: u64,
        events: u64,
    },
}

impl Gauge {
    pub fn at(&self) -> Time {
        match *self {
            Gauge::Queue { at, .. } | Gauge::Switch { at, .. } | Gauge::World { at, .. } => at,
        }
    }
}

/// Bounded gauge store; evicts oldest when full.
#[derive(Debug)]
pub struct SampleRing {
    samples: VecDeque<Gauge>,
    capacity: usize,
    pub evicted: u64,
}

impl SampleRing {
    pub fn new(capacity: usize) -> SampleRing {
        SampleRing {
            samples: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    pub fn push(&mut self, g: Gauge) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back(g);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn take(&mut self) -> Vec<Gauge> {
        self.samples.drain(..).collect()
    }
}

/// What a [`Probe`] watches and how often.
pub struct ProbeSpec {
    /// Sampling period.
    pub tick: Time,
    /// Last instant at which a sample may be scheduled.
    pub until: Time,
    /// Ring capacity (gauge records, across all targets).
    pub capacity: usize,
    /// Queues to snapshot, with their tag-table indices.
    pub queues: Vec<(ComponentId, u32)>,
    /// Switches to snapshot, with their tag-table indices.
    pub switches: Vec<(ComponentId, u32)>,
    /// Optional externally-maintained live-flow count (the spawner
    /// publishes its `live` map size here).
    pub live_flows: Option<Arc<AtomicU64>>,
}

/// The sampling component. Install with [`Probe::install_into`].
pub struct Probe {
    tick: Time,
    until: Time,
    queues: Arc<[(ComponentId, u32)]>,
    switches: Arc<[(ComponentId, u32)]>,
    live_flows: Option<Arc<AtomicU64>>,
    out: Arc<Mutex<SampleRing>>,
}

impl Probe {
    /// Add a probe to `world`, arm its first tick at t=0, and return the
    /// component id plus the shared ring the samples land in.
    pub fn install_into(
        world: &mut World<Packet>,
        spec: ProbeSpec,
    ) -> (ComponentId, Arc<Mutex<SampleRing>>) {
        let out = Arc::new(Mutex::new(SampleRing::new(spec.capacity)));
        let probe = Probe {
            tick: spec.tick,
            until: spec.until,
            queues: spec.queues.into(),
            switches: spec.switches.into(),
            live_flows: spec.live_flows,
            out: Arc::clone(&out),
        };
        let id = world.add(probe);
        world.post_wake(Time::ZERO, id, PROBE_TICK);
        (id, out)
    }

    fn sample(&self, ctx: &mut Ctx<'_, Packet>) {
        let at = ctx.now();
        let queues = Arc::clone(&self.queues);
        let switches = Arc::clone(&self.switches);
        let live_flows = self.live_flows.clone();
        let out = Arc::clone(&self.out);
        ctx.defer(move |w| {
            let mut ring = match out.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            for &(id, tag) in queues.iter() {
                if let Some(q) = w.try_get::<Queue>(id) {
                    ring.push(Gauge::Queue {
                        at,
                        tag,
                        occ_bytes: q.occupancy_bytes(),
                        occ_pkts: q.queued_packets(),
                        forwarded: q.stats.forwarded_pkts,
                        trimmed: q.stats.trimmed,
                        bounced: q.stats.bounced,
                        dropped: q.stats.dropped_data + q.stats.dropped_ctrl,
                        dropped_down: q.stats.dropped_down,
                        ecn_marked: q.stats.ecn_marked,
                    });
                }
            }
            for &(id, tag) in switches.iter() {
                if let Some(s) = w.try_get::<Switch>(id) {
                    ring.push(Gauge::Switch {
                        at,
                        tag,
                        rx_pkts: s.rx_pkts,
                        rerouted: s.rerouted,
                    });
                }
            }
            ring.push(Gauge::World {
                at,
                live_components: w.live_components(),
                live_flows: live_flows.as_ref().map_or(0, |c| c.load(Ordering::Relaxed)),
                events: w.events_processed(),
            });
        });
    }
}

impl Component<Packet> for Probe {
    fn handle(&mut self, ev: Event<Packet>, ctx: &mut Ctx<'_, Packet>) {
        if let Event::Wake(PROBE_TICK) = ev {
            self.sample(ctx);
            let next = Time(ctx.now().as_ps().saturating_add(self.tick.as_ps()));
            if next <= self.until {
                ctx.wake_in(self.tick, PROBE_TICK);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut r = SampleRing::new(2);
        for i in 0..5u64 {
            r.push(Gauge::World {
                at: Time(i),
                live_components: 0,
                live_flows: 0,
                events: i,
            });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted, 3);
        let got = r.take();
        assert_eq!(got[0].at(), Time(3));
        assert_eq!(got[1].at(), Time(4));
    }

    #[test]
    fn probe_samples_world_gauges_on_its_tick() {
        let mut w: World<Packet> = World::new(1);
        let (_, ring) = Probe::install_into(
            &mut w,
            ProbeSpec {
                tick: Time::from_us(10),
                until: Time::from_us(100),
                capacity: 1024,
                queues: Vec::new(),
                switches: Vec::new(),
                live_flows: None,
            },
        );
        w.run_until(Time::from_ms(1));
        let samples = ring.lock().unwrap().take();
        // Ticks at 0, 10, ..., 100 us inclusive.
        assert_eq!(samples.len(), 11);
        assert!(samples.iter().all(|g| matches!(g, Gauge::World { .. })));
        assert_eq!(samples.last().unwrap().at(), Time::from_us(100));
    }

    #[test]
    fn probe_ring_stays_bounded() {
        let mut w: World<Packet> = World::new(2);
        let (_, ring) = Probe::install_into(
            &mut w,
            ProbeSpec {
                tick: Time::from_us(1),
                until: Time::from_ms(1),
                capacity: 16,
                queues: Vec::new(),
                switches: Vec::new(),
                live_flows: None,
            },
        );
        w.run_until(Time::from_ms(2));
        let g = ring.lock().unwrap();
        assert_eq!(g.len(), 16);
        assert_eq!(g.evicted, 1001 - 16);
    }
}
