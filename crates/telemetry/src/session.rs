//! Process-wide telemetry session.
//!
//! The CLI begins a session before running experiments; experiment
//! runners check [`active`] and, when a config is present, instrument
//! their worlds and [`submit`] one [`PointTelemetry`] per sweep point.
//! Worker threads may submit in any order — [`end`] sorts points by key
//! so exported bytes are identical across `NDP_THREADS` settings.

use std::sync::Mutex;

use ndp_net::flight::HopRecord;
use ndp_sim::Time;

use crate::probe::Gauge;
use crate::span::{FlowSpan, RequestSpan};

/// Knobs for an active telemetry session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sampling period for the gauge probe.
    pub probe_tick: Time,
    /// Gauge ring capacity per point.
    pub gauge_capacity: usize,
    /// Flight-recorder ring capacity per point.
    pub flight_capacity: usize,
    /// Record per-flow spans.
    pub spans: bool,
    /// Attach flight-recorder hooks.
    pub flight: bool,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            probe_tick: Time::from_us(100),
            gauge_capacity: 16384,
            flight_capacity: 65536,
            spans: true,
            flight: true,
        }
    }
}

/// Everything one experiment point recorded.
#[derive(Debug, Default)]
pub struct PointTelemetry {
    /// Stable sort key and display name, e.g. `"fattree/ndp"`.
    pub key: String,
    /// Tag table: gauge/hop `tag` indices resolve to these labels.
    pub tags: Vec<String>,
    pub gauges: Vec<Gauge>,
    pub gauges_evicted: u64,
    pub spans: Vec<FlowSpan>,
    /// RPC request spans — empty for experiments without a request layer.
    pub requests: Vec<RequestSpan>,
    pub hops: Vec<HopRecord>,
    pub hops_evicted: u64,
}

struct Session {
    cfg: TelemetryConfig,
    points: Vec<PointTelemetry>,
}

static SESSION: Mutex<Option<Session>> = Mutex::new(None);

fn with_session<R>(f: impl FnOnce(&mut Option<Session>) -> R) -> R {
    let mut g = match SESSION.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    f(&mut g)
}

/// Start collecting. Replaces any prior un-ended session.
pub fn begin(cfg: TelemetryConfig) {
    with_session(|s| {
        *s = Some(Session {
            cfg,
            points: Vec::new(),
        })
    });
}

/// The active config, or `None` when telemetry is off. Runners use this
/// as the single gate: `None` must mean zero instrumentation.
pub fn active() -> Option<TelemetryConfig> {
    with_session(|s| s.as_ref().map(|s| s.cfg))
}

/// Record one point's telemetry. No-op when no session is active, so
/// runners may call it unconditionally after gathering.
pub fn submit(point: PointTelemetry) {
    with_session(|s| {
        if let Some(s) = s.as_mut() {
            s.points.push(point);
        }
    });
}

/// Stop collecting and hand back all points, sorted by key for
/// thread-count-independent export. `None` if no session was active.
pub fn end() -> Option<(TelemetryConfig, Vec<PointTelemetry>)> {
    with_session(|s| {
        s.take().map(|mut s| {
            s.points.sort_by(|a, b| a.key.cmp(&b.key));
            (s.cfg, s.points)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Session state is process-global; keep the tests in one body so
    // they cannot interleave.
    #[test]
    fn session_lifecycle_gates_collects_and_sorts() {
        assert!(end().is_none());
        assert!(active().is_none());

        // Submitting with no session is a silent no-op.
        submit(PointTelemetry {
            key: "orphan".into(),
            ..Default::default()
        });
        assert!(end().is_none());

        begin(TelemetryConfig::default());
        assert!(active().is_some());
        for key in ["b/late", "a/early", "b/early"] {
            submit(PointTelemetry {
                key: key.into(),
                ..Default::default()
            });
        }
        let (cfg, points) = end().unwrap();
        assert_eq!(cfg, TelemetryConfig::default());
        let keys: Vec<&str> = points.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(keys, ["a/early", "b/early", "b/late"]);
        assert!(active().is_none());
    }
}
