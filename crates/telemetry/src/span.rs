//! Per-flow spans: the life of one flow as three timestamps and a
//! handful of pathology tallies.
//!
//! A span opens when the open-loop spawner starts a flow and closes when
//! the flow's endpoints are detached (normally at completion; at
//! shutdown for stragglers, which are marked `stuck`). The tallies come
//! from [`ndp_transport::FlowHarvest`], so every transport that can
//! report retransmissions or trimmed headers feeds them for free.

use std::sync::{Arc, Mutex};

use ndp_net::packet::{FlowId, HostId};
use ndp_sim::Time;
use ndp_transport::FlowHarvest;

/// One flow's recorded lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpan {
    pub flow: FlowId,
    pub src: HostId,
    pub dst: HostId,
    /// The RPC request this flow is a leg of, if any — links fan-out
    /// trees in trace viewers back to their [`RequestSpan`].
    pub request: Option<u64>,
    /// Requested transfer size in bytes.
    pub bytes: u64,
    /// When the spawner started the flow.
    pub arrival: Time,
    /// First data byte accepted by the receiver, if any arrived.
    pub first_data: Option<Time>,
    /// Completion timestamp; `None` for stuck or unfinished flows.
    pub completion: Option<Time>,
    /// FCT over ideal FCT; `NaN` when the flow never completed.
    pub slowdown: f64,
    /// Started after warmup, so it counts toward experiment statistics.
    pub measured: bool,
    /// Still alive when the run ended (harvested forcibly).
    pub stuck: bool,
    pub retransmissions: u64,
    pub timeouts: u64,
    pub trimmed_headers: u64,
    pub rts_events: u64,
}

impl FlowSpan {
    /// Open a span with only the spawner-side facts filled in.
    pub fn open(flow: FlowId, src: HostId, dst: HostId, bytes: u64, arrival: Time) -> FlowSpan {
        FlowSpan {
            flow,
            src,
            dst,
            request: None,
            bytes,
            arrival,
            first_data: None,
            completion: None,
            slowdown: f64::NAN,
            measured: false,
            stuck: false,
            retransmissions: 0,
            timeouts: 0,
            trimmed_headers: 0,
            rts_events: 0,
        }
    }

    /// Fold a detach-time harvest into the span.
    pub fn absorb(&mut self, h: &FlowHarvest) {
        self.first_data = h.first_data;
        self.completion = h.completion_time;
        self.retransmissions = h.retransmissions;
        self.timeouts = h.timeouts;
        self.trimmed_headers = h.trimmed_headers;
        self.rts_events = h.rts_events;
    }

    /// Startup gap: time from arrival to the first delivered data byte.
    /// `None` when no data ever arrived (fully stuck flow).
    pub fn gap(&self) -> Option<Time> {
        let fd = self.first_data?;
        Some(Time(fd.as_ps().saturating_sub(self.arrival.as_ps())))
    }
}

/// One RPC request's recorded lifetime: the fan-out tree as a unit.
///
/// Where a [`FlowSpan`] books one flow, a request span books the whole
/// tree — N shard legs plus an optional response — from the instant the
/// client issued it to the instant the last constituent flow finished.
/// Leg spans point back here via [`FlowSpan::request`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpan {
    /// Run-unique request id (shared namespace with `FlowSpan::request`).
    pub request: u64,
    /// Tenant index within the run's mix.
    pub tenant: u32,
    /// Per-tenant request sequence number.
    pub seq: u64,
    /// Host that issued the request (the fan-in point).
    pub client: HostId,
    /// Number of shard legs in the tree.
    pub fanout: u32,
    /// When the client issued the request.
    pub arrival: Time,
    /// When the last constituent flow finished; `None` if still live at
    /// harvest time (a stuck request).
    pub completion: Option<Time>,
    /// Index of the leg that finished last (the straggler).
    pub straggler_leg: u32,
    /// Issued after warmup, so it counts toward experiment statistics.
    pub measured: bool,
    /// Completed within the tenant's SLO deadline.
    pub slo_met: bool,
}

impl RequestSpan {
    /// End-to-end request latency; `None` for stuck requests.
    pub fn latency(&self) -> Option<Time> {
        let c = self.completion?;
        Some(Time(c.as_ps().saturating_sub(self.arrival.as_ps())))
    }
}

/// Shared, thread-safe span sink handed to a world's spawner.
pub type SpanLog = Arc<Mutex<Vec<FlowSpan>>>;

/// Fresh empty span log.
pub fn span_log() -> SpanLog {
    Arc::new(Mutex::new(Vec::new()))
}

/// Append to a span log, surviving a poisoned lock (a panicking worker
/// must not cascade into every other point's telemetry).
pub fn push_span(log: &SpanLog, span: FlowSpan) {
    let mut g = match log.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    g.push(span);
}

/// Drain a span log into a plain vector.
pub fn take_spans(log: &SpanLog) -> Vec<FlowSpan> {
    let mut g = match log.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    std::mem::take(&mut *g)
}

/// Shared, thread-safe request-span sink handed to an RPC driver.
pub type RequestLog = Arc<Mutex<Vec<RequestSpan>>>;

/// Fresh empty request log.
pub fn request_log() -> RequestLog {
    Arc::new(Mutex::new(Vec::new()))
}

/// Append to a request log, surviving a poisoned lock.
pub fn push_request(log: &RequestLog, span: RequestSpan) {
    let mut g = match log.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    g.push(span);
}

/// Drain a request log into a plain vector.
pub fn take_requests(log: &RequestLog) -> Vec<RequestSpan> {
    let mut g = match log.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    std::mem::take(&mut *g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_first_data_minus_arrival() {
        let mut s = FlowSpan::open(1, 0, 1, 9000, Time::from_us(10));
        assert_eq!(s.gap(), None);
        s.absorb(&FlowHarvest {
            first_data: Some(Time::from_us(25)),
            ..Default::default()
        });
        assert_eq!(s.gap(), Some(Time::from_us(15)));
    }

    #[test]
    fn absorb_copies_tallies() {
        let mut s = FlowSpan::open(7, 2, 3, 1_000_000, Time::ZERO);
        s.absorb(&FlowHarvest {
            delivered_bytes: 1_000_000,
            completion_time: Some(Time::from_ms(1)),
            first_data: Some(Time::from_us(5)),
            retransmissions: 4,
            timeouts: 1,
            trimmed_headers: 9,
            rts_events: 2,
        });
        assert_eq!(s.completion, Some(Time::from_ms(1)));
        assert_eq!(s.retransmissions, 4);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.trimmed_headers, 9);
        assert_eq!(s.rts_events, 2);
    }

    #[test]
    fn request_latency_and_log_round_trip() {
        let mut r = RequestSpan {
            request: 3,
            tenant: 0,
            seq: 3,
            client: 5,
            fanout: 8,
            arrival: Time::from_us(100),
            completion: None,
            straggler_leg: 0,
            measured: true,
            slo_met: false,
        };
        assert_eq!(r.latency(), None, "stuck request has no latency");
        r.completion = Some(Time::from_us(340));
        assert_eq!(r.latency(), Some(Time::from_us(240)));

        let log = request_log();
        push_request(&log, r);
        assert_eq!(take_requests(&log), vec![r]);
        assert!(take_requests(&log).is_empty());
    }

    #[test]
    fn span_log_round_trips() {
        let log = span_log();
        push_span(&log, FlowSpan::open(1, 0, 1, 100, Time::ZERO));
        push_span(&log, FlowSpan::open(2, 1, 0, 200, Time::from_us(1)));
        let spans = take_spans(&log);
        assert_eq!(spans.len(), 2);
        assert!(take_spans(&log).is_empty());
    }
}
