//! k-ary three-tier FatTree (Al-Fares et al. [1]), the paper's main
//! evaluation substrate: 128 hosts (k=8), 432 hosts (k=12) and 8192 hosts
//! (k=32), plus the 4:1 oversubscribed 512-host variant of Figure 23
//! (k=8 with 16 hosts per ToR).
//!
//! # Path-tag arithmetic
//!
//! With `half = k/2`:
//! * hosts under the same ToR have a single path (`n_paths == 1`);
//! * hosts in the same pod have `half` paths — the tag selects the
//!   aggregation switch;
//! * hosts in different pods have `half²` paths — the tag *is* the core
//!   switch index: `agg = tag / half`, `core uplink = tag % half`.
//!
//! Down-routing is purely destination-based, exactly as in a real FatTree
//! (one path down from any core to any host).

use ndp_net::host::{Host, HostLatency};
use ndp_net::packet::{HostId, Packet};
use ndp_net::pipe::Pipe;
use ndp_net::queue::{LinkClass, Queue};
use ndp_net::switch::{Router, Switch};
use ndp_sim::{ComponentId, Speed, Time, World};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::routes::TableRouter;
use crate::spec::QueueSpec;
use crate::topology::{push_links_1d, push_links_2d, Hop, LinkRef, Topology};

/// How switches pick uplinks for packets heading up the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteMode {
    /// Senders choose the path: switches obey the packet's path tag
    /// (NDP's source-based load balancing, §3.1.1).
    SourceTag,
    /// Per-packet random ECMP: every switch picks a uniformly random
    /// uplink (§3.1.1's baseline; ~10 % worse at small buffers).
    RandomUplinks,
}

/// Configuration for [`FatTree::build`].
#[derive(Clone, Debug)]
pub struct FatTreeCfg {
    /// Pod/port parameter; must be even. Hosts = `k³/4` at default density.
    pub k: usize,
    /// Hosts attached to each ToR (`k/2` for full provisioning; larger
    /// values oversubscribe the ToR uplinks, e.g. 16 with k=8 gives the
    /// paper's 4:1 oversubscribed 512-host network).
    pub hosts_per_tor: usize,
    pub link_speed: Speed,
    /// One-way propagation delay of every link.
    pub link_delay: Time,
    pub mtu: u32,
    pub fabric: QueueSpec,
    pub route_mode: RouteMode,
    /// Return-to-sender on header-queue overflow (NDP only, §3.2.4).
    pub rts: bool,
    pub host_latency: HostLatency,
    /// Fold wire propagation into each queue's TX-done post (one scheduled
    /// event per hop instead of queue→`Pipe`→next). Identical timing and
    /// RNG behaviour; disable to reproduce the seed's explicit-`Pipe`
    /// event schedule (golden traces, A/B comparisons).
    pub fused: bool,
}

impl FatTreeCfg {
    /// Paper defaults: 10 Gb/s links, 9 KB jumbograms, NDP switches with
    /// eight-packet queues, sender-chosen paths, RTS enabled.
    pub fn new(k: usize) -> FatTreeCfg {
        assert!(k >= 2 && k.is_multiple_of(2), "k must be even");
        FatTreeCfg {
            k,
            hosts_per_tor: k / 2,
            link_speed: Speed::gbps(10),
            link_delay: Time::from_us(1),
            mtu: 9000,
            fabric: QueueSpec::ndp_default(),
            route_mode: RouteMode::SourceTag,
            rts: true,
            host_latency: HostLatency::default(),
            fused: true,
        }
    }

    pub fn with_fabric(mut self, fabric: QueueSpec) -> FatTreeCfg {
        self.fabric = fabric;
        self
    }

    /// Wire explicit `Pipe` components instead of fused hops.
    pub fn unfused(mut self) -> FatTreeCfg {
        self.fused = false;
        self
    }

    pub fn with_mtu(mut self, mtu: u32) -> FatTreeCfg {
        self.mtu = mtu;
        self
    }

    pub fn with_route_mode(mut self, m: RouteMode) -> FatTreeCfg {
        self.route_mode = m;
        self
    }

    pub fn with_hosts_per_tor(mut self, n: usize) -> FatTreeCfg {
        self.hosts_per_tor = n;
        self
    }

    pub fn n_hosts(&self) -> usize {
        self.k * (self.k / 2) * self.hosts_per_tor
    }
}

/// Integer helpers shared by the routers.
#[derive(Clone, Copy, Debug)]
struct FtIndex {
    half: usize,
    hpt: usize,
}

impl FtIndex {
    fn pod_of(self, h: HostId) -> usize {
        h as usize / (self.hpt * self.half)
    }
    fn tor_in_pod_of(self, h: HostId) -> usize {
        (h as usize / self.hpt) % self.half
    }
    fn idx_in_tor(self, h: HostId) -> usize {
        h as usize % self.hpt
    }
}

/// Table marker: destination is in this pod but under another ToR.
const INTRA: u16 = u16::MAX - 1;
/// Table marker: destination is in another pod.
const INTER: u16 = u16::MAX;

/// ToR router with the dst → decision precomputed: a local destination's
/// downlink port, or which tag → uplink rule applies. One table load
/// replaces the three per-packet integer divisions of the arithmetic form
/// (see `crate::routes` for the rationale).
struct TorRouter {
    ix: FtIndex,
    mode: RouteMode,
    /// dst → downlink port, or [`INTRA`] / [`INTER`].
    table: Vec<u16>,
    /// Source tag → agg offset for intra-pod tags (`tag % half`), covering
    /// the fabric's tag space `[0, half²)`; larger tags fall back to the
    /// arithmetic.
    up_intra: Vec<u16>,
    /// Source tag → agg offset for inter-pod tags (`(tag / half) % half`).
    up_inter: Vec<u16>,
}

impl TorRouter {
    fn new(
        ix: FtIndex,
        n_hosts: usize,
        pod: usize,
        tor_in_pod: usize,
        mode: RouteMode,
    ) -> TorRouter {
        crate::routes::check_table_range(n_hosts);
        let table = (0..n_hosts as HostId)
            .map(|d| {
                if ix.pod_of(d) != pod {
                    INTER
                } else if ix.tor_in_pod_of(d) != tor_in_pod {
                    INTRA
                } else {
                    ix.idx_in_tor(d) as u16
                }
            })
            .collect();
        let tags = ix.half * ix.half;
        let up_intra = (0..tags).map(|t| (t % ix.half) as u16).collect();
        let up_inter = (0..tags)
            .map(|t| ((t / ix.half) % ix.half) as u16)
            .collect();
        TorRouter {
            ix,
            mode,
            table,
            up_intra,
            up_inter,
        }
    }
}

impl Router for TorRouter {
    fn route(&self, pkt: &Packet, rng: &mut SmallRng) -> usize {
        let e = self.table[pkt.dst as usize];
        if e < INTRA {
            return e as usize;
        }
        let up = match self.mode {
            RouteMode::RandomUplinks => rng.gen_range(0..self.ix.half),
            RouteMode::SourceTag => {
                let tag = pkt.path as usize;
                if e == INTRA {
                    // Intra-pod: tag in [0, half) picks the aggregation switch.
                    match self.up_intra.get(tag) {
                        Some(&v) => v as usize,
                        None => tag % self.ix.half,
                    }
                } else {
                    // Inter-pod: tag is the core index; agg = tag / half.
                    match self.up_inter.get(tag) {
                        Some(&v) => v as usize,
                        None => (tag / self.ix.half) % self.ix.half,
                    }
                }
            }
        };
        self.ix.hpt + up
    }

    fn reroute(&self, _pkt: &Packet, chosen: usize, up: &[bool]) -> Option<usize> {
        // Any aggregation switch reaches every pod (and every in-pod ToR),
        // so a dead uplink's traffic can take any live one.
        crate::routes::next_live_uplink(chosen, self.ix.hpt, self.ix.half, up)
    }
}

/// Aggregation router: pod-local destinations map straight to their ToR
/// port; anything else takes uplink `half + tag % half`.
struct AggRouter {
    ix: FtIndex,
    mode: RouteMode,
    /// dst → ToR port, or [`INTER`].
    table: Vec<u16>,
    /// Source tag → uplink offset (`tag % half`) over `[0, half²)`.
    up: Vec<u16>,
}

impl AggRouter {
    fn new(ix: FtIndex, n_hosts: usize, pod: usize, mode: RouteMode) -> AggRouter {
        crate::routes::check_table_range(n_hosts);
        let table = (0..n_hosts as HostId)
            .map(|d| {
                if ix.pod_of(d) == pod {
                    ix.tor_in_pod_of(d) as u16
                } else {
                    INTER
                }
            })
            .collect();
        let up = (0..ix.half * ix.half)
            .map(|t| (t % ix.half) as u16)
            .collect();
        AggRouter {
            ix,
            mode,
            table,
            up,
        }
    }
}

impl Router for AggRouter {
    fn route(&self, pkt: &Packet, rng: &mut SmallRng) -> usize {
        let e = self.table[pkt.dst as usize];
        if e != INTER {
            return e as usize;
        }
        let up = match self.mode {
            RouteMode::RandomUplinks => rng.gen_range(0..self.ix.half),
            RouteMode::SourceTag => {
                let tag = pkt.path as usize;
                match self.up.get(tag) {
                    Some(&v) => v as usize,
                    None => tag % self.ix.half,
                }
            }
        };
        self.ix.half + up
    }

    fn reroute(&self, _pkt: &Packet, chosen: usize, up: &[bool]) -> Option<usize> {
        // Every core switch connects to every pod: uplinks are equivalent.
        crate::routes::next_live_uplink(chosen, self.ix.half, self.ix.half, up)
    }
}

/// A built FatTree: component ids for hosts, switches and every queue.
/// `Clone` is cheap (id vectors only) — harness components that attach
/// flows mid-run (e.g. the open-loop `Spawner`) carry their own copy.
#[derive(Clone)]
pub struct FatTree {
    pub cfg: FatTreeCfg,
    /// Host components, indexed by [`HostId`].
    pub hosts: Vec<ComponentId>,
    /// Host NIC egress queues, indexed by [`HostId`].
    pub host_nic: Vec<ComponentId>,
    pub tors: Vec<ComponentId>,
    pub aggs: Vec<ComponentId>,
    pub cores: Vec<ComponentId>,
    /// `tor_down[tor][i]`: queue from ToR to its i-th host.
    pub tor_down: Vec<Vec<ComponentId>>,
    /// `tor_up[tor][a]`: queue from ToR to agg `a` of its pod.
    pub tor_up: Vec<Vec<ComponentId>>,
    /// `agg_down[agg][t]`: queue from agg to ToR `t` of its pod.
    pub agg_down: Vec<Vec<ComponentId>>,
    /// `agg_up[agg][m]`: queue from agg to its m-th core.
    pub agg_up: Vec<Vec<ComponentId>>,
    /// `core_down[c][pod]`: queue from core `c` down to `pod`.
    pub core_down: Vec<Vec<ComponentId>>,
}

impl FatTree {
    /// Wire a FatTree into `world`.
    pub fn build(world: &mut World<Packet>, cfg: FatTreeCfg) -> FatTree {
        let k = cfg.k;
        let half = k / 2;
        let hpt = cfg.hosts_per_tor;
        let n_hosts = cfg.n_hosts();
        let n_tors = k * half;
        let n_aggs = k * half;
        let n_cores = half * half;
        let ix = FtIndex { half, hpt };

        // Reserve endpoints of all links first.
        let hosts: Vec<ComponentId> = (0..n_hosts).map(|_| world.reserve()).collect();
        let tors: Vec<ComponentId> = (0..n_tors).map(|_| world.reserve()).collect();
        let aggs: Vec<ComponentId> = (0..n_aggs).map(|_| world.reserve()).collect();
        let cores: Vec<ComponentId> = (0..n_cores).map(|_| world.reserve()).collect();

        let mk_link =
            |world: &mut World<Packet>, to: ComponentId, class: LinkClass, cfg: &FatTreeCfg| {
                let policy = if class == LinkClass::HostNic {
                    cfg.fabric.build_host_nic(cfg.mtu)
                } else {
                    cfg.fabric.build(cfg.mtu)
                };
                if cfg.fused {
                    world.add(Queue::fused(
                        cfg.link_speed,
                        to,
                        cfg.link_delay,
                        class,
                        policy,
                    ))
                } else {
                    let pipe = world.add(Pipe::new(cfg.link_delay, to));
                    world.add(Queue::new(cfg.link_speed, pipe, class, policy))
                }
            };

        // Host <-> ToR links.
        let mut host_nic = Vec::with_capacity(n_hosts);
        let mut tor_down = vec![Vec::with_capacity(hpt); n_tors];
        for (h, &host) in hosts.iter().enumerate() {
            let tor = ix.pod_of(h as HostId) * half + ix.tor_in_pod_of(h as HostId);
            host_nic.push(mk_link(world, tors[tor], LinkClass::HostNic, &cfg));
            tor_down[tor].push(mk_link(world, host, LinkClass::TorDown, &cfg));
        }

        // ToR <-> Agg links (within each pod).
        let mut tor_up = vec![Vec::with_capacity(half); n_tors];
        let mut agg_down = vec![Vec::with_capacity(half); n_aggs];
        for pod in 0..k {
            for t in 0..half {
                let tor = pod * half + t;
                for a in 0..half {
                    let agg = pod * half + a;
                    tor_up[tor].push(mk_link(world, aggs[agg], LinkClass::TorUp, &cfg));
                }
            }
            for a in 0..half {
                let agg = pod * half + a;
                for t in 0..half {
                    let tor = pod * half + t;
                    agg_down[agg].push(mk_link(world, tors[tor], LinkClass::AggDown, &cfg));
                }
            }
        }

        // Agg <-> Core links. Agg `a` (in-pod index) owns cores a*half..a*half+half.
        let mut agg_up = vec![Vec::with_capacity(half); n_aggs];
        let mut core_down = vec![vec![ComponentId::DANGLING; k]; n_cores];
        // Index arithmetic (pod/agg/core offsets) IS the wiring spec here;
        // iterator chains would bury it.
        #[allow(clippy::needless_range_loop)]
        for pod in 0..k {
            for a in 0..half {
                let agg = pod * half + a;
                for m in 0..half {
                    let core = a * half + m;
                    agg_up[agg].push(mk_link(world, cores[core], LinkClass::AggUp, &cfg));
                    core_down[core][pod] = mk_link(world, aggs[agg], LinkClass::CoreDown, &cfg);
                }
            }
        }

        // Install switches with their port vectors.
        for pod in 0..k {
            for t in 0..half {
                let tor = pod * half + t;
                let mut ports = tor_down[tor].clone();
                ports.extend(tor_up[tor].iter().copied());
                world.install(
                    tors[tor],
                    Switch::new(
                        ports,
                        Box::new(TorRouter::new(ix, n_hosts, pod, t, cfg.route_mode)),
                    ),
                );
            }
            for a in 0..half {
                let agg = pod * half + a;
                let mut ports = agg_down[agg].clone();
                ports.extend(agg_up[agg].iter().copied());
                world.install(
                    aggs[agg],
                    Switch::new(
                        ports,
                        Box::new(AggRouter::new(ix, n_hosts, pod, cfg.route_mode)),
                    ),
                );
            }
        }
        for c in 0..n_cores {
            world.install(
                cores[c],
                Switch::new(
                    core_down[c].clone(),
                    Box::new(TableRouter::new(n_hosts, |d| ix.pod_of(d as HostId))),
                ),
            );
        }

        // Install hosts.
        for h in 0..n_hosts {
            let host = Host::new(h as HostId, host_nic[h], cfg.link_speed, cfg.mtu)
                .with_latency(cfg.host_latency.clone());
            world.install(hosts[h], host);
        }

        let ft = FatTree {
            cfg,
            hosts,
            host_nic,
            tors,
            aggs,
            cores,
            tor_down,
            tor_up,
            agg_down,
            agg_up,
            core_down,
        };
        ft.finish_wiring(world);
        ft
    }

    /// Post-install wiring: RTS bounce targets and PFC upstream lists.
    fn finish_wiring(&self, world: &mut World<Packet>) {
        let k = self.cfg.k;
        let half = k / 2;
        let hpt = self.cfg.hosts_per_tor;
        if self.cfg.fabric.is_ndp() && self.cfg.rts {
            for tor in 0..self.tors.len() {
                for &q in self.tor_down[tor].iter().chain(self.tor_up[tor].iter()) {
                    world.get_mut::<Queue>(q).set_bounce_to(self.tors[tor]);
                }
            }
            for agg in 0..self.aggs.len() {
                for &q in self.agg_down[agg].iter().chain(self.agg_up[agg].iter()) {
                    world.get_mut::<Queue>(q).set_bounce_to(self.aggs[agg]);
                }
            }
            for c in 0..self.cores.len() {
                for &q in &self.core_down[c] {
                    world.get_mut::<Queue>(q).set_bounce_to(self.cores[c]);
                }
            }
        }
        if self.cfg.fabric.is_lossless() {
            // Feeders of each switch pause when any of its egress queues
            // crosses Xoff (egress-queue PFC approximation, DESIGN.md §2).
            for tor in 0..self.tors.len() {
                let pod = tor / half;
                let t = tor % half;
                let mut feeders: Vec<ComponentId> =
                    (0..hpt).map(|i| self.host_nic[tor * hpt + i]).collect();
                for a in 0..half {
                    feeders.push(self.agg_down[pod * half + a][t]);
                }
                for &q in self.tor_down[tor].iter().chain(self.tor_up[tor].iter()) {
                    world.get_mut::<Queue>(q).set_upstreams(feeders.clone());
                }
            }
            for agg in 0..self.aggs.len() {
                let pod = agg / half;
                let a = agg % half;
                let mut feeders: Vec<ComponentId> =
                    (0..half).map(|t| self.tor_up[pod * half + t][a]).collect();
                for m in 0..half {
                    feeders.push(self.core_down[a * half + m][pod]);
                }
                for &q in self.agg_down[agg].iter().chain(self.agg_up[agg].iter()) {
                    world.get_mut::<Queue>(q).set_upstreams(feeders.clone());
                }
            }
            for c in 0..self.cores.len() {
                let a = c / half;
                let m = c % half;
                let feeders: Vec<ComponentId> =
                    (0..k).map(|pod| self.agg_up[pod * half + a][m]).collect();
                for &q in &self.core_down[c] {
                    world.get_mut::<Queue>(q).set_upstreams(feeders.clone());
                }
            }
        }
    }

    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of distinct sender-selectable paths between two hosts.
    pub fn n_paths(&self, src: HostId, dst: HostId) -> u32 {
        let half = self.cfg.k / 2;
        let ix = FtIndex {
            half,
            hpt: self.cfg.hosts_per_tor,
        };
        if ix.pod_of(src) == ix.pod_of(dst) {
            if ix.tor_in_pod_of(src) == ix.tor_in_pod_of(dst) {
                1
            } else {
                half as u32
            }
        } else {
            (half * half) as u32
        }
    }

    /// Number of links a packet crosses from `src` to `dst`: 2 under the
    /// same ToR (NIC + ToR-down), 4 within a pod, 6 across pods. The
    /// unloaded-latency lower bound behind FCT-slowdown reporting.
    pub fn n_hops(&self, src: HostId, dst: HostId) -> u32 {
        let ix = FtIndex {
            half: self.cfg.k / 2,
            hpt: self.cfg.hosts_per_tor,
        };
        if ix.pod_of(src) != ix.pod_of(dst) {
            6
        } else if ix.tor_in_pod_of(src) != ix.tor_in_pod_of(dst) {
            4
        } else {
            2
        }
    }

    /// Degrade the bidirectional link between agg `a` (in-pod index) of
    /// `pod` and its `m`-th core to `speed` (Figure 22's failure) — a
    /// convenience wrapper over [`Topology::set_link_speed`] for the
    /// fabric's own index arithmetic.
    pub fn degrade_core_link(
        &self,
        world: &mut World<Packet>,
        pod: usize,
        a: usize,
        m: usize,
        speed: Speed,
    ) {
        let half = self.cfg.k / 2;
        let agg = pod * half + a;
        let core = a * half + m;
        self.set_link_speed(world, self.agg_up[agg][m], speed);
        self.set_link_speed(world, self.core_down[core][pod], speed);
    }
}

impl Topology for FatTree {
    fn label(&self) -> &'static str {
        "fattree"
    }

    fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    fn host(&self, h: HostId) -> ComponentId {
        self.hosts[h as usize]
    }

    fn host_nic(&self, h: HostId) -> ComponentId {
        self.host_nic[h as usize]
    }

    fn mtu(&self) -> u32 {
        self.cfg.mtu
    }

    fn host_link_speed(&self) -> Speed {
        self.cfg.link_speed
    }

    fn n_paths(&self, src: HostId, dst: HostId) -> u32 {
        FatTree::n_paths(self, src, dst)
    }

    fn n_hops(&self, src: HostId, dst: HostId) -> u32 {
        FatTree::n_hops(self, src, dst)
    }

    fn path_profile(&self, src: HostId, dst: HostId) -> Vec<Hop> {
        vec![
            Hop {
                speed: self.cfg.link_speed,
                delay: self.cfg.link_delay,
            };
            FatTree::n_hops(self, src, dst) as usize
        ]
    }

    fn links(&self) -> Vec<LinkRef> {
        let mut out = Vec::new();
        push_links_1d(&mut out, "host_nic", LinkClass::HostNic, &self.host_nic);
        push_links_2d(&mut out, "tor_down", LinkClass::TorDown, &self.tor_down);
        push_links_2d(&mut out, "tor_up", LinkClass::TorUp, &self.tor_up);
        push_links_2d(&mut out, "agg_down", LinkClass::AggDown, &self.agg_down);
        push_links_2d(&mut out, "agg_up", LinkClass::AggUp, &self.agg_up);
        push_links_2d(&mut out, "core_down", LinkClass::CoreDown, &self.core_down);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_counts_match_paper_topologies() {
        assert_eq!(FatTreeCfg::new(8).n_hosts(), 128);
        assert_eq!(FatTreeCfg::new(12).n_hosts(), 432);
        assert_eq!(FatTreeCfg::new(32).n_hosts(), 8192);
        // Oversubscribed Fig-23 variant.
        assert_eq!(FatTreeCfg::new(8).with_hosts_per_tor(16).n_hosts(), 512);
    }

    #[test]
    fn index_math() {
        let ix = FtIndex { half: 4, hpt: 4 }; // k=8
                                              // Host 0: pod 0, tor 0, idx 0; host 17: pod 1, tor 0, idx 1.
        assert_eq!(ix.pod_of(0), 0);
        assert_eq!(ix.pod_of(17), 1);
        assert_eq!(ix.tor_in_pod_of(17), 0);
        assert_eq!(ix.idx_in_tor(17), 1);
        assert_eq!(ix.tor_in_pod_of(13), 3);
    }

    #[test]
    fn path_counts() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        // k=4: 16 hosts, 2 per tor.
        assert_eq!(ft.n_hosts(), 16);
        assert_eq!(ft.n_paths(0, 1), 1); // same ToR
        assert_eq!(ft.n_paths(0, 2), 2); // same pod, different ToR
        assert_eq!(ft.n_paths(0, 5), 4); // different pod
    }

    #[test]
    fn hop_counts() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        assert_eq!(ft.n_hops(0, 1), 2); // same ToR
        assert_eq!(ft.n_hops(0, 2), 4); // same pod, different ToR
        assert_eq!(ft.n_hops(0, 5), 6); // different pod
                                        // Consistent with the measured one-way latency test below:
                                        // host 0 -> 15 crosses 6 links.
        assert_eq!(ft.n_hops(0, 15), 6);
    }

    #[test]
    fn component_counts() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        assert_eq!(ft.tors.len(), 8);
        assert_eq!(ft.aggs.len(), 8);
        assert_eq!(ft.cores.len(), 4);
        assert_eq!(ft.host_nic.len(), 16);
        // Every reserved slot must be installed (no vacated components).
        for id in w.ids() {
            // get() panics on vacated slots; try all known types.
            let ok = w.try_get::<Host>(id).is_some()
                || w.try_get::<Switch>(id).is_some()
                || w.try_get::<Queue>(id).is_some()
                || w.try_get::<Pipe>(id).is_some();
            assert!(ok, "component {id} not installed");
        }
    }

    /// A raw packet injected at a host NIC reaches the right destination
    /// host across every tier, for every path tag.
    #[test]
    fn any_path_tag_reaches_destination() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        let src: HostId = 0;
        for dst in [1u32, 2, 3, 5, 12, 15] {
            for tag in 0..ft.n_paths(src, dst) {
                let pkt = Packet::data(src, dst, 1000 + dst as u64 * 100 + tag as u64, 0, 9000)
                    .with_path(tag);
                w.post(w.now(), ft.host_nic[0], pkt);
            }
        }
        w.run_until_idle();
        // All packets must arrive at their hosts (they land in
        // unknown_flow_drops since no endpoints are registered — that
        // counter doubles as a delivery proof).
        let mut total = 0;
        for dst in [1usize, 2, 3, 5, 12, 15] {
            let h = w.get::<Host>(ft.hosts[dst]);
            let expect = ft.n_paths(src, dst as HostId) as u64;
            assert_eq!(
                h.stats().unknown_flow_drops + h.stats().timewait_rejects,
                expect,
                "host {dst} deliveries"
            );
            total += expect;
        }
        assert_eq!(total, 1 + 2 + 2 + 4 + 4 + 4);
    }

    /// Distinct inter-pod tags traverse distinct cores: with all 4 tags in
    /// a k=4 tree, each core must see exactly one packet.
    #[test]
    fn tags_spread_over_cores() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        for tag in 0..4 {
            let pkt = Packet::data(0, 15, tag as u64, 0, 9000).with_path(tag);
            w.post(Time::ZERO, ft.host_nic[0], pkt);
        }
        w.run_until_idle();
        for c in 0..4 {
            assert_eq!(w.get::<Switch>(ft.cores[c]).rx_pkts, 1, "core {c}");
        }
    }

    #[test]
    fn one_way_latency_is_serialization_plus_propagation() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        // Host 0 -> host 15 crosses 6 links: nic, tor-up, agg-up, core-down,
        // agg-down, tor-down. 9 KB at 10 Gb/s = 7.2 us per hop
        // (store-and-forward), 1 us propagation per link.
        let pkt = Packet::data(0, 15, 7, 0, 9000).with_path(0);
        w.post(Time::ZERO, ft.host_nic[0], pkt);
        w.run_until_idle();
        let expect = Time::from_ns(6 * 7_200) + Time::from_us(6);
        assert_eq!(w.now(), expect);
    }

    #[test]
    fn degrade_core_link_slows_it() {
        let mut w: World<Packet> = World::new(1);
        let ft = FatTree::build(&mut w, FatTreeCfg::new(4));
        ft.degrade_core_link(&mut w, 0, 0, 0, Speed::gbps(1));
        // Tag 0 = agg 0, core uplink 0 — the degraded link.
        let pkt = Packet::data(0, 15, 7, 0, 9000).with_path(0);
        w.post(Time::ZERO, ft.host_nic[0], pkt);
        w.run_until_idle();
        // One hop now takes 72 us instead of 7.2.
        let expect = Time::from_ns(5 * 7_200) + Time::from_us(72) + Time::from_us(6);
        assert_eq!(w.now(), expect);
    }

    #[test]
    fn random_uplinks_mode_spreads_traffic() {
        let mut w: World<Packet> = World::new(42);
        let cfg = FatTreeCfg::new(4).with_route_mode(RouteMode::RandomUplinks);
        let ft = FatTree::build(&mut w, cfg);
        for i in 0..400 {
            let pkt = Packet::data(0, 15, i, 0, 1500);
            w.post(Time::from_us(i * 2), ft.host_nic[0], pkt);
        }
        w.run_until_idle();
        for c in 0..4 {
            let n = w.get::<Switch>(ft.cores[c]).rx_pkts;
            assert!(n > 50, "core {c} starved: {n}");
        }
    }
}
