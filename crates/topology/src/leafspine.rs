//! Two-tier leaf-spine fabric with an explicit oversubscription knob —
//! the rack-scale network shape FatPaths/PL2-style evaluations demand
//! alongside three-tier FatTrees.
//!
//! Unlike the fixed-shape testbed replica in [`crate::TwoTier`], every
//! dimension is configurable: leaf (ToR) count, hosts per leaf, spine
//! count, and — the distinguishing knob — a **separate uplink speed**, so
//! a 4:1 oversubscribed fabric can be expressed either by scarce spines
//! (few uplinks at host speed) or by slow uplinks (one per spine at a
//! quarter rate). [`LeafSpineCfg::oversub_ratio`] reports the resulting
//! ratio, and the topology's [`Topology::path_profile`] charges uplink
//! crossings at the uplink speed, so `ideal_fct` stays an honest lower
//! bound on oversubscribed paths.
//!
//! Path tags work exactly as everywhere else in the crate: cross-rack
//! tag `t` selects spine `t % n_spines`; same-rack pairs have one path.

use ndp_net::host::{Host, HostLatency};
use ndp_net::packet::{HostId, Packet};
use ndp_net::pipe::Pipe;
use ndp_net::queue::{LinkClass, Queue};
use ndp_net::switch::Switch;
use ndp_sim::{ComponentId, Speed, Time, World};

use crate::routes::{LeafRouter, TableRouter};

use crate::spec::QueueSpec;
use crate::topology::{push_links_1d, push_links_2d, Hop, LinkRef, Topology};

/// Configuration for [`LeafSpine::build`].
#[derive(Clone, Debug)]
pub struct LeafSpineCfg {
    pub n_tors: usize,
    pub hosts_per_tor: usize,
    pub n_spines: usize,
    /// Host access-link speed.
    pub host_speed: Speed,
    /// ToR↔spine link speed; below `host_speed` this oversubscribes the
    /// fabric even with plentiful spines.
    pub uplink_speed: Speed,
    /// One-way propagation delay of every link.
    pub link_delay: Time,
    pub mtu: u32,
    pub fabric: QueueSpec,
    /// Return-to-sender on header-queue overflow (NDP only).
    pub rts: bool,
    pub host_latency: HostLatency,
    /// Fold wire propagation into each queue's TX-done post (see
    /// [`crate::fattree::FatTreeCfg::fused`]).
    pub fused: bool,
}

impl LeafSpineCfg {
    /// Paper-style defaults: 10 Gb/s everywhere, 1 us links, 9 KB
    /// jumbograms, NDP switches, RTS enabled.
    pub fn new(n_tors: usize, hosts_per_tor: usize, n_spines: usize) -> LeafSpineCfg {
        assert!(n_tors >= 1 && hosts_per_tor >= 1 && n_spines >= 1);
        LeafSpineCfg {
            n_tors,
            hosts_per_tor,
            n_spines,
            host_speed: Speed::gbps(10),
            uplink_speed: Speed::gbps(10),
            link_delay: Time::from_us(1),
            mtu: 9000,
            fabric: QueueSpec::ndp_default(),
            rts: true,
            host_latency: HostLatency::default(),
            fused: true,
        }
    }

    pub fn with_fabric(mut self, fabric: QueueSpec) -> LeafSpineCfg {
        self.fabric = fabric;
        self
    }

    /// Wire explicit `Pipe` components instead of fused hops.
    pub fn unfused(mut self) -> LeafSpineCfg {
        self.fused = false;
        self
    }

    pub fn with_uplink_speed(mut self, s: Speed) -> LeafSpineCfg {
        self.uplink_speed = s;
        self
    }

    pub fn with_mtu(mut self, mtu: u32) -> LeafSpineCfg {
        self.mtu = mtu;
        self
    }

    pub fn n_hosts(&self) -> usize {
        self.n_tors * self.hosts_per_tor
    }

    /// ToR oversubscription ratio: downlink capacity over uplink capacity
    /// (1.0 = full bisection, 4.0 = the paper's Figure-23 regime).
    pub fn oversub_ratio(&self) -> f64 {
        (self.hosts_per_tor as f64 * self.host_speed.as_bps() as f64)
            / (self.n_spines as f64 * self.uplink_speed.as_bps() as f64)
    }
}

/// A built leaf-spine fabric: component ids for hosts, switches and every
/// queue, plus the config that shaped them.
pub struct LeafSpine {
    pub cfg: LeafSpineCfg,
    pub hosts: Vec<ComponentId>,
    pub host_nic: Vec<ComponentId>,
    pub tors: Vec<ComponentId>,
    pub spines: Vec<ComponentId>,
    /// `tor_down[tor][i]`: queue from ToR to its i-th host.
    pub tor_down: Vec<Vec<ComponentId>>,
    /// `tor_up[tor][s]`: queue from ToR to spine `s`.
    pub tor_up: Vec<Vec<ComponentId>>,
    /// `spine_down[s][tor]`: queue from spine `s` to `tor`.
    pub spine_down: Vec<Vec<ComponentId>>,
}

impl LeafSpine {
    /// Wire a leaf-spine fabric into `world`.
    pub fn build(world: &mut World<Packet>, cfg: LeafSpineCfg) -> LeafSpine {
        let n_hosts = cfg.n_hosts();
        let hpt = cfg.hosts_per_tor;
        let hosts: Vec<ComponentId> = (0..n_hosts).map(|_| world.reserve()).collect();
        let tors: Vec<ComponentId> = (0..cfg.n_tors).map(|_| world.reserve()).collect();
        let spines: Vec<ComponentId> = (0..cfg.n_spines).map(|_| world.reserve()).collect();

        let mk = |world: &mut World<Packet>,
                  to: ComponentId,
                  class: LinkClass,
                  speed: Speed,
                  cfg: &LeafSpineCfg| {
            let policy = if class == LinkClass::HostNic {
                cfg.fabric.build_host_nic(cfg.mtu)
            } else {
                cfg.fabric.build(cfg.mtu)
            };
            if cfg.fused {
                world.add(Queue::fused(speed, to, cfg.link_delay, class, policy))
            } else {
                let pipe = world.add(Pipe::new(cfg.link_delay, to));
                world.add(Queue::new(speed, pipe, class, policy))
            }
        };

        let mut host_nic = Vec::with_capacity(n_hosts);
        let mut tor_down = vec![Vec::with_capacity(hpt); cfg.n_tors];
        let mut tor_up = vec![Vec::with_capacity(cfg.n_spines); cfg.n_tors];
        let mut spine_down = vec![Vec::with_capacity(cfg.n_tors); cfg.n_spines];
        for (h, &host) in hosts.iter().enumerate() {
            let tor = h / hpt;
            host_nic.push(mk(
                world,
                tors[tor],
                LinkClass::HostNic,
                cfg.host_speed,
                &cfg,
            ));
            tor_down[tor].push(mk(world, host, LinkClass::TorDown, cfg.host_speed, &cfg));
        }
        for up in tor_up.iter_mut() {
            for &spine in &spines {
                up.push(mk(world, spine, LinkClass::TorUp, cfg.uplink_speed, &cfg));
            }
        }
        for down in spine_down.iter_mut() {
            for &tor in &tors {
                down.push(mk(world, tor, LinkClass::AggDown, cfg.uplink_speed, &cfg));
            }
        }

        for tor in 0..cfg.n_tors {
            let mut ports = tor_down[tor].clone();
            ports.extend(tor_up[tor].iter().copied());
            world.install(
                tors[tor],
                Switch::new(
                    ports,
                    Box::new(LeafRouter::new(n_hosts, hpt, tor, cfg.n_spines)),
                ),
            );
        }
        for s in 0..cfg.n_spines {
            world.install(
                spines[s],
                Switch::new(
                    spine_down[s].clone(),
                    Box::new(TableRouter::new(n_hosts, |d| d / hpt)),
                ),
            );
        }
        for h in 0..n_hosts {
            world.install(
                hosts[h],
                Host::new(h as HostId, host_nic[h], cfg.host_speed, cfg.mtu)
                    .with_latency(cfg.host_latency.clone()),
            );
        }

        let ls = LeafSpine {
            cfg,
            hosts,
            host_nic,
            tors,
            spines,
            tor_down,
            tor_up,
            spine_down,
        };
        ls.finish_wiring(world);
        ls
    }

    /// Post-install wiring: RTS bounce targets and PFC upstream lists.
    fn finish_wiring(&self, world: &mut World<Packet>) {
        if self.cfg.fabric.is_ndp() && self.cfg.rts {
            for tor in 0..self.tors.len() {
                for &q in self.tor_down[tor].iter().chain(self.tor_up[tor].iter()) {
                    world.get_mut::<Queue>(q).set_bounce_to(self.tors[tor]);
                }
            }
            for s in 0..self.spines.len() {
                for &q in &self.spine_down[s] {
                    world.get_mut::<Queue>(q).set_bounce_to(self.spines[s]);
                }
            }
        }
        if self.cfg.fabric.is_lossless() {
            let hpt = self.cfg.hosts_per_tor;
            for tor in 0..self.tors.len() {
                let mut feeders: Vec<ComponentId> =
                    (0..hpt).map(|i| self.host_nic[tor * hpt + i]).collect();
                for s in 0..self.spines.len() {
                    feeders.push(self.spine_down[s][tor]);
                }
                for &q in self.tor_down[tor].iter().chain(self.tor_up[tor].iter()) {
                    world.get_mut::<Queue>(q).set_upstreams(feeders.clone());
                }
            }
            for s in 0..self.spines.len() {
                let feeders: Vec<ComponentId> =
                    (0..self.tors.len()).map(|t| self.tor_up[t][s]).collect();
                for &q in &self.spine_down[s] {
                    world.get_mut::<Queue>(q).set_upstreams(feeders.clone());
                }
            }
        }
    }

    fn same_rack(&self, a: HostId, b: HostId) -> bool {
        let hpt = self.cfg.hosts_per_tor as u32;
        a / hpt == b / hpt
    }
}

impl Topology for LeafSpine {
    fn label(&self) -> &'static str {
        "leafspine"
    }

    fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    fn host(&self, h: HostId) -> ComponentId {
        self.hosts[h as usize]
    }

    fn host_nic(&self, h: HostId) -> ComponentId {
        self.host_nic[h as usize]
    }

    fn mtu(&self) -> u32 {
        self.cfg.mtu
    }

    fn host_link_speed(&self) -> Speed {
        self.cfg.host_speed
    }

    fn n_paths(&self, src: HostId, dst: HostId) -> u32 {
        if self.same_rack(src, dst) {
            1
        } else {
            self.cfg.n_spines as u32
        }
    }

    fn path_profile(&self, src: HostId, dst: HostId) -> Vec<Hop> {
        let access = Hop {
            speed: self.cfg.host_speed,
            delay: self.cfg.link_delay,
        };
        let uplink = Hop {
            speed: self.cfg.uplink_speed,
            delay: self.cfg.link_delay,
        };
        if self.same_rack(src, dst) {
            vec![access, access]
        } else {
            vec![access, uplink, uplink, access]
        }
    }

    fn bulk_speed(&self, src: HostId, dst: HostId) -> Speed {
        if self.same_rack(src, dst) {
            self.cfg.host_speed
        } else {
            // Min cut: the access links, or the whole spine tier — a
            // multipath sender sprays over every uplink in parallel, so
            // four 5 Gb/s spines sustain 10 Gb/s for one host pair.
            let spine_cut = Speed::bps(
                self.cfg
                    .uplink_speed
                    .as_bps()
                    .saturating_mul(self.cfg.n_spines as u64),
            );
            self.cfg.host_speed.min(spine_cut)
        }
    }

    fn links(&self) -> Vec<LinkRef> {
        let mut out = Vec::new();
        push_links_1d(&mut out, "host_nic", LinkClass::HostNic, &self.host_nic);
        push_links_2d(&mut out, "tor_down", LinkClass::TorDown, &self.tor_down);
        push_links_2d(&mut out, "tor_up", LinkClass::TorUp, &self.tor_up);
        push_links_2d(&mut out, "spine_down", LinkClass::AggDown, &self.spine_down);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_sim::Time;

    #[test]
    fn shape_and_oversub_math() {
        let full = LeafSpineCfg::new(8, 4, 4);
        assert_eq!(full.n_hosts(), 32);
        assert!((full.oversub_ratio() - 1.0).abs() < 1e-9);
        // 4:1 via slow uplinks: 8 hosts at 10G over 4 spines at 5G.
        let over = LeafSpineCfg::new(4, 8, 4).with_uplink_speed(Speed::gbps(5));
        assert!((over.oversub_ratio() - 4.0).abs() < 1e-9);
        // 4:1 via scarce spines.
        let scarce = LeafSpineCfg::new(4, 8, 2);
        assert!((scarce.oversub_ratio() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn paths_hops_and_links() {
        let mut w: World<Packet> = World::new(1);
        let ls = LeafSpine::build(&mut w, LeafSpineCfg::new(4, 2, 3));
        assert_eq!(ls.n_paths(0, 1), 1); // same rack
        assert_eq!(ls.n_paths(0, 2), 3); // cross rack: one per spine
        assert_eq!(ls.n_hops(0, 1), 2);
        assert_eq!(ls.n_hops(0, 2), 4);
        // host_nic (8) + tor_down (8) + tor_up (4*3) + spine_down (3*4)
        assert_eq!(ls.links().len(), 8 + 8 + 12 + 12);
    }

    #[test]
    fn every_tag_reaches_destination_across_spines() {
        let mut w: World<Packet> = World::new(1);
        let ls = LeafSpine::build(&mut w, LeafSpineCfg::new(4, 2, 3));
        for tag in 0..ls.n_paths(0, 7) {
            let pkt = Packet::data(0, 7, 100 + tag as u64, 0, 9000).with_path(tag);
            w.post(Time::ZERO, ls.host_nic[0], pkt);
        }
        w.run_until_idle();
        let h = w.get::<Host>(ls.hosts[7]);
        assert_eq!(h.stats().unknown_flow_drops, 3);
        // Each spine saw exactly one packet.
        for s in 0..3 {
            assert_eq!(w.get::<Switch>(ls.spines[s]).rx_pkts, 1, "spine {s}");
        }
    }

    #[test]
    fn slow_uplinks_slow_the_wire_and_the_bound() {
        let cfg = LeafSpineCfg::new(2, 2, 1).with_uplink_speed(Speed::gbps(1));
        let mut w: World<Packet> = World::new(1);
        let ls = LeafSpine::build(&mut w, cfg);
        let pkt = Packet::data(0, 3, 7, 0, 9000).with_path(0);
        w.post(Time::ZERO, ls.host_nic[0], pkt);
        w.run_until_idle();
        // nic (7.2us @10G) + 2 uplink crossings (72us @1G each) +
        // tor_down (7.2us @10G) + 4us propagation.
        let expect = Time::from_ns(2 * 7_200) + Time::from_us(2 * 72) + Time::from_us(4);
        assert_eq!(w.now(), expect);
        // The one-way wire latency of a single full packet IS the ideal
        // FCT of a one-packet flow: the bound is tight and honest.
        let bytes = (9000 - ndp_net::packet::HEADER_BYTES) as u64;
        assert_eq!(ls.ideal_fct(0, 3, bytes), expect);
    }
}
