//! Topology builders: k-ary FatTrees, leaf-spine fabrics with an
//! oversubscription knob, two-tier testbed replicas, back-to-back host
//! pairs and single-bottleneck setups — all behind one object-safe
//! [`Topology`] trait (host/path arithmetic, ideal-FCT lower bounds, link
//! enumeration, runtime failure injection) so experiment harnesses never
//! name a concrete fabric.
//!
//! The central trick (DESIGN.md §5): in a folded Clos the complete path
//! between two hosts is determined by the uplink choices made on the way
//! up, so a single integer *path tag* chosen by the sender fully encodes a
//! source route. Switches map the tag to an output port arithmetically —
//! no routing tables, no per-packet route vectors.
//!
//! Every builder wires real [`ndp_net`] components into a
//! [`ndp_sim::World`]: per-direction egress queues, propagation pipes, and
//! switch components, and returns a handle with the component ids needed
//! by experiments (hosts for endpoint registration, queues for statistics
//! harvesting and failure injection).

pub mod chaos;
pub mod fattree;
pub mod leafspine;
mod routes;
pub mod small;
pub mod spec;
pub mod topology;

pub use chaos::{
    link_index, poisson_campaign, CampaignCfg, ChaosController, ChaosTally, FabricEvent, FabricOp,
};
pub use fattree::{FatTree, FatTreeCfg, RouteMode};
pub use leafspine::{LeafSpine, LeafSpineCfg};
pub use small::{BackToBack, SingleBottleneck, TwoTier, TwoTierCfg};
pub use spec::QueueSpec;
pub use topology::{ideal_fct_over, mask_link, Hop, LinkRef, Topology};
