//! Topology builders: k-ary FatTrees, two-tier testbed replicas,
//! back-to-back host pairs and single-bottleneck setups.
//!
//! The central trick (DESIGN.md §5): in a folded Clos the complete path
//! between two hosts is determined by the uplink choices made on the way
//! up, so a single integer *path tag* chosen by the sender fully encodes a
//! source route. Switches map the tag to an output port arithmetically —
//! no routing tables, no per-packet route vectors.
//!
//! Every builder wires real [`ndp_net`] components into a
//! [`ndp_sim::World`]: per-direction egress queues, propagation pipes, and
//! switch components, and returns a handle with the component ids needed
//! by experiments (hosts for endpoint registration, queues for statistics
//! harvesting and failure injection).

pub mod fattree;
pub mod small;
pub mod spec;

pub use fattree::{FatTree, FatTreeCfg, RouteMode};
pub use small::{BackToBack, SingleBottleneck, TwoTier, TwoTierCfg};
pub use spec::QueueSpec;
