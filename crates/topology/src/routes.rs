//! Precomputed forwarding tables for the per-packet routing hot path.
//!
//! Every switch dispatch calls `Router::route` once, and the arithmetic
//! routers spend that call on runtime integer divisions (`dst / hpt`,
//! `dst % hpt`, `tag % n_spines`) — each a ~30-cycle instruction on the
//! hottest path in the simulator. The fabric is static, so the whole
//! dst → port decision can be tabulated once at build time: routing then
//! costs one L1 load for local deliveries plus one more for the tag →
//! uplink map. Tables are u16 (ports and tags are tiny) and sized by host
//! count, a few hundred bytes per switch even at paper scale.

use ndp_net::packet::Packet;
use ndp_net::switch::Router;
use rand::rngs::SmallRng;

/// Table marker for "not attached here: take an uplink".
pub(crate) const NONLOCAL: u16 = u16::MAX;

/// Guard: ports, pod ids and host counts must stay clear of the markers.
pub(crate) fn check_table_range(n: usize) {
    assert!(n < NONLOCAL as usize - 1, "fabric too large for u16 tables");
}

/// The live-reroute primitive shared by every uplink-bearing router: scan
/// the uplink port range `[lo, lo + n)` starting just past the dead choice
/// and wrapping, and return the first live port. Deterministic (no RNG) and
/// only called while some port is actually masked. Uplinks in all our tree
/// fabrics are interchangeable for delivery — down-routing above this tier
/// is purely destination-based — so any live substitute still reaches the
/// destination; only the path tag's spreading is bent around the dead link.
/// Returns `None` when `chosen` is not an uplink (a dead downlink has no
/// equivalent: the packet keeps heading for the dead queue, which drops or
/// bounces it) or when every uplink is down.
pub(crate) fn next_live_uplink(chosen: usize, lo: usize, n: usize, up: &[bool]) -> Option<usize> {
    if chosen < lo || chosen >= lo + n {
        return None;
    }
    (1..n).map(|i| lo + (chosen - lo + i) % n).find(|&p| up[p])
}

/// Leaf (ToR) router of a two-tier fabric: hosts `[tor*hpt, (tor+1)*hpt)`
/// map to their downlink port, everything else takes uplink
/// `hpt + tag % n_spines`.
pub(crate) struct LeafRouter {
    /// dst → downlink port, or [`NONLOCAL`].
    table: Vec<u16>,
    /// path tag → uplink port, covering the fabric's tag space
    /// `[0, n_spines)`; larger tags fall back to the modulo.
    up: Vec<u16>,
    hpt: usize,
    n_spines: usize,
}

impl LeafRouter {
    pub(crate) fn new(n_hosts: usize, hpt: usize, tor: usize, n_spines: usize) -> LeafRouter {
        check_table_range(n_hosts);
        check_table_range(hpt + n_spines);
        let table = (0..n_hosts)
            .map(|d| {
                if d / hpt == tor {
                    (d % hpt) as u16
                } else {
                    NONLOCAL
                }
            })
            .collect();
        let up = (0..n_spines).map(|t| (hpt + t) as u16).collect();
        LeafRouter {
            table,
            up,
            hpt,
            n_spines,
        }
    }
}

impl Router for LeafRouter {
    fn route(&self, pkt: &Packet, _rng: &mut SmallRng) -> usize {
        let e = self.table[pkt.dst as usize];
        if e != NONLOCAL {
            return e as usize;
        }
        let tag = pkt.path as usize;
        match self.up.get(tag) {
            Some(&port) => port as usize,
            None => self.hpt + tag % self.n_spines,
        }
    }

    fn reroute(&self, _pkt: &Packet, chosen: usize, up: &[bool]) -> Option<usize> {
        next_live_uplink(chosen, self.hpt, self.n_spines, up)
    }
}

/// A router whose whole decision is a function of the destination —
/// spine/core tiers, where the port is `dst`'s pod or ToR.
pub(crate) struct TableRouter {
    table: Vec<u16>,
}

impl TableRouter {
    pub(crate) fn new(n_hosts: usize, port_of: impl Fn(usize) -> usize) -> TableRouter {
        check_table_range(n_hosts);
        let table = (0..n_hosts)
            .map(|d| {
                let p = port_of(d);
                check_table_range(p);
                p as u16
            })
            .collect();
        TableRouter { table }
    }
}

impl Router for TableRouter {
    fn route(&self, pkt: &Packet, _rng: &mut SmallRng) -> usize {
        self.table[pkt.dst as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_net::packet::{HostId, Packet};
    use rand::SeedableRng;

    fn pkt(dst: HostId, path: u32) -> Packet {
        let mut p = Packet::data(0, dst, 1, 0, 1000);
        p.path = path;
        p
    }

    #[test]
    fn leaf_router_matches_arithmetic_form() {
        let (n_hosts, hpt, n_spines) = (24, 4, 3);
        let mut rng = SmallRng::seed_from_u64(1);
        for tor in 0..n_hosts / hpt {
            let r = LeafRouter::new(n_hosts, hpt, tor, n_spines);
            for dst in 0..n_hosts {
                for tag in 0..2 * n_spines as u32 {
                    let want = if dst / hpt == tor {
                        dst % hpt
                    } else {
                        hpt + tag as usize % n_spines
                    };
                    assert_eq!(r.route(&pkt(dst as HostId, tag), &mut rng), want);
                }
            }
        }
    }

    #[test]
    fn leaf_reroute_skips_dead_uplinks_and_leaves_downlinks_alone() {
        let r = LeafRouter::new(24, 4, 0, 3); // ports: 0..4 down, 4..7 up
        let mut up = vec![true; 7];
        up[5] = false;
        assert_eq!(r.reroute(&pkt(9, 1), 5, &up), Some(6), "next uplink");
        up[6] = false;
        assert_eq!(r.reroute(&pkt(9, 1), 5, &up), Some(4), "wraps around");
        up[4] = false;
        assert_eq!(r.reroute(&pkt(9, 1), 5, &up), None, "all uplinks dead");
        assert_eq!(
            r.reroute(&pkt(1, 0), 1, &[true; 7]),
            None,
            "downlinks have no equivalent"
        );
    }

    #[test]
    fn table_router_is_the_tabulated_function() {
        let r = TableRouter::new(12, |d| d / 4);
        let mut rng = SmallRng::seed_from_u64(1);
        for dst in 0..12 {
            assert_eq!(r.route(&pkt(dst as HostId, 0), &mut rng), dst / 4);
        }
    }
}
