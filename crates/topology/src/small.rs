//! Small topologies: back-to-back host pairs (Figures 8/11/12), the
//! eight-host two-tier NetFPGA testbed replica (Figure 9), the six-host
//! sender-limited setup (Figure 21) and a single-bottleneck funnel
//! (Figure 2).

use ndp_net::host::{Host, HostLatency};
use ndp_net::packet::{HostId, Packet};
use ndp_net::pipe::Pipe;
use ndp_net::queue::{LinkClass, Queue};
use ndp_net::switch::{Router, Switch};
use ndp_sim::{ComponentId, Speed, Time, World};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::routes::{LeafRouter, TableRouter};
use crate::spec::QueueSpec;
use crate::topology::{push_links_1d, push_links_2d, Hop, LinkRef, Topology};

/// Two hosts wired NIC-to-NIC (the paper's §5.1/§6 calibration setup).
pub struct BackToBack {
    pub hosts: [ComponentId; 2],
    pub host_nic: [ComponentId; 2],
    pub link_speed: Speed,
    pub link_delay: Time,
    pub mtu: u32,
}

impl BackToBack {
    pub fn build(
        world: &mut World<Packet>,
        link_speed: Speed,
        link_delay: Time,
        mtu: u32,
        fabric: QueueSpec,
        latency: HostLatency,
    ) -> BackToBack {
        Self::build_wired(world, link_speed, link_delay, mtu, fabric, latency, true)
    }

    /// [`BackToBack::build`] with explicit `Pipe` components instead of
    /// fused hops (A/B comparisons against the seed's event schedule).
    pub fn build_unfused(
        world: &mut World<Packet>,
        link_speed: Speed,
        link_delay: Time,
        mtu: u32,
        fabric: QueueSpec,
        latency: HostLatency,
    ) -> BackToBack {
        Self::build_wired(world, link_speed, link_delay, mtu, fabric, latency, false)
    }

    fn build_wired(
        world: &mut World<Packet>,
        link_speed: Speed,
        link_delay: Time,
        mtu: u32,
        fabric: QueueSpec,
        latency: HostLatency,
        fused: bool,
    ) -> BackToBack {
        let h0 = world.reserve();
        let h1 = world.reserve();
        let mk = |world: &mut World<Packet>, to: ComponentId| {
            let policy = fabric.build_host_nic(mtu);
            if fused {
                world.add(Queue::fused(
                    link_speed,
                    to,
                    link_delay,
                    LinkClass::HostNic,
                    policy,
                ))
            } else {
                let pipe = world.add(Pipe::new(link_delay, to));
                world.add(Queue::new(link_speed, pipe, LinkClass::HostNic, policy))
            }
        };
        let nic0 = mk(world, h1);
        let nic1 = mk(world, h0);
        world.install(
            h0,
            Host::new(0, nic0, link_speed, mtu).with_latency(latency.clone()),
        );
        world.install(
            h1,
            Host::new(1, nic1, link_speed, mtu).with_latency(latency),
        );
        BackToBack {
            hosts: [h0, h1],
            host_nic: [nic0, nic1],
            link_speed,
            link_delay,
            mtu,
        }
    }
}

impl Topology for BackToBack {
    fn label(&self) -> &'static str {
        "backtoback"
    }

    fn n_hosts(&self) -> usize {
        2
    }

    fn host(&self, h: HostId) -> ComponentId {
        self.hosts[h as usize]
    }

    fn host_nic(&self, h: HostId) -> ComponentId {
        self.host_nic[h as usize]
    }

    fn mtu(&self) -> u32 {
        self.mtu
    }

    fn host_link_speed(&self) -> Speed {
        self.link_speed
    }

    fn n_paths(&self, _src: HostId, _dst: HostId) -> u32 {
        1
    }

    fn path_profile(&self, _src: HostId, _dst: HostId) -> Vec<Hop> {
        vec![Hop {
            speed: self.link_speed,
            delay: self.link_delay,
        }]
    }

    fn links(&self) -> Vec<LinkRef> {
        let mut out = Vec::new();
        push_links_1d(&mut out, "host_nic", LinkClass::HostNic, &self.host_nic);
        out
    }
}

/// Configuration for [`TwoTier::build`].
#[derive(Clone, Debug)]
pub struct TwoTierCfg {
    pub n_tors: usize,
    pub hosts_per_tor: usize,
    pub n_spines: usize,
    pub link_speed: Speed,
    pub link_delay: Time,
    pub mtu: u32,
    pub fabric: QueueSpec,
    pub rts: bool,
    pub host_latency: HostLatency,
    /// Fold wire propagation into each queue's TX-done post (see
    /// [`crate::fattree::FatTreeCfg::fused`]).
    pub fused: bool,
}

impl TwoTierCfg {
    /// The paper's testbed: 8 servers, four 4-port ToRs (2 down/2 up),
    /// two spines — built from six switches total (§5.1).
    pub fn testbed() -> TwoTierCfg {
        TwoTierCfg {
            n_tors: 4,
            hosts_per_tor: 2,
            n_spines: 2,
            link_speed: Speed::gbps(10),
            link_delay: Time::from_us(1),
            mtu: 9000,
            fabric: QueueSpec::ndp_default(),
            rts: true,
            host_latency: HostLatency::default(),
            fused: true,
        }
    }

    /// Figure 21's sender-limited topology: two ToRs of three hosts under
    /// a pair of spines. Hosts: A=0 B=1 C=2 | D=3 E=4 F=5.
    pub fn sender_limited() -> TwoTierCfg {
        TwoTierCfg {
            n_tors: 2,
            hosts_per_tor: 3,
            ..TwoTierCfg::testbed()
        }
    }

    /// Figure 18/19's collateral-damage setup: one ToR with two hosts plus
    /// many sender racks — modelled as `n` single-host racks feeding two
    /// spines (aggregation switches).
    pub fn collateral(n_sender_racks: usize) -> TwoTierCfg {
        TwoTierCfg {
            n_tors: 1 + n_sender_racks,
            hosts_per_tor: 2,
            ..TwoTierCfg::testbed()
        }
    }

    pub fn n_hosts(&self) -> usize {
        self.n_tors * self.hosts_per_tor
    }

    pub fn with_fabric(mut self, fabric: QueueSpec) -> TwoTierCfg {
        self.fabric = fabric;
        self
    }

    /// Wire explicit `Pipe` components instead of fused hops.
    pub fn unfused(mut self) -> TwoTierCfg {
        self.fused = false;
        self
    }
}

/// A two-tier leaf/spine network.
pub struct TwoTier {
    pub cfg: TwoTierCfg,
    pub hosts: Vec<ComponentId>,
    pub host_nic: Vec<ComponentId>,
    pub tors: Vec<ComponentId>,
    pub spines: Vec<ComponentId>,
    /// `tor_down[tor][i]`
    pub tor_down: Vec<Vec<ComponentId>>,
    /// `tor_up[tor][s]`
    pub tor_up: Vec<Vec<ComponentId>>,
    /// `spine_down[s][tor]`
    pub spine_down: Vec<Vec<ComponentId>>,
}

impl TwoTier {
    pub fn build(world: &mut World<Packet>, cfg: TwoTierCfg) -> TwoTier {
        let n_hosts = cfg.n_hosts();
        let hpt = cfg.hosts_per_tor;
        let hosts: Vec<ComponentId> = (0..n_hosts).map(|_| world.reserve()).collect();
        let tors: Vec<ComponentId> = (0..cfg.n_tors).map(|_| world.reserve()).collect();
        let spines: Vec<ComponentId> = (0..cfg.n_spines).map(|_| world.reserve()).collect();

        let mk =
            |world: &mut World<Packet>, to: ComponentId, class: LinkClass, cfg: &TwoTierCfg| {
                let policy = if class == LinkClass::HostNic {
                    cfg.fabric.build_host_nic(cfg.mtu)
                } else {
                    cfg.fabric.build(cfg.mtu)
                };
                if cfg.fused {
                    world.add(Queue::fused(
                        cfg.link_speed,
                        to,
                        cfg.link_delay,
                        class,
                        policy,
                    ))
                } else {
                    let pipe = world.add(Pipe::new(cfg.link_delay, to));
                    world.add(Queue::new(cfg.link_speed, pipe, class, policy))
                }
            };

        let mut host_nic = Vec::new();
        let mut tor_down = vec![Vec::new(); cfg.n_tors];
        let mut tor_up = vec![Vec::new(); cfg.n_tors];
        let mut spine_down = vec![Vec::new(); cfg.n_spines];
        for (h, &host) in hosts.iter().enumerate() {
            let tor = h / hpt;
            host_nic.push(mk(world, tors[tor], LinkClass::HostNic, &cfg));
            tor_down[tor].push(mk(world, host, LinkClass::TorDown, &cfg));
        }
        for up in tor_up.iter_mut() {
            for &spine in &spines {
                up.push(mk(world, spine, LinkClass::TorUp, &cfg));
            }
        }
        for down in spine_down.iter_mut() {
            for &tor in &tors {
                down.push(mk(world, tor, LinkClass::AggDown, &cfg));
            }
        }

        for tor in 0..cfg.n_tors {
            let mut ports = tor_down[tor].clone();
            ports.extend(tor_up[tor].iter().copied());
            world.install(
                tors[tor],
                Switch::new(
                    ports,
                    Box::new(LeafRouter::new(n_hosts, hpt, tor, cfg.n_spines)),
                ),
            );
        }
        for s in 0..cfg.n_spines {
            world.install(
                spines[s],
                Switch::new(
                    spine_down[s].clone(),
                    Box::new(TableRouter::new(n_hosts, |d| d / hpt)),
                ),
            );
        }
        for h in 0..n_hosts {
            world.install(
                hosts[h],
                Host::new(h as HostId, host_nic[h], cfg.link_speed, cfg.mtu)
                    .with_latency(cfg.host_latency.clone()),
            );
        }

        let tt = TwoTier {
            cfg,
            hosts,
            host_nic,
            tors,
            spines,
            tor_down,
            tor_up,
            spine_down,
        };
        tt.finish_wiring(world);
        tt
    }

    fn finish_wiring(&self, world: &mut World<Packet>) {
        if self.cfg.fabric.is_ndp() && self.cfg.rts {
            for tor in 0..self.tors.len() {
                for &q in self.tor_down[tor].iter().chain(self.tor_up[tor].iter()) {
                    world.get_mut::<Queue>(q).set_bounce_to(self.tors[tor]);
                }
            }
            for s in 0..self.spines.len() {
                for &q in &self.spine_down[s] {
                    world.get_mut::<Queue>(q).set_bounce_to(self.spines[s]);
                }
            }
        }
        if self.cfg.fabric.is_lossless() {
            let hpt = self.cfg.hosts_per_tor;
            for tor in 0..self.tors.len() {
                let mut feeders: Vec<ComponentId> =
                    (0..hpt).map(|i| self.host_nic[tor * hpt + i]).collect();
                for s in 0..self.spines.len() {
                    feeders.push(self.spine_down[s][tor]);
                }
                for &q in self.tor_down[tor].iter().chain(self.tor_up[tor].iter()) {
                    world.get_mut::<Queue>(q).set_upstreams(feeders.clone());
                }
            }
            for s in 0..self.spines.len() {
                let feeders: Vec<ComponentId> =
                    (0..self.tors.len()).map(|t| self.tor_up[t][s]).collect();
                for &q in &self.spine_down[s] {
                    world.get_mut::<Queue>(q).set_upstreams(feeders.clone());
                }
            }
        }
    }

    pub fn n_paths(&self, src: HostId, dst: HostId) -> u32 {
        let hpt = self.cfg.hosts_per_tor as u32;
        if src / hpt == dst / hpt {
            1
        } else {
            self.cfg.n_spines as u32
        }
    }
}

impl Topology for TwoTier {
    fn label(&self) -> &'static str {
        "twotier"
    }

    fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    fn host(&self, h: HostId) -> ComponentId {
        self.hosts[h as usize]
    }

    fn host_nic(&self, h: HostId) -> ComponentId {
        self.host_nic[h as usize]
    }

    fn mtu(&self) -> u32 {
        self.cfg.mtu
    }

    fn host_link_speed(&self) -> Speed {
        self.cfg.link_speed
    }

    fn n_paths(&self, src: HostId, dst: HostId) -> u32 {
        TwoTier::n_paths(self, src, dst)
    }

    fn path_profile(&self, src: HostId, dst: HostId) -> Vec<Hop> {
        let hop = Hop {
            speed: self.cfg.link_speed,
            delay: self.cfg.link_delay,
        };
        let hpt = self.cfg.hosts_per_tor as u32;
        // Same rack: NIC + ToR-down. Cross rack: NIC, ToR-up, spine-down,
        // ToR-down.
        if src / hpt == dst / hpt {
            vec![hop; 2]
        } else {
            vec![hop; 4]
        }
    }

    fn links(&self) -> Vec<LinkRef> {
        let mut out = Vec::new();
        push_links_1d(&mut out, "host_nic", LinkClass::HostNic, &self.host_nic);
        push_links_2d(&mut out, "tor_down", LinkClass::TorDown, &self.tor_down);
        push_links_2d(&mut out, "tor_up", LinkClass::TorUp, &self.tor_up);
        push_links_2d(&mut out, "spine_down", LinkClass::AggDown, &self.spine_down);
        out
    }
}

/// N sender hosts funnelled through one switch into a single receiver link
/// (Figure 2's congestion-collapse microbenchmark).
pub struct SingleBottleneck {
    pub senders: Vec<ComponentId>,
    pub sender_nic: Vec<ComponentId>,
    pub receiver: ComponentId,
    pub bottleneck: ComponentId,
    pub switch: ComponentId,
}

struct AllToPortZero;
impl Router for AllToPortZero {
    fn route(&self, _pkt: &Packet, _rng: &mut SmallRng) -> usize {
        0
    }
}

impl SingleBottleneck {
    /// Sender i is host id `i`; the receiver is host id `n_senders`.
    pub fn build(
        world: &mut World<Packet>,
        n_senders: usize,
        link_speed: Speed,
        link_delay: Time,
        mtu: u32,
        fabric: QueueSpec,
    ) -> SingleBottleneck {
        let receiver = world.reserve();
        let sw = world.reserve();
        let rx_pipe = world.add(Pipe::new(link_delay, receiver));
        let bottleneck = world.add(Queue::new(
            link_speed,
            rx_pipe,
            LinkClass::TorDown,
            fabric.build(mtu),
        ));
        if fabric.is_ndp() {
            world.get_mut::<Queue>(bottleneck).set_bounce_to(sw);
        }
        let mut senders = Vec::new();
        let mut sender_nic = Vec::new();
        for i in 0..n_senders {
            let h = world.reserve();
            let pipe = world.add(Pipe::new(link_delay, sw));
            let nic = world.add(Queue::new(
                link_speed,
                pipe,
                LinkClass::HostNic,
                fabric.build_host_nic(mtu),
            ));
            world.install(h, Host::new(i as HostId, nic, link_speed, mtu));
            senders.push(h);
            sender_nic.push(nic);
        }
        // The receiver's own NIC (for ACK/pull traffic back): wire a reverse
        // path directly to a broadcast-ish return switch. For simplicity the
        // receiver NIC connects back through per-sender pipes via a return
        // switch that routes on dst.
        let ret_sw = world.reserve();
        let ret_pipe = world.add(Pipe::new(link_delay, ret_sw));
        let rx_nic = world.add(Queue::new(
            link_speed,
            ret_pipe,
            LinkClass::HostNic,
            fabric.build_host_nic(mtu),
        ));
        world.install(
            receiver,
            Host::new(n_senders as HostId, rx_nic, link_speed, mtu),
        );
        // Return switch: one port per sender, routed by dst id.
        let mut ret_ports = Vec::new();
        for &s in &senders {
            let pipe = world.add(Pipe::new(link_delay, s));
            let q = world.add(Queue::new(
                link_speed,
                pipe,
                LinkClass::TorDown,
                fabric.build(mtu),
            ));
            ret_ports.push(q);
        }
        struct ByDst;
        impl Router for ByDst {
            fn route(&self, pkt: &Packet, _rng: &mut SmallRng) -> usize {
                pkt.dst as usize
            }
        }
        world.install(ret_sw, Switch::new(ret_ports, Box::new(ByDst)));
        world.install(sw, Switch::new(vec![bottleneck], Box::new(AllToPortZero)));
        SingleBottleneck {
            senders,
            sender_nic,
            receiver,
            bottleneck,
            switch: sw,
        }
    }
}

/// Deterministic random permutation with no fixed points (every host sends
/// to exactly one other host and receives from exactly one), the paper's
/// worst-case "permutation traffic matrix".
pub fn derangement(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    assert!(n >= 2);
    loop {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher-Yates.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        if perm.iter().enumerate().all(|(i, &p)| i != p) {
            return perm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_net::host::HostLatency;
    use rand::SeedableRng;

    #[test]
    fn back_to_back_delivers_both_ways() {
        let mut w: World<Packet> = World::new(1);
        let b2b = BackToBack::build(
            &mut w,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::ndp_default(),
            HostLatency::default(),
        );
        w.post(Time::ZERO, b2b.host_nic[0], Packet::data(0, 1, 5, 0, 9000));
        w.post(Time::ZERO, b2b.host_nic[1], Packet::data(1, 0, 6, 0, 9000));
        w.run_until_idle();
        assert_eq!(w.get::<Host>(b2b.hosts[1]).stats().unknown_flow_drops, 1);
        assert_eq!(w.get::<Host>(b2b.hosts[0]).stats().unknown_flow_drops, 1);
        // One hop: 7.2us serialization + 1us propagation.
        assert_eq!(w.now(), Time::from_ns(8_200));
    }

    #[test]
    fn testbed_shape() {
        let cfg = TwoTierCfg::testbed();
        assert_eq!(cfg.n_hosts(), 8);
        let mut w: World<Packet> = World::new(1);
        let tt = TwoTier::build(&mut w, cfg);
        assert_eq!(tt.tors.len() + tt.spines.len(), 6, "six 4-port switches");
        assert_eq!(tt.n_paths(0, 1), 1);
        assert_eq!(tt.n_paths(0, 2), 2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // src/dst index pairs are the point
    fn two_tier_routes_all_pairs() {
        let mut w: World<Packet> = World::new(1);
        let tt = TwoTier::build(&mut w, TwoTierCfg::testbed());
        let n = tt.hosts.len();
        let mut expected = vec![0u64; n];
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                for tag in 0..tt.n_paths(src as u32, dst as u32) {
                    let pkt = Packet::data(src as u32, dst as u32, (src * n + dst) as u64, 0, 1500)
                        .with_path(tag);
                    w.post(Time::ZERO, tt.host_nic[src], pkt);
                    expected[dst] += 1;
                }
            }
        }
        w.run_until_idle();
        for dst in 0..n {
            assert_eq!(
                w.get::<Host>(tt.hosts[dst]).stats().unknown_flow_drops,
                expected[dst],
                "host {dst}"
            );
        }
    }

    #[test]
    fn single_bottleneck_funnels() {
        let mut w: World<Packet> = World::new(1);
        let sb = SingleBottleneck::build(
            &mut w,
            4,
            Speed::gbps(10),
            Time::from_us(1),
            9000,
            QueueSpec::ndp_default(),
        );
        for s in 0..4u32 {
            w.post(
                Time::ZERO,
                sb.sender_nic[s as usize],
                Packet::data(s, 4, s as u64, 0, 9000),
            );
        }
        w.run_until_idle();
        assert_eq!(w.get::<Host>(sb.receiver).stats().unknown_flow_drops, 4);
    }

    #[test]
    fn derangement_has_no_fixed_points_and_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [2usize, 3, 10, 432] {
            let d = derangement(n, &mut rng);
            let mut seen = vec![false; n];
            for (i, &p) in d.iter().enumerate() {
                assert_ne!(i, p);
                assert!(!seen[p]);
                seen[p] = true;
            }
        }
    }
}
